#!/usr/bin/env bash
# Grep-based lint: no NEW `.unwrap()` / `panic!(` in non-test library code.
#
# Library code means src/ and crates/*/src/, excluding binaries
# (crates/*/src/bin/) and everything from the first `#[cfg(test)]` to the
# end of each file (test modules sit at the bottom of files in this repo).
# Pre-existing call sites are grandfathered in ci/panic_baseline.txt; this
# script fails when a file exceeds its baselined count. After removing
# unwraps, regenerate the baseline with:
#
#   ci/forbid_new_panics.sh --update-baseline
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=ci/panic_baseline.txt
pattern='\.unwrap\(\)|panic!\('

count_file() {
  # Lines before the first #[cfg(test)] that contain a forbidden call.
  awk '/#\[cfg\(test\)\]/{exit} {print}' "$1" | grep -cE "$pattern" || true
}

list_files() {
  find src crates/*/src -name '*.rs' -not -path '*/src/bin/*' | LC_ALL=C sort
}

if [[ "${1:-}" == "--update-baseline" ]]; then
  : > "$baseline"
  while read -r f; do
    n=$(count_file "$f")
    [[ "$n" -gt 0 ]] && printf '%s %s\n' "$n" "$f" >> "$baseline"
  done < <(list_files)
  echo "baseline rewritten: $baseline"
  exit 0
fi

fail=0
while read -r f; do
  n=$(count_file "$f")
  allowed=$(awk -v f="$f" '$2 == f {print $1}' "$baseline")
  allowed=${allowed:-0}
  if [[ "$n" -gt "$allowed" ]]; then
    echo "ERROR: $f has $n unwrap()/panic! call(s) in non-test code (baseline allows $allowed)." >&2
    echo "       Return a typed SfcError instead, or keep the panic in a documented thin wrapper" >&2
    echo "       and regenerate the baseline deliberately (see DESIGN.md section 7)." >&2
    fail=1
  fi
done < <(list_files)

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "panic lint OK (no new unwrap()/panic! in library code)"
