//! Domain example 3: a Fig. 1-style locality explorer.
//!
//! Walks straight lines through a 2D grid in different directions under
//! all four layouts, feeding every access to the cache simulator, and
//! prints the miss counts — making the paper's Figure 1 intuition
//! quantitative: array order is fast in exactly one direction; the curves
//! are direction-neutral.
//!
//! Run with:
//! `cargo run --release --example cache_explorer -- [--size 512]`

use sfc_repro::harness;
use sfc_repro::memsim::{CacheConfig, CoreSim, HierarchyConfig};
use sfc_core::{
    ArrayOrder2, Dims2, Grid2, HilbertOrder2, Layout2, Tiled2, ZOrder2,
};

/// Simulate row-direction and column-direction sweeps over the whole grid.
fn sweep<L: Layout2>(name: &str, dims: Dims2, hier: &HierarchyConfig) {
    let grid = Grid2::<f32, L>::from_fn(dims, |i, j| (i + j) as f32);
    let run = |along_x: bool| -> (u64, u64) {
        let mut sim = CoreSim::new(hier);
        if along_x {
            for j in 0..dims.ny {
                for i in 0..dims.nx {
                    let idx = grid.index_of(i, j);
                    sim.read(idx as u64 * 4, 4);
                }
            }
        } else {
            for i in 0..dims.nx {
                for j in 0..dims.ny {
                    let idx = grid.index_of(i, j);
                    sim.read(idx as u64 * 4, 4);
                }
            }
        }
        let c = sim.counters();
        (c.l1.misses, c.l2.misses)
    };
    let (x_l1, x_l2) = run(true);
    let (y_l1, y_l2) = run(false);
    println!(
        "{name:<10} {x_l1:>12} {x_l2:>12} {y_l1:>12} {y_l2:>12} {:>10.2}",
        harness::scaled_relative_difference(y_l2 as f64, x_l2.max(1) as f64)
    );
}

fn main() {
    let args = harness::Args::from_env();
    let n = args.get_usize("size", 512);
    let dims = Dims2::square(n);
    // A small private hierarchy so even the 2D plane exceeds L2.
    let hier = HierarchyConfig {
        l1: CacheConfig::new(4 * 1024, 64, 8),
        l2: CacheConfig::new(32 * 1024, 64, 8),
        llc: None,
        tlb: None,
    };

    println!(
        "Sweeping a {n}x{n} grid along rows (the array-order-friendly\n\
         direction) and along columns (the hostile one); L1 4KB / L2 32KB.\n"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "layout", "row L1miss", "row L2miss", "col L1miss", "col L2miss", "col/row ds"
    );
    sweep::<ArrayOrder2>("a-order", dims, &hier);
    sweep::<ZOrder2>("z-order", dims, &hier);
    sweep::<Tiled2>("tiled", dims, &hier);
    sweep::<HilbertOrder2>("hilbert", dims, &hier);

    println!(
        "\nReading: a-order explodes when walked against the grain (large\n\
         col/row ds); the space-filling curves pay a modest, direction-\n\
         independent cost — the paper's Figure 1 in numbers."
    );
}
