//! Out-of-core example: raycast a volume whose resident footprint is
//! capped far below its size.
//!
//! The volume is imported once into a crash-safe `BrickStore` (checksummed
//! SFC-ordered bricks + journal), then rendered *from the store* under a
//! residency budget of a quarter of the volume (default): bricks fault in
//! on demand through the LRU, get verified against the manifest, and the
//! same raycaster that runs over in-memory grids runs unmodified. With
//! `--chaos` the store's IO layer injects transient faults (IO errors and
//! in-transit bit flips) to show the bounded-retry path absorbing them.
//!
//! Run with:
//! `cargo run --release --example streaming_raycast -- [--size 64] [--image 96] [--budget-frac 4] [--chaos] [--outdir /tmp]`

use sfc_repro::prelude::*;
use sfc_repro::store::{BrickStore, StoreOptions};
use sfc_repro::{datagen, harness, volrend};
use std::path::PathBuf;

fn main() {
    let args = harness::Args::from_env();
    let n = args.get_usize("size", 64);
    let image = args.get_usize("image", 96);
    let budget_frac = args.get_usize("budget-frac", 4);
    let outdir = PathBuf::from(args.get_str(
        "outdir",
        std::env::temp_dir().to_str().unwrap_or("/tmp"),
    ));
    let dims = Dims3::cube(n);

    println!("Generating {n}^3 combustion-like field…");
    let values = datagen::combustion_field(dims, 7, datagen::CombustionParams::default());
    let grid: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &values);

    let store_dir = outdir.join(format!("streaming_raycast_store_{n}"));
    let volume_bytes = dims.len() * 4;
    let budget = (volume_bytes / budget_frac.max(1)).max(1);
    let opts = StoreOptions::default().with_budget(budget);
    println!(
        "Importing into brick store at {} (budget {} KiB = 1/{} of the volume)…",
        store_dir.display(),
        budget / 1024,
        budget_frac
    );
    let store = BrickStore::import(&store_dir, &grid, 8, LayoutKind::ZOrder, opts.clone())
        .expect("brick store import");
    let store = if args.has("chaos") {
        // Faults hit only the read path: the import above was clean, so
        // every injected error is transient and bounded retry absorbs it.
        let rates = harness::faults::IoFaultRates {
            io_error: 0.02,
            bit_flip: 0.02,
            ..Default::default()
        };
        let plan =
            harness::faults::IoFaultPlan::random(args.get_u64("chaos-seed", 42), rates);
        println!("Chaos mode: injecting transient IO faults on the read path.");
        drop(store);
        BrickStore::open(&store_dir, opts.with_faults(plan)).expect("reopen with faults")
    } else {
        store
    };

    let center = volrend::vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0);
    let cams = orbit_viewpoints(
        4,
        center,
        n as f32 * 2.2,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        image,
        image,
    );
    let tf = TransferFunction::fire();
    let ropts = RenderOpts::default();

    for (v, cam) in cams.iter().enumerate() {
        let (img, dt) = harness::time_once(|| render(&store, cam, &tf, &ropts));
        let stats = store.stats();
        println!(
            "viewpoint {v}: {:.3}s  resident={} KiB  hits={} misses={} evictions={} \
             retries={} repairs={} poisoned={}",
            dt.as_secs_f64(),
            store.resident_bytes() / 1024,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.retries,
            stats.repairs,
            stats.poisoned
        );
        if v == 0 {
            let out = outdir.join("streaming_raycast_v0.ppm");
            datagen::write_ppm(&out, image, image, &img.to_rgb8([0.0, 0.0, 0.0]))
                .expect("write ppm");
            println!("  wrote {}", out.display());
        }
    }

    // Prove the streaming render is exact: the same frame from the
    // in-memory grid must match bitwise when faults are off.
    if !args.has("chaos") {
        let from_store = render(&store, &cams[0], &tf, &ropts);
        let from_grid = render(&grid, &cams[0], &tf, &ropts);
        assert_eq!(
            from_store.pixels().len(),
            from_grid.pixels().len(),
            "frame shapes agree"
        );
        let identical = from_store
            .pixels()
            .iter()
            .zip(from_grid.pixels())
            .all(|(p, q)| {
                [p.r, p.g, p.b, p.a]
                    .iter()
                    .zip([q.r, q.g, q.b, q.a].iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
            });
        println!(
            "bitwise identical to in-memory render: {}",
            if identical { "yes" } else { "NO (bug!)" }
        );
        assert!(identical);
    }

    let report = store.scrub();
    println!(
        "scrub: {} bricks scanned, {} clean, {} repaired, {} unrecoverable",
        report.scanned,
        report.clean,
        report.repaired,
        report.unrecoverable.len()
    );
    std::fs::remove_dir_all(&store_dir).ok();
}
