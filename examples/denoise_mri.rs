//! Domain example 1: denoising an MRI-like volume with the 3D bilateral
//! filter — the paper's structured-access workload.
//!
//! Generates the synthetic head phantom, filters it under array order and
//! Z-order across the paper's pencil/loop-order configurations, prints a
//! Fig. 2-style `ds` summary, and writes before/after image slices.
//!
//! Run with:
//! `cargo run --release --example denoise_mri -- [--size 64] [--threads 4] [--outdir /tmp]`
//!
//! Pass `--volume FILE` to denoise a `.sfcv` container instead of the
//! synthetic phantom. The loader verifies magic, version, dimensions, and
//! a payload checksum, so truncated or bit-flipped files are rejected with
//! a typed error instead of producing garbage; NaN voxels that survive into
//! the data are repaired by the filter and reported at the end.

use sfc_repro::prelude::*;
use sfc_repro::{datagen, filters, harness, memsim};
use std::path::PathBuf;

fn main() {
    let args = harness::Args::from_env();
    let n = args.get_usize("size", 64);
    let threads = args.get_usize("threads", 4);
    let outdir = PathBuf::from(args.get_str(
        "outdir",
        std::env::temp_dir().to_str().unwrap_or("/tmp"),
    ));
    let (dims, noisy) = match args.get("volume") {
        Some(path) => {
            let path = PathBuf::from(path);
            match datagen::load_volume(&path) {
                Ok((dims, values)) => {
                    println!("Loaded {} ({:?}, {} voxels)…", path.display(), dims, dims.len());
                    (dims, values)
                }
                Err(e) => {
                    eprintln!("cannot load {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        }
        None => {
            let dims = Dims3::cube(n);
            println!("Generating {n}^3 MRI phantom…");
            (dims, datagen::mri_phantom(dims, 2024, datagen::PhantomParams::default()))
        }
    };
    let n = dims.nx;
    filters::reset_nan_events();
    let a_grid: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &noisy);
    let z_grid: Grid3<f32, ZOrder3> = a_grid.convert();

    // The paper's bilateral configurations: friendly (px,xyz) and hostile
    // (pz,zyx) for each stencil size.
    let configs: Vec<(StencilSize, Axis, StencilOrder)> = StencilSize::ALL
        .into_iter()
        .flat_map(|s| {
            [
                (s, Axis::X, StencilOrder::Xyz),
                (s, Axis::Z, StencilOrder::Zyx),
            ]
        })
        .collect();

    let plat = memsim::scaled(&memsim::ivy_bridge(), memsim::shift_for_volume_edge(n));
    println!(
        "\n{:<12} {:>12} {:>12} {:>9}   {:>14} {:>14} {:>9}",
        "config", "a-order", "z-order", "ds(time)", "a L3_TCA", "z L3_TCA", "ds(tca)"
    );
    let mut denoised: Option<Vec<f32>> = None;
    for (size, axis, order) in configs {
        let run = filters::FilterRun {
            params: filters::BilateralParams::for_size(size, order),
            pencil_axis: axis,
            weight: Default::default(),
            nthreads: threads,
        };
        let (out_a, ta) = harness::time_once(|| -> Grid3<f32, ArrayOrder3> {
            filters::bilateral3d(&a_grid, &run)
        });
        let (_, tz) = harness::time_once(|| -> Grid3<f32, ArrayOrder3> {
            filters::bilateral3d(&z_grid, &run)
        });
        let ca = filters::simulate_bilateral_counters(&a_grid, &run.params, axis, threads, &plat);
        let cz = filters::simulate_bilateral_counters(&z_grid, &run.params, axis, threads, &plat);
        println!(
            "{:<12} {:>10.1}ms {:>10.1}ms {:>9.2}   {:>14} {:>14} {:>9.2}",
            filters::config_label(size, axis, order),
            ta.as_secs_f64() * 1e3,
            tz.as_secs_f64() * 1e3,
            harness::scaled_relative_difference(ta.as_secs_f64(), tz.as_secs_f64()),
            ca.l3_total_cache_accesses(),
            cz.l3_total_cache_accesses(),
            harness::scaled_relative_difference(
                ca.l3_total_cache_accesses() as f64,
                cz.l3_total_cache_accesses() as f64
            ),
        );
        if size == StencilSize::R3 && axis == Axis::X {
            denoised = Some(out_a.to_row_major());
        }
    }

    let repaired = filters::nan_events();
    if repaired > 0 {
        println!(
            "\nNaN voxel taps excluded/repaired during filtering: {repaired} \
             (corrupt voxels do not propagate; see filters::nan_events)"
        );
    }

    // Write mid-volume slices before/after (r3 friendly configuration).
    let mid = dims.nz / 2;
    let before = datagen::slice_z(&noisy, dims, mid);
    let after = datagen::slice_z(&denoised.expect("r3 px config ran"), dims, mid);
    let p1 = outdir.join("mri_noisy.pgm");
    let p2 = outdir.join("mri_denoised.pgm");
    datagen::write_pgm(&p1, dims.nx, dims.ny, &datagen::normalize_to_u8(&before))
        .expect("write slice");
    datagen::write_pgm(&p2, dims.nx, dims.ny, &datagen::normalize_to_u8(&after))
        .expect("write slice");
    println!("\nslices written: {} , {}", p1.display(), p2.display());

    // Sanity: the filter actually denoises (variance in a flat region drops).
    let var = |v: &[f32]| {
        let m = v.iter().sum::<f32>() / v.len() as f32;
        v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
    };
    println!(
        "slice variance before {:.5} -> after {:.5}",
        var(&before),
        var(&after)
    );
}
