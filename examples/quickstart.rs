//! Quickstart: the layout library in three minutes.
//!
//! Builds a small synthetic volume, stores it in array order and Z-order,
//! runs the two paper kernels over both layouts, and prints runtimes plus
//! simulated cache counters.
//!
//! Run with: `cargo run --release --example quickstart`

use sfc_repro::prelude::*;
use sfc_repro::{datagen, filters, harness, memsim, volrend};

fn main() {
    let dims = Dims3::cube(64);
    println!("== sfc-repro quickstart ({}^3 volume) ==\n", dims.nx);

    // 1. Synthesize a volume and store it under two layouts.
    let values = datagen::combustion_field(dims, 42, datagen::CombustionParams::default());
    let a_grid: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z_grid: Grid3<f32, ZOrder3> = a_grid.convert();
    println!(
        "layouts hold identical data: {}",
        a_grid.get(10, 20, 30) == z_grid.get(10, 20, 30)
    );
    println!(
        "z-order padding overhead: {:.1}% (power-of-two dims pad nothing)\n",
        z_grid.padding_overhead() * 100.0
    );

    // 2. Bilateral filter (structured stencil access), hostile configuration:
    //    z pencils + z-innermost stencil order.
    let run = filters::FilterRun {
        params: filters::BilateralParams::for_size(StencilSize::R3, StencilOrder::Zyx),
        pencil_axis: Axis::Z,
        weight: Default::default(),
        nthreads: 4,
    };
    let (out_a, t_a) = harness::time_once(|| -> Grid3<f32, ArrayOrder3> {
        filters::bilateral3d(&a_grid, &run)
    });
    let (out_z, t_z) = harness::time_once(|| -> Grid3<f32, ArrayOrder3> {
        filters::bilateral3d(&z_grid, &run)
    });
    assert_eq!(out_a.to_row_major(), out_z.to_row_major());
    println!("bilateral r3/pz/zyx, 4 threads:");
    println!("  array-order: {:?}", t_a);
    println!("  z-order:     {:?}", t_z);
    println!(
        "  ds(runtime) = {:.2}  (positive => z-order faster)\n",
        scaled_relative_difference(t_a.as_secs_f64(), t_z.as_secs_f64())
    );

    // 3. Simulated cache counters for the same configuration (scaled
    //    Ivy Bridge model; see EXPERIMENTS.md for the scaling rule).
    let plat = memsim::scaled(&memsim::ivy_bridge(), memsim::shift_for_volume_edge(dims.nx));
    let ca = filters::simulate_bilateral_counters(&a_grid, &run.params, Axis::Z, 4, &plat);
    let cz = filters::simulate_bilateral_counters(&z_grid, &run.params, Axis::Z, 4, &plat);
    println!("simulated {} (scaled IvyBridge):", plat.counter_name);
    println!("  array-order: {}", ca.l3_total_cache_accesses());
    println!("  z-order:     {}", cz.l3_total_cache_accesses());
    println!(
        "  ds(counter) = {:.2}\n",
        scaled_relative_difference(
            ca.l3_total_cache_accesses() as f64,
            cz.l3_total_cache_accesses() as f64
        )
    );

    // 4. Render one oblique frame from each layout (identical images).
    let cams = orbit_viewpoints(
        8,
        volrend::vec3(dims.nx as f32 / 2.0, dims.ny as f32 / 2.0, dims.nz as f32 / 2.0),
        dims.nx as f32 * 2.2,
        Projection::Perspective { fov_y: 40f32.to_radians() },
        128,
        128,
    );
    let tf = TransferFunction::fire();
    let opts = RenderOpts { nthreads: 4, ..Default::default() };
    let (img_a, rt_a) = harness::time_once(|| volrend::render(&a_grid, &cams[2], &tf, &opts));
    let (img_z, rt_z) = harness::time_once(|| volrend::render(&z_grid, &cams[2], &tf, &opts));
    println!("volume rendering, oblique viewpoint 2, 4 threads:");
    println!("  array-order: {:?}", rt_a);
    println!("  z-order:     {:?}", rt_z);
    println!(
        "  images identical: {}",
        img_a.pixels() == img_z.pixels()
    );

    let out = std::env::temp_dir().join("sfc_quickstart.ppm");
    datagen::write_ppm(
        &out,
        img_z.width(),
        img_z.height(),
        &img_z.to_rgb8([0.0, 0.0, 0.0]),
    )
    .expect("write image");
    println!("  frame written to {}", out.display());
}
