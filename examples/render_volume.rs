//! Domain example 2: raycasting the combustion-like volume from an
//! orbiting camera — the paper's semi-structured workload (Fig. 4).
//!
//! Renders the same frame from 8 viewpoints under array order and Z-order,
//! prints per-viewpoint runtimes and simulated `PAPI_L3_TCA`, and writes
//! every Z-order frame as a PPM.
//!
//! Run with:
//! `cargo run --release --example render_volume -- [--size 64] [--image 128] [--threads 4] [--outdir /tmp]`

use sfc_repro::prelude::*;
use sfc_repro::{datagen, harness, memsim, volrend};
use std::path::PathBuf;

fn main() {
    let args = harness::Args::from_env();
    let n = args.get_usize("size", 64);
    let image = args.get_usize("image", 128);
    let threads = args.get_usize("threads", 4);
    let outdir = PathBuf::from(args.get_str(
        "outdir",
        std::env::temp_dir().to_str().unwrap_or("/tmp"),
    ));
    let dims = Dims3::cube(n);

    println!("Generating {n}^3 combustion-like field…");
    let values = datagen::combustion_field(dims, 7, datagen::CombustionParams::default());
    let a_grid: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z_grid: Grid3<f32, ZOrder3> = a_grid.convert();

    let center = volrend::vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0);
    let cams = orbit_viewpoints(
        8,
        center,
        n as f32 * 2.2,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        image,
        image,
    );
    let tf = TransferFunction::fire();
    let opts = RenderOpts {
        nthreads: threads,
        ..Default::default()
    };
    // --shaded switches to the gradient-lit renderer (3x the reads/sample).
    let shaded = args.has("shaded");
    let light = volrend::Light::default();
    let plat = memsim::scaled(&memsim::ivy_bridge(), memsim::shift_for_volume_edge(n));

    println!(
        "\n{:>9} {:>12} {:>12} {:>9}   {:>12} {:>12} {:>9}",
        "viewpoint", "a-order", "z-order", "ds(time)", "a L3_TCA", "z L3_TCA", "ds(tca)"
    );
    for (v, cam) in cams.iter().enumerate() {
        let draw_a = || {
            if shaded {
                volrend::render_lit(&a_grid, cam, &tf, &opts, &light)
            } else {
                volrend::render(&a_grid, cam, &tf, &opts)
            }
        };
        let draw_z = || {
            if shaded {
                volrend::render_lit(&z_grid, cam, &tf, &opts, &light)
            } else {
                volrend::render(&z_grid, cam, &tf, &opts)
            }
        };
        let (img_a, ta) = harness::time_once(draw_a);
        let (img_z, tz) = harness::time_once(draw_z);
        assert_eq!(img_a.pixels(), img_z.pixels(), "layouts must agree");
        let ca = volrend::simulate_render_counters(&a_grid, cam, &tf, &opts, threads, &plat);
        let cz = volrend::simulate_render_counters(&z_grid, cam, &tf, &opts, threads, &plat);
        println!(
            "{:>9} {:>10.1}ms {:>10.1}ms {:>9.2}   {:>12} {:>12} {:>9.2}",
            v,
            ta.as_secs_f64() * 1e3,
            tz.as_secs_f64() * 1e3,
            harness::scaled_relative_difference(ta.as_secs_f64(), tz.as_secs_f64()),
            ca.l3_total_cache_accesses(),
            cz.l3_total_cache_accesses(),
            harness::scaled_relative_difference(
                ca.l3_total_cache_accesses() as f64,
                cz.l3_total_cache_accesses() as f64
            ),
        );
        let path = outdir.join(format!("combustion_view{v}.ppm"));
        datagen::write_ppm(&path, image, image, &img_z.to_rgb8([0.0, 0.0, 0.0]))
            .expect("write frame");
    }
    println!("\nframes written to {}", outdir.display());
    println!("(viewpoints 0 and 4 look along ±x: rays aligned with array order;");
    println!(" 2 and 6 look along ±z: maximally misaligned — watch ds(tca) peak there)");
}
