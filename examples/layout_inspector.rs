//! Domain example 4: inspect a layout's locality analytically.
//!
//! Prints, for each layout and axis, the distribution of storage distance
//! for unit logical steps (the paper's §II-B "nearby in index space is not
//! nearby in memory" observation, measured), plus padding overheads.
//!
//! Run with:
//! `cargo run --release --example layout_inspector -- [--nx 64 --ny 64 --nz 64]`

use sfc_core::{
    anisotropy, axis_step_stats, ArrayOrder3, Axis, Dims3, HilbertOrder3, Layout3, Tiled3,
    ZOrder3,
};
use sfc_repro::harness::Args;

/// f32 elements per 64-byte cache line.
const LINE_ELEMS: usize = 16;

fn report<L: Layout3>(name: &str, dims: Dims3) {
    let l = L::new(dims);
    println!("{name}  (storage {} slots, padding {:.1}%)", l.storage_len(), l.padding_overhead() * 100.0);
    for axis in Axis::ALL {
        let s = axis_step_stats(&l, axis, LINE_ELEMS);
        println!(
            "  +{} step: mean |Δslot| = {:>10.1}   max = {:>9}   same-line = {:>5.1}%",
            axis.name(),
            s.mean_abs,
            s.max_abs,
            s.within_line * 100.0
        );
    }
    println!("  anisotropy (worst/best axis): {:.2}x\n", anisotropy(&l, LINE_ELEMS));
}

fn main() {
    let args = Args::from_env();
    let dims = Dims3::new(
        args.get_usize("nx", 64),
        args.get_usize("ny", 64),
        args.get_usize("nz", 64),
    );
    println!(
        "Unit-step locality for a {}x{}x{} grid (f32, 64B lines)\n",
        dims.nx, dims.ny, dims.nz
    );
    report::<ArrayOrder3>("a-order", dims);
    report::<ZOrder3>("z-order", dims);
    report::<Tiled3>("tiled  ", dims);
    report::<HilbertOrder3>("hilbert", dims);
    println!(
        "Array order is perfect along x and catastrophic along z; the\n\
         space-filling curves trade a little x locality for near-isotropy —\n\
         the property the paper's kernels exploit."
    );
}
