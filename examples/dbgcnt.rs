use sfc_repro::prelude::*;
use sfc_repro::{datagen, filters, memsim};
fn main() {
    let n = 64;
    let dims = Dims3::cube(n);
    let values = datagen::mri_phantom(dims, 2024, datagen::PhantomParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let plat = memsim::scaled(&memsim::ivy_bridge(), 3);
    let p = filters::BilateralParams::for_size(StencilSize::R1, StencilOrder::Zyx);
    let ra = filters::simulate_bilateral_counters(&a, &p, Axis::Z, 2, &plat);
    let rz = filters::simulate_bilateral_counters(&z, &p, Axis::Z, 2, &plat);
    println!("a: {:?}", ra.total());
    println!("z: {:?}", rz.total());
    println!("L2 sets: {}", plat.hierarchy.l2.num_sets());
}
