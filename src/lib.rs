//! # sfc-repro — space-filling-curve memory layouts for data-intensive kernels
//!
//! Umbrella crate of a full reproduction of Bethel, Camp, Donofrio &
//! Howison, *"Improving Performance of Structured-Memory, Data-Intensive
//! Applications on Multi-core Platforms via a Space-Filling Curve Memory
//! Layout"* (IPDPS 2015 Workshops / HPDIC 2015).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `sfc-core` | layouts (array/Z/tiled/Hilbert), grids, curve codecs |
//! | [`memsim`] | `sfc-memsim` | deterministic cache simulator (PAPI-counter analog) |
//! | [`datagen`] | `sfc-datagen` | synthetic MRI phantom / combustion field, I/O |
//! | [`harness`] | `sfc-harness` | execution engine, timing, `ds` metric, tables |
//! | [`filters`] | `sfc-filters` | 3D bilateral filter (structured access) |
//! | [`volrend`] | `sfc-volrend` | raycasting volume renderer (semi-structured) |
//! | [`store`] | `sfc-store` | crash-safe out-of-core brick store (scrub, read-repair) |
//!
//! See `examples/quickstart.rs` for a three-minute tour, and the `sfc-bench`
//! crate for binaries regenerating every figure of the paper's evaluation.

pub use sfc_core as core;
pub use sfc_datagen as datagen;
pub use sfc_filters as filters;
pub use sfc_harness as harness;
pub use sfc_memsim as memsim;
pub use sfc_store as store;
pub use sfc_volrend as volrend;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sfc_core::{
        ArrayOrder3, Axis, Dims3, Grid3, HilbertOrder3, Layout3, LayoutKind, SfcError,
        SfcResult, StencilOrder, StencilSize, Tiled3, Volume3, ZOrder3,
    };
    pub use sfc_filters::{bilateral3d, try_bilateral3d, BilateralParams, FilterRun};
    pub use sfc_harness::{
        run_items_supervised, scaled_relative_difference, DeadlineBudget, ExecPolicy, Executor,
        QualityMap, RunReport, Schedule, SupervisorConfig, WorkPlan,
    };
    pub use sfc_memsim::{CoreSim, Platform, TracedGrid};
    pub use sfc_volrend::{
        orbit_viewpoints, render, Camera, Projection, RenderOpts, TransferFunction,
    };
}
