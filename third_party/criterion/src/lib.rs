//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion crate cannot be fetched. This shim implements the API subset
//! the workspace's `crates/bench/benches/*.rs` files use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — on
//! top of a simple calibrated timing loop, so `cargo bench` still produces
//! meaningful median timings and the bench sources stay byte-compatible
//! with upstream criterion.
//!
//! It is intentionally *not* a statistical replacement: no outlier
//! analysis, no HTML reports. Swap the workspace `criterion` entry back to
//! the registry version to regain those.

use std::time::{Duration, Instant};

/// Re-export-compatible opaque hint preventing the optimizer from deleting
/// benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded and echoed; no rate math beyond per-
/// element scaling in the printed summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal-scaled in upstream criterion; identical here.
    BytesDecimal(u64),
}

/// Identifier for a parameterized benchmark, mirroring criterion's API.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        Self {
            name: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_sample_count: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording a small set of median-friendly
    /// samples. Iteration counts are calibrated so each sample takes at
    /// least ~2 ms (or a single call for slow routines).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many calls fit in the per-sample budget?
        let budget = Duration::from_millis(2);
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let calls_per_sample = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.target_sample_count {
            let t = Instant::now();
            for _ in 0..calls_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / calls_per_sample);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timing samples (upstream: statistical sample
    /// count; here: number of median samples, min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(5);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_sample_count: self.sample_count,
        };
        f(&mut b);
        self.report(&id.to_string(), b.median());
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            target_sample_count: self.sample_count,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.median());
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  ({:.3} Melem/s)", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n))
                if median > Duration::ZERO =>
            {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  ({:.3} MiB/s)", per_sec / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{:<40} median {:>12}{rate}",
            format!("{}/{id}", self.name),
            fmt_duration(median)
        );
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_count: 11,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.default_sample_count;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_count,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string()).bench_function("run", f);
        self
    }

    /// Upstream-parity configuration hook (ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a benchmark group entry point, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.finish();
        assert!(ran > 0, "routine must actually run");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("enc", 512).to_string(), "enc/512");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
    }
}
