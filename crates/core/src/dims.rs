//! Dimension types for 2D and 3D structured grids.

use crate::error::{SfcError, SfcResult};

/// Dimensions of a 3D structured grid (`nx` is the fastest-varying axis in
/// array order, matching the paper's convention where `A[i,j,k]` has `i`
/// contiguous in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims3 {
    /// Extent along the fastest-varying (x) axis.
    pub nx: usize,
    /// Extent along the middle (y) axis.
    pub ny: usize,
    /// Extent along the slowest-varying (z) axis.
    pub nz: usize,
}

impl Dims3 {
    /// Create a new dimension triple, validating the extents.
    ///
    /// Empty grids have no meaningful layout, and extents whose product
    /// overflows `usize` cannot be backed by real storage — both are
    /// rejected with a typed error instead of a panic so callers driving
    /// untrusted metadata (file headers, CLI flags) can degrade gracefully.
    pub fn try_new(nx: usize, ny: usize, nz: usize) -> SfcResult<Self> {
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(SfcError::InvalidDims {
                what: "Dims3",
                reason: format!("grid extents must be non-zero, got {nx}x{ny}x{nz}"),
            });
        }
        nx.checked_mul(ny)
            .and_then(|p| p.checked_mul(nz))
            .ok_or(SfcError::SizeOverflow {
                what: "Dims3 element count nx*ny*nz",
            })?;
        Ok(Self { nx, ny, nz })
    }

    /// Create a new dimension triple.
    ///
    /// # Panics
    /// Panics if any extent is zero (empty grids have no meaningful
    /// layout) or the element count overflows `usize`. Use
    /// [`Dims3::try_new`] to validate untrusted extents without panicking.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        match Self::try_new(nx, ny, nz) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// A cube with equal extent on all axes.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Number of logical elements (`nx * ny * nz`).
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of bytes needed to store `len()` elements of `elem_size`
    /// bytes, failing on overflow instead of silently wrapping — the
    /// check I/O paths use before trusting header-supplied dims.
    pub fn checked_byte_len(&self, elem_size: usize) -> SfcResult<usize> {
        self.nx
            .checked_mul(self.ny)
            .and_then(|p| p.checked_mul(self.nz))
            .and_then(|p| p.checked_mul(elem_size))
            .ok_or(SfcError::SizeOverflow {
                what: "Dims3 byte length len() * elem_size",
            })
    }

    /// Structured grids are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the coordinate triple lies inside the grid.
    #[inline]
    pub fn contains(&self, i: usize, j: usize, k: usize) -> bool {
        i < self.nx && j < self.ny && k < self.nz
    }

    /// The largest extent over the three axes.
    pub fn max_extent(&self) -> usize {
        self.nx.max(self.ny).max(self.nz)
    }

    /// Iterate all coordinates in array order (`i` fastest).
    pub fn iter(self) -> impl Iterator<Item = (usize, usize, usize)> {
        let d = self;
        (0..d.nz).flat_map(move |k| {
            (0..d.ny).flat_map(move |j| (0..d.nx).map(move |i| (i, j, k)))
        })
    }
}

/// Dimensions of a 2D structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims2 {
    /// Extent along the fastest-varying (x) axis.
    pub nx: usize,
    /// Extent along the slower (y) axis.
    pub ny: usize,
}

impl Dims2 {
    /// Create a new dimension pair, validating the extents.
    pub fn try_new(nx: usize, ny: usize) -> SfcResult<Self> {
        if nx == 0 || ny == 0 {
            return Err(SfcError::InvalidDims {
                what: "Dims2",
                reason: format!("grid extents must be non-zero, got {nx}x{ny}"),
            });
        }
        nx.checked_mul(ny).ok_or(SfcError::SizeOverflow {
            what: "Dims2 element count nx*ny",
        })?;
        Ok(Self { nx, ny })
    }

    /// Create a new dimension pair.
    ///
    /// # Panics
    /// Panics if any extent is zero or the element count overflows. Use
    /// [`Dims2::try_new`] for untrusted extents.
    pub fn new(nx: usize, ny: usize) -> Self {
        match Self::try_new(nx, ny) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// A square with equal extents.
    pub fn square(n: usize) -> Self {
        Self::new(n, n)
    }

    /// Number of logical elements (`nx * ny`).
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Structured grids are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the coordinate pair lies inside the grid.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i < self.nx && j < self.ny
    }

    /// Iterate all coordinates in array order (`i` fastest).
    pub fn iter(self) -> impl Iterator<Item = (usize, usize)> {
        let d = self;
        (0..d.ny).flat_map(move |j| (0..d.nx).map(move |i| (i, j)))
    }
}

/// Round `n` up to the next power of two (identity for powers of two).
///
/// This is the padding rule the paper describes in §V: SFC indexing requires
/// the backing buffer to be an even power of two along each axis.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Number of bits needed to index `n` positions (`ceil(log2(n))`, 0 for n<=1).
#[inline]
pub fn bits_for(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// The three grid axes. Used to select pencil orientation and loop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Fastest-varying axis in array order.
    X,
    /// Middle axis.
    Y,
    /// Slowest-varying axis in array order.
    Z,
}

impl Axis {
    /// All three axes in `X`, `Y`, `Z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Extent of this axis within `dims`.
    pub fn extent(&self, dims: Dims3) -> usize {
        match self {
            Axis::X => dims.nx,
            Axis::Y => dims.ny,
            Axis::Z => dims.nz,
        }
    }

    /// Short lowercase name ("x", "y", "z").
    pub fn name(&self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims3_len_and_contains() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(d.len(), 120);
        assert!(d.contains(3, 4, 5));
        assert!(!d.contains(4, 0, 0));
        assert!(!d.contains(0, 5, 0));
        assert!(!d.contains(0, 0, 6));
    }

    #[test]
    fn dims3_cube() {
        assert_eq!(Dims3::cube(8), Dims3::new(8, 8, 8));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dims3_zero_extent_panics() {
        Dims3::new(4, 0, 4);
    }

    #[test]
    fn dims3_try_new_rejects_zero_and_overflow() {
        assert!(matches!(
            Dims3::try_new(0, 4, 4),
            Err(crate::SfcError::InvalidDims { .. })
        ));
        assert!(matches!(
            Dims3::try_new(usize::MAX, 2, 2),
            Err(crate::SfcError::SizeOverflow { .. })
        ));
        assert_eq!(Dims3::try_new(4, 5, 6).unwrap(), Dims3::new(4, 5, 6));
    }

    #[test]
    fn dims3_checked_byte_len() {
        assert_eq!(Dims3::new(4, 5, 6).checked_byte_len(4).unwrap(), 480);
        // 2^62 elements fit in usize, but 2^62 * 4 bytes does not.
        assert!(matches!(
            Dims3::new(1 << 40, 1 << 20, 4).checked_byte_len(4),
            Err(crate::SfcError::SizeOverflow { .. })
        ));
    }

    #[test]
    fn dims2_try_new_rejects_zero() {
        assert!(Dims2::try_new(0, 1).is_err());
        assert!(Dims2::try_new(usize::MAX, 4).is_err());
        assert_eq!(Dims2::try_new(3, 2).unwrap(), Dims2::new(3, 2));
    }

    #[test]
    fn dims3_iter_is_array_order() {
        let d = Dims3::new(2, 2, 2);
        let v: Vec<_> = d.iter().collect();
        assert_eq!(
            v,
            vec![
                (0, 0, 0),
                (1, 0, 0),
                (0, 1, 0),
                (1, 1, 0),
                (0, 0, 1),
                (1, 0, 1),
                (0, 1, 1),
                (1, 1, 1)
            ]
        );
    }

    #[test]
    fn dims2_basics() {
        let d = Dims2::new(3, 2);
        assert_eq!(d.len(), 6);
        assert!(d.contains(2, 1));
        assert!(!d.contains(3, 0));
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(511), 512);
        assert_eq!(next_pow2(512), 512);
        assert_eq!(next_pow2(513), 1024);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(512), 9);
    }

    #[test]
    fn axis_extents() {
        let d = Dims3::new(2, 3, 4);
        assert_eq!(Axis::X.extent(d), 2);
        assert_eq!(Axis::Y.extent(d), 3);
        assert_eq!(Axis::Z.extent(d), 4);
        assert_eq!(Axis::Z.name(), "z");
    }
}
