//! Morton (Z-order) curve encoding and decoding.
//!
//! Two interchangeable implementations are provided for both 2D and 3D:
//!
//! * **magic-bits** — branch-free parallel bit dilation/contraction using
//!   multiply-free shift/mask sequences;
//! * **byte-LUT** — 256-entry lookup tables processing one byte of input per
//!   step (the style popularized by `libmorton`).
//!
//! Both agree bit-for-bit; the LUT form exists so the `sfc-bench` crate can
//! quantify the cost trade-off (see DESIGN.md §5). The layout machinery in
//! [`crate::layouts::zorder`] uses *per-axis full tables* instead (the
//! paper's scheme, after Pascucci & Frank 2001), which amortize the dilation
//! entirely into grid-sized tables built once at initialization.
//!
//! Coordinate capacity: 2D supports 32 bits per axis, 3D supports 21 bits
//! per axis (63 bits total), far beyond any in-memory grid.

/// Spread the low 32 bits of `x` so bit `i` moves to bit `2i`.
#[inline]
pub fn part1by1(x: u32) -> u64 {
    let mut x = x as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`part1by1`]: gather every second bit back into a dense word.
#[inline]
pub fn compact1by1(x: u64) -> u32 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Spread the low 21 bits of `x` so bit `i` moves to bit `3i`.
#[inline]
pub fn part1by2(x: u32) -> u64 {
    let mut x = (x as u64) & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: gather every third bit back into a dense word.
#[inline]
pub fn compact1by2(x: u64) -> u32 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x0000_0000_001F_FFFF;
    x as u32
}

/// Encode a 2D coordinate into its Morton index (x occupies even bits).
#[inline]
pub fn morton2_encode(x: u32, y: u32) -> u64 {
    part1by1(x) | (part1by1(y) << 1)
}

/// Decode a 2D Morton index back into `(x, y)`.
#[inline]
pub fn morton2_decode(m: u64) -> (u32, u32) {
    (compact1by1(m), compact1by1(m >> 1))
}

/// Encode a 3D coordinate into its Morton index (x occupies bits 0, 3, 6, …).
///
/// # Panics
/// Debug-asserts that each coordinate fits in 21 bits.
#[inline]
pub fn morton3_encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Decode a 3D Morton index back into `(x, y, z)`.
#[inline]
pub fn morton3_decode(m: u64) -> (u32, u32, u32) {
    (compact1by2(m), compact1by2(m >> 1), compact1by2(m >> 2))
}

/// 256-entry table mapping a byte to its 1-by-1 dilation (16 bits used).
const LUT_DILATE_2: [u16; 256] = {
    let mut t = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut v = 0u16;
        let mut b = 0;
        while b < 8 {
            v |= (((i >> b) & 1) as u16) << (2 * b);
            b += 1;
        }
        t[i] = v;
        i += 1;
    }
    t
};

/// 256-entry table mapping a byte to its 1-by-2 dilation (22 bits used).
const LUT_DILATE_3: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut v = 0u32;
        let mut b = 0;
        while b < 8 {
            v |= (((i >> b) & 1) as u32) << (3 * b);
            b += 1;
        }
        t[i] = v;
        i += 1;
    }
    t
};

/// Byte-LUT variant of [`morton2_encode`]; identical results.
#[inline]
pub fn morton2_encode_lut(x: u32, y: u32) -> u64 {
    let mut m = 0u64;
    let mut shift = 0;
    for byte in 0..4 {
        let xb = LUT_DILATE_2[((x >> (8 * byte)) & 0xFF) as usize] as u64;
        let yb = LUT_DILATE_2[((y >> (8 * byte)) & 0xFF) as usize] as u64;
        m |= (xb | (yb << 1)) << shift;
        shift += 16;
    }
    m
}

/// Byte-LUT variant of [`morton3_encode`]; identical results.
#[inline]
pub fn morton3_encode_lut(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    let mut m = 0u64;
    let mut shift = 0;
    for byte in 0..3 {
        let xb = LUT_DILATE_3[((x >> (8 * byte)) & 0xFF) as usize] as u64;
        let yb = LUT_DILATE_3[((y >> (8 * byte)) & 0xFF) as usize] as u64;
        let zb = LUT_DILATE_3[((z >> (8 * byte)) & 0xFF) as usize] as u64;
        m |= (xb | (yb << 1) | (zb << 2)) << shift;
        shift += 24;
    }
    m
}

/// Iterator over all 3D Morton indices of a `2^bits` cube in curve order,
/// yielding `(morton_index, (x, y, z))`.
pub fn morton3_curve(bits: u32) -> impl Iterator<Item = (u64, (u32, u32, u32))> {
    let n: u64 = 1u64 << (3 * bits);
    (0..n).map(|m| (m, morton3_decode(m)))
}

/// Bit mask of the x coordinate's dilated bits in a 3D Morton index.
pub const MORTON3_X_MASK: u64 = 0x1249_2492_4924_9249;
/// Bit mask of the y coordinate's dilated bits in a 3D Morton index.
pub const MORTON3_Y_MASK: u64 = MORTON3_X_MASK << 1;
/// Bit mask of the z coordinate's dilated bits in a 3D Morton index.
pub const MORTON3_Z_MASK: u64 = MORTON3_X_MASK << 2;

/// Add `1` to one dilated coordinate of a Morton index *without*
/// decode/encode — the classic dilated-integer increment: force the other
/// axes' bit positions to 1 so the carry ripples only through this axis's
/// bits, then restore them.
///
/// This lets curve-order traversals and ray steppers move to an axis
/// neighbor in a few ALU ops. Overflow past the top coordinate bit wraps
/// (callers bound coordinates, as with the plain encoders).
#[inline]
fn dilated_inc(m: u64, mask: u64) -> u64 {
    let incremented = (m | !mask).wrapping_add(1) & mask;
    incremented | (m & !mask)
}

/// Subtract `1` from one dilated coordinate (inverse of [`dilated_inc`]).
#[inline]
fn dilated_dec(m: u64, mask: u64) -> u64 {
    let decremented = (m & mask).wrapping_sub(1) & mask;
    decremented | (m & !mask)
}

/// Morton index of the `+x` neighbor.
#[inline]
pub fn morton3_inc_x(m: u64) -> u64 {
    dilated_inc(m, MORTON3_X_MASK)
}

/// Morton index of the `+y` neighbor.
#[inline]
pub fn morton3_inc_y(m: u64) -> u64 {
    dilated_inc(m, MORTON3_Y_MASK)
}

/// Morton index of the `+z` neighbor.
#[inline]
pub fn morton3_inc_z(m: u64) -> u64 {
    dilated_inc(m, MORTON3_Z_MASK)
}

/// Morton index of the `-x` neighbor.
#[inline]
pub fn morton3_dec_x(m: u64) -> u64 {
    dilated_dec(m, MORTON3_X_MASK)
}

/// Morton index of the `-y` neighbor.
#[inline]
pub fn morton3_dec_y(m: u64) -> u64 {
    dilated_dec(m, MORTON3_Y_MASK)
}

/// Morton index of the `-z` neighbor.
#[inline]
pub fn morton3_dec_z(m: u64) -> u64 {
    dilated_dec(m, MORTON3_Z_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_compact_roundtrip_1by1() {
        for x in [0u32, 1, 2, 3, 0xFF, 0xFFFF, 0xFFFF_FFFF, 0x1234_5678] {
            assert_eq!(compact1by1(part1by1(x)), x);
        }
    }

    #[test]
    fn part_compact_roundtrip_1by2() {
        for x in [0u32, 1, 2, 3, 0xFF, 0xFFFF, 0x1F_FFFF, 0x12_3456] {
            assert_eq!(compact1by2(part1by2(x)), x);
        }
    }

    #[test]
    fn morton2_known_values() {
        // Classic Z pattern over a 2x2 block: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
        assert_eq!(morton2_encode(0, 0), 0);
        assert_eq!(morton2_encode(1, 0), 1);
        assert_eq!(morton2_encode(0, 1), 2);
        assert_eq!(morton2_encode(1, 1), 3);
        assert_eq!(morton2_encode(2, 0), 4);
        assert_eq!(morton2_encode(7, 7), 63);
    }

    #[test]
    fn morton3_known_values() {
        assert_eq!(morton3_encode(0, 0, 0), 0);
        assert_eq!(morton3_encode(1, 0, 0), 1);
        assert_eq!(morton3_encode(0, 1, 0), 2);
        assert_eq!(morton3_encode(1, 1, 0), 3);
        assert_eq!(morton3_encode(0, 0, 1), 4);
        assert_eq!(morton3_encode(1, 1, 1), 7);
        assert_eq!(morton3_encode(2, 0, 0), 8);
        assert_eq!(morton3_encode(7, 7, 7), 511);
    }

    #[test]
    fn morton2_roundtrip_exhaustive_small() {
        for y in 0..64u32 {
            for x in 0..64u32 {
                assert_eq!(morton2_decode(morton2_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn morton3_roundtrip_exhaustive_small() {
        for z in 0..16u32 {
            for y in 0..16u32 {
                for x in 0..16u32 {
                    assert_eq!(morton3_decode(morton3_encode(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn morton3_is_bijection_on_cube() {
        let mut seen = vec![false; 512];
        for z in 0..8u32 {
            for y in 0..8u32 {
                for x in 0..8u32 {
                    let m = morton3_encode(x, y, z) as usize;
                    assert!(m < 512, "index escaped the cube");
                    assert!(!seen[m], "collision at {m}");
                    seen[m] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn lut_matches_magic_bits_2d() {
        for &(x, y) in &[
            (0u32, 0u32),
            (1, 2),
            (123, 456),
            (0xFFFF, 0xFFFF),
            (0xFFFF_FFFF, 0x1234_5678),
        ] {
            assert_eq!(morton2_encode_lut(x, y), morton2_encode(x, y));
        }
    }

    #[test]
    fn lut_matches_magic_bits_3d() {
        for &(x, y, z) in &[
            (0u32, 0u32, 0u32),
            (1, 2, 3),
            (123, 456, 789),
            (0x1F_FFFF, 0x1F_FFFF, 0x1F_FFFF),
            (511, 512, 513),
        ] {
            assert_eq!(morton3_encode_lut(x, y, z), morton3_encode(x, y, z));
        }
    }

    #[test]
    fn morton3_curve_order_is_monotone_and_complete() {
        let pts: Vec<_> = morton3_curve(2).collect();
        assert_eq!(pts.len(), 64);
        for (idx, (m, (x, y, z))) in pts.iter().enumerate() {
            assert_eq!(*m, idx as u64);
            assert_eq!(morton3_encode(*x, *y, *z), *m);
        }
    }

    #[test]
    fn incremental_neighbors_match_reencoding() {
        for z in 0..15u32 {
            for y in 0..15u32 {
                for x in 0..15u32 {
                    let m = morton3_encode(x, y, z);
                    assert_eq!(morton3_inc_x(m), morton3_encode(x + 1, y, z));
                    assert_eq!(morton3_inc_y(m), morton3_encode(x, y + 1, z));
                    assert_eq!(morton3_inc_z(m), morton3_encode(x, y, z + 1));
                    if x > 0 {
                        assert_eq!(morton3_dec_x(m), morton3_encode(x - 1, y, z));
                    }
                    if y > 0 {
                        assert_eq!(morton3_dec_y(m), morton3_encode(x, y - 1, z));
                    }
                    if z > 0 {
                        assert_eq!(morton3_dec_z(m), morton3_encode(x, y, z - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn inc_then_dec_is_identity() {
        let m = morton3_encode(123, 456, 789);
        assert_eq!(morton3_dec_x(morton3_inc_x(m)), m);
        assert_eq!(morton3_dec_y(morton3_inc_y(m)), m);
        assert_eq!(morton3_dec_z(morton3_inc_z(m)), m);
    }

    #[test]
    fn masks_partition_the_index_bits() {
        assert_eq!(
            MORTON3_X_MASK | MORTON3_Y_MASK | MORTON3_Z_MASK,
            u64::MAX >> 1,
            "three interleaved masks cover 63 bits"
        );
        assert_eq!(MORTON3_X_MASK & MORTON3_Y_MASK, 0);
        assert_eq!(MORTON3_Y_MASK & MORTON3_Z_MASK, 0);
    }

    #[test]
    fn morton3_locality_adjacent_x() {
        // Adjacent-in-x coordinates inside an aligned 2-block differ by 1.
        assert_eq!(
            morton3_encode(4, 2, 6) + 1,
            morton3_encode(5, 2, 6),
            "x neighbor within an even-aligned pair is contiguous"
        );
    }
}
