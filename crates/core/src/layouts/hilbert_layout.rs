//! Hilbert-order layouts.
//!
//! Unlike Z-order, the Hilbert index of a coordinate cannot be decomposed
//! into independent per-axis contributions (the curve's orientation at each
//! recursion level depends on *all* coordinates), so there is no O(1)
//! table-lookup scheme: every *random* access pays an O(bits) transform.
//! The paper's background (Reissmann et al. 2014) found exactly this cost
//! to outweigh Hilbert's slightly better locality; `sfc-bench`'s
//! `curve_ablation` measures the same trade-off with this implementation.
//! *Sequential* access no longer pays it: [`HilbertCursor3`] steps to an
//! axis neighbor in amortized-O(1) via the recursive-descent automaton in
//! [`crate::hilbert::HilbertTables3`].
//!
//! Hilbert order requires a power-of-two *cube*, so rectangular domains pad
//! every axis to the largest axis's power of two — a much bigger overhead
//! than Z-order's per-axis padding (documented limitation).

use crate::cursor::HilbertCursor3;
use crate::dims::{bits_for, Dims2, Dims3};
use crate::hilbert::{hilbert2_decode, hilbert2_encode, hilbert3_decode, hilbert3_encode};
use crate::layout::{Layout2, Layout3, LayoutKind};

/// Hilbert-order 3D layout (computed per access, no tables).
#[derive(Debug, Clone)]
pub struct HilbertOrder3 {
    dims: Dims3,
    bits: u32,
}

impl HilbertOrder3 {
    /// Curve order (bits per axis).
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl Layout3 for HilbertOrder3 {
    const KIND: LayoutKind = LayoutKind::Hilbert;

    type Cursor = HilbertCursor3;

    fn new(dims: Dims3) -> Self {
        let bits = bits_for(dims.max_extent());
        Self { dims, bits }
    }

    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        1usize << (3 * self.bits)
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.dims.contains(i, j, k));
        hilbert3_encode(i as u32, j as u32, k as u32, self.bits) as usize
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize, usize) {
        let (i, j, k) = hilbert3_decode(index as u64, self.bits);
        (i as usize, j as usize, k as usize)
    }

    #[inline]
    fn cursor(&self, i: usize, j: usize, k: usize) -> HilbertCursor3 {
        HilbertCursor3::new(self.bits, (i, j, k), self.dims)
    }
}

/// Hilbert-order 2D layout (computed per access, no tables).
#[derive(Debug, Clone)]
pub struct HilbertOrder2 {
    dims: Dims2,
    bits: u32,
}

impl Layout2 for HilbertOrder2 {
    const KIND: LayoutKind = LayoutKind::Hilbert;

    fn new(dims: Dims2) -> Self {
        let bits = bits_for(dims.nx.max(dims.ny));
        Self { dims, bits }
    }

    #[inline]
    fn dims(&self) -> Dims2 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        1usize << (2 * self.bits)
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.dims.contains(i, j));
        hilbert2_encode(i as u32, j as u32, self.bits) as usize
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize) {
        let (i, j) = hilbert2_decode(index as u64, self.bits);
        (i as usize, j as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_roundtrip() {
        let l = HilbertOrder3::new(Dims3::cube(8));
        assert_eq!(l.storage_len(), 512);
        for (i, j, k) in l.dims().iter() {
            let m = l.index(i, j, k);
            assert!(m < 512);
            assert_eq!(l.coords(m), (i, j, k));
        }
    }

    #[test]
    fn rectangular_pads_to_cube() {
        let l = HilbertOrder3::new(Dims3::new(8, 2, 2));
        assert_eq!(l.storage_len(), 512, "padded to 8^3");
        assert!(l.padding_overhead() > 0.9);
    }

    #[test]
    fn indices_unique() {
        let l = HilbertOrder3::new(Dims3::new(5, 6, 7));
        let mut seen = std::collections::HashSet::new();
        for (i, j, k) in l.dims().iter() {
            assert!(seen.insert(l.index(i, j, k)));
        }
    }

    #[test]
    fn two_d_roundtrip() {
        let l = HilbertOrder2::new(Dims2::new(16, 9));
        for (i, j) in l.dims().iter() {
            assert_eq!(l.coords(l.index(i, j)), (i, j));
        }
        assert_eq!(l.storage_len(), 256);
    }
}
