//! Blocked/tiled layout — the third comparator from Pascucci & Frank 2001.
//!
//! The domain is cut into fixed-size bricks; bricks are stored contiguously
//! in row-major brick order and elements inside a brick are row-major too.
//! Like the other layouts it is accessed through per-axis tables: each axis
//! contributes `(c % t) * intra_stride + (c / t) * brick_stride`
//! additively, so `index(i,j,k)` is three lookups and two adds.
//!
//! Dimensions are padded up to whole bricks.

use std::sync::Arc;

use crate::cursor::TiledCursor3;
use crate::dims::{Dims2, Dims3};
use crate::layout::{Layout2, Layout3, LayoutKind};

/// Default brick edge for 3D tiles: 8³ f32 elements = 2 KiB, a cache-friendly
/// compromise used when constructing via `Layout3::new`.
pub const DEFAULT_BRICK_3D: (usize, usize, usize) = (8, 8, 8);

/// Default tile for 2D: 32×32 f32 = 4 KiB.
pub const DEFAULT_TILE_2D: (usize, usize) = (32, 32);

fn div_round_up(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Tiled/blocked 3D layout with per-axis contribution tables.
#[derive(Debug, Clone)]
pub struct Tiled3 {
    dims: Dims3,
    brick: (usize, usize, usize),
    xtab: Arc<[usize]>,
    ytab: Arc<[usize]>,
    ztab: Arc<[usize]>,
    storage_len: usize,
    /// Bricks per axis (for inverse mapping).
    nbricks: (usize, usize, usize),
}

impl Tiled3 {
    /// Construct with an explicit brick shape.
    ///
    /// # Panics
    /// Panics if any brick extent is zero.
    pub fn with_brick(dims: Dims3, brick: (usize, usize, usize)) -> Self {
        let (tx, ty, tz) = brick;
        assert!(tx > 0 && ty > 0 && tz > 0, "brick extents must be non-zero");
        let nbx = div_round_up(dims.nx, tx);
        let nby = div_round_up(dims.ny, ty);
        let nbz = div_round_up(dims.nz, tz);
        let brick_vol = tx * ty * tz;
        // Per-axis additive contributions: intra-brick offset is row-major
        // within the brick; bricks are row-major over the brick grid.
        let xtab: Arc<[usize]> = (0..dims.nx)
            .map(|i| (i % tx) + (i / tx) * brick_vol)
            .collect();
        let ytab: Arc<[usize]> = (0..dims.ny)
            .map(|j| (j % ty) * tx + (j / ty) * nbx * brick_vol)
            .collect();
        let ztab: Arc<[usize]> = (0..dims.nz)
            .map(|k| (k % tz) * tx * ty + (k / tz) * nbx * nby * brick_vol)
            .collect();
        Self {
            dims,
            brick,
            xtab,
            ytab,
            ztab,
            storage_len: nbx * nby * nbz * brick_vol,
            nbricks: (nbx, nby, nbz),
        }
    }

    /// The brick shape in elements.
    pub fn brick(&self) -> (usize, usize, usize) {
        self.brick
    }
}

impl Layout3 for Tiled3 {
    const KIND: LayoutKind = LayoutKind::Tiled;

    type Cursor = TiledCursor3;

    fn new(dims: Dims3) -> Self {
        Self::with_brick(dims, DEFAULT_BRICK_3D)
    }

    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.storage_len
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.dims.contains(i, j, k));
        self.xtab[i] + self.ytab[j] + self.ztab[k]
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize, usize) {
        debug_assert!(index < self.storage_len);
        let (tx, ty, tz) = self.brick;
        let (nbx, nby, _) = self.nbricks;
        let brick_vol = tx * ty * tz;
        let b = index / brick_vol;
        let r = index % brick_vol;
        let (bi, bj, bk) = (b % nbx, (b / nbx) % nby, b / (nbx * nby));
        let (ri, rj, rk) = (r % tx, (r / tx) % ty, r / (tx * ty));
        (bi * tx + ri, bj * ty + rj, bk * tz + rk)
    }

    #[inline]
    fn cursor(&self, i: usize, j: usize, k: usize) -> TiledCursor3 {
        let (tx, ty, tz) = self.brick;
        let (nbx, nby, _) = self.nbricks;
        let brick_vol = tx * ty * tz;
        // Forward brick-crossing deltas, derived from the per-axis table
        // recurrences (e.g. along x: the last intra-brick slot `tx-1` jumps
        // to slot 0 of the next brick, `brick_vol` further along).
        let cross = (
            brick_vol - (tx - 1),
            nbx * brick_vol - (ty - 1) * tx,
            nbx * nby * brick_vol - (tz - 1) * tx * ty,
        );
        TiledCursor3::new(
            self.index(i, j, k),
            (i % tx, j % ty, k % tz),
            self.brick,
            cross,
            (i, j, k),
            self.dims,
        )
    }
}

/// Tiled 2D layout with per-axis contribution tables.
#[derive(Debug, Clone)]
pub struct Tiled2 {
    dims: Dims2,
    tile: (usize, usize),
    xtab: Arc<[usize]>,
    ytab: Arc<[usize]>,
    storage_len: usize,
    ntiles_x: usize,
}

impl Tiled2 {
    /// Construct with an explicit tile shape.
    ///
    /// # Panics
    /// Panics if any tile extent is zero.
    pub fn with_tile(dims: Dims2, tile: (usize, usize)) -> Self {
        let (tx, ty) = tile;
        assert!(tx > 0 && ty > 0, "tile extents must be non-zero");
        let ntx = div_round_up(dims.nx, tx);
        let nty = div_round_up(dims.ny, ty);
        let tile_area = tx * ty;
        let xtab: Arc<[usize]> = (0..dims.nx)
            .map(|i| (i % tx) + (i / tx) * tile_area)
            .collect();
        let ytab: Arc<[usize]> = (0..dims.ny)
            .map(|j| (j % ty) * tx + (j / ty) * ntx * tile_area)
            .collect();
        Self {
            dims,
            tile,
            xtab,
            ytab,
            storage_len: ntx * nty * tile_area,
            ntiles_x: ntx,
        }
    }

    /// The tile shape in elements.
    pub fn tile(&self) -> (usize, usize) {
        self.tile
    }
}

impl Layout2 for Tiled2 {
    const KIND: LayoutKind = LayoutKind::Tiled;

    fn new(dims: Dims2) -> Self {
        Self::with_tile(dims, DEFAULT_TILE_2D)
    }

    #[inline]
    fn dims(&self) -> Dims2 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.storage_len
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.dims.contains(i, j));
        self.xtab[i] + self.ytab[j]
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.storage_len);
        let (tx, ty) = self.tile;
        let tile_area = tx * ty;
        let t = index / tile_area;
        let r = index % tile_area;
        let (ti, tj) = (t % self.ntiles_x, t / self.ntiles_x);
        (ti * tx + r % tx, tj * ty + r / tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_brick_fit_has_no_padding() {
        let l = Tiled3::with_brick(Dims3::new(16, 16, 16), (4, 4, 4));
        assert_eq!(l.storage_len(), 16 * 16 * 16);
        assert_eq!(l.padding_overhead(), 0.0);
    }

    #[test]
    fn intra_brick_is_row_major() {
        let l = Tiled3::with_brick(Dims3::new(8, 8, 8), (4, 4, 4));
        let base = l.index(0, 0, 0);
        assert_eq!(base, 0);
        assert_eq!(l.index(1, 0, 0), 1);
        assert_eq!(l.index(0, 1, 0), 4);
        assert_eq!(l.index(0, 0, 1), 16);
        // First element of the next brick along x starts after a full brick.
        assert_eq!(l.index(4, 0, 0), 64);
    }

    #[test]
    fn coords_inverts_index() {
        let l = Tiled3::with_brick(Dims3::new(10, 6, 7), (4, 4, 4));
        for (i, j, k) in l.dims().iter() {
            assert_eq!(l.coords(l.index(i, j, k)), (i, j, k), "at ({i},{j},{k})");
        }
    }

    #[test]
    fn indices_unique_and_in_range() {
        let l = Tiled3::with_brick(Dims3::new(9, 9, 9), (4, 4, 4));
        let mut seen = std::collections::HashSet::new();
        for (i, j, k) in l.dims().iter() {
            let m = l.index(i, j, k);
            assert!(m < l.storage_len());
            assert!(seen.insert(m));
        }
    }

    #[test]
    fn padding_for_partial_bricks() {
        let l = Tiled3::with_brick(Dims3::new(9, 4, 4), (4, 4, 4));
        // 3 bricks along x, 1 along y and z => 3*64 = 192 slots for 144 cells.
        assert_eq!(l.storage_len(), 192);
    }

    #[test]
    fn two_d_tiled_roundtrip() {
        let l = Tiled2::with_tile(Dims2::new(33, 17), (8, 8));
        let mut seen = std::collections::HashSet::new();
        for (i, j) in l.dims().iter() {
            let m = l.index(i, j);
            assert!(m < l.storage_len());
            assert!(seen.insert(m));
            assert_eq!(l.coords(m), (i, j));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_brick_panics() {
        Tiled3::with_brick(Dims3::cube(8), (0, 4, 4));
    }
}
