//! Concrete layout implementations.

pub mod array_order;
pub mod hilbert_layout;
pub mod tiled;
pub mod zorder;

pub use array_order::{ArrayOrder2, ArrayOrder3};
pub use hilbert_layout::{HilbertOrder2, HilbertOrder3};
pub use tiled::{Tiled2, Tiled3, DEFAULT_BRICK_3D, DEFAULT_TILE_2D};
pub use zorder::{ZOrder2, ZOrder3};
