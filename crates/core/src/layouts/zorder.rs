//! Z-order (Morton) layout with per-axis lookup tables.
//!
//! This is the paper's core mechanism (§III-C, after Pascucci & Frank 2001):
//! during initialization we precompute one table per axis containing the
//! bit-dilated contribution of every coordinate value; at access time
//! `index(i,j,k)` is three table lookups and two ORs.
//!
//! Rectangular domains use the round-robin interleave of
//! [`crate::pattern::InterleavePattern3`], so each axis is padded to its own
//! power of two (not the cube of the largest), keeping the §V padding
//! overhead as small as the scheme allows.

use std::sync::Arc;

use crate::cursor::ZCursor3;
use crate::dims::{Dims2, Dims3};
use crate::layout::{Layout2, Layout3, LayoutKind};
use crate::pattern::InterleavePattern3;

/// Z-order 3D layout backed by three per-axis dilation tables.
#[derive(Debug, Clone)]
pub struct ZOrder3 {
    dims: Dims3,
    xtab: Arc<[u64]>,
    ytab: Arc<[u64]>,
    ztab: Arc<[u64]>,
    pattern: Arc<InterleavePattern3>,
    storage_len: usize,
}

impl ZOrder3 {
    /// The interleave pattern driving this layout (exposed for tests and
    /// for building derived tables).
    pub fn pattern(&self) -> &InterleavePattern3 {
        &self.pattern
    }
}

impl Layout3 for ZOrder3 {
    const KIND: LayoutKind = LayoutKind::ZOrder;

    type Cursor = ZCursor3;

    fn new(dims: Dims3) -> Self {
        let pattern = InterleavePattern3::new(dims);
        let xtab: Arc<[u64]> = pattern.build_table(0).into();
        let ytab: Arc<[u64]> = pattern.build_table(1).into();
        let ztab: Arc<[u64]> = pattern.build_table(2).into();
        let storage_len = pattern.storage_len();
        Self {
            dims,
            xtab,
            ytab,
            ztab,
            pattern: Arc::new(pattern),
            storage_len,
        }
    }

    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.storage_len
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.dims.contains(i, j, k));
        (self.xtab[i] | self.ytab[j] | self.ztab[k]) as usize
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize, usize) {
        self.pattern.decode(index as u64)
    }

    #[inline]
    fn cursor(&self, i: usize, j: usize, k: usize) -> ZCursor3 {
        debug_assert!(self.dims.contains(i, j, k));
        ZCursor3::new(
            self.xtab[i] | self.ytab[j] | self.ztab[k],
            self.pattern.axis_mask(0),
            self.pattern.axis_mask(1),
            self.pattern.axis_mask(2),
            (i, j, k),
            self.dims,
        )
    }
}

/// Z-order 2D layout backed by two per-axis dilation tables.
///
/// Implemented by reusing the 3D interleave machinery with a degenerate
/// z axis (which contributes zero bits).
#[derive(Debug, Clone)]
pub struct ZOrder2 {
    dims: Dims2,
    xtab: Arc<[u64]>,
    ytab: Arc<[u64]>,
    pattern: Arc<InterleavePattern3>,
    storage_len: usize,
}

impl Layout2 for ZOrder2 {
    const KIND: LayoutKind = LayoutKind::ZOrder;

    fn new(dims: Dims2) -> Self {
        let pattern = InterleavePattern3::new(Dims3::new(dims.nx, dims.ny, 1));
        let xtab: Arc<[u64]> = pattern.build_table(0).into();
        let ytab: Arc<[u64]> = pattern.build_table(1).into();
        let storage_len = pattern.storage_len();
        Self {
            dims,
            xtab,
            ytab,
            pattern: Arc::new(pattern),
            storage_len,
        }
    }

    #[inline]
    fn dims(&self) -> Dims2 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.storage_len
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.dims.contains(i, j));
        (self.xtab[i] | self.ytab[j]) as usize
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize) {
        let (i, j, _) = self.pattern.decode(index as u64);
        (i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::{morton2_encode, morton3_encode};

    #[test]
    fn cube_matches_classic_morton() {
        let l = ZOrder3::new(Dims3::cube(8));
        for (i, j, k) in l.dims().iter() {
            assert_eq!(
                l.index(i, j, k) as u64,
                morton3_encode(i as u32, j as u32, k as u32)
            );
        }
    }

    #[test]
    fn square_matches_classic_morton_2d() {
        let l = ZOrder2::new(Dims2::square(16));
        for (i, j) in l.dims().iter() {
            assert_eq!(l.index(i, j) as u64, morton2_encode(i as u32, j as u32));
        }
    }

    #[test]
    fn coords_inverts_index() {
        let l = ZOrder3::new(Dims3::new(8, 4, 16));
        for (i, j, k) in l.dims().iter() {
            assert_eq!(l.coords(l.index(i, j, k)), (i, j, k));
        }
    }

    #[test]
    fn non_pow2_pads_per_axis() {
        let l = ZOrder3::new(Dims3::new(5, 3, 2));
        assert_eq!(l.storage_len(), 8 * 4 * 2);
        let logical = 5 * 3 * 2;
        assert!(l.padding_overhead() > 0.0);
        assert!((l.padding_overhead() - (64.0 - logical as f64) / 64.0).abs() < 1e-12);
    }

    #[test]
    fn indices_are_unique_and_in_range() {
        let l = ZOrder3::new(Dims3::new(6, 10, 3));
        let mut seen = std::collections::HashSet::new();
        for (i, j, k) in l.dims().iter() {
            let m = l.index(i, j, k);
            assert!(m < l.storage_len());
            assert!(seen.insert(m), "collision at ({i},{j},{k})");
        }
    }

    #[test]
    fn locality_unit_steps_stay_close() {
        // Within an aligned 2^3 block, all unit steps from an even-aligned
        // corner land within 8 slots — the essence of Z-order locality.
        let l = ZOrder3::new(Dims3::cube(64));
        let base = l.index(16, 32, 8);
        assert_eq!(l.index(17, 32, 8), base + 1);
        assert_eq!(l.index(16, 33, 8), base + 2);
        assert_eq!(l.index(16, 32, 9), base + 4);
    }

    #[test]
    fn two_d_nonsquare() {
        let l = ZOrder2::new(Dims2::new(32, 4));
        let mut seen = std::collections::HashSet::new();
        for (i, j) in l.dims().iter() {
            let m = l.index(i, j);
            assert!(m < l.storage_len());
            assert!(seen.insert(m));
            assert_eq!(l.coords(m), (i, j));
        }
        assert_eq!(l.storage_len(), 128);
    }
}
