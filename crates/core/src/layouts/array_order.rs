//! Traditional array-order (row-major) layout with offset tables.
//!
//! Following the paper's §III-C, array order is implemented with the same
//! table-lookup machinery as Z-order to put index-computation cost on equal
//! footing: a `yoffset` table (`yoffset[j] = j*nx`) and a `zoffset` table
//! (`zoffset[k] = k*nx*ny`), so `index(i,j,k) = i + yoffset[j] + zoffset[k]`
//! is two lookups and two adds.

use std::sync::Arc;

use crate::cursor::ArrayCursor3;
use crate::dims::{Dims2, Dims3};
use crate::layout::{Layout2, Layout3, LayoutKind};

/// Row-major 3D layout (`i` fastest, then `j`, then `k`). Zero padding.
#[derive(Debug, Clone)]
pub struct ArrayOrder3 {
    dims: Dims3,
    yoffset: Arc<[usize]>,
    zoffset: Arc<[usize]>,
}

impl Layout3 for ArrayOrder3 {
    const KIND: LayoutKind = LayoutKind::ArrayOrder;

    type Cursor = ArrayCursor3;

    fn new(dims: Dims3) -> Self {
        let yoffset: Arc<[usize]> = (0..dims.ny).map(|j| j * dims.nx).collect();
        let zoffset: Arc<[usize]> = (0..dims.nz).map(|k| k * dims.nx * dims.ny).collect();
        Self {
            dims,
            yoffset,
            zoffset,
        }
    }

    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.dims.len()
    }

    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(self.dims.contains(i, j, k));
        i + self.yoffset[j] + self.zoffset[k]
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize, usize) {
        debug_assert!(index < self.storage_len());
        let i = index % self.dims.nx;
        let j = (index / self.dims.nx) % self.dims.ny;
        let k = index / (self.dims.nx * self.dims.ny);
        (i, j, k)
    }

    #[inline]
    fn cursor(&self, i: usize, j: usize, k: usize) -> ArrayCursor3 {
        ArrayCursor3::new(
            self.index(i, j, k),
            self.dims.nx,
            self.dims.nx * self.dims.ny,
            (i, j, k),
            self.dims,
        )
    }
}

/// Row-major 2D layout (`i` fastest). Zero padding.
#[derive(Debug, Clone)]
pub struct ArrayOrder2 {
    dims: Dims2,
    yoffset: Arc<[usize]>,
}

impl Layout2 for ArrayOrder2 {
    const KIND: LayoutKind = LayoutKind::ArrayOrder;

    fn new(dims: Dims2) -> Self {
        let yoffset: Arc<[usize]> = (0..dims.ny).map(|j| j * dims.nx).collect();
        Self { dims, yoffset }
    }

    #[inline]
    fn dims(&self) -> Dims2 {
        self.dims
    }

    #[inline]
    fn storage_len(&self) -> usize {
        self.dims.len()
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.dims.contains(i, j));
        i + self.yoffset[j]
    }

    #[inline]
    fn coords(&self, index: usize) -> (usize, usize) {
        debug_assert!(index < self.storage_len());
        (index % self.dims.nx, index / self.dims.nx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_row_major() {
        let l = ArrayOrder3::new(Dims3::new(4, 3, 2));
        assert_eq!(l.index(0, 0, 0), 0);
        assert_eq!(l.index(1, 0, 0), 1);
        assert_eq!(l.index(0, 1, 0), 4);
        assert_eq!(l.index(0, 0, 1), 12);
        assert_eq!(l.index(3, 2, 1), 23);
        assert_eq!(l.storage_len(), 24);
        assert_eq!(l.padding_overhead(), 0.0);
    }

    #[test]
    fn coords_inverts_index() {
        let l = ArrayOrder3::new(Dims3::new(5, 7, 3));
        for (i, j, k) in l.dims().iter() {
            assert_eq!(l.coords(l.index(i, j, k)), (i, j, k));
        }
    }

    #[test]
    fn x_neighbors_are_adjacent_y_neighbors_are_nx_apart() {
        // The paper's motivating example: A[i,j] and A[i+1,j] adjacent;
        // A[i,j] and A[i,j+1] a full row apart.
        let l = ArrayOrder3::new(Dims3::new(1024, 1024, 1));
        assert_eq!(l.index(11, 5, 0) + 1, l.index(12, 5, 0));
        assert_eq!(l.index(11, 6, 0) - l.index(11, 5, 0), 1024);
    }

    #[test]
    fn two_d_layout() {
        let l = ArrayOrder2::new(Dims2::new(8, 4));
        assert_eq!(l.index(3, 2), 19);
        assert_eq!(l.coords(19), (3, 2));
        assert_eq!(l.storage_len(), 32);
    }
}
