//! Runtime-selected layouts: a grid whose layout is chosen by a
//! [`LayoutKind`] value instead of a type parameter.
//!
//! The statically-typed [`Grid3<T, L>`](crate::Grid3) is the fast path —
//! kernels monomorphize per layout with zero dispatch cost. CLI tools and
//! experiment drivers, however, often take the layout as a runtime flag;
//! [`DynGrid3`] wraps the four layouts behind one enum (enum dispatch, no
//! boxing) and implements [`Volume3`] so kernels accept it directly.

use crate::dims::Dims3;
use crate::grid::Grid3;
use crate::layout::LayoutKind;
use crate::layouts::{ArrayOrder3, HilbertOrder3, Tiled3, ZOrder3};
use crate::volume::Volume3;

/// An `f32` grid whose layout family is selected at runtime.
#[derive(Debug, Clone)]
pub enum DynGrid3 {
    /// Row-major array order.
    ArrayOrder(Grid3<f32, ArrayOrder3>),
    /// Z-order / Morton.
    ZOrder(Grid3<f32, ZOrder3>),
    /// Blocked/tiled.
    Tiled(Grid3<f32, Tiled3>),
    /// Hilbert order.
    Hilbert(Grid3<f32, HilbertOrder3>),
}

macro_rules! dispatch {
    ($self:expr, $g:ident => $body:expr) => {
        match $self {
            DynGrid3::ArrayOrder($g) => $body,
            DynGrid3::ZOrder($g) => $body,
            DynGrid3::Tiled($g) => $body,
            DynGrid3::Hilbert($g) => $body,
        }
    };
}

impl DynGrid3 {
    /// Build a grid of the requested layout from row-major values.
    pub fn from_row_major(kind: LayoutKind, dims: Dims3, values: &[f32]) -> Self {
        match kind {
            LayoutKind::ArrayOrder => {
                DynGrid3::ArrayOrder(Grid3::from_row_major(dims, values))
            }
            LayoutKind::ZOrder => DynGrid3::ZOrder(Grid3::from_row_major(dims, values)),
            LayoutKind::Tiled => DynGrid3::Tiled(Grid3::from_row_major(dims, values)),
            LayoutKind::Hilbert => DynGrid3::Hilbert(Grid3::from_row_major(dims, values)),
        }
    }

    /// Which layout family this grid uses.
    pub fn kind(&self) -> LayoutKind {
        match self {
            DynGrid3::ArrayOrder(_) => LayoutKind::ArrayOrder,
            DynGrid3::ZOrder(_) => LayoutKind::ZOrder,
            DynGrid3::Tiled(_) => LayoutKind::Tiled,
            DynGrid3::Hilbert(_) => LayoutKind::Hilbert,
        }
    }

    /// Logical dimensions.
    pub fn dims(&self) -> Dims3 {
        dispatch!(self, g => g.dims())
    }

    /// Read one element.
    pub fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        dispatch!(self, g => g.get(i, j, k))
    }

    /// Write one element.
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: f32) {
        dispatch!(self, g => g.set(i, j, k, v))
    }

    /// Storage slot for a coordinate under this grid's layout.
    pub fn index_of(&self, i: usize, j: usize, k: usize) -> usize {
        dispatch!(self, g => g.index_of(i, j, k))
    }

    /// Number of backing-buffer slots (including padding).
    pub fn storage_len(&self) -> usize {
        dispatch!(self, g => g.storage().len())
    }

    /// Fraction of backing storage that is padding.
    pub fn padding_overhead(&self) -> f64 {
        dispatch!(self, g => g.padding_overhead())
    }

    /// Copy all logical elements out in row-major order.
    pub fn to_row_major(&self) -> Vec<f32> {
        dispatch!(self, g => g.to_row_major())
    }

    /// Re-lay out under another (runtime-selected) layout.
    pub fn convert(&self, kind: LayoutKind) -> DynGrid3 {
        let dims = self.dims();
        let values = self.to_row_major();
        DynGrid3::from_row_major(kind, dims, &values)
    }
}

impl Volume3 for DynGrid3 {
    fn dims(&self) -> Dims3 {
        DynGrid3::dims(self)
    }

    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        DynGrid3::get(self, i, j, k)
    }

    fn gather_axis_run(
        &self,
        i: usize,
        j: usize,
        k: usize,
        axis: crate::dims::Axis,
        dst: &mut [f32],
    ) {
        dispatch!(self, g => g.gather_axis_run(i, j, k, axis, dst))
    }

    fn cell_corners(&self, x0: usize, y0: usize, z0: usize) -> [f32; 8] {
        dispatch!(self, g => g.cell_corners(x0, y0, z0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(dims: Dims3) -> Vec<f32> {
        (0..dims.len()).map(|v| v as f32).collect()
    }

    #[test]
    fn all_kinds_roundtrip() {
        let dims = Dims3::new(5, 6, 7);
        let vals = values(dims);
        for kind in LayoutKind::ALL {
            let g = DynGrid3::from_row_major(kind, dims, &vals);
            assert_eq!(g.kind(), kind);
            assert_eq!(g.to_row_major(), vals, "{kind}");
            assert_eq!(g.get(2, 3, 4), vals[2 + 3 * 5 + 4 * 30]);
        }
    }

    #[test]
    fn convert_between_kinds() {
        let dims = Dims3::cube(6);
        let vals = values(dims);
        let a = DynGrid3::from_row_major(LayoutKind::ArrayOrder, dims, &vals);
        let z = a.convert(LayoutKind::ZOrder);
        assert_eq!(z.kind(), LayoutKind::ZOrder);
        assert_eq!(z.to_row_major(), vals);
        assert!(z.storage_len() >= dims.len());
    }

    #[test]
    fn set_and_get() {
        let dims = Dims3::cube(4);
        let mut g = DynGrid3::from_row_major(LayoutKind::Hilbert, dims, &values(dims));
        g.set(1, 2, 3, 99.5);
        assert_eq!(g.get(1, 2, 3), 99.5);
    }

    #[test]
    fn implements_volume3() {
        let dims = Dims3::cube(4);
        let g = DynGrid3::from_row_major(LayoutKind::Tiled, dims, &values(dims));
        let v: &dyn Volume3 = &g;
        assert_eq!(v.get(0, 0, 0), 0.0);
        assert_eq!(v.get_clamped(-1, 0, 0), 0.0);
    }

    #[test]
    fn padding_only_where_expected() {
        let dims = Dims3::new(5, 5, 5);
        let a = DynGrid3::from_row_major(LayoutKind::ArrayOrder, dims, &values(dims));
        let z = DynGrid3::from_row_major(LayoutKind::ZOrder, dims, &values(dims));
        assert_eq!(a.padding_overhead(), 0.0);
        assert!(z.padding_overhead() > 0.0);
    }
}
