//! Work decomposition iterators: voxel pencils and image tiles.
//!
//! The paper parallelizes the bilateral filter by handing out "pencils"
//! (1-D rows of voxels along a chosen axis) to threads round-robin
//! (§III-A), and the raycaster by dividing the output image into 32×32
//! tiles pulled from a dynamic queue (§III-B).

use crate::dims::{Axis, Dims3};

/// A 1-D row of voxels along `axis`, with the other two coordinates fixed.
///
/// For `axis = X` the pencil spans `(0..nx, j, k)`; the fixed coordinates
/// are stored in grid-axis order (the first is the faster-varying of the
/// two remaining axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pencil {
    /// Axis the pencil runs along.
    pub axis: Axis,
    /// Fixed coordinate on the faster-varying remaining axis.
    pub a: usize,
    /// Fixed coordinate on the slower-varying remaining axis.
    pub b: usize,
    /// Pencil length (extent of `axis`).
    pub len: usize,
}

impl Pencil {
    /// The voxel coordinate at position `t` along the pencil.
    #[inline]
    pub fn coords(&self, t: usize) -> (usize, usize, usize) {
        debug_assert!(t < self.len);
        match self.axis {
            Axis::X => (t, self.a, self.b),
            Axis::Y => (self.a, t, self.b),
            Axis::Z => (self.a, self.b, t),
        }
    }

    /// Iterate all voxel coordinates along the pencil.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.len).map(move |t| self.coords(t))
    }
}

/// Number of pencils along `axis` for a grid of `dims`
/// (the product of the two remaining extents).
pub fn pencil_count(dims: Dims3, axis: Axis) -> usize {
    match axis {
        Axis::X => dims.ny * dims.nz,
        Axis::Y => dims.nx * dims.nz,
        Axis::Z => dims.nx * dims.ny,
    }
}

/// The `id`-th pencil along `axis` (ids enumerate the two fixed axes in
/// array order, faster-varying axis first).
pub fn pencil(dims: Dims3, axis: Axis, id: usize) -> Pencil {
    debug_assert!(id < pencil_count(dims, axis));
    match axis {
        Axis::X => Pencil {
            axis,
            a: id % dims.ny,
            b: id / dims.ny,
            len: dims.nx,
        },
        Axis::Y => Pencil {
            axis,
            a: id % dims.nx,
            b: id / dims.nx,
            len: dims.ny,
        },
        Axis::Z => Pencil {
            axis,
            a: id % dims.nx,
            b: id / dims.nx,
            len: dims.nz,
        },
    }
}

/// Iterate every pencil along `axis`.
pub fn pencils(dims: Dims3, axis: Axis) -> impl Iterator<Item = Pencil> {
    (0..pencil_count(dims, axis)).map(move |id| pencil(dims, axis, id))
}

/// A rectangular region of an output image, `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileRect {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Top edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
}

impl TileRect {
    /// Number of pixels in the tile.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Iterate pixel coordinates row by row.
    pub fn pixels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let t = *self;
        (t.y0..t.y1).flat_map(move |y| (t.x0..t.x1).map(move |x| (x, y)))
    }
}

/// Decompose a `width × height` image into `tile_w × tile_h` tiles
/// (edge tiles are smaller when the image size is not a multiple).
pub fn image_tiles(
    width: usize,
    height: usize,
    tile_w: usize,
    tile_h: usize,
) -> Vec<TileRect> {
    assert!(tile_w > 0 && tile_h > 0, "tile extents must be non-zero");
    let mut tiles = Vec::with_capacity(width.div_ceil(tile_w) * height.div_ceil(tile_h));
    let mut y0 = 0;
    while y0 < height {
        let y1 = (y0 + tile_h).min(height);
        let mut x0 = 0;
        while x0 < width {
            let x1 = (x0 + tile_w).min(width);
            tiles.push(TileRect { x0, y0, x1, y1 });
            x0 = x1;
        }
        y0 = y1;
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pencil_counts() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(pencil_count(d, Axis::X), 30);
        assert_eq!(pencil_count(d, Axis::Y), 24);
        assert_eq!(pencil_count(d, Axis::Z), 20);
    }

    #[test]
    fn pencils_cover_grid_exactly_once() {
        let d = Dims3::new(3, 4, 5);
        for axis in Axis::ALL {
            let mut seen = std::collections::HashSet::new();
            for p in pencils(d, axis) {
                for c in p.iter() {
                    assert!(d.contains(c.0, c.1, c.2));
                    assert!(seen.insert(c), "duplicate {c:?} along {axis:?}");
                }
            }
            assert_eq!(seen.len(), d.len());
        }
    }

    #[test]
    fn x_pencil_coords() {
        let d = Dims3::new(8, 4, 2);
        let p = pencil(d, Axis::X, 5); // a = 5 % 4 = 1, b = 1
        assert_eq!(p.coords(3), (3, 1, 1));
        assert_eq!(p.len, 8);
    }

    #[test]
    fn z_pencil_coords() {
        let d = Dims3::new(8, 4, 2);
        let p = pencil(d, Axis::Z, 9); // a = 1, b = 1
        assert_eq!(p.coords(0), (1, 1, 0));
        assert_eq!(p.coords(1), (1, 1, 1));
        assert_eq!(p.len, 2);
    }

    #[test]
    fn tiles_cover_image_exactly_once() {
        let (w, h) = (100, 70);
        let tiles = image_tiles(w, h, 32, 32);
        let mut seen = vec![false; w * h];
        for t in &tiles {
            for (x, y) in t.pixels() {
                assert!(x < w && y < h);
                assert!(!seen[y * w + x]);
                seen[y * w + x] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(tiles.len(), 4 * 3);
    }

    #[test]
    fn tile_area_and_edges() {
        let tiles = image_tiles(33, 33, 32, 32);
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].area(), 1024);
        assert_eq!(tiles[3].area(), 1);
    }

    #[test]
    fn exact_tiling() {
        let tiles = image_tiles(64, 64, 32, 32);
        assert_eq!(tiles.len(), 4);
        assert!(tiles.iter().all(|t| t.area() == 1024));
    }
}
