//! Non-cryptographic checksums shared by the durable-write and volume
//! container code.
//!
//! The workspace persists volumes, images, and sweep checkpoints; every
//! on-disk record carries an FNV-1a 64 checksum so torn writes and
//! bit-flips are detected before corrupt data reaches a kernel. The hash
//! lives in `sfc-core` because both `sfc-harness` (journal records) and
//! `sfc-datagen` (volume container) verify with it.

/// FNV-1a 64-bit checksum — not cryptographic, but reliably catches the
/// single-bit flips and truncations storage faults produce.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"ab"));
    }
}
