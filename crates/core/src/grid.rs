//! Layout-generic grid containers.
//!
//! A [`Grid3<T, L>`] owns a linear backing buffer whose slot for logical
//! coordinate `(i,j,k)` is chosen by the layout parameter `L`. Application
//! code is written once against the grid API and is byte-for-byte identical
//! for array order and Z-order — the paper's "nearly transparent to the
//! application" property.

use crate::dims::{Dims2, Dims3};
use crate::error::{SfcError, SfcResult};
use crate::layout::{Layout2, Layout3};

/// A 3D grid of `T` stored according to layout `L`.
#[derive(Debug, Clone)]
pub struct Grid3<T, L: Layout3> {
    layout: L,
    data: Box<[T]>,
}

impl<T: Copy + Default, L: Layout3> Grid3<T, L> {
    /// Create a grid filled with `T::default()` (padding slots included).
    pub fn new(dims: Dims3) -> Self {
        let layout = L::new(dims);
        let data = vec![T::default(); layout.storage_len()].into_boxed_slice();
        Self { layout, data }
    }

    /// Create a grid by evaluating `f(i,j,k)` at every logical coordinate.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut g = Self::new(dims);
        for (i, j, k) in dims.iter() {
            g.set(i, j, k, f(i, j, k));
        }
        g
    }

    /// Create a grid from a row-major element slice
    /// (`values[i + j*nx + k*nx*ny]`), validating the length — the entry
    /// point for data read from untrusted files.
    pub fn try_from_row_major(dims: Dims3, values: &[T]) -> SfcResult<Self> {
        if values.len() != dims.len() {
            return Err(SfcError::ShapeMismatch {
                what: "Grid3::from_row_major",
                expected: format!("{} elements for dims {dims:?}", dims.len()),
                actual: format!("{} elements", values.len()),
            });
        }
        let mut g = Self::new(dims);
        let mut it = values.iter();
        for (i, j, k) in dims.iter() {
            g.set(i, j, k, *it.next().expect("length checked above"));
        }
        Ok(g)
    }

    /// Create a grid from a row-major element slice.
    ///
    /// # Panics
    /// Panics if `values.len() != dims.len()`; use
    /// [`Grid3::try_from_row_major`] for untrusted inputs.
    pub fn from_row_major(dims: Dims3, values: &[T]) -> Self {
        match Self::try_from_row_major(dims, values) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<T, L: Layout3> Grid3<T, L> {
    /// The layout driving this grid's index computation.
    #[inline]
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Logical dimensions.
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.layout.dims()
    }

    /// Storage slot for a logical coordinate (the paper's `getIndex`).
    #[inline]
    pub fn index_of(&self, i: usize, j: usize, k: usize) -> usize {
        self.layout.index(i, j, k)
    }

    /// Borrow the element at a logical coordinate.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> &T {
        &self.data[self.layout.index(i, j, k)]
    }

    /// Mutably borrow the element at a logical coordinate.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize) -> &mut T {
        &mut self.data[self.layout.index(i, j, k)]
    }

    /// The raw backing buffer, including padding slots.
    #[inline]
    pub fn storage(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing buffer. Writing padding slots is harmless; they
    /// are never observed through the logical API.
    #[inline]
    pub fn storage_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Fraction of backing storage that is padding.
    pub fn padding_overhead(&self) -> f64 {
        self.layout.padding_overhead()
    }
}

impl<T: Copy, L: Layout3> Grid3<T, L> {
    /// Read the element at a logical coordinate.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        self.data[self.layout.index(i, j, k)]
    }

    /// Read with edge-clamped signed coordinates (stencil boundary rule).
    #[inline]
    pub fn get_clamped(&self, i: isize, j: isize, k: isize) -> T {
        let d = self.dims();
        let ci = i.clamp(0, d.nx as isize - 1) as usize;
        let cj = j.clamp(0, d.ny as isize - 1) as usize;
        let ck = k.clamp(0, d.nz as isize - 1) as usize;
        self.get(ci, cj, ck)
    }

    /// Write the element at a logical coordinate.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, value: T) {
        self.data[self.layout.index(i, j, k)] = value;
    }

    /// Overwrite every logical element (padding untouched).
    pub fn fill(&mut self, value: T) {
        for (i, j, k) in self.dims().iter() {
            self.set(i, j, k, value);
        }
    }

    /// Copy all logical elements out in row-major order.
    pub fn to_row_major(&self) -> Vec<T> {
        self.dims().iter().map(|(i, j, k)| self.get(i, j, k)).collect()
    }

    /// Re-lay the grid out under a different layout, preserving all logical
    /// elements. Padding slots of the destination are `value`-initialized
    /// from the source's default-constructed state only if `T: Default`;
    /// here they are simply left as written by `M`'s constructor.
    pub fn convert<M: Layout3>(&self) -> Grid3<T, M>
    where
        T: Default,
    {
        let mut dst = Grid3::<T, M>::new(self.dims());
        for (i, j, k) in self.dims().iter() {
            dst.set(i, j, k, self.get(i, j, k));
        }
        dst
    }

    /// Iterate logical elements with their coordinates in array order.
    pub fn iter_logical(&self) -> impl Iterator<Item = ((usize, usize, usize), T)> + '_ {
        self.dims().iter().map(move |(i, j, k)| ((i, j, k), self.get(i, j, k)))
    }

    /// Iterate logical elements in *storage* (curve) order, skipping padding.
    /// For Z-order this walks the Z curve; for array order it equals
    /// [`iter_logical`](Self::iter_logical).
    pub fn iter_storage_order(
        &self,
    ) -> impl Iterator<Item = ((usize, usize, usize), T)> + '_ {
        let dims = self.dims();
        (0..self.layout.storage_len()).filter_map(move |s| {
            let (i, j, k) = self.layout.coords(s);
            dims.contains(i, j, k).then(|| ((i, j, k), self.data[s]))
        })
    }
}

/// A 2D grid of `T` stored according to layout `L`.
#[derive(Debug, Clone)]
pub struct Grid2<T, L: Layout2> {
    layout: L,
    data: Box<[T]>,
}

impl<T: Copy + Default, L: Layout2> Grid2<T, L> {
    /// Create a grid filled with `T::default()`.
    pub fn new(dims: Dims2) -> Self {
        let layout = L::new(dims);
        let data = vec![T::default(); layout.storage_len()].into_boxed_slice();
        Self { layout, data }
    }

    /// Create a grid by evaluating `f(i,j)` at every logical coordinate.
    pub fn from_fn(dims: Dims2, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut g = Self::new(dims);
        for (i, j) in dims.iter() {
            g.set(i, j, f(i, j));
        }
        g
    }

    /// Create a grid from a row-major element slice, validating the length.
    pub fn try_from_row_major(dims: Dims2, values: &[T]) -> SfcResult<Self> {
        if values.len() != dims.len() {
            return Err(SfcError::ShapeMismatch {
                what: "Grid2::from_row_major",
                expected: format!("{} elements for dims {dims:?}", dims.len()),
                actual: format!("{} elements", values.len()),
            });
        }
        let mut g = Self::new(dims);
        let mut it = values.iter();
        for (i, j) in dims.iter() {
            g.set(i, j, *it.next().expect("length checked above"));
        }
        Ok(g)
    }

    /// Create a grid from a row-major element slice.
    ///
    /// # Panics
    /// Panics if `values.len() != dims.len()`; use
    /// [`Grid2::try_from_row_major`] for untrusted inputs.
    pub fn from_row_major(dims: Dims2, values: &[T]) -> Self {
        match Self::try_from_row_major(dims, values) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }
}

impl<T, L: Layout2> Grid2<T, L> {
    /// The layout driving this grid's index computation.
    #[inline]
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Logical dimensions.
    #[inline]
    pub fn dims(&self) -> Dims2 {
        self.layout.dims()
    }

    /// Storage slot for a logical coordinate.
    #[inline]
    pub fn index_of(&self, i: usize, j: usize) -> usize {
        self.layout.index(i, j)
    }

    /// The raw backing buffer, including padding slots.
    #[inline]
    pub fn storage(&self) -> &[T] {
        &self.data
    }
}

impl<T: Copy, L: Layout2> Grid2<T, L> {
    /// Read the element at a logical coordinate.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[self.layout.index(i, j)]
    }

    /// Write the element at a logical coordinate.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: T) {
        self.data[self.layout.index(i, j)] = value;
    }

    /// Read with edge-clamped signed coordinates.
    #[inline]
    pub fn get_clamped(&self, i: isize, j: isize) -> T {
        let d = self.dims();
        let ci = i.clamp(0, d.nx as isize - 1) as usize;
        let cj = j.clamp(0, d.ny as isize - 1) as usize;
        self.get(ci, cj)
    }

    /// Copy all logical elements out in row-major order.
    pub fn to_row_major(&self) -> Vec<T> {
        self.dims().iter().map(|(i, j)| self.get(i, j)).collect()
    }

    /// Re-lay the grid out under a different layout.
    pub fn convert<M: Layout2>(&self) -> Grid2<T, M>
    where
        T: Default,
    {
        let mut dst = Grid2::<T, M>::new(self.dims());
        for (i, j) in self.dims().iter() {
            dst.set(i, j, self.get(i, j));
        }
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::{ArrayOrder3, HilbertOrder3, Tiled3, ZOrder2, ZOrder3};
    use crate::layouts::ArrayOrder2;

    fn ramp(i: usize, j: usize, k: usize) -> f32 {
        (i + 10 * j + 100 * k) as f32
    }

    #[test]
    fn from_fn_get_roundtrip_all_layouts() {
        let dims = Dims3::new(6, 5, 4);
        macro_rules! check {
            ($L:ty) => {
                let g = Grid3::<f32, $L>::from_fn(dims, ramp);
                for (i, j, k) in dims.iter() {
                    assert_eq!(g.get(i, j, k), ramp(i, j, k));
                }
            };
        }
        check!(ArrayOrder3);
        check!(ZOrder3);
        check!(Tiled3);
        check!(HilbertOrder3);
    }

    #[test]
    fn row_major_roundtrip() {
        let dims = Dims3::new(3, 4, 5);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32).collect();
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        assert_eq!(g.to_row_major(), values);
    }

    #[test]
    fn convert_preserves_logical_content() {
        let dims = Dims3::new(7, 9, 3);
        let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, ramp);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let t: Grid3<f32, Tiled3> = z.convert();
        let back: Grid3<f32, ArrayOrder3> = t.convert();
        assert_eq!(a.to_row_major(), back.to_row_major());
    }

    #[test]
    fn array_order_storage_is_row_major() {
        let dims = Dims3::new(2, 2, 2);
        let g = Grid3::<f32, ArrayOrder3>::from_fn(dims, ramp);
        assert_eq!(
            g.storage(),
            &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]
        );
    }

    #[test]
    fn zorder_storage_is_morton_order() {
        let dims = Dims3::new(2, 2, 2);
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, ramp);
        // Morton order: (0,0,0) (1,0,0) (0,1,0) (1,1,0) (0,0,1) ...
        assert_eq!(
            g.storage(),
            &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]
        );
        // For the 2-cube, morton order happens to equal row-major order.
        // Use a 4-wide grid to see an actual difference:
        let dims = Dims3::new(4, 2, 1);
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, ramp);
        // Z order visits (0,0) (1,0) (0,1) (1,1) (2,0) (3,0) (2,1) (3,1).
        assert_eq!(g.storage(), &[0.0, 1.0, 10.0, 11.0, 2.0, 3.0, 12.0, 13.0]);
    }

    #[test]
    fn get_clamped_at_edges() {
        let dims = Dims3::new(3, 3, 3);
        let g = Grid3::<f32, ArrayOrder3>::from_fn(dims, ramp);
        assert_eq!(g.get_clamped(-5, 1, 1), g.get(0, 1, 1));
        assert_eq!(g.get_clamped(1, 99, 1), g.get(1, 2, 1));
        assert_eq!(g.get_clamped(2, 2, -1), g.get(2, 2, 0));
    }

    #[test]
    fn iter_storage_order_covers_all_logical_cells() {
        let dims = Dims3::new(5, 3, 2); // padded under z-order
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, ramp);
        let mut seen: Vec<_> = g.iter_storage_order().map(|(c, _)| c).collect();
        assert_eq!(seen.len(), dims.len());
        seen.sort_unstable();
        let mut expected: Vec<_> = dims.iter().collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn fill_overwrites_logical_cells() {
        let dims = Dims3::new(3, 5, 2);
        let mut g = Grid3::<f32, Tiled3>::from_fn(dims, ramp);
        g.fill(7.5);
        assert!(g.iter_logical().all(|(_, v)| v == 7.5));
    }

    #[test]
    #[should_panic]
    fn from_row_major_length_mismatch_panics() {
        Grid3::<f32, ArrayOrder3>::from_row_major(Dims3::cube(2), &[0.0; 7]);
    }

    #[test]
    fn try_from_row_major_is_typed() {
        use crate::error::SfcError;
        let err = Grid3::<f32, ArrayOrder3>::try_from_row_major(Dims3::cube(2), &[0.0; 7])
            .unwrap_err();
        assert!(matches!(err, SfcError::ShapeMismatch { .. }), "{err}");
        assert!(Grid3::<f32, ArrayOrder3>::try_from_row_major(Dims3::cube(2), &[0.0; 8]).is_ok());
        assert!(Grid2::<f32, ArrayOrder2>::try_from_row_major(Dims2::new(2, 2), &[0.0; 3]).is_err());
    }

    #[test]
    fn grid2_roundtrip_and_convert() {
        let dims = Dims2::new(9, 5);
        let a = Grid2::<f32, ArrayOrder2>::from_fn(dims, |i, j| (i * 100 + j) as f32);
        let z: Grid2<f32, ZOrder2> = a.convert();
        for (i, j) in dims.iter() {
            assert_eq!(z.get(i, j), a.get(i, j));
        }
        assert_eq!(z.to_row_major(), a.to_row_major());
        assert_eq!(z.get_clamped(-3, 100), a.get(0, 4));
    }
}
