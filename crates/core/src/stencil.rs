//! Stencil neighborhood enumeration with configurable loop order.
//!
//! The paper's bilateral-filter tests vary the *stencil processing order*
//! (§IV-B3): `xyz` iterates the innermost loop over x, the most quickly
//! varying axis of an array-order layout (the friendly order), while `zyx`
//! iterates z innermost — the most hostile order for array-order, used to
//! "purposefully induce a potentially unfavorable memory access pattern".

use crate::dims::Axis;

/// Loop nesting order for stencil traversal. The name lists axes from
/// innermost to outermost: `Xyz` = x innermost (array-order friendly),
/// `Zyx` = z innermost (array-order hostile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilOrder {
    /// x innermost, then y, then z (array-order friendly).
    Xyz,
    /// x innermost, then z, then y.
    Xzy,
    /// y innermost, then x, then z.
    Yxz,
    /// y innermost, then z, then x.
    Yzx,
    /// z innermost, then x, then y.
    Zxy,
    /// z innermost, then y, then x (array-order hostile; the paper's `zyx`).
    Zyx,
}

impl StencilOrder {
    /// The two orders exercised by the paper.
    pub const PAPER: [StencilOrder; 2] = [StencilOrder::Xyz, StencilOrder::Zyx];

    /// All six orders.
    pub const ALL: [StencilOrder; 6] = [
        StencilOrder::Xyz,
        StencilOrder::Xzy,
        StencilOrder::Yxz,
        StencilOrder::Yzx,
        StencilOrder::Zxy,
        StencilOrder::Zyx,
    ];

    /// Axes from innermost to outermost.
    pub fn axes(&self) -> [Axis; 3] {
        match self {
            StencilOrder::Xyz => [Axis::X, Axis::Y, Axis::Z],
            StencilOrder::Xzy => [Axis::X, Axis::Z, Axis::Y],
            StencilOrder::Yxz => [Axis::Y, Axis::X, Axis::Z],
            StencilOrder::Yzx => [Axis::Y, Axis::Z, Axis::X],
            StencilOrder::Zxy => [Axis::Z, Axis::X, Axis::Y],
            StencilOrder::Zyx => [Axis::Z, Axis::Y, Axis::X],
        }
    }

    /// Lowercase name as the paper writes it (`"xyz"`, `"zyx"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            StencilOrder::Xyz => "xyz",
            StencilOrder::Xzy => "xzy",
            StencilOrder::Yxz => "yxz",
            StencilOrder::Yzx => "yzx",
            StencilOrder::Zxy => "zxy",
            StencilOrder::Zyx => "zyx",
        }
    }

    /// Parse a name like `"xyz"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|o| o.name().eq_ignore_ascii_case(s))
    }
}

impl std::fmt::Display for StencilOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Signed offsets of a cubic `(2r+1)³` stencil enumerated in the given loop
/// order. The first named axis varies fastest.
pub fn stencil_offsets(radius: usize, order: StencilOrder) -> Vec<(isize, isize, isize)> {
    let r = radius as isize;
    let side = 2 * radius + 1;
    let mut out = Vec::with_capacity(side * side * side);
    let [inner, mid, outer] = order.axes();
    for co in -r..=r {
        for cm in -r..=r {
            for ci in -r..=r {
                let mut ofs = (0isize, 0isize, 0isize);
                for (axis, val) in [(outer, co), (mid, cm), (inner, ci)] {
                    match axis {
                        Axis::X => ofs.0 = val,
                        Axis::Y => ofs.1 = val,
                        Axis::Z => ofs.2 = val,
                    }
                }
                out.push(ofs);
            }
        }
    }
    out
}

/// Paper stencil-size labels: `r1` = 3³, `r3` = 5³, `r5` = 11³.
///
/// (These are the paper's row labels; the numeral is not the radius — the
/// actual radii are 1, 2, and 5.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilSize {
    /// 3×3×3 stencil (radius 1).
    R1,
    /// 5×5×5 stencil (radius 2).
    R3,
    /// 11×11×11 stencil (radius 5).
    R5,
}

impl StencilSize {
    /// The three sizes in the paper's row order.
    pub const ALL: [StencilSize; 3] = [StencilSize::R1, StencilSize::R3, StencilSize::R5];

    /// The stencil radius in voxels.
    pub fn radius(&self) -> usize {
        match self {
            StencilSize::R1 => 1,
            StencilSize::R3 => 2,
            StencilSize::R5 => 5,
        }
    }

    /// Side length of the cubic stencil (`2*radius + 1`).
    pub fn side(&self) -> usize {
        2 * self.radius() + 1
    }

    /// Paper row label ("r1", "r3", "r5").
    pub fn label(&self) -> &'static str {
        match self {
            StencilSize::R1 => "r1",
            StencilSize::R3 => "r3",
            StencilSize::R5 => "r5",
        }
    }
}

impl std::fmt::Display for StencilSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_count_and_uniqueness() {
        for r in [1usize, 2, 5] {
            let offs = stencil_offsets(r, StencilOrder::Xyz);
            let side = 2 * r + 1;
            assert_eq!(offs.len(), side * side * side);
            let set: std::collections::HashSet<_> = offs.iter().collect();
            assert_eq!(set.len(), offs.len());
        }
    }

    #[test]
    fn xyz_order_varies_x_fastest() {
        let offs = stencil_offsets(1, StencilOrder::Xyz);
        assert_eq!(offs[0], (-1, -1, -1));
        assert_eq!(offs[1], (0, -1, -1));
        assert_eq!(offs[2], (1, -1, -1));
        assert_eq!(offs[3], (-1, 0, -1));
        assert_eq!(*offs.last().unwrap(), (1, 1, 1));
    }

    #[test]
    fn zyx_order_varies_z_fastest() {
        let offs = stencil_offsets(1, StencilOrder::Zyx);
        assert_eq!(offs[0], (-1, -1, -1));
        assert_eq!(offs[1], (-1, -1, 0));
        assert_eq!(offs[2], (-1, -1, 1));
        assert_eq!(offs[3], (-1, 0, -1));
        assert_eq!(*offs.last().unwrap(), (1, 1, 1));
    }

    #[test]
    fn all_orders_enumerate_same_set() {
        let reference: std::collections::HashSet<_> =
            stencil_offsets(2, StencilOrder::Xyz).into_iter().collect();
        for order in StencilOrder::ALL {
            let set: std::collections::HashSet<_> =
                stencil_offsets(2, order).into_iter().collect();
            assert_eq!(set, reference, "order {order}");
        }
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(StencilSize::R1.side(), 3);
        assert_eq!(StencilSize::R3.side(), 5);
        assert_eq!(StencilSize::R5.side(), 11);
        assert_eq!(StencilSize::R5.label(), "r5");
    }

    #[test]
    fn order_parse_roundtrip() {
        for o in StencilOrder::ALL {
            assert_eq!(StencilOrder::parse(o.name()), Some(o));
        }
        assert_eq!(StencilOrder::parse("ZYX"), Some(StencilOrder::Zyx));
        assert_eq!(StencilOrder::parse("abc"), None);
    }
}
