//! Workspace-wide typed error taxonomy.
//!
//! Long parallel sweeps over big volumes (the ROADMAP's production target)
//! cannot afford `assert!`-style aborts: one bad pencil or one corrupt
//! input file must surface as a *value* the caller can route, retry, or
//! degrade around. Every fallible entry point in the workspace returns
//! [`SfcError`]; the panicking convenience constructors remain as thin
//! wrappers over the `try_` forms for hot-loop ergonomics.

use std::fmt;
use std::time::Duration;

/// Convenience alias used by fallible APIs across the workspace.
pub type SfcResult<T> = Result<T, SfcError>;

/// The workspace error taxonomy.
///
/// Variants are grouped by origin: *validation* (dims/layout/parameter),
/// *data integrity* (I/O and corruption), and *execution* (worker panic,
/// timeout) — the supervised pool in `sfc-harness` reports the latter two
/// through `RunReport` instead of aborting the run.
#[derive(Debug)]
#[non_exhaustive]
pub enum SfcError {
    /// A grid extent or other dimension parameter is invalid.
    InvalidDims {
        /// What was being validated (e.g. `"Dims3"`, `"lattice size"`).
        what: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// Two containers that must agree in shape do not.
    ShapeMismatch {
        /// The operation that required agreement.
        what: &'static str,
        /// Expected element count or extent description.
        expected: String,
        /// What was actually provided.
        actual: String,
    },
    /// A size computation overflowed `usize` (huge dims, checked multiply).
    SizeOverflow {
        /// The computation that overflowed, e.g. `"dims.len() * 4"`.
        what: &'static str,
    },
    /// An invalid kernel/filter/render parameter.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint violation description.
        reason: String,
    },
    /// An underlying I/O operation failed.
    Io {
        /// What was being read or written.
        what: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A file was read successfully but its contents are not trustworthy:
    /// bad magic, version, checksum, or truncated payload.
    Corrupt {
        /// What artifact is corrupt (usually a path).
        what: String,
        /// Which integrity check failed.
        reason: String,
    },
    /// A worker closure panicked while processing an item.
    WorkerPanic {
        /// The item index being processed.
        item: usize,
        /// Panic payload rendered to a string (`"<non-string payload>"`
        /// when the payload was not `String`/`&str`).
        payload: String,
    },
    /// An item exceeded its supervised execution deadline.
    Timeout {
        /// The item index that timed out.
        item: usize,
        /// The configured per-item deadline.
        limit: Duration,
    },
    /// An attempt was abandoned cooperatively after its cancel token fired
    /// (the watchdog already accounted the attempt as a [`SfcError::Timeout`];
    /// this value is what the *worker* returns when it notices).
    Cancelled {
        /// The item index whose attempt was cancelled.
        item: usize,
    },
    /// Data failed a NaN/finiteness screen (e.g. a contaminated volume).
    NonFinite {
        /// What was screened.
        what: String,
        /// Number of non-finite values found.
        count: usize,
    },
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::InvalidDims { what, reason } => {
                write!(f, "invalid dimensions for {what}: {reason}")
            }
            SfcError::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(f, "shape mismatch in {what}: expected {expected}, got {actual}"),
            SfcError::SizeOverflow { what } => {
                write!(f, "size computation overflowed usize: {what}")
            }
            SfcError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SfcError::Io { what, source } => write!(f, "I/O error on {what}: {source}"),
            SfcError::Corrupt { what, reason } => {
                write!(f, "corrupt data in {what}: {reason}")
            }
            SfcError::WorkerPanic { item, payload } => {
                write!(f, "worker panicked on item {item}: {payload}")
            }
            SfcError::Timeout { item, limit } => {
                write!(f, "item {item} exceeded its {limit:?} deadline")
            }
            SfcError::Cancelled { item } => {
                write!(f, "item {item} was cancelled cooperatively")
            }
            SfcError::NonFinite { what, count } => {
                write!(f, "{what} contains {count} non-finite value(s)")
            }
        }
    }
}

impl std::error::Error for SfcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SfcError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SfcError {
    /// Wrap an [`std::io::Error`] with context about what was touched.
    pub fn io(what: impl Into<String>, source: std::io::Error) -> Self {
        SfcError::Io {
            what: what.into(),
            source,
        }
    }

    /// Build a corruption error with context.
    pub fn corrupt(what: impl Into<String>, reason: impl Into<String>) -> Self {
        SfcError::Corrupt {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// True for failures that stem from the *execution environment* (panic,
    /// timeout) rather than the inputs — the class the supervised pool
    /// retries; validation and corruption errors are deterministic and
    /// retrying them is wasted work. `Cancelled` is excluded: the watchdog
    /// that fired the token already accounted (and possibly requeued) the
    /// attempt as a `Timeout`, so a late `Cancelled` return must not spawn
    /// a second retry chain.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SfcError::WorkerPanic { .. } | SfcError::Timeout { .. } | SfcError::Io { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SfcError::InvalidDims {
            what: "Dims3",
            reason: "nx must be non-zero".into(),
        };
        assert!(e.to_string().contains("Dims3"));
        assert!(e.to_string().contains("non-zero"));

        let e = SfcError::Timeout {
            item: 7,
            limit: Duration::from_millis(250),
        };
        assert!(e.to_string().contains('7'));

        let e = SfcError::corrupt("vol.sfcv", "checksum mismatch");
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn io_source_is_chained() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = SfcError::io("f.raw", inner);
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn retryability_split() {
        assert!(SfcError::WorkerPanic {
            item: 0,
            payload: "boom".into()
        }
        .is_retryable());
        assert!(SfcError::Timeout {
            item: 0,
            limit: Duration::from_secs(1)
        }
        .is_retryable());
        assert!(!SfcError::SizeOverflow { what: "n*4" }.is_retryable());
        assert!(!SfcError::corrupt("x", "y").is_retryable());
        assert!(!SfcError::Cancelled { item: 3 }.is_retryable());
    }
}
