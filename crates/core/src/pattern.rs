//! Bit-interleave patterns for Z-order indexing of rectangular domains.
//!
//! Classic Morton interleaving assumes a cube with power-of-two extents. The
//! paper (§V) notes that SFC indexing of other sizes requires padding the
//! backing buffer to powers of two. To keep that padding *per axis* rather
//! than cubing the whole domain, we generalize the interleave: each axis `a`
//! contributes `bits_a = ceil(log2(n_a))` bits, and bit planes are assigned
//! round-robin from the least-significant end across the axes that still
//! have bits remaining. For a power-of-two cube this reduces exactly to
//! classic Morton order; for, say, a 512×512×64 domain the two larger axes
//! simply keep interleaving after the small axis runs out of bits, so the
//! padded buffer is `512*512*64`, not `512³`.
//!
//! The pattern is the single source of truth used to build the paper's
//! per-axis lookup tables (three table lookups + two ORs per access) and to
//! invert storage indices back to coordinates.

use crate::dims::{bits_for, next_pow2, Dims3};

/// Assignment of global index-bit positions to each axis of a 3D domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavePattern3 {
    /// Global bit positions (LSB-first) receiving each axis's bits.
    /// `positions[a][t]` is where bit `t` of axis `a`'s coordinate lands.
    positions: [Vec<u32>; 3],
    /// Padded (power-of-two) extent of each axis.
    padded: [usize; 3],
    /// Total number of index bits (`sum of bits per axis`).
    total_bits: u32,
}

impl InterleavePattern3 {
    /// Build the round-robin interleave pattern for `dims`.
    pub fn new(dims: Dims3) -> Self {
        let bits = [bits_for(dims.nx), bits_for(dims.ny), bits_for(dims.nz)];
        let padded = [next_pow2(dims.nx), next_pow2(dims.ny), next_pow2(dims.nz)];
        let mut positions: [Vec<u32>; 3] = [
            Vec::with_capacity(bits[0] as usize),
            Vec::with_capacity(bits[1] as usize),
            Vec::with_capacity(bits[2] as usize),
        ];
        let mut pos = 0u32;
        let max_bits = bits.iter().copied().max().unwrap_or(0);
        for round in 0..max_bits {
            for axis in 0..3 {
                if round < bits[axis] {
                    positions[axis].push(pos);
                    pos += 1;
                }
            }
        }
        debug_assert!(pos <= 64, "domain exceeds 64-bit index space");
        Self {
            positions,
            padded,
            total_bits: pos,
        }
    }

    /// Padded extent of axis `a` (0 = x, 1 = y, 2 = z).
    pub fn padded_extent(&self, axis: usize) -> usize {
        self.padded[axis]
    }

    /// Total storage slots: product of padded extents (`2^total_bits`).
    pub fn storage_len(&self) -> usize {
        1usize << self.total_bits
    }

    /// Number of index bits contributed by axis `a`.
    pub fn axis_bits(&self, axis: usize) -> u32 {
        self.positions[axis].len() as u32
    }

    /// Bit mask of the global index positions owned by axis `a` — the OR
    /// of `1 << p` over that axis's bit planes. This is the mask `M` that
    /// drives O(1) dilated-integer neighbor steps
    /// (see [`crate::cursor::ZCursor3`]): with the other axes' bits forced
    /// to ones, an ordinary add/subtract carries only through `M`'s
    /// positions. A degenerate axis (extent 1) has mask 0.
    pub fn axis_mask(&self, axis: usize) -> u64 {
        self.positions[axis].iter().fold(0u64, |m, &p| m | (1 << p))
    }

    /// Dilate a single coordinate of axis `a` into its index contribution.
    /// The per-axis lookup tables are just this function tabulated.
    pub fn dilate(&self, axis: usize, coord: usize) -> u64 {
        debug_assert!(coord < self.padded[axis]);
        let mut v = 0u64;
        for (t, &p) in self.positions[axis].iter().enumerate() {
            v |= (((coord >> t) & 1) as u64) << p;
        }
        v
    }

    /// Encode a full coordinate triple (equivalent to OR of three dilations).
    pub fn encode(&self, i: usize, j: usize, k: usize) -> u64 {
        self.dilate(0, i) | self.dilate(1, j) | self.dilate(2, k)
    }

    /// Recover the coordinate triple a storage index maps to (inverse of
    /// [`encode`](Self::encode) over the padded domain).
    pub fn decode(&self, index: u64) -> (usize, usize, usize) {
        debug_assert!(index < self.storage_len() as u64);
        let mut c = [0usize; 3];
        for (coord, positions) in c.iter_mut().zip(&self.positions) {
            for (t, &p) in positions.iter().enumerate() {
                *coord |= (((index >> p) & 1) as usize) << t;
            }
        }
        (c[0], c[1], c[2])
    }

    /// Build the full per-axis lookup table for axis `a`
    /// (the paper's three tables of length `max(xsize, ysize, zsize)`;
    /// here each is exactly its own padded length).
    pub fn build_table(&self, axis: usize) -> Box<[u64]> {
        (0..self.padded[axis])
            .map(|c| self.dilate(axis, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::morton3_encode;

    #[test]
    fn cube_pattern_matches_classic_morton() {
        let p = InterleavePattern3::new(Dims3::cube(16));
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    assert_eq!(
                        p.encode(x, y, z),
                        morton3_encode(x as u32, y as u32, z as u32)
                    );
                }
            }
        }
    }

    #[test]
    fn rectangular_pattern_is_bijective() {
        let dims = Dims3::new(8, 4, 2); // already powers of two, unequal
        let p = InterleavePattern3::new(dims);
        assert_eq!(p.storage_len(), 64);
        let mut seen = [false; 64];
        for k in 0..2 {
            for j in 0..4 {
                for i in 0..8 {
                    let m = p.encode(i, j, k) as usize;
                    assert!(m < 64);
                    assert!(!seen[m], "collision at {m}");
                    seen[m] = true;
                    assert_eq!(p.decode(m as u64), (i, j, k));
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn non_pow2_dims_pad_per_axis() {
        let p = InterleavePattern3::new(Dims3::new(5, 3, 9));
        assert_eq!(p.padded_extent(0), 8);
        assert_eq!(p.padded_extent(1), 4);
        assert_eq!(p.padded_extent(2), 16);
        assert_eq!(p.storage_len(), 8 * 4 * 16);
        assert_eq!(p.axis_bits(0), 3);
        assert_eq!(p.axis_bits(1), 2);
        assert_eq!(p.axis_bits(2), 4);
    }

    #[test]
    fn tables_match_dilate() {
        let p = InterleavePattern3::new(Dims3::new(32, 8, 16));
        for axis in 0..3 {
            let t = p.build_table(axis);
            assert_eq!(t.len(), p.padded_extent(axis));
            for (c, &v) in t.iter().enumerate() {
                assert_eq!(v, p.dilate(axis, c));
            }
        }
    }

    #[test]
    fn decode_covers_padded_domain() {
        let p = InterleavePattern3::new(Dims3::new(4, 2, 8));
        let mut seen = std::collections::HashSet::new();
        for m in 0..p.storage_len() as u64 {
            let (i, j, k) = p.decode(m);
            assert!(i < 4 && j < 2 && k < 8);
            assert!(seen.insert((i, j, k)));
            assert_eq!(p.encode(i, j, k), m);
        }
        assert_eq!(seen.len(), p.storage_len());
    }

    #[test]
    fn degenerate_axis_contributes_no_bits() {
        let p = InterleavePattern3::new(Dims3::new(16, 1, 16));
        assert_eq!(p.axis_bits(1), 0);
        assert_eq!(p.storage_len(), 256);
        assert_eq!(p.dilate(1, 0), 0);
    }

    #[test]
    fn axis_masks_partition_the_index_bits() {
        for dims in [Dims3::cube(16), Dims3::new(5, 3, 9), Dims3::new(16, 1, 16)] {
            let p = InterleavePattern3::new(dims);
            let (mx, my, mz) = (p.axis_mask(0), p.axis_mask(1), p.axis_mask(2));
            assert_eq!(mx & my, 0);
            assert_eq!(mx & mz, 0);
            assert_eq!(my & mz, 0);
            let all = (p.storage_len() as u64) - 1;
            assert_eq!(mx | my | mz, all);
            assert_eq!(mx.count_ones(), p.axis_bits(0));
            assert_eq!(my.count_ones(), p.axis_bits(1));
            assert_eq!(mz.count_ones(), p.axis_bits(2));
        }
    }

    #[test]
    fn interleave_keeps_low_bits_low() {
        // The three axes' least-significant bits must occupy the three
        // least-significant index bits — that is what gives Z-order its
        // locality. (Order within the round is x, y, z.)
        let p = InterleavePattern3::new(Dims3::new(64, 64, 64));
        assert_eq!(p.encode(1, 0, 0), 1);
        assert_eq!(p.encode(0, 1, 0), 2);
        assert_eq!(p.encode(0, 0, 1), 4);
    }
}
