//! Layout traits: the unified `get_index(i,j,k)` interface of the paper's
//! §III-C.
//!
//! A *layout* is a bijection from logical grid coordinates onto slots of a
//! linear backing buffer. All layouts here are table-driven or O(1) so the
//! index-computation cost is "on more or less equal footing" (paper §III-C)
//! and measured differences reflect memory locality, not arithmetic.

use crate::cursor::Cursor3;
use crate::dims::{Dims2, Dims3};

/// Identifies a layout family at runtime (CLI selection, reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Traditional row-major array order (the paper's "A-order").
    ArrayOrder,
    /// Z-order / Morton space-filling curve (the paper's "Z-order").
    ZOrder,
    /// Blocked/tiled layout (Pascucci & Frank's third comparator).
    Tiled,
    /// Hilbert space-filling curve (background ablation).
    Hilbert,
}

impl LayoutKind {
    /// Short stable name used in tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            LayoutKind::ArrayOrder => "a-order",
            LayoutKind::ZOrder => "z-order",
            LayoutKind::Tiled => "tiled",
            LayoutKind::Hilbert => "hilbert",
        }
    }

    /// Parse a CLI-style name (accepts a few aliases).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "a" | "a-order" | "array" | "array-order" | "row-major" => {
                Some(LayoutKind::ArrayOrder)
            }
            "z" | "z-order" | "zorder" | "morton" => Some(LayoutKind::ZOrder),
            "t" | "tiled" | "blocked" | "tile" => Some(LayoutKind::Tiled),
            "h" | "hilbert" => Some(LayoutKind::Hilbert),
            _ => None,
        }
    }

    /// All layout kinds, in reporting order.
    pub const ALL: [LayoutKind; 4] = [
        LayoutKind::ArrayOrder,
        LayoutKind::ZOrder,
        LayoutKind::Tiled,
        LayoutKind::Hilbert,
    ];
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 3D memory layout: bijection from `dims` coordinates into a backing
/// buffer of `storage_len()` slots.
///
/// Invariants every implementation upholds (and the crate's property tests
/// verify):
/// * `index(i,j,k) < storage_len()` for all in-bounds coordinates;
/// * `index` is injective over the logical domain;
/// * `coords(index(i,j,k)) == (i,j,k)`;
/// * `storage_len() >= dims().len()` (padding allowed, none for array order).
pub trait Layout3: Clone + Send + Sync + 'static {
    /// Which family this layout belongs to.
    const KIND: LayoutKind;

    /// Incremental cursor type for this layout (see [`crate::cursor`]).
    type Cursor: Cursor3;

    /// Construct the layout (precomputes any index tables).
    fn new(dims: Dims3) -> Self;

    /// Logical grid dimensions.
    fn dims(&self) -> Dims3;

    /// Number of slots in the backing buffer (≥ `dims().len()`).
    fn storage_len(&self) -> usize;

    /// Map logical coordinates to a storage slot.
    ///
    /// Out-of-bounds coordinates are a logic error; implementations may
    /// panic or return an out-of-range slot (debug builds assert).
    fn index(&self, i: usize, j: usize, k: usize) -> usize;

    /// Inverse map over the *storage* domain. For padded layouts the result
    /// may lie outside `dims()`; callers iterating storage order must filter
    /// with `dims().contains(..)`.
    fn coords(&self, index: usize) -> (usize, usize, usize);

    /// Position an incremental cursor at `(i,j,k)`.
    ///
    /// The cursor satisfies `cursor(i,j,k).index() == index(i,j,k)` and
    /// stays consistent with `index()` under any in-bounds sequence of
    /// unit steps. Positioning costs one full index computation; steps are
    /// then O(1) for every layout except Hilbert (which recomputes).
    fn cursor(&self, i: usize, j: usize, k: usize) -> Self::Cursor;

    /// Fraction of backing-buffer slots that are padding
    /// (`0.0` means a perfectly tight layout).
    fn padding_overhead(&self) -> f64 {
        let logical = self.dims().len() as f64;
        let storage = self.storage_len() as f64;
        (storage - logical) / storage
    }
}

/// A 2D memory layout; mirrors [`Layout3`].
pub trait Layout2: Clone + Send + Sync + 'static {
    /// Which family this layout belongs to.
    const KIND: LayoutKind;

    /// Construct the layout (precomputes any index tables).
    fn new(dims: Dims2) -> Self;

    /// Logical grid dimensions.
    fn dims(&self) -> Dims2;

    /// Number of slots in the backing buffer (≥ `dims().len()`).
    fn storage_len(&self) -> usize;

    /// Map logical coordinates to a storage slot.
    fn index(&self, i: usize, j: usize) -> usize;

    /// Inverse map over the storage domain (see [`Layout3::coords`]).
    fn coords(&self, index: usize) -> (usize, usize);

    /// Fraction of backing-buffer slots that are padding.
    fn padding_overhead(&self) -> f64 {
        let logical = self.dims().len() as f64;
        let storage = self.storage_len() as f64;
        (storage - logical) / storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip_through_parse() {
        for k in LayoutKind::ALL {
            assert_eq!(LayoutKind::parse(k.name()), Some(k));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!(LayoutKind::parse("morton"), Some(LayoutKind::ZOrder));
        assert_eq!(LayoutKind::parse("ROW-MAJOR"), Some(LayoutKind::ArrayOrder));
        assert_eq!(LayoutKind::parse("blocked"), Some(LayoutKind::Tiled));
        assert_eq!(LayoutKind::parse("nope"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(LayoutKind::ZOrder.to_string(), "z-order");
    }
}
