//! The scalar-volume access abstraction kernels are written against.
//!
//! Both application kernels (bilateral filter, raycaster) read a 3D scalar
//! field one sample at a time. Abstracting that read behind [`Volume3`]
//! lets the *same monomorphized kernel* run over any layout, and lets
//! `sfc-memsim` interpose an address-tracing wrapper without touching
//! kernel code.

use crate::dims::Dims3;
use crate::grid::Grid3;
use crate::layout::Layout3;

/// Read-only access to a 3D scalar field.
pub trait Volume3 {
    /// Logical dimensions of the field.
    fn dims(&self) -> Dims3;

    /// Sample the field at an in-bounds coordinate.
    fn get(&self, i: usize, j: usize, k: usize) -> f32;

    /// Sample with edge-clamped signed coordinates (the stencil boundary
    /// rule used by the bilateral filter).
    #[inline]
    fn get_clamped(&self, i: isize, j: isize, k: isize) -> f32 {
        let d = self.dims();
        let ci = i.clamp(0, d.nx as isize - 1) as usize;
        let cj = j.clamp(0, d.ny as isize - 1) as usize;
        let ck = k.clamp(0, d.nz as isize - 1) as usize;
        self.get(ci, cj, ck)
    }
}

impl<L: Layout3> Volume3 for Grid3<f32, L> {
    #[inline]
    fn dims(&self) -> Dims3 {
        Grid3::dims(self)
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        Grid3::get(self, i, j, k)
    }
}

impl<V: Volume3 + ?Sized> Volume3 for &V {
    #[inline]
    fn dims(&self) -> Dims3 {
        (**self).dims()
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        (**self).get(i, j, k)
    }
}

/// A volume computed on the fly from a function (useful in tests).
pub struct FnVolume<F: Fn(usize, usize, usize) -> f32> {
    dims: Dims3,
    f: F,
}

impl<F: Fn(usize, usize, usize) -> f32> FnVolume<F> {
    /// Wrap `f` as a volume of the given dimensions.
    pub fn new(dims: Dims3, f: F) -> Self {
        Self { dims, f }
    }
}

impl<F: Fn(usize, usize, usize) -> f32> Volume3 for FnVolume<F> {
    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        debug_assert!(self.dims.contains(i, j, k));
        (self.f)(i, j, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::ZOrder3;

    #[test]
    fn grid_implements_volume() {
        let g = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(4), |i, j, k| {
            (i + j + k) as f32
        });
        let v: &dyn Volume3 = &g;
        assert_eq!(v.get(1, 2, 3), 6.0);
        assert_eq!(v.dims(), Dims3::cube(4));
    }

    #[test]
    fn clamping_matches_grid_clamping() {
        let g = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(4), |i, j, k| {
            (i * 16 + j * 4 + k) as f32
        });
        assert_eq!(Volume3::get_clamped(&g, -1, 5, 2), g.get(0, 3, 2));
    }

    #[test]
    fn fn_volume_works() {
        let v = FnVolume::new(Dims3::cube(8), |i, _, _| i as f32);
        assert_eq!(v.get(5, 0, 0), 5.0);
        assert_eq!(v.get_clamped(100, 0, 0), 7.0);
    }

    #[test]
    fn reference_forwarding() {
        let v = FnVolume::new(Dims3::cube(2), |_, _, _| 1.0);
        fn total<V: Volume3>(v: V) -> f32 {
            let d = v.dims();
            d.iter().map(|(i, j, k)| v.get(i, j, k)).sum()
        }
        assert_eq!(total(&v), 8.0);
    }
}
