//! The scalar-volume access abstraction kernels are written against.
//!
//! Both application kernels (bilateral filter, raycaster) read a 3D scalar
//! field one sample at a time. Abstracting that read behind [`Volume3`]
//! lets the *same monomorphized kernel* run over any layout, and lets
//! `sfc-memsim` interpose an address-tracing wrapper without touching
//! kernel code.

use crate::cursor::Cursor3;
use crate::dims::{Axis, Dims3};
use crate::grid::Grid3;
use crate::layout::Layout3;

/// Read-only access to a 3D scalar field.
pub trait Volume3 {
    /// Logical dimensions of the field.
    fn dims(&self) -> Dims3;

    /// Sample the field at an in-bounds coordinate.
    fn get(&self, i: usize, j: usize, k: usize) -> f32;

    /// Sample with edge-clamped signed coordinates (the stencil boundary
    /// rule used by the bilateral filter).
    #[inline]
    fn get_clamped(&self, i: isize, j: isize, k: isize) -> f32 {
        let d = self.dims();
        let ci = i.clamp(0, d.nx as isize - 1) as usize;
        let cj = j.clamp(0, d.ny as isize - 1) as usize;
        let ck = k.clamp(0, d.nz as isize - 1) as usize;
        self.get(ci, cj, ck)
    }

    /// Read `dst.len()` consecutive samples along `axis` starting at
    /// `(i,j,k)` — the whole run must be in bounds.
    ///
    /// The default reads one sample at a time (so tracing wrappers see
    /// every access); [`Grid3`] overrides it with a single cursor walk
    /// that amortizes all index computation across the run. The values
    /// written are identical either way.
    #[inline]
    fn gather_axis_run(&self, i: usize, j: usize, k: usize, axis: Axis, dst: &mut [f32]) {
        for (t, v) in dst.iter_mut().enumerate() {
            let (ci, cj, ck) = match axis {
                Axis::X => (i + t, j, k),
                Axis::Y => (i, j + t, k),
                Axis::Z => (i, j, k + t),
            };
            *v = self.get(ci, cj, ck);
        }
    }

    /// Read the 8 corners of the trilinear cell whose low corner is
    /// `(x0,y0,z0)`, returned as
    /// `[c000, c100, c010, c110, c001, c101, c011, c111]`
    /// (`cXYZ` = corner at `x0+X, y0+Y, z0+Z`). High corners clamp to the
    /// last in-bounds plane, matching the sampler's edge rule.
    ///
    /// The default issues 8 independent `get` calls; [`Grid3`] overrides
    /// it with a 7-step Gray-code cursor walk (each corner one unit step
    /// from the previous) so only the base corner pays full index math.
    #[inline]
    fn cell_corners(&self, x0: usize, y0: usize, z0: usize) -> [f32; 8] {
        let d = self.dims();
        let x1 = (x0 + 1).min(d.nx - 1);
        let y1 = (y0 + 1).min(d.ny - 1);
        let z1 = (z0 + 1).min(d.nz - 1);
        [
            self.get(x0, y0, z0),
            self.get(x1, y0, z0),
            self.get(x0, y1, z0),
            self.get(x1, y1, z0),
            self.get(x0, y0, z1),
            self.get(x1, y0, z1),
            self.get(x0, y1, z1),
            self.get(x1, y1, z1),
        ]
    }
}

impl<L: Layout3> Volume3 for Grid3<f32, L> {
    #[inline]
    fn dims(&self) -> Dims3 {
        Grid3::dims(self)
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        Grid3::get(self, i, j, k)
    }

    #[inline]
    fn gather_axis_run(&self, i: usize, j: usize, k: usize, axis: Axis, dst: &mut [f32]) {
        let n = dst.len();
        if n == 0 {
            return;
        }
        debug_assert!({
            let (mut ci, mut cj, mut ck) = (i, j, k);
            match axis {
                Axis::X => ci += n - 1,
                Axis::Y => cj += n - 1,
                Axis::Z => ck += n - 1,
            }
            Grid3::dims(self).contains(ci, cj, ck)
        });
        let storage = self.storage();
        let mut c = self.layout().cursor(i, j, k);
        for (t, v) in dst.iter_mut().enumerate() {
            *v = storage[c.index()];
            // Never step past the last sample — a step outside the logical
            // domain has unspecified cursor state.
            if t + 1 < n {
                c.step(axis, true);
            }
        }
    }

    #[inline]
    fn cell_corners(&self, x0: usize, y0: usize, z0: usize) -> [f32; 8] {
        let d = Grid3::dims(self);
        // When a high corner clamps, skip the step: the cursor stays on
        // the low plane and the read duplicates it, matching the default.
        let hx = x0 + 1 < d.nx;
        let hy = y0 + 1 < d.ny;
        let hz = z0 + 1 < d.nz;
        let s = self.storage();
        let mut c = self.layout().cursor(x0, y0, z0);
        let c000 = s[c.index()];
        if hx {
            c.inc_x();
        }
        let c100 = s[c.index()];
        if hy {
            c.inc_y();
        }
        let c110 = s[c.index()];
        if hx {
            c.dec_x();
        }
        let c010 = s[c.index()];
        if hz {
            c.inc_z();
        }
        let c011 = s[c.index()];
        if hx {
            c.inc_x();
        }
        let c111 = s[c.index()];
        if hy {
            c.dec_y();
        }
        let c101 = s[c.index()];
        if hx {
            c.dec_x();
        }
        let c001 = s[c.index()];
        [c000, c100, c010, c110, c001, c101, c011, c111]
    }
}

impl<V: Volume3 + ?Sized> Volume3 for &V {
    #[inline]
    fn dims(&self) -> Dims3 {
        (**self).dims()
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        (**self).get(i, j, k)
    }

    #[inline]
    fn gather_axis_run(&self, i: usize, j: usize, k: usize, axis: Axis, dst: &mut [f32]) {
        (**self).gather_axis_run(i, j, k, axis, dst)
    }

    #[inline]
    fn cell_corners(&self, x0: usize, y0: usize, z0: usize) -> [f32; 8] {
        (**self).cell_corners(x0, y0, z0)
    }
}

/// A volume computed on the fly from a function (useful in tests).
pub struct FnVolume<F: Fn(usize, usize, usize) -> f32> {
    dims: Dims3,
    f: F,
}

impl<F: Fn(usize, usize, usize) -> f32> FnVolume<F> {
    /// Wrap `f` as a volume of the given dimensions.
    pub fn new(dims: Dims3, f: F) -> Self {
        Self { dims, f }
    }
}

impl<F: Fn(usize, usize, usize) -> f32> Volume3 for FnVolume<F> {
    #[inline]
    fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    fn get(&self, i: usize, j: usize, k: usize) -> f32 {
        debug_assert!(self.dims.contains(i, j, k));
        (self.f)(i, j, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts::ZOrder3;

    #[test]
    fn grid_implements_volume() {
        let g = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(4), |i, j, k| {
            (i + j + k) as f32
        });
        let v: &dyn Volume3 = &g;
        assert_eq!(v.get(1, 2, 3), 6.0);
        assert_eq!(v.dims(), Dims3::cube(4));
    }

    #[test]
    fn clamping_matches_grid_clamping() {
        let g = Grid3::<f32, ZOrder3>::from_fn(Dims3::cube(4), |i, j, k| {
            (i * 16 + j * 4 + k) as f32
        });
        assert_eq!(Volume3::get_clamped(&g, -1, 5, 2), g.get(0, 3, 2));
    }

    #[test]
    fn fn_volume_works() {
        let v = FnVolume::new(Dims3::cube(8), |i, _, _| i as f32);
        assert_eq!(v.get(5, 0, 0), 5.0);
        assert_eq!(v.get_clamped(100, 0, 0), 7.0);
    }

    #[test]
    fn reference_forwarding() {
        let v = FnVolume::new(Dims3::cube(2), |_, _, _| 1.0);
        fn total<V: Volume3>(v: V) -> f32 {
            let d = v.dims();
            d.iter().map(|(i, j, k)| v.get(i, j, k)).sum()
        }
        assert_eq!(total(&v), 8.0);
    }
}
