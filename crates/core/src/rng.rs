//! Small deterministic PRNG used across the workspace.
//!
//! The workspace builds in environments without access to crates.io, so
//! instead of the `rand` crate we carry a tiny splitmix64 generator:
//! deterministic for a seed, statistically solid for test-data synthesis
//! (it is the seeding generator recommended by the xoshiro authors), and
//! trivially auditable. It backs the synthetic-volume generators, the
//! fault-injection harness, and the randomized property tests.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Equal seeds yield equal streams on every
    /// platform — tests and data generators rely on this.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn f32_unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f32_unit()
    }

    /// Uniform `u64` in `[0, n)` via Lemire-style rejection-free widening
    /// (bias is negligible for the modest `n` used here).
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.u64_below((hi - lo) as u64) as usize
    }

    /// Fair coin with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.f32_unit() < p
    }

    /// Fork an independent stream (for decorrelated sub-generators).
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f32_unit_in_range_and_varied() {
        let mut r = SplitMix64::new(7);
        let vals: Vec<f32> = (0..1000).map(|_| r.f32_unit()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from uniform");
    }

    #[test]
    fn ranges_respected() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.usize_in(5, 9);
            assert!((5..9).contains(&v));
            let f = r.f32_in(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn u64_below_covers_small_domains() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.u64_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forked_streams_decorrelate() {
        let mut r = SplitMix64::new(5);
        let mut f = r.fork();
        assert_ne!(r.next_u64(), f.next_u64());
    }
}
