//! # sfc-core — space-filling-curve memory layouts for structured data
//!
//! Core library of a reproduction of Bethel, Camp, Donofrio & Howison,
//! *"Improving Performance of Structured-Memory, Data-Intensive
//! Applications on Multi-core Platforms via a Space-Filling Curve Memory
//! Layout"* (IPDPS 2015 Workshops / HPDIC).
//!
//! The paper's central artifact is a lightweight indexing library that lets
//! an application store a multidimensional array in either traditional
//! **array order** (row-major) or **Z-order** (Morton space-filling curve)
//! behind one `get_index(i,j,k)` interface, with both index computations
//! implemented as table lookups so their cost is comparable and measured
//! performance differences reflect *memory locality alone*.
//!
//! ## Quick start
//!
//! ```
//! use sfc_core::{Dims3, Grid3, ZOrder3, ArrayOrder3};
//!
//! let dims = Dims3::cube(64);
//! // A grid in traditional row-major order …
//! let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, |i, j, k| (i + j + k) as f32);
//! // … and the same data in Z-order. Application code is identical.
//! let z: Grid3<f32, ZOrder3> = a.convert();
//! assert_eq!(a.get(10, 20, 30), z.get(10, 20, 30));
//! // Z-order keeps neighbors in all three directions close in memory:
//! let base = z.index_of(16, 32, 8);
//! assert_eq!(z.index_of(16, 32, 9), base + 4);
//! ```
//!
//! ## Module map
//!
//! * [`morton`] / [`hilbert`] — raw curve codecs (magic-bits and byte-LUT
//!   Morton; Skilling-transpose Hilbert).
//! * [`pattern`] — bit-interleave patterns generalizing Morton order to
//!   rectangular (per-axis power-of-two padded) domains.
//! * [`layout`] / [`layouts`] — the `Layout3`/`Layout2` traits and the four
//!   implementations: [`ArrayOrder3`], [`ZOrder3`], [`Tiled3`],
//!   [`HilbertOrder3`] (and 2D counterparts).
//! * [`cursor`] — O(1) incremental neighbor stepping per layout
//!   (dilated-integer arithmetic for Z-order), the engine behind the
//!   kernels' gather fast paths.
//! * [`grid`] — layout-generic containers [`Grid3`]/[`Grid2`].
//! * [`volume`] — the [`Volume3`] sampling trait kernels are written
//!   against (and which `sfc-memsim` instruments).
//! * [`iter`] — pencil and image-tile work decomposition.
//! * [`stencil`] — stencil offset enumeration with configurable loop order.

#![warn(missing_docs)]

pub mod cursor;
pub mod dims;
pub mod dyn_grid;
pub mod error;
pub mod grid;
pub mod hash;
pub mod hilbert;
pub mod iter;
pub mod layout;
pub mod layouts;
pub mod morton;
pub mod pattern;
pub mod rng;
pub mod stats;
pub mod stencil;
pub mod volume;

pub use cursor::{ArrayCursor3, Cursor3, HilbertCursor3, RecomputeCursor, TiledCursor3, ZCursor3};
pub use hilbert::HilbertTables3;
pub use dims::{bits_for, next_pow2, Axis, Dims2, Dims3};
pub use dyn_grid::DynGrid3;
pub use error::{SfcError, SfcResult};
pub use grid::{Grid2, Grid3};
pub use hash::fnv1a64;
pub use iter::{image_tiles, pencil, pencil_count, pencils, Pencil, TileRect};
pub use layout::{Layout2, Layout3, LayoutKind};
pub use layouts::{
    ArrayOrder2, ArrayOrder3, HilbertOrder2, HilbertOrder3, Tiled2, Tiled3, ZOrder2,
    ZOrder3,
};
pub use rng::SplitMix64;
pub use stats::{anisotropy, axis_step_stats, StepStats};
pub use stencil::{stencil_offsets, StencilOrder, StencilSize};
pub use volume::{FnVolume, Volume3};
