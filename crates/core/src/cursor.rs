//! Incremental index cursors: O(1) unit steps through a layout.
//!
//! The paper's §III-C access interface recomputes the storage index from
//! scratch on every `get_index(i,j,k)` call — three table lookups and two
//! ORs for Z-order. That cost is "on equal footing" across layouts, but
//! stencil and sampling kernels pay it per *tap*: an 11³ bilateral stencil
//! issues 1,331 full index computations per voxel even though consecutive
//! taps differ by a single unit step.
//!
//! A [`Cursor3`] removes the redundancy: positioned once with
//! [`Layout3::cursor`], it moves to an axis neighbor in O(1) arithmetic
//! with **no table accesses**:
//!
//! * array order — strided add/subtract (`±1`, `±nx`, `±nx·ny`);
//! * Z-order — masked dilated-integer add/subtract over the axis bit
//!   masks of the interleave pattern (the classic Morton neighbor trick:
//!   set the other axes' bits to all-ones so the carry ripples only
//!   through this axis's bit positions; see Holzmüller, *Efficient
//!   Neighbor-Finding on Space-Filling Curves*);
//! * tiled — intra-brick strided add with a brick-boundary slow path
//!   (constant per-axis crossing delta, still O(1));
//! * Hilbert — no per-axis decomposition exists, but the recursive-descent
//!   automaton ([`crate::hilbert::HilbertTables3`]) makes unit steps
//!   amortized-O(1): only the bit planes below the highest carry bit are
//!   re-descended (Holzmüller, *Efficient Neighbor-Finding on
//!   Space-Filling Curves*). The old O(bits)-per-step
//!   [`RecomputeCursor`] is kept for ablation.
//!
//! Cursors are plain values (no allocation, no borrows), so kernels can
//! keep one per scan row and step it millions of times. Stepping outside
//! the logical domain is a logic error: the resulting index is
//! unspecified in release builds, while debug builds track the logical
//! coordinate alongside the storage index and panic on the first step
//! that leaves the domain — misuse fails loudly under `cargo test`
//! instead of producing a garbage-but-in-bounds index and silently wrong
//! reads.
//!
//! Every implementation upholds the walk invariant verified by the crate's
//! property tests: after any in-bounds sequence of unit steps from
//! `layout.cursor(i,j,k)`, `cursor.index() == layout.index(i',j',k')` for
//! the stepped-to coordinate.

use crate::dims::Axis;
#[cfg(debug_assertions)]
use crate::dims::Dims3;

/// Debug-build logical-coordinate tracker embedded in every cursor.
///
/// Release cursors carry only the storage index (and whatever strides
/// they need), so a miscomputed iteration domain would silently produce
/// a wrong-but-in-bounds index. Under `cfg(debug_assertions)` each cursor
/// also carries its logical `(i,j,k)` and the layout's dims, and every
/// step asserts it stays inside the domain.
#[cfg(debug_assertions)]
#[derive(Debug, Clone, Copy)]
struct DebugDomain {
    i: usize,
    j: usize,
    k: usize,
    dims: Dims3,
}

#[cfg(debug_assertions)]
impl DebugDomain {
    fn new((i, j, k): (usize, usize, usize), dims: Dims3) -> Self {
        assert!(
            dims.contains(i, j, k),
            "cursor positioned out of bounds at ({i},{j},{k}) in {dims:?}"
        );
        Self { i, j, k, dims }
    }

    #[track_caller]
    fn step(&mut self, axis: Axis, forward: bool) {
        let (coord, extent) = match axis {
            Axis::X => (&mut self.i, self.dims.nx),
            Axis::Y => (&mut self.j, self.dims.ny),
            Axis::Z => (&mut self.k, self.dims.nz),
        };
        if forward {
            assert!(
                *coord + 1 < extent,
                "cursor stepped past the {axis:?} extent {extent} (at {coord}) in {:?}",
                self.dims
            );
            *coord += 1;
        } else {
            assert!(
                *coord > 0,
                "cursor stepped below 0 along {axis:?} in {:?}",
                self.dims
            );
            *coord -= 1;
        }
    }
}

/// An incremental position inside a 3D layout's storage mapping.
///
/// `inc_*` moves one voxel forward along an axis, `dec_*` one voxel
/// backward; both are O(1) for every layout except Hilbert. The cursor
/// does not bounds-check in release builds — callers own the iteration
/// domain (kernels step only within rows they have verified in-bounds);
/// debug builds assert every step stays inside the logical domain.
pub trait Cursor3: Clone {
    /// Storage slot of the current position.
    fn index(&self) -> usize;

    /// Step `+1` along x.
    fn inc_x(&mut self);
    /// Step `-1` along x.
    fn dec_x(&mut self);
    /// Step `+1` along y.
    fn inc_y(&mut self);
    /// Step `-1` along y.
    fn dec_y(&mut self);
    /// Step `+1` along z.
    fn inc_z(&mut self);
    /// Step `-1` along z.
    fn dec_z(&mut self);

    /// Step one voxel along `axis`, forward (`true`) or backward.
    #[inline]
    fn step(&mut self, axis: Axis, forward: bool) {
        match (axis, forward) {
            (Axis::X, true) => self.inc_x(),
            (Axis::X, false) => self.dec_x(),
            (Axis::Y, true) => self.inc_y(),
            (Axis::Y, false) => self.dec_y(),
            (Axis::Z, true) => self.inc_z(),
            (Axis::Z, false) => self.dec_z(),
        }
    }
}

/// Cursor for [`crate::ArrayOrder3`]: pure strided arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct ArrayCursor3 {
    idx: usize,
    /// `nx` (y stride).
    sy: usize,
    /// `nx * ny` (z stride).
    sz: usize,
    #[cfg(debug_assertions)]
    dbg: DebugDomain,
}

impl ArrayCursor3 {
    pub(crate) fn new(
        idx: usize,
        sy: usize,
        sz: usize,
        pos: (usize, usize, usize),
        dims: crate::dims::Dims3,
    ) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (pos, dims);
        Self {
            idx,
            sy,
            sz,
            #[cfg(debug_assertions)]
            dbg: DebugDomain::new(pos, dims),
        }
    }
}

impl Cursor3 for ArrayCursor3 {
    #[inline]
    fn index(&self) -> usize {
        self.idx
    }
    #[inline]
    fn inc_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, true);
        self.idx += 1;
    }
    #[inline]
    fn dec_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, false);
        self.idx -= 1;
    }
    #[inline]
    fn inc_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, true);
        self.idx += self.sy;
    }
    #[inline]
    fn dec_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, false);
        self.idx -= self.sy;
    }
    #[inline]
    fn inc_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, true);
        self.idx += self.sz;
    }
    #[inline]
    fn dec_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, false);
        self.idx -= self.sz;
    }
}

/// Cursor for [`crate::ZOrder3`]: masked dilated-integer arithmetic.
///
/// Holding the Morton code `m` and this axis's bit mask `M`, the neighbor
/// at `+1` along the axis is `(((m | !M) + 1) & M) | (m & !M)`: the
/// non-axis bits are forced to 1 so the binary carry ripples only through
/// the axis's (possibly non-contiguous) bit positions. `-1` is the dual
/// borrow form `(((m & M) - 1) & M) | (m & !M)`. Both are a handful of
/// ALU ops — no tables, no loops — and work for the generalized
/// round-robin interleave of rectangular domains because the trick only
/// needs the mask, not any particular bit spacing.
#[derive(Debug, Clone, Copy)]
pub struct ZCursor3 {
    idx: u64,
    mx: u64,
    my: u64,
    mz: u64,
    #[cfg(debug_assertions)]
    dbg: DebugDomain,
}

impl ZCursor3 {
    pub(crate) fn new(
        idx: u64,
        mx: u64,
        my: u64,
        mz: u64,
        pos: (usize, usize, usize),
        dims: crate::dims::Dims3,
    ) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (pos, dims);
        Self {
            idx,
            mx,
            my,
            mz,
            #[cfg(debug_assertions)]
            dbg: DebugDomain::new(pos, dims),
        }
    }

    #[inline]
    fn inc(&mut self, mask: u64) {
        self.idx = (((self.idx | !mask).wrapping_add(1)) & mask) | (self.idx & !mask);
    }

    #[inline]
    fn dec(&mut self, mask: u64) {
        self.idx = (((self.idx & mask).wrapping_sub(1)) & mask) | (self.idx & !mask);
    }
}

impl Cursor3 for ZCursor3 {
    #[inline]
    fn index(&self) -> usize {
        self.idx as usize
    }
    #[inline]
    fn inc_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, true);
        self.inc(self.mx);
    }
    #[inline]
    fn dec_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, false);
        self.dec(self.mx);
    }
    #[inline]
    fn inc_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, true);
        self.inc(self.my);
    }
    #[inline]
    fn dec_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, false);
        self.dec(self.my);
    }
    #[inline]
    fn inc_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, true);
        self.inc(self.mz);
    }
    #[inline]
    fn dec_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, false);
        self.dec(self.mz);
    }
}

/// Cursor for [`crate::Tiled3`]: intra-brick strides with a constant
/// brick-crossing delta per axis.
///
/// Tracks the position *within* the current brick so the common case
/// (stay inside the brick) is a compare plus strided add; crossing a
/// brick boundary applies the precomputed jump to the same intra-brick
/// row of the adjacent brick. Both paths are O(1).
#[derive(Debug, Clone, Copy)]
pub struct TiledCursor3 {
    idx: usize,
    /// Intra-brick coordinates.
    ri: usize,
    rj: usize,
    rk: usize,
    /// Brick extents.
    tx: usize,
    ty: usize,
    tz: usize,
    /// Intra-brick strides along y and z (`tx`, `tx*ty`).
    sy: usize,
    sz: usize,
    /// Index delta when crossing a brick boundary forward along each axis.
    cross_x: usize,
    cross_y: usize,
    cross_z: usize,
    #[cfg(debug_assertions)]
    dbg: DebugDomain,
}

impl TiledCursor3 {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        idx: usize,
        (ri, rj, rk): (usize, usize, usize),
        (tx, ty, tz): (usize, usize, usize),
        (cross_x, cross_y, cross_z): (usize, usize, usize),
        pos: (usize, usize, usize),
        dims: crate::dims::Dims3,
    ) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (pos, dims);
        Self {
            idx,
            ri,
            rj,
            rk,
            tx,
            ty,
            tz,
            sy: tx,
            sz: tx * ty,
            cross_x,
            cross_y,
            cross_z,
            #[cfg(debug_assertions)]
            dbg: DebugDomain::new(pos, dims),
        }
    }
}

impl Cursor3 for TiledCursor3 {
    #[inline]
    fn index(&self) -> usize {
        self.idx
    }
    #[inline]
    fn inc_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, true);
        self.ri += 1;
        if self.ri == self.tx {
            self.ri = 0;
            self.idx += self.cross_x;
        } else {
            self.idx += 1;
        }
    }
    #[inline]
    fn dec_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, false);
        if self.ri == 0 {
            self.ri = self.tx - 1;
            self.idx -= self.cross_x;
        } else {
            self.ri -= 1;
            self.idx -= 1;
        }
    }
    #[inline]
    fn inc_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, true);
        self.rj += 1;
        if self.rj == self.ty {
            self.rj = 0;
            self.idx += self.cross_y;
        } else {
            self.idx += self.sy;
        }
    }
    #[inline]
    fn dec_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, false);
        if self.rj == 0 {
            self.rj = self.ty - 1;
            self.idx -= self.cross_y;
        } else {
            self.rj -= 1;
            self.idx -= self.sy;
        }
    }
    #[inline]
    fn inc_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, true);
        self.rk += 1;
        if self.rk == self.tz {
            self.rk = 0;
            self.idx += self.cross_z;
        } else {
            self.idx += self.sz;
        }
    }
    #[inline]
    fn dec_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, false);
        if self.rk == 0 {
            self.rk = self.tz - 1;
            self.idx -= self.cross_z;
        } else {
            self.rk -= 1;
            self.idx -= self.sz;
        }
    }
}

/// Incremental cursor for [`crate::HilbertOrder3`]: amortized-O(1) unit
/// steps via the recursive-descent automaton of
/// [`crate::hilbert::HilbertTables3`].
///
/// The Hilbert index has no per-axis decomposition, but a unit step only
/// changes the coordinate bits at planes `t..=0` where `t` is the highest
/// bit flipped by the `±1` carry — and the curve digits above plane `t`
/// depend only on coordinate bits above `t`, so they are untouched. The
/// cursor therefore keeps, per bit plane, the automaton state in effect
/// *before* that plane was consumed (`states[b]`), and on a step
/// re-descends only planes `t..=0`, rebuilding the low `3(t+1)` index
/// bits from the saved state at plane `t`. A `+1`/`-1` carry reaches
/// plane `t` with probability `2^-t`, so the expected work per step is
/// `Σ (t+1)·2^-t = O(1)` — the Holzmüller neighbor-finding bound
/// (arXiv:1710.06384), here in mutable-cursor form.
///
/// Walk invariant (pinned by the crate property tests): after any
/// in-bounds unit-step sequence, `index()` equals
/// `hilbert3_encode(x, y, z, bits)` for the stepped-to coordinate.
/// Out-of-domain steps panic in debug builds (like every cursor here);
/// in release the coordinate wraps and the index is unspecified but the
/// step never panics or reads out of the tables.
#[derive(Debug, Clone, Copy)]
pub struct HilbertCursor3 {
    tables: &'static crate::hilbert::HilbertTables3,
    /// Curve order; `3 * bits` index bits total.
    bits: u32,
    x: u32,
    y: u32,
    z: u32,
    idx: u64,
    /// `states[b]` — automaton state before consuming bit plane `b`
    /// (plane `bits - 1` is the root state 0). Entries above `bits` are
    /// unused.
    states: [u8; crate::hilbert::MAX_BITS3 as usize],
    #[cfg(debug_assertions)]
    dbg: DebugDomain,
}

impl HilbertCursor3 {
    pub(crate) fn new(
        bits: u32,
        (i, j, k): (usize, usize, usize),
        dims: crate::dims::Dims3,
    ) -> Self {
        assert!(
            bits <= crate::hilbert::MAX_BITS3,
            "Hilbert cursor supports at most {} bits per axis, got {bits}",
            crate::hilbert::MAX_BITS3
        );
        #[cfg(not(debug_assertions))]
        let _ = dims;
        let (x, y, z) = (i as u32, j as u32, k as u32);
        let tables = crate::hilbert::HilbertTables3::get();
        let mut states = [0u8; crate::hilbert::MAX_BITS3 as usize];
        let mut s = 0u8;
        let mut idx = 0u64;
        for b in (0..bits).rev() {
            states[b as usize] = s;
            let c = crate::hilbert::octant3(x, y, z, b);
            idx = (idx << 3) | u64::from(tables.digit(s, c));
            s = tables.child(s, c);
        }
        Self {
            tables,
            bits,
            x,
            y,
            z,
            idx,
            states,
            #[cfg(debug_assertions)]
            dbg: DebugDomain::new((i, j, k), dims),
        }
    }

    /// Apply a `±1` step to one coordinate and re-descend the automaton
    /// from the highest changed bit plane down.
    #[inline]
    fn restep(&mut self, axis: Axis, forward: bool) {
        let coord = match axis {
            Axis::X => &mut self.x,
            Axis::Y => &mut self.y,
            Axis::Z => &mut self.z,
        };
        let old = *coord;
        // Wrapping: release-mode out-of-domain steps stay panic-free (the
        // resulting index is unspecified; debug builds already rejected
        // the step above in the Cursor3 impl).
        let new = if forward {
            old.wrapping_add(1)
        } else {
            old.wrapping_sub(1)
        };
        *coord = new;
        if self.bits == 0 {
            return;
        }
        // `old != new`, so `old ^ new` is non-zero; its top set bit is the
        // highest plane whose octant changed. Clamp to the top plane so a
        // wrapped out-of-domain coordinate can't index past the stack.
        let t = (31 - (old ^ new).leading_zeros()).min(self.bits - 1);
        if t == 0 {
            // Half of all unit steps stay inside the lowest-plane octet:
            // the state stack is untouched and only the bottom index
            // digit changes — one packed-table read.
            let c = crate::hilbert::octant3(self.x, self.y, self.z, 0);
            let d = self.tables.digit(self.states[0], c);
            self.idx = (self.idx & !7) | u64::from(d);
            return;
        }
        let mut s = self.states[t as usize];
        let mut low = 0u64;
        for b in (1..=t).rev() {
            self.states[b as usize] = s;
            let c = crate::hilbert::octant3(self.x, self.y, self.z, b);
            let (d, child) = self.tables.step(s, c);
            low = (low << 3) | u64::from(d);
            s = child;
        }
        // Lowest plane: emit the digit only (no descent below plane 0).
        self.states[0] = s;
        let c = crate::hilbert::octant3(self.x, self.y, self.z, 0);
        low = (low << 3) | u64::from(self.tables.digit(s, c));
        // 3 * (t + 1) <= 3 * MAX_BITS3 = 63, so the shift is in range.
        let mask = (1u64 << (3 * (t + 1))) - 1;
        self.idx = (self.idx & !mask) | low;
    }
}

impl Cursor3 for HilbertCursor3 {
    #[inline]
    fn index(&self) -> usize {
        self.idx as usize
    }
    #[inline]
    fn inc_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, true);
        self.restep(Axis::X, true);
    }
    #[inline]
    fn dec_x(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::X, false);
        self.restep(Axis::X, false);
    }
    #[inline]
    fn inc_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, true);
        self.restep(Axis::Y, true);
    }
    #[inline]
    fn dec_y(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Y, false);
        self.restep(Axis::Y, false);
    }
    #[inline]
    fn inc_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, true);
        self.restep(Axis::Z, true);
    }
    #[inline]
    fn dec_z(&mut self) {
        #[cfg(debug_assertions)]
        self.dbg.step(Axis::Z, false);
        self.restep(Axis::Z, false);
    }
}

/// Fallback cursor for layouts with no per-axis index decomposition:
/// stores the logical coordinate and re-runs the layout's full
/// `index()` on every step. Correct everywhere, O(index) per step — the
/// cost the cursor API exists to avoid, kept so ablations (and
/// `bench_speed_pass`'s "before" rows) can measure the gap against the
/// incremental cursors.
#[derive(Debug, Clone)]
pub struct RecomputeCursor<L: crate::layout::Layout3> {
    layout: L,
    i: usize,
    j: usize,
    k: usize,
    idx: usize,
}

impl<L: crate::layout::Layout3> RecomputeCursor<L> {
    /// Position a recompute cursor (clones the layout handle; all layouts
    /// here share tables via `Arc`, so this is cheap).
    pub fn new(layout: &L, i: usize, j: usize, k: usize) -> Self {
        let idx = layout.index(i, j, k);
        Self {
            layout: layout.clone(),
            i,
            j,
            k,
            idx,
        }
    }

    #[inline]
    fn refresh(&mut self) {
        self.idx = self.layout.index(self.i, self.j, self.k);
    }
}

impl<L: crate::layout::Layout3> Cursor3 for RecomputeCursor<L> {
    #[inline]
    fn index(&self) -> usize {
        self.idx
    }
    #[inline]
    fn inc_x(&mut self) {
        debug_assert!(self.i + 1 < self.layout.dims().nx, "cursor stepped past x extent");
        self.i += 1;
        self.refresh();
    }
    #[inline]
    fn dec_x(&mut self) {
        debug_assert!(self.i > 0, "cursor stepped below 0 along x");
        self.i -= 1;
        self.refresh();
    }
    #[inline]
    fn inc_y(&mut self) {
        debug_assert!(self.j + 1 < self.layout.dims().ny, "cursor stepped past y extent");
        self.j += 1;
        self.refresh();
    }
    #[inline]
    fn dec_y(&mut self) {
        debug_assert!(self.j > 0, "cursor stepped below 0 along y");
        self.j -= 1;
        self.refresh();
    }
    #[inline]
    fn inc_z(&mut self) {
        debug_assert!(self.k + 1 < self.layout.dims().nz, "cursor stepped past z extent");
        self.k += 1;
        self.refresh();
    }
    #[inline]
    fn dec_z(&mut self) {
        debug_assert!(self.k > 0, "cursor stepped below 0 along z");
        self.k -= 1;
        self.refresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;
    use crate::layout::Layout3;
    use crate::layouts::{ArrayOrder3, HilbertOrder3, Tiled3, ZOrder3};

    fn walk_matches_index<L: Layout3>(dims: Dims3) {
        let l = L::new(dims);
        // Snake over the whole domain: x sweeps alternate direction so
        // every step is a unit cursor move.
        let mut c = l.cursor(0, 0, 0);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        assert_eq!(c.index(), l.index(0, 0, 0));
        loop {
            let forward = (j + k) % 2 == 0;
            let done_row = if forward { i + 1 == dims.nx } else { i == 0 };
            if !done_row {
                if forward {
                    c.inc_x();
                    i += 1;
                } else {
                    c.dec_x();
                    i -= 1;
                }
            } else if j + 1 < dims.ny {
                c.inc_y();
                j += 1;
            } else if k + 1 < dims.nz {
                // Reset y by walking back down before moving up in z would
                // complicate the snake; instead step z and walk y back.
                c.inc_z();
                k += 1;
                while j > 0 {
                    c.dec_y();
                    j -= 1;
                    assert_eq!(c.index(), l.index(i, j, k));
                }
            } else {
                break;
            }
            assert_eq!(c.index(), l.index(i, j, k), "at ({i},{j},{k})");
        }
    }

    #[test]
    fn array_cursor_snake_walk() {
        walk_matches_index::<ArrayOrder3>(Dims3::new(5, 4, 3));
    }

    #[test]
    fn zorder_cursor_snake_walk() {
        walk_matches_index::<ZOrder3>(Dims3::new(8, 8, 8));
        walk_matches_index::<ZOrder3>(Dims3::new(5, 3, 9));
    }

    #[test]
    fn tiled_cursor_snake_walk() {
        walk_matches_index::<Tiled3>(Dims3::new(9, 10, 11));
    }

    #[test]
    fn hilbert_cursor_snake_walk() {
        walk_matches_index::<HilbertOrder3>(Dims3::new(4, 4, 4));
    }

    #[test]
    fn zorder_axis_runs_match_index_every_step() {
        let dims = Dims3::new(16, 8, 4);
        let l = ZOrder3::new(dims);
        for axis in crate::dims::Axis::ALL {
            let n = axis.extent(dims);
            let mut c = l.cursor(1, 1, 1);
            let (mut i, mut j, mut k) = (1usize, 1usize, 1usize);
            for _ in 1..n - 1 {
                c.step(axis, true);
                match axis {
                    crate::dims::Axis::X => i += 1,
                    crate::dims::Axis::Y => j += 1,
                    crate::dims::Axis::Z => k += 1,
                }
                assert_eq!(c.index(), l.index(i, j, k));
            }
        }
    }

    #[test]
    fn tiled_cursor_crosses_brick_boundaries() {
        // 4³ bricks: steps from coordinate 3 to 4 cross a brick edge on
        // every axis; from 7 to 8 cross into a partial brick.
        let l = Tiled3::with_brick(Dims3::new(9, 9, 9), (4, 4, 4));
        let mut c = l.cursor(3, 3, 3);
        c.inc_x();
        assert_eq!(c.index(), l.index(4, 3, 3));
        c.inc_y();
        assert_eq!(c.index(), l.index(4, 4, 3));
        c.inc_z();
        assert_eq!(c.index(), l.index(4, 4, 4));
        c.dec_x();
        assert_eq!(c.index(), l.index(3, 4, 4));
        let mut c = l.cursor(7, 0, 0);
        c.inc_x();
        assert_eq!(c.index(), l.index(8, 0, 0));
        c.dec_x();
        assert_eq!(c.index(), l.index(7, 0, 0));
    }

    // Misuse must fail loudly in debug builds (release leaves it
    // unspecified, so these only compile in under debug_assertions).
    #[cfg(debug_assertions)]
    mod debug_bounds {
        use super::*;

        #[test]
        #[should_panic(expected = "below 0")]
        fn array_cursor_underflow_panics() {
            let l = ArrayOrder3::new(Dims3::cube(4));
            let mut c = l.cursor(0, 0, 0);
            c.dec_x();
        }

        #[test]
        #[should_panic(expected = "past the")]
        fn zorder_degenerate_axis_step_panics() {
            // nz == 1: the z axis mask is empty and a release-mode step
            // would silently no-op; debug must reject it.
            let l = ZOrder3::new(Dims3::new(4, 4, 1));
            let mut c = l.cursor(0, 0, 0);
            c.inc_z();
        }

        #[test]
        #[should_panic(expected = "past the")]
        fn tiled_cursor_overflow_panics() {
            let l = Tiled3::new(Dims3::cube(4));
            let mut c = l.cursor(3, 0, 0);
            c.inc_x();
        }

        #[test]
        #[should_panic]
        fn hilbert_cursor_underflow_panics() {
            let l = HilbertOrder3::new(Dims3::cube(4));
            let mut c = l.cursor(0, 2, 2);
            c.dec_x();
        }
    }

    #[test]
    fn step_dispatches_by_axis() {
        let l = ArrayOrder3::new(Dims3::cube(4));
        let mut c = l.cursor(1, 1, 1);
        c.step(crate::dims::Axis::Z, true);
        c.step(crate::dims::Axis::Y, false);
        assert_eq!(c.index(), l.index(1, 0, 2));
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::{Dims3, Grid3, HilbertOrder3, Layout3, Volume3, ZOrder3};

    #[test]
    #[ignore]
    fn time_cursor_steps() {
        let dims = Dims3::cube(64);
        let vals: Vec<f32> = (0..dims.len()).map(|v| (v % 97) as f32).collect();
        let hz = Grid3::<f32, ZOrder3>::from_row_major(dims, &vals);
        let hh = Grid3::<f32, HilbertOrder3>::from_row_major(dims, &vals);
        let rounds = 20_000u32;
        // Pure stepping, no memory: walk +x across the row and back.
        let t0 = std::time::Instant::now();
        let mut acc = 0usize;
        for _ in 0..rounds {
            let mut c = hh.layout().cursor(0, 31, 17);
            for _ in 0..63 { c.inc_x(); acc ^= c.index(); }
            for _ in 0..63 { c.dec_x(); acc ^= c.index(); }
        }
        let per = t0.elapsed().as_secs_f64() * 1e9 / (rounds as f64 * 126.0);
        eprintln!("hilbert step only: {per:.2} ns/step (acc {acc})");
        let t0 = std::time::Instant::now();
        let mut acc = 0usize;
        for _ in 0..rounds {
            let mut c = hz.layout().cursor(0, 31, 17);
            for _ in 0..63 { c.inc_x(); acc ^= c.index(); }
            for _ in 0..63 { c.dec_x(); acc ^= c.index(); }
        }
        let per = t0.elapsed().as_secs_f64() * 1e9 / (rounds as f64 * 126.0);
        eprintln!("zorder step only: {per:.2} ns/step (acc {acc})");
        // Step + read: gather_axis_run into a row buffer.
        let mut buf = vec![0.0f32; 64];
        for (label, g) in [("hilbert", &hh as &dyn Volume3), ("zorder", &hz as &dyn Volume3)] {
            let t0 = std::time::Instant::now();
            let mut acc = 0.0f32;
            for r in 0..rounds {
                g.gather_axis_run(0, (r % 64) as usize, ((r * 7) % 64) as usize, Axis::X, &mut buf);
                acc += buf[0];
            }
            let per = t0.elapsed().as_secs_f64() * 1e9 / (rounds as f64 * 64.0);
            eprintln!("{label} gather row: {per:.2} ns/elem (acc {acc})");
        }
    }
}
