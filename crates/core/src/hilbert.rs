//! Hilbert curve encoding and decoding in 2 and 3 dimensions.
//!
//! The paper's background section (citing Reissmann et al. 2014) observes
//! that the Hilbert curve has slightly better locality than Z-order but a
//! substantially more expensive index computation, which in practice erases
//! the locality gain. We implement it so the `curve_ablation` bench can
//! reproduce that trade-off.
//!
//! Implementation: John Skilling, "Programming the Hilbert curve", AIP
//! Conference Proceedings 707 (2004) — the "transpose" form, generalized
//! over dimension `N` and per-axis bit count `bits`.

/// Convert axis coordinates into the transposed Hilbert representation
/// in place. `bits` is the per-axis order of the curve.
fn axes_to_transpose<const N: usize>(x: &mut [u32; N], bits: u32) {
    if bits == 0 {
        return;
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of the first axis
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t; // exchange low bits with the first axis
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Convert the transposed Hilbert representation back into axis coordinates
/// in place.
fn transpose_to_axes<const N: usize>(x: &mut [u32; N], bits: u32) {
    if bits == 0 {
        return;
    }
    let n = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != n {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack the transposed representation into a single linear index:
/// the most significant index bit is the top bit of `x[0]`, then the top
/// bit of `x[1]`, and so on, descending through bit planes.
fn transpose_to_index<const N: usize>(x: &[u32; N], bits: u32) -> u64 {
    let mut h = 0u64;
    for b in (0..bits).rev() {
        for v in x.iter() {
            h = (h << 1) | (((v >> b) & 1) as u64);
        }
    }
    h
}

/// Unpack a linear index into the transposed representation (inverse of
/// [`transpose_to_index`]).
fn index_to_transpose<const N: usize>(h: u64, bits: u32) -> [u32; N] {
    let mut x = [0u32; N];
    let mut pos = N as u32 * bits;
    for b in (0..bits).rev() {
        for v in x.iter_mut() {
            pos -= 1;
            *v |= (((h >> pos) & 1) as u32) << b;
        }
    }
    x
}

/// Encode an N-dimensional coordinate on a `2^bits` hypercube into its
/// Hilbert curve index.
///
/// # Panics
/// Debug-asserts every coordinate fits in `bits` bits and that the total
/// index fits in 64 bits.
pub fn hilbert_encode<const N: usize>(coords: [u32; N], bits: u32) -> u64 {
    debug_assert!(N as u32 * bits <= 64, "index exceeds 64 bits");
    debug_assert!(
        coords.iter().all(|&c| bits == 32 || c < (1u32 << bits)),
        "coordinate out of range for curve order"
    );
    let mut x = coords;
    axes_to_transpose(&mut x, bits);
    transpose_to_index(&x, bits)
}

/// Decode a Hilbert curve index back into an N-dimensional coordinate.
pub fn hilbert_decode<const N: usize>(h: u64, bits: u32) -> [u32; N] {
    let mut x = index_to_transpose::<N>(h, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Encode a 2D coordinate on a `2^bits` square.
#[inline]
pub fn hilbert2_encode(x: u32, y: u32, bits: u32) -> u64 {
    hilbert_encode([x, y], bits)
}

/// Decode a 2D Hilbert index.
#[inline]
pub fn hilbert2_decode(h: u64, bits: u32) -> (u32, u32) {
    let [x, y] = hilbert_decode::<2>(h, bits);
    (x, y)
}

/// Encode a 3D coordinate on a `2^bits` cube.
#[inline]
pub fn hilbert3_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    hilbert_encode([x, y, z], bits)
}

/// Decode a 3D Hilbert index.
#[inline]
pub fn hilbert3_decode(h: u64, bits: u32) -> (u32, u32, u32) {
    let [x, y, z] = hilbert_decode::<3>(h, bits);
    (x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manhattan<const N: usize>(a: [u32; N], b: [u32; N]) -> u32 {
        a.iter().zip(b.iter()).map(|(&p, &q)| p.abs_diff(q)).sum()
    }

    #[test]
    fn roundtrip_2d_exhaustive() {
        for bits in 1..=5u32 {
            let n = 1u32 << bits;
            for y in 0..n {
                for x in 0..n {
                    let h = hilbert2_encode(x, y, bits);
                    assert_eq!(hilbert2_decode(h, bits), (x, y));
                }
            }
        }
    }

    #[test]
    fn roundtrip_3d_exhaustive() {
        for bits in 1..=3u32 {
            let n = 1u32 << bits;
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let h = hilbert3_encode(x, y, z, bits);
                        assert_eq!(hilbert3_decode(h, bits), (x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn bijection_2d() {
        let bits = 4;
        let n = 1usize << bits;
        let mut seen = vec![false; n * n];
        for y in 0..n as u32 {
            for x in 0..n as u32 {
                let h = hilbert2_encode(x, y, bits) as usize;
                assert!(h < n * n);
                assert!(!seen[h]);
                seen[h] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_adjacency_2d() {
        // The defining Hilbert property: consecutive curve positions are
        // unit Manhattan distance apart.
        let bits = 5;
        let total = 1u64 << (2 * bits);
        let mut prev = hilbert_decode::<2>(0, bits);
        for h in 1..total {
            let cur = hilbert_decode::<2>(h, bits);
            assert_eq!(manhattan(prev, cur), 1, "step {h} is not adjacent");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_adjacency_3d() {
        let bits = 3;
        let total = 1u64 << (3 * bits);
        let mut prev = hilbert_decode::<3>(0, bits);
        for h in 1..total {
            let cur = hilbert_decode::<3>(h, bits);
            assert_eq!(manhattan(prev, cur), 1, "step {h} is not adjacent");
            prev = cur;
        }
    }

    #[test]
    fn starts_at_origin() {
        assert_eq!(hilbert2_decode(0, 4), (0, 0));
        assert_eq!(hilbert3_decode(0, 4), (0, 0, 0));
    }

    #[test]
    fn bits_zero_is_identity() {
        assert_eq!(hilbert2_encode(0, 0, 0), 0);
        assert_eq!(hilbert2_decode(0, 0), (0, 0));
    }

    #[test]
    fn order_one_2d_is_u_shape() {
        // At order 1 the curve visits the four cells of a 2x2 square in a
        // U: (0,0) (0,1) (1,1) (1,0) (up to the algorithm's orientation);
        // verify it is some Hamiltonian path with unit steps.
        let cells: Vec<_> = (0..4).map(|h| hilbert2_decode(h, 1)).collect();
        for w in cells.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1);
        }
    }
}
