//! Hilbert curve encoding and decoding in 2 and 3 dimensions.
//!
//! The paper's background section (citing Reissmann et al. 2014) observes
//! that the Hilbert curve has slightly better locality than Z-order but a
//! substantially more expensive index computation, which in practice erases
//! the locality gain. We implement it so the `curve_ablation` bench can
//! reproduce that trade-off.
//!
//! Implementation: John Skilling, "Programming the Hilbert curve", AIP
//! Conference Proceedings 707 (2004) — the "transpose" form, generalized
//! over dimension `N` and per-axis bit count `bits`.

/// Convert axis coordinates into the transposed Hilbert representation
/// in place. `bits` is the per-axis order of the curve.
fn axes_to_transpose<const N: usize>(x: &mut [u32; N], bits: u32) {
    if bits == 0 {
        return;
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of the first axis
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t; // exchange low bits with the first axis
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Convert the transposed Hilbert representation back into axis coordinates
/// in place.
fn transpose_to_axes<const N: usize>(x: &mut [u32; N], bits: u32) {
    if bits == 0 {
        return;
    }
    let n = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != n {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Pack the transposed representation into a single linear index:
/// the most significant index bit is the top bit of `x[0]`, then the top
/// bit of `x[1]`, and so on, descending through bit planes.
fn transpose_to_index<const N: usize>(x: &[u32; N], bits: u32) -> u64 {
    let mut h = 0u64;
    for b in (0..bits).rev() {
        for v in x.iter() {
            h = (h << 1) | (((v >> b) & 1) as u64);
        }
    }
    h
}

/// Unpack a linear index into the transposed representation (inverse of
/// [`transpose_to_index`]).
fn index_to_transpose<const N: usize>(h: u64, bits: u32) -> [u32; N] {
    let mut x = [0u32; N];
    let mut pos = N as u32 * bits;
    for b in (0..bits).rev() {
        for v in x.iter_mut() {
            pos -= 1;
            *v |= (((h >> pos) & 1) as u32) << b;
        }
    }
    x
}

/// Encode an N-dimensional coordinate on a `2^bits` hypercube into its
/// Hilbert curve index.
///
/// # Panics
/// Debug-asserts every coordinate fits in `bits` bits and that the total
/// index fits in 64 bits.
pub fn hilbert_encode<const N: usize>(coords: [u32; N], bits: u32) -> u64 {
    debug_assert!(N as u32 * bits <= 64, "index exceeds 64 bits");
    debug_assert!(
        coords.iter().all(|&c| bits == 32 || c < (1u32 << bits)),
        "coordinate out of range for curve order"
    );
    let mut x = coords;
    axes_to_transpose(&mut x, bits);
    transpose_to_index(&x, bits)
}

/// Decode a Hilbert curve index back into an N-dimensional coordinate.
pub fn hilbert_decode<const N: usize>(h: u64, bits: u32) -> [u32; N] {
    let mut x = index_to_transpose::<N>(h, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Encode a 2D coordinate on a `2^bits` square.
#[inline]
pub fn hilbert2_encode(x: u32, y: u32, bits: u32) -> u64 {
    hilbert_encode([x, y], bits)
}

/// Decode a 2D Hilbert index.
#[inline]
pub fn hilbert2_decode(h: u64, bits: u32) -> (u32, u32) {
    let [x, y] = hilbert_decode::<2>(h, bits);
    (x, y)
}

/// Encode a 3D coordinate on a `2^bits` cube.
#[inline]
pub fn hilbert3_encode(x: u32, y: u32, z: u32, bits: u32) -> u64 {
    hilbert_encode([x, y, z], bits)
}

/// Decode a 3D Hilbert index.
#[inline]
pub fn hilbert3_decode(h: u64, bits: u32) -> (u32, u32, u32) {
    let [x, y, z] = hilbert_decode::<3>(h, bits);
    (x, y, z)
}

/// Widest supported 3D curve order: `3 * 21 = 63` index bits fit in `u64`.
pub const MAX_BITS3: u32 = 21;

/// Octant key of the coordinate bits at plane `b`: `x | y<<1 | z<<2`.
#[inline]
pub(crate) fn octant3(x: u32, y: u32, z: u32, b: u32) -> usize {
    (((x >> b) & 1) | (((y >> b) & 1) << 1) | (((z >> b) & 1) << 2)) as usize
}

/// Recursive-descent automaton for the 3D Hilbert curve.
///
/// The transpose-form encoder above is O(bits) *per index* with two
/// data-dependent bit-plane loops — too slow to pay per cursor step. But
/// the curve is self-similar: every octant of the cube contains a
/// rotated/reflected copy of the whole curve, so encoding is equivalently
/// a top-down descent through a finite automaton whose state is the
/// sub-cube's orientation (an isometry of the unit cube). Per bit plane
/// the automaton emits one 3-bit index digit (`digit[state][octant]`) and
/// transitions (`child[state][octant]`) — this is the table form
/// Holzmüller's *Efficient Neighbor-Finding on Space-Filling Curves*
/// (arXiv:1710.06384) builds its O(1)-amortized neighbor stepping on.
///
/// Rather than hard-coding an orientation table (and risking a mismatch
/// with the Skilling encoder the rest of the repo is pinned to), the
/// tables are **derived from the encoder itself**, once per process: a
/// BFS discovers every reachable sub-cube *signature* (the map from a
/// node's 8 low octants to its 8 low index digits, probed through
/// [`hilbert3_encode`]). Self-similarity makes the signature identify the
/// state; the Skilling curve closes after 24 states. Construction
/// cross-checks the table encoding against the transpose encoder and
/// panics on any disagreement, so the tables cannot silently drift.
#[derive(Debug)]
pub struct HilbertTables3 {
    /// Packed per-state row: `pair[s][octant]` is the emitted 3-bit index
    /// digit and `pair[s][8 + octant]` the child state — one 16-byte row
    /// per state, so the cursor hot loop touches a single cache line per
    /// plane. 32 rows (≥ the 24 reachable states) so `state & 31` indexes
    /// without a bounds check.
    pair: [[u8; 16]; 32],
    /// Number of reachable states (24 for the Skilling curve).
    nstates: usize,
}

impl HilbertTables3 {
    /// The process-wide tables (built on first use, ~µs).
    pub fn get() -> &'static HilbertTables3 {
        static TABLES: std::sync::OnceLock<HilbertTables3> = std::sync::OnceLock::new();
        TABLES.get_or_init(HilbertTables3::build)
    }

    /// Signature of the node reached by octant path `path` (root = `[]`):
    /// for each low-octant key the low index digit, probed with
    /// `bits = path.len() + 1`.
    fn signature(path: &[usize]) -> [u8; 8] {
        let b = path.len() as u32 + 1;
        let mut sig = [0u8; 8];
        for (c, slot) in sig.iter_mut().enumerate() {
            let (mut x, mut y, mut z) = (0u32, 0u32, 0u32);
            for (lvl, &oct) in path.iter().enumerate() {
                let shift = b - 1 - lvl as u32;
                x |= ((oct as u32) & 1) << shift;
                y |= (((oct as u32) >> 1) & 1) << shift;
                z |= (((oct as u32) >> 2) & 1) << shift;
            }
            x |= (c as u32) & 1;
            y |= ((c as u32) >> 1) & 1;
            z |= ((c as u32) >> 2) & 1;
            *slot = (hilbert3_encode(x, y, z, b) & 7) as u8;
        }
        sig
    }

    fn build() -> Self {
        use std::collections::{HashMap, VecDeque};
        let mut sig_to_id: HashMap<[u8; 8], usize> = HashMap::new();
        // Shortest known octant path reaching each state (BFS order keeps
        // these shallow, so signature probes stay well under MAX_BITS3).
        let mut reps: Vec<Vec<usize>> = Vec::new();
        let mut digit: Vec<[u8; 8]> = Vec::new();
        let mut child: Vec<[u8; 8]> = Vec::new();

        let root = Self::signature(&[]);
        sig_to_id.insert(root, 0);
        reps.push(Vec::new());
        digit.push(root);
        child.push([0; 8]);

        let mut queue = VecDeque::from([0usize]);
        while let Some(s) = queue.pop_front() {
            let rep = reps[s].clone();
            for c in 0..8usize {
                let mut path = rep.clone();
                path.push(c);
                assert!(
                    path.len() < MAX_BITS3 as usize,
                    "Hilbert automaton failed to close within probe depth"
                );
                let sig = Self::signature(&path);
                let id = *sig_to_id.entry(sig).or_insert_with(|| {
                    let id = reps.len();
                    reps.push(path.clone());
                    digit.push(sig);
                    child.push([0; 8]);
                    queue.push_back(id);
                    id
                });
                child[s][c] = id as u8;
            }
        }
        assert!(
            digit.len() <= 32,
            "Hilbert automaton has {} states; the packed table holds 32",
            digit.len()
        );
        let mut pair = [[0u8; 16]; 32];
        for (s, row) in pair.iter_mut().enumerate().take(digit.len()) {
            row[..8].copy_from_slice(&digit[s]);
            row[8..].copy_from_slice(&child[s]);
        }
        let t = Self {
            pair,
            nstates: digit.len(),
        };
        t.verify();
        t
    }

    /// Cross-check the automaton against the transpose encoder; the
    /// derivation is empirical, so disagreement means the self-similarity
    /// assumption broke and the tables must not be used.
    fn verify(&self) {
        for bits in 1..=3u32 {
            let n = 1u32 << bits;
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        assert_eq!(
                            self.encode(x, y, z, bits),
                            hilbert3_encode(x, y, z, bits),
                            "Hilbert automaton diverges from the transpose encoder \
                             at ({x},{y},{z}) bits={bits}"
                        );
                    }
                }
            }
        }
    }

    /// Number of automaton states (24 for the Skilling curve).
    pub fn states(&self) -> usize {
        self.nstates
    }

    /// The index digit emitted in `state` for `octant`.
    #[inline]
    pub(crate) fn digit(&self, state: u8, octant: usize) -> u8 {
        self.pair[(state & 31) as usize][octant & 7]
    }

    /// The child state entered from `state` through `octant`.
    #[inline]
    pub(crate) fn child(&self, state: u8, octant: usize) -> u8 {
        self.pair[(state & 31) as usize][8 | (octant & 7)]
    }

    /// `(digit, child)` from one packed-row read — the cursor hot-loop
    /// form (one cache line per plane, mask-elided bounds checks).
    #[inline]
    pub(crate) fn step(&self, state: u8, octant: usize) -> (u8, u8) {
        let row = &self.pair[(state & 31) as usize];
        let c = octant & 7;
        (row[c], row[8 | c])
    }

    /// Table-driven encode: identical results to [`hilbert3_encode`]
    /// (verified at construction), one digit + child lookup per plane.
    #[inline]
    pub fn encode(&self, x: u32, y: u32, z: u32, bits: u32) -> u64 {
        let mut s = 0u8;
        let mut h = 0u64;
        for b in (0..bits).rev() {
            let c = octant3(x, y, z, b);
            h = (h << 3) | u64::from(self.digit(s, c));
            s = self.child(s, c);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manhattan<const N: usize>(a: [u32; N], b: [u32; N]) -> u32 {
        a.iter().zip(b.iter()).map(|(&p, &q)| p.abs_diff(q)).sum()
    }

    #[test]
    fn roundtrip_2d_exhaustive() {
        for bits in 1..=5u32 {
            let n = 1u32 << bits;
            for y in 0..n {
                for x in 0..n {
                    let h = hilbert2_encode(x, y, bits);
                    assert_eq!(hilbert2_decode(h, bits), (x, y));
                }
            }
        }
    }

    #[test]
    fn roundtrip_3d_exhaustive() {
        for bits in 1..=3u32 {
            let n = 1u32 << bits;
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        let h = hilbert3_encode(x, y, z, bits);
                        assert_eq!(hilbert3_decode(h, bits), (x, y, z));
                    }
                }
            }
        }
    }

    #[test]
    fn bijection_2d() {
        let bits = 4;
        let n = 1usize << bits;
        let mut seen = vec![false; n * n];
        for y in 0..n as u32 {
            for x in 0..n as u32 {
                let h = hilbert2_encode(x, y, bits) as usize;
                assert!(h < n * n);
                assert!(!seen[h]);
                seen[h] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_adjacency_2d() {
        // The defining Hilbert property: consecutive curve positions are
        // unit Manhattan distance apart.
        let bits = 5;
        let total = 1u64 << (2 * bits);
        let mut prev = hilbert_decode::<2>(0, bits);
        for h in 1..total {
            let cur = hilbert_decode::<2>(h, bits);
            assert_eq!(manhattan(prev, cur), 1, "step {h} is not adjacent");
            prev = cur;
        }
    }

    #[test]
    fn hilbert_adjacency_3d() {
        let bits = 3;
        let total = 1u64 << (3 * bits);
        let mut prev = hilbert_decode::<3>(0, bits);
        for h in 1..total {
            let cur = hilbert_decode::<3>(h, bits);
            assert_eq!(manhattan(prev, cur), 1, "step {h} is not adjacent");
            prev = cur;
        }
    }

    #[test]
    fn starts_at_origin() {
        assert_eq!(hilbert2_decode(0, 4), (0, 0));
        assert_eq!(hilbert3_decode(0, 4), (0, 0, 0));
    }

    #[test]
    fn bits_zero_is_identity() {
        assert_eq!(hilbert2_encode(0, 0, 0), 0);
        assert_eq!(hilbert2_decode(0, 0), (0, 0));
    }

    #[test]
    fn order_one_2d_is_u_shape() {
        // At order 1 the curve visits the four cells of a 2x2 square in a
        // U: (0,0) (0,1) (1,1) (1,0) (up to the algorithm's orientation);
        // verify it is some Hamiltonian path with unit steps.
        let cells: Vec<_> = (0..4).map(|h| hilbert2_decode(h, 1)).collect();
        for w in cells.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert_eq!(a.0.abs_diff(b.0) + a.1.abs_diff(b.1), 1);
        }
    }

    #[test]
    fn automaton_closes_at_24_states() {
        // The 3D Hilbert curve uses 24 of the 48 cube isometries (the
        // rotation group); the BFS derivation must close there.
        assert_eq!(HilbertTables3::get().states(), 24);
    }

    #[test]
    fn automaton_encode_matches_transpose_exhaustive() {
        let t = HilbertTables3::get();
        for bits in 1..=4u32 {
            let n = 1u32 << bits;
            for z in 0..n {
                for y in 0..n {
                    for x in 0..n {
                        assert_eq!(t.encode(x, y, z, bits), hilbert3_encode(x, y, z, bits));
                    }
                }
            }
        }
    }

    #[test]
    fn automaton_encode_matches_transpose_random_deep() {
        let t = HilbertTables3::get();
        // Seeded SplitMix64 sweep at orders the exhaustive test can't reach,
        // including the widest supported order.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for bits in [5u32, 8, 13, MAX_BITS3] {
            let mask = (1u32 << bits) - 1;
            for _ in 0..2000 {
                let r = next();
                let (x, y, z) = (r as u32 & mask, (r >> 21) as u32 & mask, (r >> 42) as u32 & mask);
                assert_eq!(t.encode(x, y, z, bits), hilbert3_encode(x, y, z, bits));
            }
        }
    }
}
