//! Analytic locality statistics for layouts.
//!
//! The paper's motivating observation (§II-B) is that under array order an
//! access that is nearby in *index space* may be far away in *memory*:
//! `A[i,j,k]` and `A[i,j,k+1]` are `nx·ny` elements apart. These helpers
//! quantify that directly — the distribution of storage-distance for unit
//! logical steps along each axis — without running a cache simulation.

use crate::dims::Axis;
use crate::layout::Layout3;

/// Distribution summary of `|Δ storage index|` over all unit steps along
/// one axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Number of unit steps measured.
    pub steps: u64,
    /// Mean absolute storage distance (elements).
    pub mean_abs: f64,
    /// Maximum absolute storage distance (elements).
    pub max_abs: usize,
    /// Fraction of steps staying within `line_elems` slots — i.e. likely
    /// on the same cache line.
    pub within_line: f64,
    /// Elements-per-line threshold used for `within_line`.
    pub line_elems: usize,
}

/// Measure unit-step storage distances along `axis` for a layout.
/// `line_elems` is the same-line threshold (e.g. 16 for f32 / 64-byte
/// lines).
pub fn axis_step_stats<L: Layout3>(layout: &L, axis: Axis, line_elems: usize) -> StepStats {
    assert!(line_elems > 0);
    let d = layout.dims();
    let mut steps = 0u64;
    let mut sum = 0f64;
    let mut max = 0usize;
    let mut within = 0u64;
    let (ni, nj, nk) = (d.nx, d.ny, d.nz);
    let step_of = |i: usize, j: usize, k: usize| -> Option<usize> {
        let (i2, j2, k2) = match axis {
            Axis::X => (i + 1, j, k),
            Axis::Y => (i, j + 1, k),
            Axis::Z => (i, j, k + 1),
        };
        d.contains(i2, j2, k2)
            .then(|| layout.index(i, j, k).abs_diff(layout.index(i2, j2, k2)))
    };
    for k in 0..nk {
        for j in 0..nj {
            for i in 0..ni {
                if let Some(dist) = step_of(i, j, k) {
                    steps += 1;
                    sum += dist as f64;
                    max = max.max(dist);
                    if dist < line_elems {
                        within += 1;
                    }
                }
            }
        }
    }
    StepStats {
        steps,
        mean_abs: if steps == 0 { 0.0 } else { sum / steps as f64 },
        max_abs: max,
        within_line: if steps == 0 {
            0.0
        } else {
            within as f64 / steps as f64
        },
        line_elems,
    }
}

/// Ratio of the worst axis's mean step distance to the best axis's — the
/// layout's *directional anisotropy*. Array order is extremely anisotropic
/// (`≈ nx·ny`); space-filling curves are close to 1.
pub fn anisotropy<L: Layout3>(layout: &L, line_elems: usize) -> f64 {
    let means: Vec<f64> = Axis::ALL
        .iter()
        .map(|&a| axis_step_stats(layout, a, line_elems).mean_abs)
        .collect();
    let max = means.iter().cloned().fold(f64::MIN, f64::max);
    let min = means.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;
    use crate::layouts::{ArrayOrder3, HilbertOrder3, Tiled3, ZOrder3};

    #[test]
    fn array_order_step_distances_are_strides() {
        let l = ArrayOrder3::new(Dims3::new(8, 4, 2));
        let sx = axis_step_stats(&l, Axis::X, 16);
        let sy = axis_step_stats(&l, Axis::Y, 16);
        let sz = axis_step_stats(&l, Axis::Z, 16);
        assert_eq!(sx.mean_abs, 1.0);
        assert_eq!(sy.mean_abs, 8.0);
        assert_eq!(sz.mean_abs, 32.0);
        assert_eq!(sx.within_line, 1.0);
        assert_eq!(sz.within_line, 0.0);
    }

    #[test]
    fn zorder_is_much_less_anisotropic_than_array_order() {
        let dims = Dims3::cube(32);
        let a = ArrayOrder3::new(dims);
        let z = ZOrder3::new(dims);
        let aa = anisotropy(&a, 16);
        let az = anisotropy(&z, 16);
        assert!(aa > 100.0, "array order anisotropy {aa}");
        assert!(az < 8.0, "z-order anisotropy {az}");
    }

    #[test]
    fn zorder_keeps_most_x_steps_near() {
        let z = ZOrder3::new(Dims3::cube(32));
        let sx = axis_step_stats(&z, Axis::X, 16);
        // Half of x steps are within an aligned pair (+1), and more land
        // within a 16-slot window.
        assert!(sx.within_line > 0.5);
    }

    #[test]
    fn step_counts() {
        let l = Tiled3::new(Dims3::new(4, 5, 6));
        let sx = axis_step_stats(&l, Axis::X, 16);
        assert_eq!(sx.steps, 3 * 5 * 6);
        let sz = axis_step_stats(&l, Axis::Z, 16);
        assert_eq!(sz.steps, 4 * 5 * 5);
    }

    #[test]
    fn hilbert_anisotropy_is_low() {
        let h = HilbertOrder3::new(Dims3::cube(16));
        assert!(anisotropy(&h, 16) < 8.0);
    }

    #[test]
    fn degenerate_axis_has_no_steps() {
        let l = ArrayOrder3::new(Dims3::new(4, 4, 1));
        let sz = axis_step_stats(&l, Axis::Z, 16);
        assert_eq!(sz.steps, 0);
        assert_eq!(sz.mean_abs, 0.0);
    }
}
