//! Property-based tests for the layout invariants every implementation must
//! uphold (see `Layout3` trait docs): in-range, injective, invertible.

use proptest::prelude::*;
use sfc_core::{
    hilbert::{hilbert2_decode, hilbert2_encode, hilbert3_decode, hilbert3_encode},
    morton::{
        compact1by1, compact1by2, morton2_decode, morton2_encode, morton3_decode,
        morton3_encode, morton3_encode_lut, part1by1, part1by2,
    },
    ArrayOrder3, Dims3, Grid3, HilbertOrder3, Layout3, Tiled3, ZOrder3,
};

proptest! {
    #[test]
    fn morton2_roundtrip(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton2_decode(morton2_encode(x, y)), (x, y));
    }

    #[test]
    fn morton3_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        prop_assert_eq!(morton3_decode(morton3_encode(x, y, z)), (x, y, z));
    }

    #[test]
    fn morton3_lut_agrees_with_magic(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        prop_assert_eq!(morton3_encode_lut(x, y, z), morton3_encode(x, y, z));
    }

    #[test]
    fn dilation_roundtrips(x in any::<u32>()) {
        prop_assert_eq!(compact1by1(part1by1(x)), x);
        prop_assert_eq!(compact1by2(part1by2(x & 0x1F_FFFF)), x & 0x1F_FFFF);
    }

    #[test]
    fn morton3_monotone_in_aligned_block(x in 0u32..(1 << 20), y in 0u32..(1 << 20), z in 0u32..(1 << 20)) {
        // Within an even-aligned 2-block, the x step is exactly +1.
        let (x, y, z) = (x * 2, y * 2, z * 2);
        prop_assert_eq!(morton3_encode(x + 1, y, z), morton3_encode(x, y, z) + 1);
        prop_assert_eq!(morton3_encode(x, y + 1, z), morton3_encode(x, y, z) + 2);
        prop_assert_eq!(morton3_encode(x, y, z + 1), morton3_encode(x, y, z) + 4);
    }

    #[test]
    fn hilbert2_roundtrip(bits in 1u32..16, h in any::<u64>()) {
        let h = h & ((1u64 << (2 * bits)) - 1);
        let (x, y) = hilbert2_decode(h, bits);
        prop_assert_eq!(hilbert2_encode(x, y, bits), h);
    }

    #[test]
    fn hilbert3_roundtrip(bits in 1u32..10, h in any::<u64>()) {
        let h = h & ((1u64 << (3 * bits)) - 1);
        let (x, y, z) = hilbert3_decode(h, bits);
        prop_assert_eq!(hilbert3_encode(x, y, z, bits), h);
    }

    #[test]
    fn hilbert3_consecutive_indices_are_adjacent(bits in 1u32..6, h in any::<u64>()) {
        let total = 1u64 << (3 * bits);
        let h = h % (total - 1);
        let (ax, ay, az) = hilbert3_decode(h, bits);
        let (bx, by, bz) = hilbert3_decode(h + 1, bits);
        let d = ax.abs_diff(bx) + ay.abs_diff(by) + az.abs_diff(bz);
        prop_assert_eq!(d, 1, "curve step must be unit Manhattan distance");
    }
}

/// Strategy for modest random grid dimensions (products stay small enough
/// for exhaustive per-cell checks).
fn small_dims() -> impl Strategy<Value = Dims3> {
    (1usize..20, 1usize..20, 1usize..20).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

fn layout_invariants<L: Layout3>(dims: Dims3) -> Result<(), TestCaseError> {
    let l = L::new(dims);
    prop_assert!(l.storage_len() >= dims.len());
    let mut seen = std::collections::HashSet::new();
    for (i, j, k) in dims.iter() {
        let s = l.index(i, j, k);
        prop_assert!(s < l.storage_len(), "index out of storage range");
        prop_assert!(seen.insert(s), "layout not injective at ({i},{j},{k})");
        prop_assert_eq!(l.coords(s), (i, j, k), "coords() must invert index()");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array_order_invariants(dims in small_dims()) {
        layout_invariants::<ArrayOrder3>(dims)?;
    }

    #[test]
    fn zorder_invariants(dims in small_dims()) {
        layout_invariants::<ZOrder3>(dims)?;
    }

    #[test]
    fn tiled_invariants(dims in small_dims()) {
        layout_invariants::<Tiled3>(dims)?;
    }

    #[test]
    fn hilbert_invariants(dims in small_dims()) {
        layout_invariants::<HilbertOrder3>(dims)?;
    }

    #[test]
    fn zorder_has_no_padding_for_pow2(bx in 0u32..5, by in 0u32..5, bz in 0u32..5) {
        let dims = Dims3::new(1 << bx, 1 << by, 1 << bz);
        let l = ZOrder3::new(dims);
        prop_assert_eq!(l.storage_len(), dims.len());
        prop_assert_eq!(l.padding_overhead(), 0.0);
    }

    #[test]
    fn grid_convert_roundtrip(dims in small_dims(), seed in any::<u64>()) {
        // Pseudo-random but deterministic cell values from the seed.
        let v = |i: usize, j: usize, k: usize| {
            let mut h = seed ^ ((i as u64) << 40) ^ ((j as u64) << 20) ^ (k as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            (h & 0xFFFF) as f32
        };
        let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, v);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let t: Grid3<f32, Tiled3> = z.convert();
        let h: Grid3<f32, HilbertOrder3> = t.convert();
        prop_assert_eq!(a.to_row_major(), h.to_row_major());
    }

    #[test]
    fn storage_order_iteration_matches_logical_set(dims in small_dims()) {
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, |i, j, k| (i + j * 31 + k * 977) as f32);
        let mut from_storage: Vec<_> = g.iter_storage_order().collect();
        from_storage.sort_by_key(|a| a.0);
        let mut logical: Vec<_> = g.iter_logical().collect();
        logical.sort_by_key(|a| a.0);
        prop_assert_eq!(from_storage, logical);
    }
}
