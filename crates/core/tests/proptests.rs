//! Property-style tests for the layout invariants every implementation must
//! uphold (see `Layout3` trait docs): in-range, injective, invertible.
//!
//! Implemented as seeded deterministic sweeps over `SplitMix64` so the
//! workspace stays dependency-free; each test explores hundreds of random
//! cases and every failure reproduces exactly.

use sfc_core::{
    hilbert::{hilbert2_decode, hilbert2_encode, hilbert3_decode, hilbert3_encode},
    morton::{
        compact1by1, compact1by2, morton2_decode, morton2_encode, morton3_decode,
        morton3_encode, morton3_encode_lut, part1by1, part1by2,
    },
    ArrayOrder3, Dims3, Grid3, HilbertOrder3, Layout3, SplitMix64, Tiled3, ZOrder3,
};

#[test]
fn morton2_roundtrip() {
    let mut rng = SplitMix64::new(0x1001);
    for _ in 0..512 {
        let (x, y) = (rng.next_u32(), rng.next_u32());
        assert_eq!(morton2_decode(morton2_encode(x, y)), (x, y));
    }
}

#[test]
fn morton3_roundtrip() {
    let mut rng = SplitMix64::new(0x1002);
    for _ in 0..512 {
        let x = rng.next_u32() & ((1 << 21) - 1);
        let y = rng.next_u32() & ((1 << 21) - 1);
        let z = rng.next_u32() & ((1 << 21) - 1);
        assert_eq!(morton3_decode(morton3_encode(x, y, z)), (x, y, z));
    }
}

#[test]
fn morton3_lut_agrees_with_magic() {
    let mut rng = SplitMix64::new(0x1003);
    for _ in 0..512 {
        let x = rng.next_u32() & ((1 << 21) - 1);
        let y = rng.next_u32() & ((1 << 21) - 1);
        let z = rng.next_u32() & ((1 << 21) - 1);
        assert_eq!(morton3_encode_lut(x, y, z), morton3_encode(x, y, z));
    }
}

#[test]
fn dilation_roundtrips() {
    let mut rng = SplitMix64::new(0x1004);
    for _ in 0..512 {
        let x = rng.next_u32();
        assert_eq!(compact1by1(part1by1(x)), x);
        assert_eq!(compact1by2(part1by2(x & 0x1F_FFFF)), x & 0x1F_FFFF);
    }
}

#[test]
fn morton3_monotone_in_aligned_block() {
    let mut rng = SplitMix64::new(0x1005);
    for _ in 0..512 {
        // Within an even-aligned 2-block, the x step is exactly +1.
        let x = (rng.next_u32() & ((1 << 20) - 1)) * 2;
        let y = (rng.next_u32() & ((1 << 20) - 1)) * 2;
        let z = (rng.next_u32() & ((1 << 20) - 1)) * 2;
        assert_eq!(morton3_encode(x + 1, y, z), morton3_encode(x, y, z) + 1);
        assert_eq!(morton3_encode(x, y + 1, z), morton3_encode(x, y, z) + 2);
        assert_eq!(morton3_encode(x, y, z + 1), morton3_encode(x, y, z) + 4);
    }
}

#[test]
fn hilbert2_roundtrip() {
    let mut rng = SplitMix64::new(0x1006);
    for _ in 0..512 {
        let bits = 1 + (rng.next_u32() % 15);
        let h = rng.next_u64() & ((1u64 << (2 * bits)) - 1);
        let (x, y) = hilbert2_decode(h, bits);
        assert_eq!(hilbert2_encode(x, y, bits), h);
    }
}

#[test]
fn hilbert3_roundtrip() {
    let mut rng = SplitMix64::new(0x1007);
    for _ in 0..512 {
        let bits = 1 + (rng.next_u32() % 9);
        let h = rng.next_u64() & ((1u64 << (3 * bits)) - 1);
        let (x, y, z) = hilbert3_decode(h, bits);
        assert_eq!(hilbert3_encode(x, y, z, bits), h);
    }
}

#[test]
fn hilbert3_consecutive_indices_are_adjacent() {
    let mut rng = SplitMix64::new(0x1008);
    for _ in 0..512 {
        let bits = 1 + (rng.next_u32() % 5);
        let total = 1u64 << (3 * bits);
        let h = rng.next_u64() % (total - 1);
        let (ax, ay, az) = hilbert3_decode(h, bits);
        let (bx, by, bz) = hilbert3_decode(h + 1, bits);
        let d = ax.abs_diff(bx) + ay.abs_diff(by) + az.abs_diff(bz);
        assert_eq!(d, 1, "curve step must be unit Manhattan distance");
    }
}

/// Modest random grid dimensions (products stay small enough for
/// exhaustive per-cell checks).
fn small_dims(rng: &mut SplitMix64) -> Dims3 {
    Dims3::new(rng.usize_in(1, 20), rng.usize_in(1, 20), rng.usize_in(1, 20))
}

fn layout_invariants<L: Layout3>(dims: Dims3) {
    let l = L::new(dims);
    assert!(l.storage_len() >= dims.len());
    let mut seen = std::collections::HashSet::new();
    for (i, j, k) in dims.iter() {
        let s = l.index(i, j, k);
        assert!(s < l.storage_len(), "index out of storage range");
        assert!(seen.insert(s), "layout not injective at ({i},{j},{k})");
        assert_eq!(l.coords(s), (i, j, k), "coords() must invert index()");
    }
}

#[test]
fn array_order_invariants() {
    let mut rng = SplitMix64::new(0x2001);
    for _ in 0..64 {
        layout_invariants::<ArrayOrder3>(small_dims(&mut rng));
    }
}

#[test]
fn zorder_invariants() {
    let mut rng = SplitMix64::new(0x2002);
    for _ in 0..64 {
        layout_invariants::<ZOrder3>(small_dims(&mut rng));
    }
}

#[test]
fn tiled_invariants() {
    let mut rng = SplitMix64::new(0x2003);
    for _ in 0..64 {
        layout_invariants::<Tiled3>(small_dims(&mut rng));
    }
}

#[test]
fn hilbert_invariants() {
    let mut rng = SplitMix64::new(0x2004);
    for _ in 0..64 {
        layout_invariants::<HilbertOrder3>(small_dims(&mut rng));
    }
}

#[test]
fn zorder_has_no_padding_for_pow2() {
    for bx in 0u32..5 {
        for by in 0u32..5 {
            for bz in 0u32..5 {
                let dims = Dims3::new(1 << bx, 1 << by, 1 << bz);
                let l = ZOrder3::new(dims);
                assert_eq!(l.storage_len(), dims.len());
                assert_eq!(l.padding_overhead(), 0.0);
            }
        }
    }
}

#[test]
fn grid_convert_roundtrip() {
    let mut rng = SplitMix64::new(0x2005);
    for _ in 0..64 {
        let dims = small_dims(&mut rng);
        let seed = rng.next_u64();
        // Pseudo-random but deterministic cell values from the seed.
        let v = move |i: usize, j: usize, k: usize| {
            let mut h = seed ^ ((i as u64) << 40) ^ ((j as u64) << 20) ^ (k as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            (h & 0xFFFF) as f32
        };
        let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, v);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let t: Grid3<f32, Tiled3> = z.convert();
        let h: Grid3<f32, HilbertOrder3> = t.convert();
        assert_eq!(a.to_row_major(), h.to_row_major());
    }
}

#[test]
fn storage_order_iteration_matches_logical_set() {
    let mut rng = SplitMix64::new(0x2006);
    for _ in 0..64 {
        let dims = small_dims(&mut rng);
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, |i, j, k| (i + j * 31 + k * 977) as f32);
        let mut from_storage: Vec<_> = g.iter_storage_order().collect();
        from_storage.sort_by_key(|a| a.0);
        let mut logical: Vec<_> = g.iter_logical().collect();
        logical.sort_by_key(|a| a.0);
        assert_eq!(from_storage, logical);
    }
}

/// Random in-bounds unit-step walk: after every step the cursor's index
/// must equal a fresh `index()` of the stepped-to coordinate.
fn cursor_walk_agrees_with_index<L: Layout3>(seed: u64) {
    use sfc_core::{Axis, Cursor3};
    let mut rng = SplitMix64::new(seed);
    for _ in 0..24 {
        let dims = small_dims(&mut rng);
        let l = L::new(dims);
        let (mut i, mut j, mut k) = (
            rng.usize_in(0, dims.nx),
            rng.usize_in(0, dims.ny),
            rng.usize_in(0, dims.nz),
        );
        let mut c = l.cursor(i, j, k);
        assert_eq!(c.index(), l.index(i, j, k));
        for _ in 0..200 {
            let axis = Axis::ALL[rng.usize_in(0, 3)];
            let forward = rng.next_u64().is_multiple_of(2);
            let (coord, extent) = match axis {
                Axis::X => (&mut i, dims.nx),
                Axis::Y => (&mut j, dims.ny),
                Axis::Z => (&mut k, dims.nz),
            };
            // Skip steps that would leave the domain (cursor contract only
            // covers in-bounds walks).
            if forward {
                if *coord + 1 >= extent {
                    continue;
                }
                *coord += 1;
            } else {
                if *coord == 0 {
                    continue;
                }
                *coord -= 1;
            }
            c.step(axis, forward);
            assert_eq!(
                c.index(),
                l.index(i, j, k),
                "{:?} walk diverged at ({i},{j},{k}) dims {dims:?}",
                L::KIND
            );
        }
    }
}

#[test]
fn array_cursor_walks_agree_with_index() {
    cursor_walk_agrees_with_index::<ArrayOrder3>(0x2001);
}

#[test]
fn zorder_cursor_walks_agree_with_index() {
    cursor_walk_agrees_with_index::<ZOrder3>(0x2002);
}

#[test]
fn tiled_cursor_walks_agree_with_index() {
    cursor_walk_agrees_with_index::<Tiled3>(0x2003);
}

#[test]
fn hilbert_cursor_walks_agree_with_index() {
    cursor_walk_agrees_with_index::<HilbertOrder3>(0x2004);
}

#[test]
fn tiled_cursor_walks_cross_every_brick_boundary() {
    use sfc_core::{Axis, Cursor3};
    // Dims chosen so every axis has interior brick boundaries AND a
    // partial final brick; full-axis sweeps cross them all.
    let dims = Dims3::new(17, 11, 9);
    let l = Tiled3::with_brick(dims, (4, 4, 4));
    for axis in Axis::ALL {
        let n = axis.extent(dims);
        for (b, c) in [(0usize, 0usize), (3, 5), (7, 2)] {
            let (i0, j0, k0) = match axis {
                Axis::X => (0, b.min(dims.ny - 1), c.min(dims.nz - 1)),
                Axis::Y => (b.min(dims.nx - 1), 0, c.min(dims.nz - 1)),
                Axis::Z => (b.min(dims.nx - 1), c.min(dims.ny - 1), 0),
            };
            let mut cur = l.cursor(i0, j0, k0);
            let (mut i, mut j, mut k) = (i0, j0, k0);
            for _ in 1..n {
                cur.step(axis, true);
                match axis {
                    Axis::X => i += 1,
                    Axis::Y => j += 1,
                    Axis::Z => k += 1,
                }
                assert_eq!(cur.index(), l.index(i, j, k));
            }
            for _ in 1..n {
                cur.step(axis, false);
                match axis {
                    Axis::X => i -= 1,
                    Axis::Y => j -= 1,
                    Axis::Z => k -= 1,
                }
                assert_eq!(cur.index(), l.index(i, j, k));
            }
        }
    }
}

#[test]
fn zorder_cursor_handles_non_pow2_rectangles() {
    use sfc_core::{Axis, Cursor3};
    // Deliberately lopsided non-power-of-two dims: the round-robin
    // interleave gives each axis a different, non-contiguous bit mask.
    for dims in [Dims3::new(5, 3, 17), Dims3::new(33, 2, 9), Dims3::new(1, 19, 6)] {
        let l = ZOrder3::new(dims);
        for axis in Axis::ALL {
            let n = axis.extent(dims);
            let mut cur = l.cursor(0, 0, 0);
            let (mut i, mut j, mut k) = (0, 0, 0);
            for _ in 1..n {
                cur.step(axis, true);
                match axis {
                    Axis::X => i += 1,
                    Axis::Y => j += 1,
                    Axis::Z => k += 1,
                }
                assert_eq!(cur.index(), l.index(i, j, k), "dims {dims:?}");
            }
        }
    }
}

#[test]
fn hilbert_cursor_handles_non_pow2_padded_domains() {
    use sfc_core::{Axis, Cursor3};
    // Hilbert pads every axis to the largest axis's power of two, so
    // non-power-of-two rectangles exercise walks through a logical domain
    // much smaller than the curve's cube — including degenerate axes.
    // Full sweeps forward and back along every axis from several offset
    // rows, parity with a fresh index() at every step.
    for dims in [
        Dims3::new(5, 3, 17),
        Dims3::new(33, 2, 9),
        Dims3::new(1, 19, 6),
        Dims3::new(7, 7, 7),
    ] {
        let l = HilbertOrder3::new(dims);
        for axis in Axis::ALL {
            let n = axis.extent(dims);
            for (b, c) in [(0usize, 0usize), (2, 4), (11, 1)] {
                let (i0, j0, k0) = match axis {
                    Axis::X => (0, b.min(dims.ny - 1), c.min(dims.nz - 1)),
                    Axis::Y => (b.min(dims.nx - 1), 0, c.min(dims.nz - 1)),
                    Axis::Z => (b.min(dims.nx - 1), c.min(dims.ny - 1), 0),
                };
                let mut cur = l.cursor(i0, j0, k0);
                let (mut i, mut j, mut k) = (i0, j0, k0);
                for _ in 1..n {
                    cur.step(axis, true);
                    match axis {
                        Axis::X => i += 1,
                        Axis::Y => j += 1,
                        Axis::Z => k += 1,
                    }
                    assert_eq!(cur.index(), l.index(i, j, k), "dims {dims:?} fwd {axis:?}");
                }
                for _ in 1..n {
                    cur.step(axis, false);
                    match axis {
                        Axis::X => i -= 1,
                        Axis::Y => j -= 1,
                        Axis::Z => k -= 1,
                    }
                    assert_eq!(cur.index(), l.index(i, j, k), "dims {dims:?} back {axis:?}");
                }
            }
        }
    }
}

#[test]
fn hilbert_cursor_crosses_octant_transitions() {
    use sfc_core::{Axis, Cursor3};
    // Steps whose coordinate flips a high bit (7->8, 15->16, 31->32)
    // cross top-level octant boundaries: the automaton must re-descend
    // from the changed plane and every deeper level. Walk straight lines
    // that cross each power-of-two boundary on each axis, both
    // directions, checking parity at every step.
    let dims = Dims3::new(34, 34, 34); // pads to 64^3, bits = 6
    let l = HilbertOrder3::new(dims);
    for axis in Axis::ALL {
        for boundary in [8usize, 16, 32] {
            let start = boundary - 2;
            let (i0, j0, k0) = match axis {
                Axis::X => (start, 9, 17),
                Axis::Y => (17, start, 9),
                Axis::Z => (9, 17, start),
            };
            let mut cur = l.cursor(i0, j0, k0);
            let (mut i, mut j, mut k) = (i0, j0, k0);
            for _ in 0..3 {
                cur.step(axis, true);
                match axis {
                    Axis::X => i += 1,
                    Axis::Y => j += 1,
                    Axis::Z => k += 1,
                }
                assert_eq!(cur.index(), l.index(i, j, k), "crossing {boundary} fwd {axis:?}");
            }
            for _ in 0..3 {
                cur.step(axis, false);
                match axis {
                    Axis::X => i -= 1,
                    Axis::Y => j -= 1,
                    Axis::Z => k -= 1,
                }
                assert_eq!(cur.index(), l.index(i, j, k), "crossing {boundary} back {axis:?}");
            }
        }
    }
}

#[test]
fn hilbert_cursor_random_walks_on_padded_rectangles() {
    use sfc_core::{Axis, Cursor3};
    // Long random in-bounds walks on heavily padded rectangles, with the
    // cursor cloned mid-walk to confirm the stepping state is
    // self-contained (a cloned cursor must keep agreeing independently).
    let mut rng = SplitMix64::new(0x2007);
    for dims in [Dims3::new(21, 13, 5), Dims3::new(3, 37, 11), Dims3::new(60, 1, 29)] {
        let l = HilbertOrder3::new(dims);
        let (mut i, mut j, mut k) = (dims.nx / 2, dims.ny / 2, dims.nz / 2);
        let mut c = l.cursor(i, j, k);
        let mut clone_check: Option<sfc_core::HilbertCursor3> = None;
        for step in 0..2000 {
            let axis = Axis::ALL[rng.usize_in(0, 3)];
            let forward = rng.next_u64().is_multiple_of(2);
            let (coord, extent) = match axis {
                Axis::X => (&mut i, dims.nx),
                Axis::Y => (&mut j, dims.ny),
                Axis::Z => (&mut k, dims.nz),
            };
            if forward {
                if *coord + 1 >= extent {
                    continue;
                }
                *coord += 1;
            } else {
                if *coord == 0 {
                    continue;
                }
                *coord -= 1;
            }
            c.step(axis, forward);
            assert_eq!(c.index(), l.index(i, j, k), "dims {dims:?} at step {step}");
            if step == 1000 {
                clone_check = Some(c);
            } else if let Some(cc) = &mut clone_check {
                cc.step(axis, forward);
                assert_eq!(cc.index(), c.index(), "cloned cursor diverged at step {step}");
            }
        }
    }
}

#[test]
fn gather_axis_run_matches_per_get_reads() {
    use sfc_core::{Axis, Volume3};
    let mut rng = SplitMix64::new(0x2005);
    for _ in 0..16 {
        let dims = small_dims(&mut rng);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32 * 0.13).collect();
        let g = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        for axis in sfc_core::Axis::ALL {
            let n = match axis {
                Axis::X => dims.nx,
                Axis::Y => dims.ny,
                Axis::Z => dims.nz,
            };
            let mut fast = vec![0.0f32; n];
            g.gather_axis_run(0, 0, 0, axis, &mut fast);
            for (t, &v) in fast.iter().enumerate() {
                let (i, j, k) = match axis {
                    Axis::X => (t, 0, 0),
                    Axis::Y => (0, t, 0),
                    Axis::Z => (0, 0, t),
                };
                assert_eq!(v.to_bits(), g.get(i, j, k).to_bits());
            }
        }
    }
}
