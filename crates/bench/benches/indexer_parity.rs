//! Microbench for the paper's §III-C claim: with both index computations
//! table-driven, array-order (two lookups + two adds) and Z-order (three
//! lookups + two ORs) cost "more or less the same", so measured kernel
//! differences reflect memory layout, not index arithmetic. Hilbert is the
//! counterexample (O(bits) per access).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Dims3, HilbertOrder3, Layout3, Tiled3, ZOrder3};

fn bench_indexers(c: &mut Criterion) {
    let dims = Dims3::cube(256);
    let a = ArrayOrder3::new(dims);
    let z = ZOrder3::new(dims);
    let t = Tiled3::new(dims);
    let h = HilbertOrder3::new(dims);

    // A fixed pseudo-random coordinate stream (identical for all layouts).
    let mut state = 42u64;
    let pts: Vec<(usize, usize, usize)> = (0..8192)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (
                (state >> 10) as usize & 255,
                (state >> 25) as usize & 255,
                (state >> 40) as usize & 255,
            )
        })
        .collect();

    let mut g = c.benchmark_group("get_index");
    g.throughput(Throughput::Elements(pts.len() as u64));
    macro_rules! bench_layout {
        ($name:expr, $layout:expr) => {
            g.bench_function($name, |b| {
                let l = &$layout;
                b.iter(|| {
                    let mut acc = 0usize;
                    for &(i, j, k) in &pts {
                        acc ^= l.index(black_box(i), black_box(j), black_box(k));
                    }
                    acc
                })
            });
        };
    }
    bench_layout!("array_order_tables", a);
    bench_layout!("zorder_tables", z);
    bench_layout!("tiled_tables", t);
    bench_layout!("hilbert_per_access", h);
    g.finish();
}

criterion_group!(benches, bench_indexers);
criterion_main!(benches);
