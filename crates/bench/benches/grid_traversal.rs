//! Microbench: traversal direction × layout — the smallest end-to-end
//! demonstration of the paper's locality claim on real hardware. Summing a
//! grid along x pencils (friendly) vs z pencils (hostile) under each
//! layout.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Dims3, Grid3, Layout3, Tiled3, ZOrder3};

fn sum_x_pencils<L: Layout3>(g: &Grid3<f32, L>) -> f32 {
    let d = g.dims();
    let mut acc = 0.0f32;
    for k in 0..d.nz {
        for j in 0..d.ny {
            for i in 0..d.nx {
                acc += g.get(i, j, k);
            }
        }
    }
    acc
}

fn sum_z_pencils<L: Layout3>(g: &Grid3<f32, L>) -> f32 {
    let d = g.dims();
    let mut acc = 0.0f32;
    for j in 0..d.ny {
        for i in 0..d.nx {
            for k in 0..d.nz {
                acc += g.get(i, j, k);
            }
        }
    }
    acc
}

fn bench_traversal(c: &mut Criterion) {
    let n = 128; // 8 MB of f32: larger than most L2s
    let dims = Dims3::cube(n);
    let a = Grid3::<f32, ArrayOrder3>::from_fn(dims, |i, j, k| (i ^ j ^ k) as f32);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();

    let mut g = c.benchmark_group("traversal");
    g.throughput(Throughput::Elements(dims.len() as u64));
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("x_pencils", "a-order"), &a, |b, g_| {
        b.iter(|| black_box(sum_x_pencils(g_)))
    });
    g.bench_with_input(BenchmarkId::new("x_pencils", "z-order"), &z, |b, g_| {
        b.iter(|| black_box(sum_x_pencils(g_)))
    });
    g.bench_with_input(BenchmarkId::new("x_pencils", "tiled"), &t, |b, g_| {
        b.iter(|| black_box(sum_x_pencils(g_)))
    });
    g.bench_with_input(BenchmarkId::new("z_pencils", "a-order"), &a, |b, g_| {
        b.iter(|| black_box(sum_z_pencils(g_)))
    });
    g.bench_with_input(BenchmarkId::new("z_pencils", "z-order"), &z, |b, g_| {
        b.iter(|| black_box(sum_z_pencils(g_)))
    });
    g.bench_with_input(BenchmarkId::new("z_pencils", "tiled"), &t, |b, g_| {
        b.iter(|| black_box(sum_z_pencils(g_)))
    });
    g.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
