//! Kernel bench: raycaster throughput — aligned vs oblique viewpoints per
//! layout (the Fig. 4 effect as a native measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Dims3, Grid3, ZOrder3};
use sfc_volrend::{orbit_viewpoints, render, Projection, RenderOpts, TransferFunction};

fn bench_volrend(c: &mut Criterion) {
    let n = 64;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::combustion_field(dims, 7, sfc_datagen::CombustionParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();

    let image = 128;
    let cams = orbit_viewpoints(
        8,
        sfc_volrend::vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
        n as f32 * 2.2,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        image,
        image,
    );
    let tf = TransferFunction::fire();
    let opts = RenderOpts::default();

    let mut g = c.benchmark_group("render_viewpoint");
    g.sample_size(10);
    g.throughput(Throughput::Elements((image * image) as u64));
    for (label, v) in [("aligned_v0", 0usize), ("oblique_v2", 2), ("diagonal_v1", 1)] {
        g.bench_with_input(BenchmarkId::new("a-order", label), &a, |b, grid| {
            b.iter(|| black_box(render(grid, &cams[v], &tf, &opts)))
        });
        g.bench_with_input(BenchmarkId::new("z-order", label), &z, |b, grid| {
            b.iter(|| black_box(render(grid, &cams[v], &tf, &opts)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_volrend);
criterion_main!(benches);
