//! Microbench: Morton/Hilbert codec cost — magic-bits vs byte-LUT vs the
//! paper's per-axis table scheme (DESIGN.md §5, "LUT indexer vs magic-bits").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::hilbert::hilbert3_encode;
use sfc_core::morton::{morton3_decode, morton3_encode, morton3_encode_lut};
use sfc_core::{Dims3, Layout3, ZOrder3};

fn coords(n: usize) -> Vec<(u32, u32, u32)> {
    // Deterministic pseudo-random coordinates within a 512^3 domain.
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 13) as u32 & 511;
            let y = (state >> 27) as u32 & 511;
            let z = (state >> 41) as u32 & 511;
            (x, y, z)
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let pts = coords(4096);
    let mut g = c.benchmark_group("morton3_encode");
    g.throughput(Throughput::Elements(pts.len() as u64));

    g.bench_function("magic_bits", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &pts {
                acc ^= morton3_encode(black_box(x), black_box(y), black_box(z));
            }
            acc
        })
    });

    g.bench_function("byte_lut", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &pts {
                acc ^= morton3_encode_lut(black_box(x), black_box(y), black_box(z));
            }
            acc
        })
    });

    // The paper's scheme: three per-axis tables, built once.
    let layout = ZOrder3::new(Dims3::cube(512));
    g.bench_function("per_axis_tables", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(x, y, z) in &pts {
                acc ^= layout.index(
                    black_box(x as usize),
                    black_box(y as usize),
                    black_box(z as usize),
                );
            }
            acc
        })
    });

    g.bench_function("hilbert_skilling", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y, z) in &pts {
                acc ^= hilbert3_encode(black_box(x), black_box(y), black_box(z), 9);
            }
            acc
        })
    });
    g.finish();

    let mut g = c.benchmark_group("morton3_decode");
    let indices: Vec<u64> = (0..4096u64).map(|i| i * 32771 % (1 << 27)).collect();
    g.throughput(Throughput::Elements(indices.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("magic_bits", indices.len()),
        &indices,
        |b, idx| {
            b.iter(|| {
                let mut acc = 0u32;
                for &m in idx {
                    let (x, y, z) = morton3_decode(black_box(m));
                    acc = acc.wrapping_add(x ^ y ^ z);
                }
                acc
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
