//! Ablation: Z-order vs Hilbert (DESIGN.md §5). Reissmann et al. 2014
//! (cited by the paper) found Hilbert's higher index cost erases its
//! slightly better locality; this bench reproduces the comparison on the
//! bilateral kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, HilbertOrder3, StencilOrder, ZOrder3};
use sfc_filters::{bilateral3d, BilateralParams, FilterRun};

fn bench_curves(c: &mut Criterion) {
    let n = 48;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::mri_phantom(dims, 5, sfc_datagen::PhantomParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    let run = FilterRun {
        params: BilateralParams {
            radius: 2,
            sigma_spatial: 1.0,
            sigma_range: 0.1,
            order: StencilOrder::Zyx,
        },
        pencil_axis: Axis::Z,
        weight: Default::default(),
        nthreads: 1,
    };

    let mut g = c.benchmark_group("bilateral_r3_hostile");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("layout", "a-order"), &a, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "z-order"), &z, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "hilbert"), &h, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
