//! Ablation: Z-order vs the blocked/tiled layout (Pascucci & Frank 2001's
//! third comparator; DESIGN.md §5) on both paper kernels, friendly and
//! hostile access patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, StencilOrder, Tiled3, ZOrder3};
use sfc_filters::{bilateral3d, gaussian_separable3d, BilateralParams, FilterRun};
use sfc_volrend::{render, RenderOpts, TransferFunction};

fn bench_layout_ablation(c: &mut Criterion) {
    let n = 48;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::combustion_field(dims, 9, sfc_datagen::CombustionParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();

    // Hostile stencil configuration.
    let run = FilterRun {
        params: BilateralParams {
            radius: 1,
            sigma_spatial: 1.0,
            sigma_range: 0.1,
            order: StencilOrder::Zyx,
        },
        pencil_axis: Axis::Z,
        weight: Default::default(),
        nthreads: 1,
    };
    let mut g = c.benchmark_group("bilateral_r1_hostile");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("layout", "a-order"), &a, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "z-order"), &z, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "tiled"), &t, |b, grid| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
    });
    g.finish();

    // Oblique-view rendering.
    let cams = sfc_volrend::orbit_viewpoints(
        8,
        sfc_volrend::vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
        n as f32 * 2.2,
        sfc_volrend::Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        96,
        96,
    );
    let tf = TransferFunction::fire();
    let opts = RenderOpts::default();
    let mut g = c.benchmark_group("volrend_oblique_view2");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("layout", "a-order"), &a, |b, grid| {
        b.iter(|| black_box(render(grid, &cams[2], &tf, &opts)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "z-order"), &z, |b, grid| {
        b.iter(|| black_box(render(grid, &cams[2], &tf, &opts)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "tiled"), &t, |b, grid| {
        b.iter(|| black_box(render(grid, &cams[2], &tf, &opts)))
    });
    g.finish();

    // Separable Gaussian: three sweeps along different axes — under array
    // order the z pass dominates; under Z-order all passes behave alike.
    let mut g = c.benchmark_group("separable_gaussian_r2");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("layout", "a-order"), &a, |b, grid| {
        b.iter(|| black_box(gaussian_separable3d(grid, 2, 1.3, 1)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "z-order"), &z, |b, grid| {
        b.iter(|| black_box(gaussian_separable3d(grid, 2, 1.3, 1)))
    });
    g.bench_with_input(BenchmarkId::new("layout", "tiled"), &t, |b, grid| {
        b.iter(|| black_box(gaussian_separable3d(grid, 2, 1.3, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_layout_ablation);
criterion_main!(benches);
