//! Ablation: output-image tile size for the raycaster. The paper fixes
//! 32×32 after a prior tuning study (Bethel & Howison 2012); this bench
//! regenerates that sensitivity curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sfc_core::{Dims3, Grid3, ZOrder3};
use sfc_volrend::{orbit_viewpoints, render, Projection, RenderOpts, TransferFunction};

fn bench_tile_size(c: &mut Criterion) {
    let n = 64;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::combustion_field(dims, 7, sfc_datagen::CombustionParams::default());
    let z: Grid3<f32, ZOrder3> = Grid3::from_row_major(dims, &values);

    let cams = orbit_viewpoints(
        8,
        sfc_volrend::vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
        n as f32 * 2.2,
        Projection::Perspective {
            fov_y: 40f32.to_radians(),
        },
        128,
        128,
    );
    let tf = TransferFunction::fire();

    let mut g = c.benchmark_group("tile_size");
    g.sample_size(10);
    for tile in [8usize, 16, 32, 64, 128] {
        let opts = RenderOpts {
            tile,
            nthreads: 4,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, _| {
            b.iter(|| black_box(render(&z, &cams[1], &tf, &opts)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tile_size);
criterion_main!(benches);
