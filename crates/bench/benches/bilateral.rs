//! Kernel bench: bilateral filter throughput across stencil sizes, loop
//! orders, pencil axes, and scheduling (static vs dynamic pool).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, StencilOrder, StencilSize, ZOrder3};
use sfc_filters::{bilateral3d, bilateral3d_dynamic, BilateralParams, FilterRun};

fn bench_bilateral(c: &mut Criterion) {
    let n = 40;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::mri_phantom(dims, 3, sfc_datagen::PhantomParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();

    // Stencil size sweep, friendly configuration, both layouts.
    let mut g = c.benchmark_group("stencil_size");
    g.sample_size(10);
    g.throughput(Throughput::Elements(dims.len() as u64));
    for size in [StencilSize::R1, StencilSize::R3] {
        let run = FilterRun {
            params: BilateralParams::for_size(size, StencilOrder::Xyz),
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 1,
        };
        g.bench_with_input(BenchmarkId::new("a-order", size.label()), &a, |b, grid| {
            b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
        });
        g.bench_with_input(BenchmarkId::new("z-order", size.label()), &z, |b, grid| {
            b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
        });
    }
    g.finish();

    // Loop-order sensitivity on array order (xyz friendly vs zyx hostile).
    let mut g = c.benchmark_group("loop_order_a_order");
    g.sample_size(10);
    for order in StencilOrder::PAPER {
        let run = FilterRun {
            params: BilateralParams::for_size(StencilSize::R3, order),
            pencil_axis: Axis::Z,
            weight: Default::default(),
            nthreads: 1,
        };
        g.bench_with_input(BenchmarkId::new("order", order.name()), &a, |b, grid| {
            b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(grid, &run)))
        });
    }
    g.finish();

    // Scheduler comparison (static round-robin vs dynamic) at 4 threads.
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let params = BilateralParams::for_size(StencilSize::R1, StencilOrder::Xyz);
    let run = FilterRun {
        params,
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 4,
    };
    g.bench_function("pool_static", |b| {
        b.iter(|| black_box(bilateral3d::<_, ArrayOrder3>(&z, &run)))
    });
    g.bench_function("pool_dynamic", |b| {
        b.iter(|| black_box(bilateral3d_dynamic::<_, ArrayOrder3>(&z, &params, Axis::X, 4)))
    });
    g.finish();
}

criterion_group!(benches, bench_bilateral);
criterion_main!(benches);
