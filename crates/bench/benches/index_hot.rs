//! Ablation microbench for the incremental-cursor and gather fast paths.
//!
//! Three columns, each isolating one hot-loop optimization against the
//! table-lookup baseline it replaced:
//!
//! * `cursor_vs_index` — axis sweeps via `Layout3::index` per voxel vs one
//!   cursor positioned once and stepped with O(1) increments;
//! * `trilinear` — per-sample `sample_trilinear` (8 `index()` calls per
//!   sample, no reuse) vs the per-ray [`CellSampler`] (7-step gray-code
//!   corner walk + cached cell);
//! * `bilateral_interior` — the per-voxel bilateral kernel vs the
//!   single-thread pencil-gather driver, r1/r3/r5.
//!
//! The cursor paths compute bitwise-identical results; only the index
//! arithmetic and read scheduling change, so any delta here is pure
//! addressing cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sfc_core::{
    ArrayOrder3, Axis, Cursor3, Dims3, Grid3, HilbertOrder3, Layout3, StencilOrder, StencilSize,
    Tiled3, ZOrder3,
};
use sfc_filters::{bilateral3d, bilateral_voxel, BilateralParams, FilterRun};
use sfc_volrend::{sample_trilinear, vec3, CellSampler};

/// Sum a full x/y/z sweep using a fresh `index()` per voxel.
fn sweep_index<L: Layout3>(g: &Grid3<f32, L>) -> f32 {
    let d = g.dims();
    let (l, s) = (g.layout(), g.storage());
    let mut acc = 0.0f32;
    for k in 0..d.nz {
        for j in 0..d.ny {
            for i in 0..d.nx {
                acc += s[l.index(i, j, k)];
            }
        }
    }
    acc
}

/// Same sweep, but each x-run walks one cursor with `inc_x` steps.
fn sweep_cursor<L: Layout3>(g: &Grid3<f32, L>) -> f32 {
    let d = g.dims();
    let (l, s) = (g.layout(), g.storage());
    let mut acc = 0.0f32;
    for k in 0..d.nz {
        for j in 0..d.ny {
            let mut c = l.cursor(0, j, k);
            for i in 0..d.nx {
                acc += s[c.index()];
                if i + 1 < d.nx {
                    c.inc_x();
                }
            }
        }
    }
    acc
}

fn bench_cursor_vs_index(c: &mut Criterion) {
    let dims = Dims3::cube(64);
    let values: Vec<f32> = (0..dims.len()).map(|v| (v % 251) as f32).collect();
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    let mut g = c.benchmark_group("cursor_vs_index");
    g.throughput(Throughput::Elements(dims.len() as u64));
    macro_rules! pair {
        ($name:expr, $grid:expr) => {
            g.bench_function(BenchmarkId::new($name, "index"), |b| {
                b.iter(|| black_box(sweep_index(black_box(&$grid))))
            });
            g.bench_function(BenchmarkId::new($name, "cursor"), |b| {
                b.iter(|| black_box(sweep_cursor(black_box(&$grid))))
            });
        };
    }
    pair!("a-order", a);
    pair!("z-order", z);
    pair!("tiled", t);
    pair!("hilbert", h);
    g.finish();
}

fn bench_trilinear(c: &mut Criterion) {
    let dims = Dims3::cube(64);
    let values: Vec<f32> = (0..dims.len())
        .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
        .collect();
    let z: Grid3<f32, ZOrder3> = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values).convert();

    // A diagonal march at sub-voxel steps: the renderer's actual access
    // pattern, where consecutive samples usually share a trilinear cell.
    let origin = vec3(1.0, 1.5, 2.0);
    let dir = vec3(1.0, 0.9, 0.8).normalized();
    let nsteps = 120usize;

    let mut g = c.benchmark_group("trilinear");
    g.throughput(Throughput::Elements(nsteps as u64));
    g.bench_function("one_shot_8_index", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for s in 0..nsteps {
                acc += sample_trilinear(&z, origin + dir * (s as f32 * 0.5));
            }
            black_box(acc)
        })
    });
    g.bench_function("cached_cell_cursor", |b| {
        b.iter(|| {
            let mut sampler = CellSampler::new(&z);
            let mut acc = 0.0f32;
            for s in 0..nsteps {
                acc += sampler.sample(origin + dir * (s as f32 * 0.5));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_bilateral_interior(c: &mut Criterion) {
    let n = 32;
    let dims = Dims3::cube(n);
    let values = sfc_datagen::mri_phantom(dims, 3, sfc_datagen::PhantomParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();

    let mut g = c.benchmark_group("bilateral_interior");
    g.sample_size(10);
    g.throughput(Throughput::Elements(dims.len() as u64));
    for size in StencilSize::ALL {
        let params = BilateralParams::for_size(size, StencilOrder::Xyz);
        let kernel = params.spatial_kernel();
        let inv = params.inv_two_sigma_range_sq();
        let run = FilterRun {
            params,
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 1,
        };
        g.bench_with_input(
            BenchmarkId::new("per_voxel", size.label()),
            &z,
            |b, grid| {
                b.iter(|| {
                    let mut out = vec![0.0f32; dims.len()];
                    for (i, j, k) in dims.iter() {
                        out[(k * dims.ny + j) * dims.nx + i] =
                            bilateral_voxel(grid, &kernel, inv, i, j, k);
                    }
                    black_box(out)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pencil_gather", size.label()),
            &z,
            |b, grid| b.iter(|| black_box(bilateral3d::<_, ZOrder3>(grid, &run))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cursor_vs_index,
    bench_trilinear,
    bench_bilateral_interior
);
criterion_main!(benches);
