//! Crash-consistency: `kill -9` mid-import must never yield a store
//! that serves torn bricks.
//!
//! The test runs the real `store_stress` binary in `--mode import` with
//! `--slow-ms` throttling every file operation, SIGKILLs it at staggered
//! points in the import window, and then adjudicates the survivor
//! in-process. The contract (DESIGN.md §10): after a crash, exactly one
//! of two things is true — [`BrickStore::recover`] finishes the import
//! from the journal and every voxel reads back bitwise identical to the
//! regenerated reference, or recovery refuses with a *typed* error
//! ("import incomplete") and a plain [`BrickStore::open`] also fails
//! typed because no manifest was ever published. A store that opens but
//! disagrees with the reference is the one forbidden outcome.

#![cfg(unix)]

use sfc_core::{Axis, Dims3, Grid3, Volume3, ZOrder3};
use sfc_store::{BrickStore, StoreOptions, MANIFEST_FILE};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

const SIZE: usize = 24;
const SEED: u64 = 7;

fn reference_grid() -> Grid3<f32, ZOrder3> {
    let dims = Dims3::cube(SIZE);
    let values =
        sfc_datagen::combustion_field(dims, SEED, sfc_datagen::CombustionParams::default());
    Grid3::from_row_major(dims, &values)
}

fn assert_bitwise(store: &BrickStore, reference: &impl Volume3, what: &str) {
    let dims = reference.dims();
    let mut got = vec![0.0f32; dims.nx];
    let mut want = vec![0.0f32; dims.nx];
    for k in 0..dims.nz {
        for j in 0..dims.ny {
            store.gather_axis_run(0, j, k, Axis::X, &mut got);
            reference.gather_axis_run(0, j, k, Axis::X, &mut want);
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{what}: voxel ({i},{j},{k}) reads {a} want {b}"
                );
            }
        }
    }
}

/// Spawn the import child, SIGKILL it `delay` after it reports the
/// import has started, and return whether it was killed before finishing
/// on its own.
fn import_killed_after(dir: &Path, delay: Duration) -> bool {
    let mut child = Command::new(env!("CARGO_BIN_EXE_store_stress"))
        .args([
            "--mode",
            "import",
            "--dir",
            dir.to_str().expect("utf8 path"),
            "--size",
            &SIZE.to_string(),
            "--seed",
            &SEED.to_string(),
            "--slow-ms",
            "3",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn store_stress");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("child prints a banner").expect("readable banner");
    assert!(banner.starts_with("importing "), "unexpected banner {banner:?}");
    std::thread::sleep(delay);
    let killed = child.try_wait().expect("try_wait").is_none();
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    killed
}

#[test]
fn kill_nine_mid_import_never_yields_a_torn_store() {
    let reference = reference_grid();
    let base = std::env::temp_dir().join(format!("sfc-store-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // The throttled import takes roughly 60 ops x 3 ms; these delays land
    // kills early (journal barely started), mid-stream, and near or past
    // the manifest publish.
    let delays_ms = [5u64, 40, 90, 160, 400];
    let mut recovered = 0;
    let mut refused = 0;
    for (case, &ms) in delays_ms.iter().enumerate() {
        let dir = base.join(format!("case{case}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let killed = import_killed_after(&dir, Duration::from_millis(ms));

        match BrickStore::recover(&dir, StoreOptions::default()) {
            Ok(store) => {
                assert_bitwise(&store, &reference, &format!("case {case} (kill at {ms}ms)"));
                let report = store.scrub();
                assert!(
                    report.is_healthy(),
                    "case {case}: recovered store scrubs dirty: {report:?}"
                );
                recovered += 1;
            }
            Err(e) => {
                assert!(
                    killed,
                    "case {case}: import ran to completion yet recovery failed: {e}"
                );
                let msg = e.to_string();
                assert!(
                    msg.contains("import incomplete") || msg.contains("no meta record"),
                    "case {case}: unexpected recovery refusal: {e}"
                );
                // A refused recovery means no manifest was ever
                // published; plain open must agree, not serve torn data.
                assert!(
                    !dir.join(MANIFEST_FILE).exists(),
                    "case {case}: recovery refused but a manifest exists"
                );
                let open_err = BrickStore::open(&dir, StoreOptions::default())
                    .err()
                    .unwrap_or_else(|| panic!("case {case}: open accepted an unfinished import"));
                assert!(
                    open_err.to_string().contains("manifest"),
                    "case {case}: open failed for the wrong reason: {open_err}"
                );
                refused += 1;
            }
        }
    }
    // The sweep must actually exercise both arms of the contract; if the
    // timing drifts so far that it doesn't, the delays need re-tuning,
    // not the assertions.
    assert!(
        recovered >= 1,
        "no kill point left a recoverable store (refused={refused}) — delays too early"
    );
    assert!(
        refused >= 1,
        "no kill point interrupted the import (recovered={recovered}) — delays too late"
    );

    // Control: an unkilled import must verify end to end.
    let dir = base.join("control");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let status = Command::new(env!("CARGO_BIN_EXE_store_stress"))
        .args([
            "--mode",
            "import",
            "--dir",
            dir.to_str().expect("utf8 path"),
            "--size",
            &SIZE.to_string(),
            "--seed",
            &SEED.to_string(),
        ])
        .stdout(Stdio::null())
        .status()
        .expect("run import to completion");
    assert!(status.success(), "clean import failed");
    let store = BrickStore::open(&dir, StoreOptions::default()).expect("clean store opens");
    assert_bitwise(&store, &reference, "control");

    let _ = std::fs::remove_dir_all(&base);
}
