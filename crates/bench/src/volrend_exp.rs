//! Shared machinery for the volume-rendering figures (paper Figs. 4–6).

use sfc_core::{ArrayOrder3, Dims3, Grid3, SfcResult, ZOrder3};
use sfc_datagen::{combustion_field, CombustionParams};
use sfc_harness::{scaled_relative_difference, PaperTable};
use sfc_memsim::Platform;

use crate::checkpoint::{cell_through, Checkpoint};
use sfc_volrend::{
    orbit_viewpoints, simulate_render_counters, vec3, Camera, Projection, RenderOpts,
    TransferFunction,
};

/// Both layouts of the combustion-field input volume.
pub struct VolrendInputs {
    /// Array-order copy.
    pub a: Grid3<f32, ArrayOrder3>,
    /// Z-order copy (identical logical contents).
    pub z: Grid3<f32, ZOrder3>,
}

/// Synthesize the field once and lay it out both ways.
pub fn build_inputs(n: usize, seed: u64) -> VolrendInputs {
    let dims = Dims3::cube(n);
    let values = combustion_field(dims, seed, CombustionParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    VolrendInputs { a, z }
}

/// The paper's 8-viewpoint orbit for a cubic volume of edge `n` with a
/// square output image of edge `image` (perspective projection, as in the
/// paper's evaluation).
pub fn paper_orbit(n: usize, image: usize) -> Vec<Camera> {
    orbit(n, image, Projection::Perspective {
        fov_y: 40f32.to_radians(),
    })
}

/// Same orbit under orthographic projection (all rays share one slope —
/// the "fully structured" contrast case the paper describes in §III-B).
pub fn ortho_orbit(n: usize, image: usize) -> Vec<Camera> {
    orbit(n, image, Projection::Orthographic {
        height: n as f32 * 1.3,
    })
}

fn orbit(n: usize, image: usize, projection: Projection) -> Vec<Camera> {
    let c = n as f32 / 2.0;
    orbit_viewpoints(8, vec3(c, c, c), n as f32 * 2.2, projection, image, image)
}

/// Per-viewpoint absolute measurements for Fig. 4's two line charts.
pub struct OrbitSeries {
    /// Modeled runtime (cycles), array order, per viewpoint.
    pub runtime_a: Vec<f64>,
    /// Modeled runtime (cycles), Z-order, per viewpoint.
    pub runtime_z: Vec<f64>,
    /// Platform counter, array order, per viewpoint.
    pub counter_a: Vec<u64>,
    /// Platform counter, Z-order, per viewpoint.
    pub counter_z: Vec<u64>,
}

/// Measure the absolute per-viewpoint series (Fig. 4) at one concurrency.
pub fn run_orbit_series(
    inputs: &VolrendInputs,
    cams: &[Camera],
    opts: &RenderOpts,
    nthreads: usize,
    platform: &Platform,
    progress: bool,
) -> OrbitSeries {
    let tf = TransferFunction::fire();
    let mut out = OrbitSeries {
        runtime_a: Vec::new(),
        runtime_z: Vec::new(),
        counter_a: Vec::new(),
        counter_z: Vec::new(),
    };
    for (v, cam) in cams.iter().enumerate() {
        let ra = simulate_render_counters(&inputs.a, cam, &tf, opts, nthreads, platform);
        let rz = simulate_render_counters(&inputs.z, cam, &tf, opts, nthreads, platform);
        out.runtime_a.push(ra.modeled_runtime_cycles(&platform.cost));
        out.runtime_z.push(rz.modeled_runtime_cycles(&platform.cost));
        out.counter_a.push(platform.counter_value(&ra));
        out.counter_z.push(platform.counter_value(&rz));
        if progress {
            eprintln!(
                "  viewpoint {v}: a={} z={} ({})",
                out.counter_a[v], out.counter_z[v], platform.counter_name
            );
        }
    }
    out
}

/// One `ds` figure: viewpoints × thread counts (Figs. 5–6).
pub struct VolrendFigure {
    /// Modeled-runtime `ds` table.
    pub runtime_ds: PaperTable,
    /// Counter `ds` table.
    pub counter_ds: PaperTable,
    /// Auxiliary: `ds` of total L2 accesses (= L1 misses).
    pub l2_accesses_ds: PaperTable,
}

/// Run the full viewpoint × concurrency grid.
pub fn run_volrend_figure(
    inputs: &VolrendInputs,
    cams: &[Camera],
    opts: &RenderOpts,
    threads: &[usize],
    platform: &Platform,
    progress: bool,
) -> VolrendFigure {
    run_volrend_figure_resumable(inputs, cams, opts, threads, platform, progress, "", &mut None)
        .expect("sweep without a checkpoint cannot fail")
}

/// [`run_volrend_figure`] with checkpoint/resume; see
/// [`crate::checkpoint`] and
/// [`crate::bilateral_exp::run_bilateral_figure_resumable`] for the
/// contract. `tag` must pin the figure id, volume size, image size, and
/// seed.
#[allow(clippy::too_many_arguments)]
pub fn run_volrend_figure_resumable(
    inputs: &VolrendInputs,
    cams: &[Camera],
    opts: &RenderOpts,
    threads: &[usize],
    platform: &Platform,
    progress: bool,
    tag: &str,
    ckpt: &mut Option<Checkpoint>,
) -> SfcResult<VolrendFigure> {
    let tf = TransferFunction::fire();
    let row_labels: Vec<String> = (0..cams.len()).map(|v| v.to_string()).collect();
    let col_labels: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    let mut runtime_ds = PaperTable::new(
        format!("Runtime (modeled), scaled relative difference Z- vs A-order — {}", platform.name),
        "viewpoint",
        row_labels.clone(),
        col_labels.clone(),
    );
    let mut counter_ds = PaperTable::new(
        format!("{}, scaled relative difference Z- vs A-order — {}", platform.counter_name, platform.name),
        "viewpoint",
        row_labels.clone(),
        col_labels.clone(),
    );
    let mut l2_accesses_ds = PaperTable::new(
        format!("L2 total accesses (= L1 misses), scaled relative difference — {}", platform.name),
        "viewpoint",
        row_labels,
        col_labels,
    );
    for (r, cam) in cams.iter().enumerate() {
        for (c, &nthreads) in threads.iter().enumerate() {
            let key = format!("{tag}|{}|v{r}|t{nthreads}", platform.name);
            let (cell, resumed) = cell_through(ckpt, &key, || {
                let ra = simulate_render_counters(&inputs.a, cam, &tf, opts, nthreads, platform);
                let rz = simulate_render_counters(&inputs.z, cam, &tf, opts, nthreads, platform);
                vec![
                    scaled_relative_difference(
                        ra.modeled_runtime_cycles(&platform.cost),
                        rz.modeled_runtime_cycles(&platform.cost),
                    ),
                    scaled_relative_difference(
                        platform.counter_value(&ra) as f64,
                        platform.counter_value(&rz) as f64,
                    ),
                    scaled_relative_difference(
                        ra.total().l2.accesses as f64,
                        rz.total().l2.accesses as f64,
                    ),
                ]
            })?;
            if cell.len() != 3 {
                return Err(sfc_core::SfcError::Corrupt {
                    what: "checkpoint cell".to_string(),
                    reason: format!("key '{key}' holds {} values, expected 3", cell.len()),
                });
            }
            let (rt, cnt) = (cell[0], cell[1]);
            runtime_ds.set(r, c, rt);
            counter_ds.set(r, c, cnt);
            l2_accesses_ds.set(r, c, cell[2]);
            if progress {
                eprintln!(
                    "  viewpoint {r} threads={nthreads:<4} ds(runtime)={rt:6.2} ds(counter)={cnt:8.2}{}",
                    if resumed { "  (resumed)" } else { "" }
                );
            }
        }
    }
    Ok(VolrendFigure {
        runtime_ds,
        counter_ds,
        l2_accesses_ds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_memsim::{platform, scaled};

    #[test]
    fn orbit_cameras_count() {
        assert_eq!(paper_orbit(32, 16).len(), 8);
    }

    #[test]
    fn tiny_orbit_series_shapes() {
        let inputs = build_inputs(16, 3);
        let cams = paper_orbit(16, 16);
        let plat = scaled(&platform::ivy_bridge(), 15);
        let opts = RenderOpts {
            tile: 8,
            ..Default::default()
        };
        let s = run_orbit_series(&inputs, &cams, &opts, 2, &plat, false);
        assert_eq!(s.counter_a.len(), 8);
        assert!(s.counter_a.iter().all(|&c| c > 0));
    }

    #[test]
    fn tiny_figure_shape() {
        let inputs = build_inputs(16, 3);
        let cams = paper_orbit(16, 16);
        let plat = scaled(&platform::mic_knc(), 15);
        let opts = RenderOpts {
            tile: 8,
            ..Default::default()
        };
        let fig =
            run_volrend_figure(&inputs, &cams[..2], &opts, &[2, 4], &plat, false);
        assert_eq!(fig.counter_ds.cells.len(), 2);
        assert_eq!(fig.counter_ds.cells[0].len(), 2);
    }
}
