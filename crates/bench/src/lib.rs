//! # sfc-bench — paper figure reproduction and microbenchmarks
//!
//! One binary per evaluation figure (run with `--release`):
//!
//! | binary | paper figure | contents |
//! |---|---|---|
//! | `fig1_alignment` | Fig. 1 | ray/layout alignment illustration, quantified |
//! | `fig2_bilateral_ivb` | Fig. 2 | bilateral `ds` grid, Ivy Bridge model |
//! | `fig3_bilateral_mic` | Fig. 3 | bilateral `ds` grid, MIC model |
//! | `fig4_volrend_orbit` | Fig. 4 | per-viewpoint absolute series |
//! | `fig5_volrend_ivb` | Fig. 5 | volrend `ds` grid, Ivy Bridge model |
//! | `fig6_volrend_mic` | Fig. 6 | volrend `ds` grid, MIC model |
//!
//! Common flags: `--size N` (volume edge, default 64), `--csv DIR`
//! (persist tables), `--quick` (reduced grid for smoke runs),
//! `--native` (additionally measure native wall-clock per row),
//! `--checkpoint FILE` (figs. 2/3/5/6: persist each completed grid cell
//! durably and skip it on restart — see [`checkpoint`]), and the fault
//! flags `--fault-seed N --panic-rate P --flaky-rate P --timeout-rate P
//! --corrupt-rate P` (run the real kernel once under the
//! graceful-degradation driver with injected faults — see [`faultrun`]).
//!
//! Criterion microbenches (`cargo bench`) cover the ablations listed in
//! DESIGN.md §5: codec cost, indexer parity, traversal patterns, curve and
//! layout comparisons, kernel throughput, and tile-size sensitivity.

#![warn(missing_docs)]

pub mod bilateral_exp;
pub mod checkpoint;
pub mod faultrun;
pub mod loadgen;
pub mod output;
pub mod volrend_exp;

pub use bilateral_exp::{
    build_inputs as build_bilateral_inputs, paper_rows, run_bilateral_figure,
    run_bilateral_figure_resumable, BilateralFigure, BilateralInputs,
};
pub use checkpoint::{cell_through, checkpoint_from_args, ok_or_exit, Checkpoint, CheckpointRecovery};
pub use faultrun::{bilateral_fault_demo, contaminate_volume_pair, volrend_fault_demo};
pub use loadgen::Tally;
pub use output::{banner, emit_figure};
pub use volrend_exp::{
    build_inputs as build_volrend_inputs, ortho_orbit, paper_orbit, run_orbit_series,
    run_volrend_figure, run_volrend_figure_resumable, OrbitSeries, VolrendFigure,
    VolrendInputs,
};
