//! Reproduces **Figure 2**: bilateral filter on the Ivy Bridge model —
//! scaled relative difference of runtime (left) and `PAPI_L3_TCA` (right),
//! rows = {r1, r3, r5} × {px xyz, pz zyx}, columns = thread counts
//! {2, 4, 6, 8, 10, 12, 18, 24}.
//!
//! `cargo run -p sfc-bench --release --bin fig2_bilateral_ivb -- [--size 64] [--quick] [--csv DIR] [--native] [--checkpoint FILE]`

use sfc_bench::{
    banner, build_bilateral_inputs, checkpoint_from_args, emit_figure, ok_or_exit,
    paper_rows, run_bilateral_figure_resumable,
};
use sfc_harness::FigArgs;
use sfc_memsim::{ivy_bridge, scaled, shift_for_volume_edge};

fn main() {
    let fig_args = FigArgs::from_env();
    let n = fig_args.size();
    let csv = fig_args.csv();

    let base = ivy_bridge();
    let threads = fig_args.thread_grid([2, 24], &base.concurrency);
    let mut rows = paper_rows();
    if fig_args.quick() {
        rows.truncate(4); // drop the two expensive r5 rows in smoke mode
    }
    let plat = scaled(&base, shift_for_volume_edge(n));

    banner(
        "Figure 2 — Bilat3d, Ivy Bridge: scaled relative difference Z- vs A-order",
        "512^3 MRI volume, 2x12-core Ivy Bridge, PAPI_L3_TCA hardware counter",
        &format!(
            "{n}^3 synthetic MRI phantom, cache model {} (L1 {}B / L2 {}B / LLC {}B per paper ratios), deterministic counter simulation",
            plat.name,
            plat.hierarchy.l1.size_bytes,
            plat.hierarchy.l2.size_bytes,
            plat.hierarchy.llc.map(|c| c.size_bytes).unwrap_or(0),
        ),
    );

    let mut inputs = build_bilateral_inputs(n, 2024);
    sfc_bench::contaminate_volume_pair(fig_args.raw(), "mri phantom", &mut inputs.a, &mut inputs.z);
    sfc_bench::bilateral_fault_demo(fig_args.raw(), &inputs.z);
    let mut ckpt = checkpoint_from_args(fig_args.raw());
    let fig = ok_or_exit(run_bilateral_figure_resumable(
        &inputs,
        &rows,
        &threads,
        &plat,
        true,
        &format!("fig2 n{n} seed2024"),
        &mut ckpt,
    ));
    println!();
    emit_figure("fig2", &[&fig.runtime_ds, &fig.counter_ds, &fig.l2_accesses_ds], 2, csv.as_deref());

    if fig_args.native() {
        let nthreads = fig_args.raw().get_usize("native-threads", 4);
        let t = sfc_bench::bilateral_exp::native_row_times(&inputs, &rows, nthreads, 3);
        println!("{}", t.render_text(2));
        println!(
            "note: native numbers reflect THIS host's memory system; the paper's\n\
             runtime shape is reproduced by the modeled-runtime table above."
        );
    }
}
