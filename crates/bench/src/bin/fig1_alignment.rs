//! Reproduces **Figure 1** quantitatively: the paper's illustration shows
//! that with an array-order layout some ray directions align well with
//! memory and others poorly, while Z-order has no particularly unfavorable
//! direction.
//!
//! Here we march bundles of parallel rays through a 2D grid at 8 angles
//! and count cache misses per layout. Array order should be near-perfect
//! at 0° (along rows) and collapse toward 90° (across rows); the
//! space-filling curves should be approximately angle-invariant.
//!
//! `cargo run -p sfc-bench --release --bin fig1_alignment -- [--size 512] [--csv DIR]`

use sfc_core::{ArrayOrder2, Dims2, Grid2, HilbertOrder2, Layout2, Tiled2, ZOrder2};
use sfc_harness::{Args, PaperTable};
use sfc_memsim::{CacheConfig, CoreSim, HierarchyConfig};
use std::path::PathBuf;

/// March parallel rays at `theta` (radians) across the grid, reading the
/// nearest cell every half-cell step; returns L2 miss count.
fn ray_sweep<L: Layout2>(grid: &Grid2<f32, L>, hier: &HierarchyConfig, theta: f32) -> u64 {
    let d = grid.dims();
    let (nx, ny) = (d.nx as f32, d.ny as f32);
    let dir = (theta.cos(), theta.sin());
    // Perpendicular offset direction for ray origins.
    let perp = (-dir.1, dir.0);
    let mut sim = CoreSim::new(hier);
    // Enough rays, spaced one cell apart, to cover the grid diagonal.
    let diag = (nx * nx + ny * ny).sqrt();
    let rays = diag.ceil() as i32;
    let cx = nx / 2.0;
    let cy = ny / 2.0;
    for r in -rays / 2..=rays / 2 {
        let ox = cx + perp.0 * r as f32 - dir.0 * diag / 2.0;
        let oy = cy + perp.1 * r as f32 - dir.1 * diag / 2.0;
        let steps = (diag * 2.0) as i32;
        for s in 0..steps {
            let x = ox + dir.0 * s as f32 * 0.5;
            let y = oy + dir.1 * s as f32 * 0.5;
            if x >= 0.0 && y >= 0.0 && x < nx && y < ny {
                let idx = grid.index_of(x as usize, y as usize);
                sim.read(idx as u64 * 4, 4);
            }
        }
    }
    sim.counters().l2.misses
}

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("size", 512);
    let csv = args.get("csv").map(PathBuf::from);
    let dims = Dims2::square(n);
    let hier = HierarchyConfig {
        l1: CacheConfig::new(4 * 1024, 64, 8),
        l2: CacheConfig::new(32 * 1024, 64, 8),
        llc: None,
        tlb: None,
    };

    println!("== Figure 1 — ray/layout alignment, quantified ==");
    println!(
        "parallel ray bundles at 8 angles across a {n}x{n} grid;\n\
         L2 misses per layout (L1 4KB / L2 32KB). Array order should be\n\
         cheap at 0 deg and expensive at 90 deg; curves should be flat.\n"
    );

    let a = Grid2::<f32, ArrayOrder2>::from_fn(dims, |i, j| (i + j) as f32);
    let z: Grid2<f32, ZOrder2> = a.convert();
    let t: Grid2<f32, Tiled2> = a.convert();
    let h: Grid2<f32, HilbertOrder2> = a.convert();

    let angles: Vec<f32> = (0..8).map(|k| k as f32 * 22.5).collect();
    let mut table = PaperTable::new(
        "L2 misses by ray angle and layout",
        "angle (deg)",
        angles.iter().map(|a| format!("{a:.1}")).collect(),
        vec![
            "a-order".into(),
            "z-order".into(),
            "tiled".into(),
            "hilbert".into(),
        ],
    );
    for (row, &deg) in angles.iter().enumerate() {
        let th = deg.to_radians();
        table.set(row, 0, ray_sweep(&a, &hier, th) as f64);
        table.set(row, 1, ray_sweep(&z, &hier, th) as f64);
        table.set(row, 2, ray_sweep(&t, &hier, th) as f64);
        table.set(row, 3, ray_sweep(&h, &hier, th) as f64);
        eprintln!("  angle {deg:5.1} done");
    }
    println!("{}", table.render_text(0));

    // Summary: max/min ratio over angles per layout (1.0 = fully
    // direction-neutral).
    println!("direction sensitivity (max/min misses over angles):");
    for (c, name) in ["a-order", "z-order", "tiled", "hilbert"].iter().enumerate() {
        let col: Vec<f64> = (0..angles.len()).map(|r| table.get(r, c)).collect();
        let max = col.iter().cloned().fold(f64::MIN, f64::max);
        let min = col.iter().cloned().fold(f64::MAX, f64::min);
        println!("  {name:<8} {:6.2}x", max / min);
    }

    if let Some(dir) = csv {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let p = dir.join("fig1_0.csv");
        std::fs::write(&p, table.render_csv()).expect("write csv");
        println!("wrote {}", p.display());
    }
}
