//! Reproduces **Figure 6**: volume rendering on the MIC model — scaled
//! relative difference of runtime (left) and `L2_DATA_READ_MISS_MEM_FILL`
//! (right), rows = viewpoints 0–7, columns = threads {59, 118, 177, 236}.
//!
//! The paper notes the counter difference is highest at 59 threads and
//! drops as more hardware threads share each core's caches — reproduced
//! here by interleaving co-located threads' tile streams.
//!
//! `cargo run -p sfc-bench --release --bin fig6_volrend_mic -- [--size 64] [--image 128] [--quick] [--csv DIR] [--checkpoint FILE]`

use sfc_bench::{
    banner, build_volrend_inputs, checkpoint_from_args, emit_figure, ok_or_exit, paper_orbit,
    run_volrend_figure_resumable,
};
use sfc_harness::FigArgs;
use sfc_memsim::{mic_knc, scaled, shift_for_volume_edge};
use sfc_volrend::RenderOpts;

fn main() {
    let fig_args = FigArgs::from_env();
    let n = fig_args.size();
    let image = fig_args.image(); // 1 ray per voxel face, as at 512^2/512^3
    let csv = fig_args.csv();

    let base = mic_knc();
    let threads = fig_args.thread_grid([59, 236], &base.concurrency);
    let plat = scaled(&base, shift_for_volume_edge(n));

    banner(
        "Figure 6 — Volrend, MIC: scaled relative difference Z- vs A-order",
        "512^3 combustion volume, viewpoints 0-7 x threads {59,118,177,236}",
        &format!("{n}^3 synthetic combustion field, {image}^2 image, model {}", plat.name),
    );

    let mut inputs = build_volrend_inputs(n, 7);
    sfc_bench::contaminate_volume_pair(fig_args.raw(), "combustion field", &mut inputs.a, &mut inputs.z);
    let mut cams = paper_orbit(n, image);
    if fig_args.quick() {
        cams.truncate(4);
    }
    let opts = RenderOpts {
        tile: fig_args.tile(image),
        ..Default::default()
    };
    sfc_bench::volrend_fault_demo(fig_args.raw(), &inputs.z, &cams[0], &opts);
    let mut ckpt = checkpoint_from_args(fig_args.raw());
    let fig = ok_or_exit(run_volrend_figure_resumable(
        &inputs,
        &cams,
        &opts,
        &threads,
        &plat,
        true,
        &format!("fig6 n{n} img{image} tile{} seed7", opts.tile),
        &mut ckpt,
    ));
    println!();
    emit_figure("fig6", &[&fig.runtime_ds, &fig.counter_ds, &fig.l2_accesses_ds], 2, csv.as_deref());
}
