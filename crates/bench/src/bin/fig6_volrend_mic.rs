//! Reproduces **Figure 6**: volume rendering on the MIC model — scaled
//! relative difference of runtime (left) and `L2_DATA_READ_MISS_MEM_FILL`
//! (right), rows = viewpoints 0–7, columns = threads {59, 118, 177, 236}.
//!
//! The paper notes the counter difference is highest at 59 threads and
//! drops as more hardware threads share each core's caches — reproduced
//! here by interleaving co-located threads' tile streams.
//!
//! `cargo run -p sfc-bench --release --bin fig6_volrend_mic -- [--size 64] [--image 128] [--quick] [--csv DIR] [--checkpoint FILE]`

use sfc_bench::{
    banner, build_volrend_inputs, checkpoint_from_args, emit_figure, ok_or_exit, paper_orbit,
    run_volrend_figure_resumable,
};
use sfc_harness::Args;
use sfc_memsim::{mic_knc, scaled, shift_for_volume_edge};
use sfc_volrend::RenderOpts;
use std::path::PathBuf;

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("size", 64);
    let quick = args.has("quick");
    let image = args.get_usize("image", n); // 1 ray per voxel face, as at 512^2/512^3
    let csv = args.get("csv").map(PathBuf::from);

    let base = mic_knc();
    let threads = if quick {
        vec![59, 236]
    } else {
        args.get_usize_list("threads", &base.concurrency)
    };
    let plat = scaled(&base, shift_for_volume_edge(n));

    banner(
        "Figure 6 — Volrend, MIC: scaled relative difference Z- vs A-order",
        "512^3 combustion volume, viewpoints 0-7 x threads {59,118,177,236}",
        &format!("{n}^3 synthetic combustion field, {image}^2 image, model {}", plat.name),
    );

    let inputs = build_volrend_inputs(n, 7);
    let mut cams = paper_orbit(n, image);
    if quick {
        cams.truncate(4);
    }
    // tile = image/16 preserves the paper's 256-tile decomposition
    // (their 32^2 tiles on a 512^2 framebuffer).
    let opts = RenderOpts {
        tile: args.get_usize("tile", (image / 16).max(4)),
        ..Default::default()
    };
    sfc_bench::volrend_fault_demo(&args, &inputs.z, &cams[0], &opts);
    let mut ckpt = checkpoint_from_args(&args);
    let fig = ok_or_exit(run_volrend_figure_resumable(
        &inputs,
        &cams,
        &opts,
        &threads,
        &plat,
        true,
        &format!("fig6 n{n} img{image} tile{} seed7", opts.tile),
        &mut ckpt,
    ));
    println!();
    emit_figure("fig6", &[&fig.runtime_ds, &fig.counter_ds, &fig.l2_accesses_ds], 2, csv.as_deref());
}
