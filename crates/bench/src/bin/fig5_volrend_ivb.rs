//! Reproduces **Figure 5**: volume rendering on the Ivy Bridge model —
//! scaled relative difference of runtime (left) and `PAPI_L3_TCA` (right),
//! rows = viewpoints 0–7, columns = thread counts {2..24}.
//!
//! `cargo run -p sfc-bench --release --bin fig5_volrend_ivb -- [--size 64] [--image 128] [--quick] [--csv DIR] [--checkpoint FILE]`

use sfc_bench::{
    banner, build_volrend_inputs, checkpoint_from_args, emit_figure, ok_or_exit, paper_orbit,
    run_volrend_figure_resumable,
};
use sfc_harness::FigArgs;
use sfc_memsim::{ivy_bridge, scaled, shift_for_volume_edge};
use sfc_volrend::RenderOpts;

fn main() {
    let fig_args = FigArgs::from_env();
    let n = fig_args.size();
    let image = fig_args.image(); // 1 ray per voxel face, as at 512^2/512^3
    let csv = fig_args.csv();

    let base = ivy_bridge();
    let threads = fig_args.thread_grid([2, 24], &base.concurrency);
    let plat = scaled(&base, shift_for_volume_edge(n));

    banner(
        "Figure 5 — Volrend, Ivy Bridge: scaled relative difference Z- vs A-order",
        "512^3 combustion volume, viewpoints 0-7 x threads {2..24}, PAPI_L3_TCA",
        &format!("{n}^3 synthetic combustion field, {image}^2 image, model {}", plat.name),
    );

    let mut inputs = build_volrend_inputs(n, 7);
    sfc_bench::contaminate_volume_pair(fig_args.raw(), "combustion field", &mut inputs.a, &mut inputs.z);
    let mut cams = paper_orbit(n, image);
    if fig_args.quick() {
        cams.truncate(4);
    }
    let opts = RenderOpts {
        tile: fig_args.tile(image),
        ..Default::default()
    };
    sfc_bench::volrend_fault_demo(fig_args.raw(), &inputs.z, &cams[0], &opts);
    let mut ckpt = checkpoint_from_args(fig_args.raw());
    let fig = ok_or_exit(run_volrend_figure_resumable(
        &inputs,
        &cams,
        &opts,
        &threads,
        &plat,
        true,
        &format!("fig5 n{n} img{image} tile{} seed7", opts.tile),
        &mut ckpt,
    ));
    println!();
    emit_figure("fig5", &[&fig.runtime_ds, &fig.counter_ds, &fig.l2_accesses_ds], 2, csv.as_deref());
}
