//! Reproduces **Figure 4**: volume rendering on the Ivy Bridge model —
//! absolute runtime (left chart) and `PAPI_L3_TCA` (right chart) per
//! viewpoint 0–7, array order vs Z-order, at one concurrency.
//!
//! Array order is at its best at viewpoints 0 and 4 (rays parallel to x)
//! and degrades as the orbit misaligns rays from memory; Z-order is flat.
//!
//! `cargo run -p sfc-bench --release --bin fig4_volrend_orbit -- [--size 64] [--image 128] [--threads 12] [--csv DIR] [--native]`

use sfc_bench::{banner, build_volrend_inputs, emit_figure, paper_orbit, run_orbit_series};
use sfc_harness::{scaled_relative_difference, FigArgs, PaperTable};
use sfc_memsim::{ivy_bridge, scaled, shift_for_volume_edge};
use sfc_volrend::RenderOpts;

fn main() {
    let fig_args = FigArgs::from_env();
    let n = fig_args.size();
    let image = fig_args.image(); // 1 ray per voxel face, as at 512^2/512^3
    let threads = fig_args.raw().get_usize("threads", 12);
    let csv = fig_args.csv();

    let plat = scaled(&ivy_bridge(), shift_for_volume_edge(n));
    banner(
        "Figure 4 — Volrend, Ivy Bridge: absolute runtime and PAPI_L3_TCA vs viewpoint",
        "512^3 combustion volume, one configuration, viewpoints 0-7",
        &format!("{n}^3 synthetic combustion field, {image}^2 image, {threads} threads, model {}", plat.name),
    );

    let mut inputs = build_volrend_inputs(n, 7);
    sfc_bench::contaminate_volume_pair(fig_args.raw(), "combustion field", &mut inputs.a, &mut inputs.z);
    // --ortho renders the paper's §III-B contrast case: orthographic rays
    // all share one slope, so each viewpoint is purely good or purely bad
    // for array order.
    let cams = if fig_args.raw().has("ortho") {
        sfc_bench::ortho_orbit(n, image)
    } else {
        paper_orbit(n, image)
    };
    let opts = RenderOpts {
        nthreads: threads,
        tile: fig_args.tile(image),
        ..Default::default()
    };
    sfc_bench::volrend_fault_demo(fig_args.raw(), &inputs.z, &cams[0], &opts);
    let series = run_orbit_series(&inputs, &cams, &opts, threads, &plat, true);

    let rows: Vec<String> = (0..cams.len()).map(|v| v.to_string()).collect();
    let mut runtime = PaperTable::new(
        "Modeled runtime (Mcycles) vs viewpoint",
        "viewpoint",
        rows.clone(),
        vec!["a-order".into(), "z-order".into(), "ds".into()],
    );
    let mut counter = PaperTable::new(
        format!("{} vs viewpoint", plat.counter_name),
        "viewpoint",
        rows,
        vec!["a-order".into(), "z-order".into(), "ds".into()],
    );
    for v in 0..cams.len() {
        runtime.set(v, 0, series.runtime_a[v] / 1e6);
        runtime.set(v, 1, series.runtime_z[v] / 1e6);
        runtime.set(
            v,
            2,
            scaled_relative_difference(series.runtime_a[v], series.runtime_z[v]),
        );
        counter.set(v, 0, series.counter_a[v] as f64);
        counter.set(v, 1, series.counter_z[v] as f64);
        counter.set(
            v,
            2,
            scaled_relative_difference(series.counter_a[v] as f64, series.counter_z[v] as f64),
        );
    }
    println!();
    emit_figure("fig4", &[&runtime, &counter], 2, csv.as_deref());

    if fig_args.native() {
        native_orbit(&inputs, &cams, &opts);
    }
}

fn native_orbit(
    inputs: &sfc_bench::VolrendInputs,
    cams: &[sfc_volrend::Camera],
    opts: &RenderOpts,
) {
    use sfc_volrend::TransferFunction;
    let tf = TransferFunction::fire();
    let mut t = PaperTable::new(
        "Native wall-clock (ms) vs viewpoint",
        "viewpoint",
        (0..cams.len()).map(|v| v.to_string()).collect(),
        vec!["a-order".into(), "z-order".into(), "ds".into()],
    );
    for (v, cam) in cams.iter().enumerate() {
        let (_, ta) = sfc_harness::time_once(|| sfc_volrend::render(&inputs.a, cam, &tf, opts));
        let (_, tz) = sfc_harness::time_once(|| sfc_volrend::render(&inputs.z, cam, &tf, opts));
        t.set(v, 0, ta.as_secs_f64() * 1e3);
        t.set(v, 1, tz.as_secs_f64() * 1e3);
        t.set(
            v,
            2,
            scaled_relative_difference(ta.as_secs_f64(), tz.as_secs_f64()),
        );
    }
    println!("{}", t.render_text(2));
}
