//! Before/after throughput for the raw-speed pass, emitted as JSON
//! (committed at the repo root as `BENCH_speed_pass.json`).
//!
//! "before" is the code path as it stood prior to this pass: exact libm
//! photometric weights, scalar tap loops, and — for the Hilbert layout —
//! the O(bits)-per-step [`RecomputeCursor`] (reconstructed here as a
//! bench-local layout newtype, since the library's Hilbert layout now
//! hands out the amortized-O(1) [`HilbertCursor3`]). "after" is the fast
//! configuration: LUT (or polynomial) weights on the widest detected SIMD
//! tier plus the O(1) Hilbert stepping. Unlike `bench_baseline`, the
//! after-side output is *tolerance*-equal, not bitwise-equal, so every
//! after row is diffed against the exact oracle and the binary fails if
//! the max abs error leaves the documented budget.
//!
//! `cargo run -p sfc-bench --release --bin bench_speed_pass --
//!  [--size 32] [--reps 3] [--weight lut|fastexp|exact]
//!  [--simd auto|scalar|sse2|avx2] [--out FILE]`

use std::io::Write;
use std::time::Instant;

use sfc_core::{
    ArrayOrder3, Axis, Dims3, Grid3, HilbertOrder3, Layout3, LayoutKind, RecomputeCursor,
    StencilOrder, StencilSize, Tiled3, Volume3, ZOrder3,
};
use sfc_filters::{
    bilateral3d, detect_tier, BilateralParams, FilterRun, SimdTier, TapConfig, WeightMode,
};
use sfc_harness::Args;
use sfc_volrend::{vec3, CellSampler};

/// Output error budget vs the exact oracle (unit-range data); matches the
/// bound asserted by `crates/filters/tests/fastmath_oracle.rs`.
const TOL: f32 = 1e-4;

/// The Hilbert layout exactly as it behaved before this pass: same index
/// bijection, but sequential access steps via [`RecomputeCursor`] — one
/// full O(bits) `index()` per neighbor — instead of the automaton cursor.
#[derive(Debug, Clone)]
struct RecomputeHilbert(HilbertOrder3);

impl Layout3 for RecomputeHilbert {
    const KIND: LayoutKind = LayoutKind::Hilbert;
    type Cursor = RecomputeCursor<Self>;

    fn new(dims: Dims3) -> Self {
        Self(HilbertOrder3::new(dims))
    }
    fn dims(&self) -> Dims3 {
        self.0.dims()
    }
    fn storage_len(&self) -> usize {
        self.0.storage_len()
    }
    #[inline]
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        self.0.index(i, j, k)
    }
    fn coords(&self, index: usize) -> (usize, usize, usize) {
        self.0.coords(index)
    }
    fn cursor(&self, i: usize, j: usize, k: usize) -> RecomputeCursor<Self> {
        RecomputeCursor::new(self, i, j, k)
    }
}

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn run_for(size: StencilSize, weight: TapConfig) -> FilterRun {
    FilterRun {
        params: BilateralParams::for_size(size, StencilOrder::Xyz),
        pencil_axis: Axis::X,
        nthreads: 1,
        weight,
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// (before, after, max_abs_err): exact weights on `before_vol` vs the fast
/// config on `after_vol` (same values, possibly different cursor), plus
/// the after-output's max abs deviation from the exact oracle.
fn bilateral_pair<VB, VA>(
    before_vol: &VB,
    after_vol: &VA,
    size: StencilSize,
    fast: TapConfig,
    reps: usize,
) -> (f64, f64, f32)
where
    VB: Volume3 + Sync,
    VA: Volume3 + Sync,
{
    let voxels = before_vol.dims().len() as f64;
    let exact_run = run_for(size, TapConfig::exact());
    let fast_run = run_for(size, fast);
    let before = best_of(reps, || {
        std::hint::black_box(bilateral3d::<_, ZOrder3>(before_vol, &exact_run));
    });
    let after = best_of(reps, || {
        std::hint::black_box(bilateral3d::<_, ZOrder3>(after_vol, &fast_run));
    });
    let want: Grid3<f32, ZOrder3> = bilateral3d(after_vol, &exact_run);
    let got: Grid3<f32, ZOrder3> = bilateral3d(after_vol, &fast_run);
    let err = max_abs_diff(&want.to_row_major(), &got.to_row_major());
    (voxels / before, voxels / after, err)
}

/// Samples/sec for a sub-voxel diagonal march with a per-ray sampler.
fn trilinear_rate<V: Volume3>(vol: &V, reps: usize) -> f64 {
    let origin = vec3(1.0, 1.5, 2.0);
    let dir = vec3(1.0, 0.9, 0.8).normalized();
    let nsteps = 120usize;
    let rounds = 2000usize;
    let rate = best_of(reps, || {
        let mut acc = 0.0f32;
        for _ in 0..rounds {
            let mut sampler = CellSampler::new(vol);
            for s in 0..nsteps {
                acc += sampler.sample(origin + dir * (s as f32 * 0.5));
            }
        }
        std::hint::black_box(acc);
    });
    (nsteps * rounds) as f64 / rate
}

struct Row {
    bench: &'static str,
    layout: &'static str,
    config: &'static str,
    unit: &'static str,
    before: f64,
    after: f64,
    max_abs_err: f32,
}

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("size", 32);
    let reps = args.get_usize("reps", 3);
    let out_path = args.get_str("out", "BENCH_speed_pass.json").to_string();
    let mode = {
        let s = args.get_str("weight", "lut").to_string();
        WeightMode::parse(&s).unwrap_or_else(|| {
            eprintln!("error: bad --weight {s:?} (exact|lut|fastexp)");
            std::process::exit(2);
        })
    };
    let tier = {
        let s = args.get_str("simd", "auto").to_string();
        if s == "auto" {
            detect_tier()
        } else {
            let t = SimdTier::parse(&s).unwrap_or_else(|| {
                eprintln!("error: bad --simd {s:?} (auto|scalar|sse2|avx2)");
                std::process::exit(2);
            });
            TapConfig { mode, tier: t }.clamped().tier
        }
    };
    let fast = TapConfig { mode, tier };

    let dims = Dims3::cube(n);
    let values = sfc_datagen::mri_phantom(dims, 3, sfc_datagen::PhantomParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();
    let h_old: Grid3<f32, RecomputeHilbert> = a.convert();

    let mut worst_err = 0.0f32;
    let mut rows: Vec<Row> = Vec::new();
    for size in StencilSize::ALL {
        let label = size.label();
        let mut push = |layout: &'static str, (b, aft, err): (f64, f64, f32)| {
            rows.push(Row {
                bench: "bilateral",
                layout,
                config: label,
                unit: "voxels_per_sec",
                before: b,
                after: aft,
                max_abs_err: err,
            });
            eprintln!(
                "bilateral {layout} {label}: {b:.3e} -> {aft:.3e} ({:.2}x, err {err:.2e})",
                aft / b
            );
        };
        push("a-order", bilateral_pair(&a, &a, size, fast, reps));
        push("z-order", bilateral_pair(&z, &z, size, fast, reps));
        push("tiled", bilateral_pair(&t, &t, size, fast, reps));
        // Hilbert's before-side additionally pays the old recompute cursor.
        push("hilbert", bilateral_pair(&h_old, &h, size, fast, reps));
    }
    worst_err = rows
        .iter()
        .map(|r| r.max_abs_err)
        .fold(worst_err, f32::max);

    // Trilinear: the sampler change is the Hilbert cursor inside
    // `cell_corners` (plus the bitwise-neutral SSE2 blend); table layouts
    // run the same code on both sides and act as a noise floor.
    for (layout, before, after) in [
        ("a-order", trilinear_rate(&a, reps), trilinear_rate(&a, reps)),
        ("z-order", trilinear_rate(&z, reps), trilinear_rate(&z, reps)),
        ("tiled", trilinear_rate(&t, reps), trilinear_rate(&t, reps)),
        (
            "hilbert",
            trilinear_rate(&h_old, reps),
            trilinear_rate(&h, reps),
        ),
    ] {
        rows.push(Row {
            bench: "trilinear",
            layout,
            config: "diag-march",
            unit: "samples_per_sec",
            before,
            after,
            max_abs_err: 0.0,
        });
        eprintln!("trilinear {layout}: {before:.3e} -> {after:.3e} ({:.2}x)", after / before);
    }

    let budget = if mode == WeightMode::Exact { 0.0 } else { TOL };
    if worst_err > budget {
        eprintln!("error: max abs error {worst_err:.3e} exceeds budget {budget:.1e}");
        std::process::exit(1);
    }
    eprintln!("oracle check: max abs error {worst_err:.3e} within {budget:.1e}");

    // Hand-rolled JSON (the workspace has no serializer dependency).
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"size\": {n},\n  \"reps\": {reps},\n"));
    s.push_str(&format!(
        "  \"note\": \"before = exact libm weights + scalar taps + recompute Hilbert cursor; after = {} weights on {} tier + O(1) Hilbert stepping; after diffed vs exact oracle (budget {:.0e})\",\n",
        mode.name(),
        tier.name(),
        budget
    ));
    s.push_str(&format!(
        "  \"weight_mode\": \"{}\",\n  \"simd_tier\": \"{}\",\n  \"max_abs_err\": {:.3e},\n",
        mode.name(),
        tier.name(),
        worst_err
    ));
    s.push_str("  \"rows\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"layout\": \"{}\", \"config\": \"{}\", \"unit\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.3}, \"max_abs_err\": {:.3e}}}{}\n",
            r.bench, r.layout, r.config, r.unit, r.before, r.after, r.after / r.before,
            r.max_abs_err, sep
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(s.as_bytes())) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
