//! `load_gen` — concurrent multi-tenant load driver for `sfc_serve`.
//!
//! Spawns `--tenants` client threads, each issuing `--requests` requests
//! over its own connection, optionally with injected faults and
//! deadlines, and prints a per-outcome tally plus per-tenant request
//! latency percentiles (p50/p95/p99/max from a log2 histogram). Every
//! reply must be a *typed* protocol response — `ok`, `err`,
//! `overloaded`, or `shed` all count as the server holding its contract;
//! only transport failures (connection reset, unparsable reply) fail the
//! run. With `--scrape-metrics` the run ends by scraping the server's
//! `metrics` verb, validating the Prometheus exposition, and checking
//! the core metric families are present. This is the CI `service-smoke`
//! and `metrics-smoke` workload:
//!
//! ```text
//! load_gen --addr 127.0.0.1:7070 --tenants 8 --requests 4 \
//!          --panic-rate 0.2 --timeout-rate 0.2 --shutdown
//! ```

use std::time::{Duration, Instant};

use sfc_harness::{validate_prometheus_text, Args, HistogramSnapshot, Log2Histogram};
use sfc_server::{Client, RespHeader};

#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    ok_whole: usize,
    ok_degraded: usize,
    errs: usize,
    overloaded: usize,
    shed: usize,
    transport_errors: usize,
}

impl Tally {
    fn add(&mut self, other: Tally) {
        self.ok_whole += other.ok_whole;
        self.ok_degraded += other.ok_degraded;
        self.errs += other.errs;
        self.overloaded += other.overloaded;
        self.shed += other.shed;
        self.transport_errors += other.transport_errors;
    }
}

#[allow(clippy::too_many_arguments)]
fn tenant_loop(
    addr: &str,
    tenant: usize,
    requests: usize,
    size: usize,
    radius: usize,
    image: usize,
    mix: &str,
    seed_base: u64,
    deadline_ms: u64,
    faults: &str,
) -> (Tally, HistogramSnapshot) {
    let mut tally = Tally::default();
    let lat = Log2Histogram::new();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors += requests;
            return (tally, lat.snapshot());
        }
    };
    let _ = client.set_timeout(Duration::from_secs(120));
    for r in 0..requests {
        let op_render = match mix {
            "filter" => false,
            "render" => true,
            _ => (tenant + r) % 2 == 1,
        };
        // Half the fleet shares seeds (exercises coalescing and the
        // volume cache), half gets private ones.
        let seed = seed_base + (r as u64) * 2 + u64::from(tenant.is_multiple_of(2));
        let mut line = if op_render {
            format!("render tenant=t{tenant} size={size} seed={seed} image={image}")
        } else {
            format!("filter tenant=t{tenant} size={size} seed={seed} radius={radius}")
        };
        if deadline_ms > 0 {
            line.push_str(&format!(" deadline_ms={deadline_ms}"));
        }
        line.push_str(faults);
        let t0 = Instant::now();
        let reply = client.request_line(&line);
        // Latency counts any typed reply — ok, err, overloaded, shed are
        // all the server answering; only transport failures are excluded.
        if reply.is_ok() {
            lat.record_duration_us(t0.elapsed());
        }
        match reply {
            Ok((RespHeader::Ok(h), body)) => {
                if body.len() != h.bytes {
                    tally.transport_errors += 1;
                } else if h.whole && h.downgraded == 0 {
                    tally.ok_whole += 1;
                } else {
                    tally.ok_degraded += 1;
                }
            }
            Ok((RespHeader::Err { .. }, _)) => tally.errs += 1,
            Ok((RespHeader::Overloaded { .. }, _)) => {
                tally.overloaded += 1;
                // Typed backpressure: back off as a well-behaved client
                // would before the next request.
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok((RespHeader::Shed { .. }, _)) => tally.shed += 1,
            Err(_) => {
                tally.transport_errors += 1;
                // The connection may be dead; reconnect for the rest.
                match Client::connect(addr) {
                    Ok(c) => {
                        client = c;
                        let _ = client.set_timeout(Duration::from_secs(120));
                    }
                    Err(_) => {
                        tally.transport_errors += requests - r - 1;
                        return (tally, lat.snapshot());
                    }
                }
            }
        }
    }
    (tally, lat.snapshot())
}

fn latency_line(who: &str, h: &HistogramSnapshot) -> String {
    format!(
        "latency {who} count={} p50_us={} p95_us={} p99_us={} max_us={}",
        h.count,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
        h.max,
    )
}

/// Scrape the `metrics` verb, validate the exposition syntax, and check
/// the core families the service contract promises. Returns the number
/// of samples on success.
fn scrape_and_validate(addr: &str) -> Result<usize, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = client.set_timeout(Duration::from_secs(30));
    let text = client.scrape_metrics().map_err(|e| format!("scrape: {e}"))?;
    let samples = validate_prometheus_text(&text)?;
    for family in [
        "sfc_engine_units_completed_total",
        "sfc_filters_nan_events_total",
        "sfc_volrend_nan_samples_total",
        "sfc_server_cache_hits",
        "sfc_server_cache_misses",
        "sfc_deadline_shed_total",
        "sfc_store_repairs_total",
    ] {
        if !text.lines().any(|l| l.starts_with(family)) {
            return Err(format!("missing core family {family}"));
        }
    }
    Ok(samples)
}

fn main() {
    let args = Args::from_env();
    let addr = args.get_str("addr", "127.0.0.1:7070").to_string();
    let tenants = args.get_usize("tenants", 8);
    let requests = args.get_usize("requests", 4);
    let size = args.get_usize("size", 12);
    let radius = args.get_usize("radius", 1);
    let image = args.get_usize("image", 32);
    let mix = args.get_str("mix", "both").to_string();
    let seed_base = args.get_u64("seed", 1);
    let deadline_ms = args.get_u64("deadline-ms", 0);

    // Fault flags are forwarded onto each request line so the *server*
    // injects them into its execution of our requests.
    let panic_rate = args.get_f64("panic-rate", 0.0);
    let flaky_rate = args.get_f64("flaky-rate", 0.0);
    let timeout_rate = args.get_f64("timeout-rate", 0.0);
    let corrupt_rate = args.get_f64("corrupt-rate", 0.0);
    let stall_ms = args.get_u64("stall-ms", 50);
    let fault_seed = args.get_u64("fault-seed", 7);
    let any_fault = panic_rate > 0.0 || flaky_rate > 0.0 || timeout_rate > 0.0 || corrupt_rate > 0.0;
    let faults = if any_fault {
        format!(
            " fault_seed={fault_seed} panic_rate={panic_rate} flaky_rate={flaky_rate} \
             timeout_rate={timeout_rate} corrupt_rate={corrupt_rate} stall_ms={stall_ms}"
        )
    } else {
        String::new()
    };

    let start = Instant::now();
    let mut handles = Vec::new();
    for tenant in 0..tenants {
        let addr = addr.clone();
        let mix = mix.clone();
        let faults = faults.clone();
        handles.push(std::thread::spawn(move || {
            tenant_loop(
                &addr, tenant, requests, size, radius, image, &mix, seed_base, deadline_ms,
                &faults,
            )
        }));
    }
    let mut total = Tally::default();
    let mut all_lat = HistogramSnapshot::default();
    let mut per_tenant: Vec<(usize, HistogramSnapshot)> = Vec::new();
    for (tenant, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok((t, lat)) => {
                total.add(t);
                all_lat.merge(&lat);
                per_tenant.push((tenant, lat));
            }
            Err(_) => total.transport_errors += requests,
        }
    }
    let elapsed = start.elapsed();

    for (tenant, lat) in &per_tenant {
        println!("{}", latency_line(&format!("tenant=t{tenant}"), lat));
    }
    println!("{}", latency_line("all", &all_lat));

    if args.has("scrape-metrics") {
        match scrape_and_validate(&addr) {
            Ok(samples) => println!("metrics scrape ok: {samples} samples, core families present"),
            Err(e) => {
                eprintln!("metrics scrape failed: {e}");
                total.transport_errors += 1;
            }
        }
    }

    if args.has("shutdown") {
        match Client::connect(&addr).and_then(|mut c| c.send_line("shutdown")) {
            Ok(reply) => println!("shutdown reply: {reply}"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                total.transport_errors += 1;
            }
        }
    }

    println!(
        "load_gen tenants={tenants} requests={} ok_whole={} ok_degraded={} errs={} \
         overloaded={} shed={} transport_errors={} elapsed_ms={}",
        tenants * requests,
        total.ok_whole,
        total.ok_degraded,
        total.errs,
        total.overloaded,
        total.shed,
        total.transport_errors,
        elapsed.as_millis(),
    );
    std::process::exit(if total.transport_errors == 0 { 0 } else { 1 });
}
