//! `load_gen` — concurrent multi-tenant load driver for a replicated
//! `sfc_serve` group.
//!
//! Spawns `--tenants` client threads, each issuing `--requests` requests,
//! optionally with injected faults, deadlines, and periodic `save=1`
//! durability writes, and prints a per-outcome tally plus per-tenant
//! latency percentiles (p50/p95/p99/max from a log2 histogram).
//!
//! By default each tenant drives a resilient client ([`ResilientClient`])
//! over `--replicas host:port,...` (or the single `--addr`): bounded
//! idempotent retries with decorrelated-jitter backoff and a retry
//! budget, per-endpoint circuit breakers with failover, hedged reads,
//! and deadline propagation. `--no-retry` reverts to the plain
//! single-connection [`Client`] loop (the CI `service-smoke` baseline).
//!
//! Every *typed* protocol reply — `ok`, `err`, `overloaded`, `shed`,
//! `expired`, dedup replays — counts as the server holding its contract;
//! only transport failures make the run exit non-zero (contract pinned
//! in `sfc_bench::loadgen`).
//!
//! Chaos mode: `--kill-pid P --kill-after-ms M` SIGKILLs one replica
//! mid-storm from a background thread, so CI can assert that the
//! surviving replicas absorb the failover with zero lost acknowledged
//! saves:
//!
//! ```text
//! load_gen --replicas 127.0.0.1:7070,127.0.0.1:7071,127.0.0.1:7072 \
//!          --tenants 8 --requests 8 --save-every 4 \
//!          --kill-pid $REPLICA2 --kill-after-ms 500
//! ```

use std::time::{Duration, Instant};

use sfc_bench::Tally;
use sfc_harness::{validate_prometheus_text, Args, HistogramSnapshot, Log2Histogram};
use sfc_server::{Client, Request, ResilientClient, RespHeader, RetryPolicy};

/// Build one request line for tenant request `r` (shared by both loops,
/// so plain and resilient runs issue byte-identical workloads).
#[allow(clippy::too_many_arguments)]
fn request_line(
    tenant: usize,
    r: usize,
    size: usize,
    radius: usize,
    image: usize,
    mix: &str,
    seed_base: u64,
    deadline_ms: u64,
    faults: &str,
    save: bool,
) -> String {
    let op_render = match mix {
        "filter" => false,
        "render" => true,
        _ => (tenant + r) % 2 == 1,
    };
    // Half the fleet shares seeds (exercises coalescing and the volume
    // cache), half gets private ones.
    let seed = seed_base + (r as u64) * 2 + u64::from(tenant.is_multiple_of(2));
    let mut line = if op_render {
        format!("render tenant=t{tenant} size={size} seed={seed} image={image}")
    } else {
        format!("filter tenant=t{tenant} size={size} seed={seed} radius={radius}")
    };
    if deadline_ms > 0 {
        line.push_str(&format!(" deadline_ms={deadline_ms}"));
    }
    if save {
        line.push_str(" save=1");
    }
    line.push_str(faults);
    line
}

fn tally_header(tally: &mut Tally, header: &RespHeader, body_len: usize, save: bool) {
    match header {
        RespHeader::Ok(h) => {
            if body_len != h.bytes {
                tally.transport_errors += 1;
                return;
            }
            if h.dedup {
                tally.dedup += 1;
            }
            if save {
                tally.saves_acked += 1;
            }
            if h.whole && h.downgraded == 0 {
                tally.ok_whole += 1;
            } else {
                tally.ok_degraded += 1;
            }
        }
        RespHeader::Err { .. } => tally.errs += 1,
        RespHeader::Overloaded { .. } => {
            tally.overloaded += 1;
            // Typed backpressure: back off as a well-behaved client
            // would before the next request.
            std::thread::sleep(Duration::from_millis(20));
        }
        RespHeader::Shed { .. } => tally.shed += 1,
        RespHeader::Expired { .. } => tally.expired += 1,
    }
}

/// The default mode: one [`ResilientClient`] per tenant over the whole
/// replica group.
#[allow(clippy::too_many_arguments)]
fn tenant_loop_resilient(
    replicas: &[String],
    tenant: usize,
    requests: usize,
    size: usize,
    radius: usize,
    image: usize,
    mix: &str,
    seed_base: u64,
    deadline_ms: u64,
    faults: &str,
    save_every: usize,
) -> (Tally, HistogramSnapshot) {
    let mut tally = Tally::default();
    let lat = Log2Histogram::new();
    let client = ResilientClient::new(
        replicas.iter().cloned(),
        RetryPolicy::default(),
        seed_base ^ ((tenant as u64) << 32),
    );
    for r in 0..requests {
        let save = save_every > 0 && (r + 1).is_multiple_of(save_every);
        let line = request_line(
            tenant, r, size, radius, image, mix, seed_base, deadline_ms, faults, save,
        );
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(e) => {
                // A line we generated must always parse; treat a bug
                // here as a failed run, loudly.
                eprintln!("generated an invalid request line ({e}): {line}");
                tally.transport_errors += 1;
                continue;
            }
        };
        let t0 = Instant::now();
        match client.request_detailed(&req) {
            Ok((header, body, outcome)) => {
                lat.record_duration_us(t0.elapsed());
                tally.retries += (outcome.attempts - 1) as usize;
                tally_header(&mut tally, &header, body.len(), save);
            }
            Err(_) => tally.transport_errors += 1,
        }
    }
    (tally, lat.snapshot())
}

/// `--no-retry`: the plain single-connection loop (reconnects after a
/// transport error but never re-sends the failed request).
#[allow(clippy::too_many_arguments)]
fn tenant_loop_plain(
    addr: &str,
    tenant: usize,
    requests: usize,
    size: usize,
    radius: usize,
    image: usize,
    mix: &str,
    seed_base: u64,
    deadline_ms: u64,
    faults: &str,
    save_every: usize,
) -> (Tally, HistogramSnapshot) {
    let mut tally = Tally::default();
    let lat = Log2Histogram::new();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors += requests;
            return (tally, lat.snapshot());
        }
    };
    let _ = client.set_timeout(Duration::from_secs(120));
    for r in 0..requests {
        let save = save_every > 0 && (r + 1).is_multiple_of(save_every);
        let line = request_line(
            tenant, r, size, radius, image, mix, seed_base, deadline_ms, faults, save,
        );
        let t0 = Instant::now();
        let reply = client.request_line(&line);
        // Latency counts any typed reply — ok, err, overloaded, shed,
        // expired are all the server answering; only transport failures
        // are excluded.
        if reply.is_ok() {
            lat.record_duration_us(t0.elapsed());
        }
        match reply {
            Ok((header, body)) => tally_header(&mut tally, &header, body.len(), save),
            Err(_) => {
                tally.transport_errors += 1;
                // The connection may be dead; reconnect for the rest.
                match Client::connect(addr) {
                    Ok(c) => {
                        client = c;
                        let _ = client.set_timeout(Duration::from_secs(120));
                    }
                    Err(_) => {
                        tally.transport_errors += requests - r - 1;
                        return (tally, lat.snapshot());
                    }
                }
            }
        }
    }
    (tally, lat.snapshot())
}

fn latency_line(who: &str, h: &HistogramSnapshot) -> String {
    format!(
        "latency {who} count={} p50_us={} p95_us={} p99_us={} max_us={}",
        h.count,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
        h.max,
    )
}

/// Scrape the `metrics` verb, validate the exposition syntax, and check
/// the core families the service contract promises. Returns the number
/// of samples on success.
fn scrape_and_validate(addr: &str) -> Result<usize, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = client.set_timeout(Duration::from_secs(30));
    let text = client.scrape_metrics().map_err(|e| format!("scrape: {e}"))?;
    let samples = validate_prometheus_text(&text)?;
    for family in [
        "sfc_engine_units_completed_total",
        "sfc_filters_nan_events_total",
        "sfc_volrend_nan_samples_total",
        "sfc_server_cache_hits",
        "sfc_server_cache_misses",
        "sfc_deadline_shed_total",
        "sfc_store_repairs_total",
        "sfc_server_dedup_hits_total",
        "sfc_server_expired_total",
    ] {
        if !text.lines().any(|l| l.starts_with(family)) {
            return Err(format!("missing core family {family}"));
        }
    }
    Ok(samples)
}

fn main() {
    let args = Args::from_env();
    let addr = args.get_str("addr", "127.0.0.1:7070").to_string();
    let replicas: Vec<String> = match args.get("replicas") {
        Some(list) => list.split(',').map(|s| s.trim().to_string()).collect(),
        None => vec![addr.clone()],
    };
    let no_retry = args.has("no-retry");
    let tenants = args.get_usize("tenants", 8);
    let requests = args.get_usize("requests", 4);
    let size = args.get_usize("size", 12);
    let radius = args.get_usize("radius", 1);
    let image = args.get_usize("image", 32);
    let mix = args.get_str("mix", "both").to_string();
    let seed_base = args.get_u64("seed", 1);
    let deadline_ms = args.get_u64("deadline-ms", 0);
    let save_every = args.get_usize("save-every", 0);

    // Fault flags are forwarded onto each request line so the *server*
    // injects them into its execution of our requests.
    let panic_rate = args.get_f64("panic-rate", 0.0);
    let flaky_rate = args.get_f64("flaky-rate", 0.0);
    let timeout_rate = args.get_f64("timeout-rate", 0.0);
    let corrupt_rate = args.get_f64("corrupt-rate", 0.0);
    let stall_ms = args.get_u64("stall-ms", 50);
    let fault_seed = args.get_u64("fault-seed", 7);
    let any_fault = panic_rate > 0.0 || flaky_rate > 0.0 || timeout_rate > 0.0 || corrupt_rate > 0.0;
    let faults = if any_fault {
        format!(
            " fault_seed={fault_seed} panic_rate={panic_rate} flaky_rate={flaky_rate} \
             timeout_rate={timeout_rate} corrupt_rate={corrupt_rate} stall_ms={stall_ms}"
        )
    } else {
        String::new()
    };

    // Chaos mode: SIGKILL one replica mid-storm from a detached thread.
    let kill_pid = args.get_u64("kill-pid", 0);
    let kill_after_ms = args.get_u64("kill-after-ms", 500);
    if kill_pid > 0 {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(kill_after_ms));
            let status = std::process::Command::new("kill")
                .args(["-9", &kill_pid.to_string()])
                .status();
            match status {
                Ok(s) if s.success() => {
                    eprintln!("chaos: SIGKILLed pid {kill_pid} after {kill_after_ms}ms");
                }
                _ => eprintln!("chaos: kill -9 {kill_pid} failed"),
            }
        });
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for tenant in 0..tenants {
        let replicas = replicas.clone();
        let mix = mix.clone();
        let faults = faults.clone();
        handles.push(std::thread::spawn(move || {
            if no_retry {
                tenant_loop_plain(
                    &replicas[0], tenant, requests, size, radius, image, &mix, seed_base,
                    deadline_ms, &faults, save_every,
                )
            } else {
                tenant_loop_resilient(
                    &replicas, tenant, requests, size, radius, image, &mix, seed_base,
                    deadline_ms, &faults, save_every,
                )
            }
        }));
    }
    let mut total = Tally::default();
    let mut all_lat = HistogramSnapshot::default();
    let mut per_tenant: Vec<(usize, HistogramSnapshot)> = Vec::new();
    for (tenant, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok((t, lat)) => {
                total.add(t);
                all_lat.merge(&lat);
                per_tenant.push((tenant, lat));
            }
            Err(_) => total.transport_errors += requests,
        }
    }
    let elapsed = start.elapsed();

    for (tenant, lat) in &per_tenant {
        println!("{}", latency_line(&format!("tenant=t{tenant}"), lat));
    }
    println!("{}", latency_line("all", &all_lat));

    if args.has("scrape-metrics") {
        // With a replica group, any surviving endpoint must produce a
        // valid scrape (a killed replica is not a failure — that's the
        // chaos scenario working as intended).
        let mut scraped = false;
        let mut last_err = String::new();
        for ep in &replicas {
            match scrape_and_validate(ep) {
                Ok(samples) => {
                    println!("metrics scrape ok: {samples} samples, core families present ({ep})");
                    scraped = true;
                    break;
                }
                Err(e) => last_err = format!("{ep}: {e}"),
            }
        }
        if !scraped {
            eprintln!("metrics scrape failed on every replica: {last_err}");
            total.transport_errors += 1;
        }
    }

    if args.has("shutdown") {
        // Shut every reachable replica down; failing to reach a replica
        // that was deliberately killed is not a failed run, but failing
        // to shut down *any* of them is.
        let mut reached = 0;
        for ep in &replicas {
            match Client::connect(ep).and_then(|mut c| c.send_line("shutdown")) {
                Ok(reply) => {
                    println!("shutdown reply ({ep}): {reply}");
                    reached += 1;
                }
                Err(e) => eprintln!("shutdown failed ({ep}): {e}"),
            }
        }
        if reached == 0 {
            total.transport_errors += 1;
        }
    }

    println!("{}", total.summary(tenants, requests, elapsed.as_millis()));
    std::process::exit(total.exit_code());
}
