//! `load_gen` — concurrent multi-tenant load driver for `sfc_serve`.
//!
//! Spawns `--tenants` client threads, each issuing `--requests` requests
//! over its own connection, optionally with injected faults and
//! deadlines, and prints a per-outcome tally. Every reply must be a
//! *typed* protocol response — `ok`, `err`, `overloaded`, or `shed` all
//! count as the server holding its contract; only transport failures
//! (connection reset, unparsable reply) fail the run. This is the CI
//! `service-smoke` workload:
//!
//! ```text
//! load_gen --addr 127.0.0.1:7070 --tenants 8 --requests 4 \
//!          --panic-rate 0.2 --timeout-rate 0.2 --shutdown
//! ```

use std::time::{Duration, Instant};

use sfc_harness::Args;
use sfc_server::{Client, RespHeader};

#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    ok_whole: usize,
    ok_degraded: usize,
    errs: usize,
    overloaded: usize,
    shed: usize,
    transport_errors: usize,
}

impl Tally {
    fn add(&mut self, other: Tally) {
        self.ok_whole += other.ok_whole;
        self.ok_degraded += other.ok_degraded;
        self.errs += other.errs;
        self.overloaded += other.overloaded;
        self.shed += other.shed;
        self.transport_errors += other.transport_errors;
    }
}

#[allow(clippy::too_many_arguments)]
fn tenant_loop(
    addr: &str,
    tenant: usize,
    requests: usize,
    size: usize,
    radius: usize,
    image: usize,
    mix: &str,
    seed_base: u64,
    deadline_ms: u64,
    faults: &str,
) -> Tally {
    let mut tally = Tally::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.transport_errors += requests;
            return tally;
        }
    };
    let _ = client.set_timeout(Duration::from_secs(120));
    for r in 0..requests {
        let op_render = match mix {
            "filter" => false,
            "render" => true,
            _ => (tenant + r) % 2 == 1,
        };
        // Half the fleet shares seeds (exercises coalescing and the
        // volume cache), half gets private ones.
        let seed = seed_base + (r as u64) * 2 + u64::from(tenant.is_multiple_of(2));
        let mut line = if op_render {
            format!("render tenant=t{tenant} size={size} seed={seed} image={image}")
        } else {
            format!("filter tenant=t{tenant} size={size} seed={seed} radius={radius}")
        };
        if deadline_ms > 0 {
            line.push_str(&format!(" deadline_ms={deadline_ms}"));
        }
        line.push_str(faults);
        match client.request_line(&line) {
            Ok((RespHeader::Ok(h), body)) => {
                if body.len() != h.bytes {
                    tally.transport_errors += 1;
                } else if h.whole && h.downgraded == 0 {
                    tally.ok_whole += 1;
                } else {
                    tally.ok_degraded += 1;
                }
            }
            Ok((RespHeader::Err { .. }, _)) => tally.errs += 1,
            Ok((RespHeader::Overloaded { .. }, _)) => {
                tally.overloaded += 1;
                // Typed backpressure: back off as a well-behaved client
                // would before the next request.
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok((RespHeader::Shed { .. }, _)) => tally.shed += 1,
            Err(_) => {
                tally.transport_errors += 1;
                // The connection may be dead; reconnect for the rest.
                match Client::connect(addr) {
                    Ok(c) => {
                        client = c;
                        let _ = client.set_timeout(Duration::from_secs(120));
                    }
                    Err(_) => {
                        tally.transport_errors += requests - r - 1;
                        return tally;
                    }
                }
            }
        }
    }
    tally
}

fn main() {
    let args = Args::from_env();
    let addr = args.get_str("addr", "127.0.0.1:7070").to_string();
    let tenants = args.get_usize("tenants", 8);
    let requests = args.get_usize("requests", 4);
    let size = args.get_usize("size", 12);
    let radius = args.get_usize("radius", 1);
    let image = args.get_usize("image", 32);
    let mix = args.get_str("mix", "both").to_string();
    let seed_base = args.get_u64("seed", 1);
    let deadline_ms = args.get_u64("deadline-ms", 0);

    // Fault flags are forwarded onto each request line so the *server*
    // injects them into its execution of our requests.
    let panic_rate = args.get_f64("panic-rate", 0.0);
    let flaky_rate = args.get_f64("flaky-rate", 0.0);
    let timeout_rate = args.get_f64("timeout-rate", 0.0);
    let corrupt_rate = args.get_f64("corrupt-rate", 0.0);
    let stall_ms = args.get_u64("stall-ms", 50);
    let fault_seed = args.get_u64("fault-seed", 7);
    let any_fault = panic_rate > 0.0 || flaky_rate > 0.0 || timeout_rate > 0.0 || corrupt_rate > 0.0;
    let faults = if any_fault {
        format!(
            " fault_seed={fault_seed} panic_rate={panic_rate} flaky_rate={flaky_rate} \
             timeout_rate={timeout_rate} corrupt_rate={corrupt_rate} stall_ms={stall_ms}"
        )
    } else {
        String::new()
    };

    let start = Instant::now();
    let mut handles = Vec::new();
    for tenant in 0..tenants {
        let addr = addr.clone();
        let mix = mix.clone();
        let faults = faults.clone();
        handles.push(std::thread::spawn(move || {
            tenant_loop(
                &addr, tenant, requests, size, radius, image, &mix, seed_base, deadline_ms,
                &faults,
            )
        }));
    }
    let mut total = Tally::default();
    for h in handles {
        match h.join() {
            Ok(t) => total.add(t),
            Err(_) => total.transport_errors += requests,
        }
    }
    let elapsed = start.elapsed();

    if args.has("shutdown") {
        match Client::connect(&addr).and_then(|mut c| c.send_line("shutdown")) {
            Ok(reply) => println!("shutdown reply: {reply}"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                total.transport_errors += 1;
            }
        }
    }

    println!(
        "load_gen tenants={tenants} requests={} ok_whole={} ok_degraded={} errs={} \
         overloaded={} shed={} transport_errors={} elapsed_ms={}",
        tenants * requests,
        total.ok_whole,
        total.ok_degraded,
        total.errs,
        total.overloaded,
        total.shed,
        total.transport_errors,
        elapsed.as_millis(),
    );
    std::process::exit(if total.transport_errors == 0 { 0 } else { 1 });
}
