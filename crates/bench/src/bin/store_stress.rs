//! `store_stress` — crash- and chaos-test driver for the out-of-core
//! brick store (`sfc-store`).
//!
//! Three modes, selected with `--mode`:
//!
//! * `import` — generate a deterministic combustion field and import it
//!   into `--dir`. With `--slow-ms N` every file operation stalls `N` ms
//!   (via the harness `SlowIo` fault), stretching the import so a
//!   supervising crash test can land `kill -9` in the middle of it.
//! * `verify` — recover the store in `--dir` (finishing an interrupted
//!   import from its journal when possible), compare every voxel bitwise
//!   against the regenerated reference field, and scrub. Exits non-zero
//!   on any mismatch; prints `verify incomplete` (exit 0) when recovery
//!   reports a typed not-enough-journal error — the crash landed before
//!   the data existed anywhere, which is an honest outcome, not a tear.
//! * `stress` — re-open the store once per `--chaos-seeds` entry with
//!   seeded IO faults on the read path and prove bounded retry plus
//!   read-repair still deliver bitwise-correct data and a healthy scrub.
//!
//! All modes regenerate the reference volume from `(--size, --seed)`, so
//! no golden file ships with the repo. Used by `tests/store_kill9.rs`
//! and the CI `disk-chaos` job.

use sfc_core::{Axis, Dims3, Grid3, LayoutKind, Volume3, ZOrder3};
use sfc_harness::faults::{IoFaultPlan, IoFaultRates};
use sfc_harness::Args;
use sfc_store::{BrickStore, StoreOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn reference_grid(n: usize, seed: u64) -> Grid3<f32, ZOrder3> {
    let dims = Dims3::cube(n);
    let values =
        sfc_datagen::combustion_field(dims, seed, sfc_datagen::CombustionParams::default());
    Grid3::from_row_major(dims, &values)
}

/// Compare every voxel of `store` against `reference`, row by row.
fn bitwise_mismatches(store: &BrickStore, reference: &impl Volume3) -> usize {
    let dims = reference.dims();
    let mut got = vec![0.0f32; dims.nx];
    let mut want = vec![0.0f32; dims.nx];
    let mut bad = 0;
    for k in 0..dims.nz {
        for j in 0..dims.ny {
            store.gather_axis_run(0, j, k, Axis::X, &mut got);
            reference.gather_axis_run(0, j, k, Axis::X, &mut want);
            bad += got
                .iter()
                .zip(&want)
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
        }
    }
    bad
}

fn main() -> ExitCode {
    let args = Args::from_env();
    let mode = args.get_str("mode", "stress").to_string();
    let dir = PathBuf::from(args.get_str("dir", "/tmp/sfc_store_stress"));
    let n = args.get_usize("size", 24);
    let seed = args.get_u64("seed", 7);
    let edge = args.get_usize("edge", 8);
    let order = LayoutKind::parse(args.get_str("layout", "z")).expect("known layout name");
    let budget = args.get_usize("budget", 4 * edge * edge * edge * 4);

    match mode.as_str() {
        "import" => {
            let slow_ms = args.get_u64("slow-ms", 0);
            let opts = if slow_ms > 0 {
                let rates = IoFaultRates {
                    slow_io: 1.0,
                    slow_ms,
                    ..IoFaultRates::default()
                };
                StoreOptions::default().with_faults(IoFaultPlan::random(seed, rates))
            } else {
                StoreOptions::default()
            };
            let grid = reference_grid(n, seed);
            println!("importing size={n} seed={seed} edge={edge} order={}", order.name());
            let store =
                BrickStore::import(&dir, &grid, edge, order, opts).expect("import succeeds");
            println!("imported bricks={}", store.scrub().scanned);
            ExitCode::SUCCESS
        }
        "verify" => {
            let grid = reference_grid(n, seed);
            let store = match BrickStore::recover(&dir, StoreOptions::default().with_budget(budget))
            {
                Ok(s) => s,
                Err(e) => {
                    // A typed refusal is a legal post-crash outcome: the
                    // kill landed before enough journal existed to finish
                    // the import. Anything torn-but-accepted would have
                    // surfaced as an Ok store failing the checks below.
                    println!("verify incomplete: {e}");
                    return ExitCode::SUCCESS;
                }
            };
            let bad = bitwise_mismatches(&store, &grid);
            let report = store.scrub();
            println!(
                "verify complete mismatches={bad} scanned={} clean={} repaired={} unrecoverable={}",
                report.scanned,
                report.clean,
                report.repaired,
                report.unrecoverable.len()
            );
            if bad == 0 && report.is_healthy() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "stress" => {
            let grid = reference_grid(n, seed);
            let chaos = args.get_usize_list("chaos-seeds", &[1, 2, 3, 4]);
            let rates = IoFaultRates {
                io_error: 0.05,
                bit_flip: 0.05,
                slow_io: 0.01,
                slow_ms: 1,
                ..IoFaultRates::default()
            };
            let mut failures = 0;
            for &cs in &chaos {
                let plan = IoFaultPlan::random(cs as u64, rates);
                let opts = StoreOptions::default()
                    .with_budget(budget)
                    .with_faults(plan.clone());
                let store = BrickStore::open(&dir, opts).expect("store opens under retry");
                let bad = bitwise_mismatches(&store, &grid);
                let report = store.scrub();
                let stats = store.stats();
                println!(
                    "chaos seed={cs} injected={} retries={} repairs={} poisoned={} \
                     mismatches={bad} healthy={}",
                    plan.injected(),
                    stats.retries,
                    stats.repairs,
                    stats.poisoned,
                    report.is_healthy()
                );
                if bad != 0 || !report.is_healthy() {
                    failures += 1;
                }
            }
            if failures == 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("{failures} chaos seed(s) failed");
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown --mode {other} (want import|verify|stress)");
            ExitCode::FAILURE
        }
    }
}
