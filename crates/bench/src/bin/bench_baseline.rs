//! Before/after throughput baseline for the cursor + pencil-gather fast
//! paths, emitted as JSON (committed at the repo root as
//! `BENCH_baseline.json` so perf regressions show up in review).
//!
//! "before" is the per-voxel kernel exactly as the drivers ran it prior to
//! the gather fast path (one `bilateral_voxel` per output voxel, each tap
//! paying a full `index()`); "after" is the single-thread pencil-gather
//! driver. Both produce bitwise-identical outputs, so the ratio is pure
//! addressing + read-scheduling cost. The trilinear rows compare the
//! 8-`index()` one-shot sampler against the per-ray cached-cell cursor
//! sampler on a sub-voxel diagonal march.
//!
//! `cargo run -p sfc-bench --release --bin bench_baseline -- [--size 32]
//!  [--out FILE] [--reps 3]`

use std::io::Write;
use std::time::Instant;

use sfc_core::{
    ArrayOrder3, Axis, Dims3, Grid3, HilbertOrder3, StencilOrder, StencilSize, Tiled3, Volume3,
    ZOrder3,
};
use sfc_filters::{bilateral3d, bilateral_voxel, BilateralParams, FilterRun};
use sfc_harness::Args;
use sfc_volrend::{sample_trilinear, vec3, CellSampler};

/// Best-of-`reps` wall-clock for `f`, in seconds.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bilateral_pair<V: Volume3 + Sync>(
    vol: &V,
    size: StencilSize,
    reps: usize,
) -> (f64, f64) {
    let dims = vol.dims();
    let params = BilateralParams::for_size(size, StencilOrder::Xyz);
    let kernel = params.spatial_kernel();
    let inv = params.inv_two_sigma_range_sq();
    let run = FilterRun {
        params,
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: 1,
    };
    let voxels = dims.len() as f64;
    let before = best_of(reps, || {
        let mut out = vec![0.0f32; dims.len()];
        for (i, j, k) in dims.iter() {
            out[(k * dims.ny + j) * dims.nx + i] = bilateral_voxel(vol, &kernel, inv, i, j, k);
        }
        std::hint::black_box(out);
    });
    let after = best_of(reps, || {
        std::hint::black_box(bilateral3d::<_, ZOrder3>(vol, &run));
    });
    (voxels / before, voxels / after)
}

fn trilinear_pair<V: Volume3>(vol: &V, reps: usize) -> (f64, f64) {
    let origin = vec3(1.0, 1.5, 2.0);
    let dir = vec3(1.0, 0.9, 0.8).normalized();
    let nsteps = 120usize;
    let rounds = 2000usize;
    let samples = (nsteps * rounds) as f64;
    let before = best_of(reps, || {
        let mut acc = 0.0f32;
        for _ in 0..rounds {
            for s in 0..nsteps {
                acc += sample_trilinear(vol, origin + dir * (s as f32 * 0.5));
            }
        }
        std::hint::black_box(acc);
    });
    let after = best_of(reps, || {
        let mut acc = 0.0f32;
        for _ in 0..rounds {
            let mut sampler = CellSampler::new(vol);
            for s in 0..nsteps {
                acc += sampler.sample(origin + dir * (s as f32 * 0.5));
            }
        }
        std::hint::black_box(acc);
    });
    (samples / before, samples / after)
}

struct Row {
    bench: &'static str,
    layout: &'static str,
    config: &'static str,
    unit: &'static str,
    before: f64,
    after: f64,
}

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("size", 32);
    let reps = args.get_usize("reps", 3);
    let out_path = args.get_str("out", "BENCH_baseline.json").to_string();

    let dims = Dims3::cube(n);
    let values = sfc_datagen::mri_phantom(dims, 3, sfc_datagen::PhantomParams::default());
    let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();

    let t: Grid3<f32, Tiled3> = a.convert();
    let h: Grid3<f32, HilbertOrder3> = a.convert();

    let mut rows: Vec<Row> = Vec::new();
    for size in StencilSize::ALL {
        let label = size.label();
        let mut push = |layout: &'static str, (b, aft): (f64, f64)| {
            rows.push(Row {
                bench: "bilateral",
                layout,
                config: label,
                unit: "voxels_per_sec",
                before: b,
                after: aft,
            });
            eprintln!("bilateral {layout} {label}: {b:.3e} -> {aft:.3e} ({:.2}x)", aft / b);
        };
        push("a-order", bilateral_pair(&a, size, reps));
        push("z-order", bilateral_pair(&z, size, reps));
        push("tiled", bilateral_pair(&t, size, reps));
        push("hilbert", bilateral_pair(&h, size, reps));
    }
    for (layout, (b, aft)) in [
        ("a-order", trilinear_pair(&a, reps)),
        ("z-order", trilinear_pair(&z, reps)),
    ] {
        rows.push(Row {
            bench: "trilinear",
            layout,
            config: "diag-march",
            unit: "samples_per_sec",
            before: b,
            after: aft,
        });
        eprintln!("trilinear {layout}: {b:.3e} -> {aft:.3e} ({:.2}x)", aft / b);
    }

    // Hand-rolled JSON (the workspace has no serializer dependency).
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"size\": {n},\n  \"reps\": {reps},\n"));
    s.push_str("  \"note\": \"before = per-voxel index() kernel / one-shot trilinear; after = pencil-gather driver / cached-cell cursor sampler; outputs bitwise-identical\",\n");
    s.push_str("  \"rows\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let sep = if idx + 1 == rows.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"bench\": \"{}\", \"layout\": \"{}\", \"config\": \"{}\", \"unit\": \"{}\", \"before\": {:.1}, \"after\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.bench, r.layout, r.config, r.unit, r.before, r.after, r.after / r.before, sep
        ));
    }
    s.push_str("  ]\n}\n");
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(s.as_bytes())) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
