//! Reproduces **Figure 3**: bilateral filter on the MIC (Knight's Corner)
//! model — scaled relative difference of runtime (left) and
//! `L2_DATA_READ_MISS_MEM_FILL` (right), rows = the six paper
//! configurations, columns = thread counts {59, 118, 177, 236} on 59
//! cores (hardware threads share a core's private caches).
//!
//! `cargo run -p sfc-bench --release --bin fig3_bilateral_mic -- [--size 64] [--quick] [--csv DIR] [--checkpoint FILE]`

use sfc_bench::{
    banner, build_bilateral_inputs, checkpoint_from_args, emit_figure, ok_or_exit,
    paper_rows, run_bilateral_figure_resumable,
};
use sfc_harness::FigArgs;
use sfc_memsim::{mic_knc, scaled, shift_for_volume_edge};

fn main() {
    let fig_args = FigArgs::from_env();
    let n = fig_args.size();
    let csv = fig_args.csv();

    let base = mic_knc();
    let threads = fig_args.thread_grid([59, 236], &base.concurrency);
    let mut rows = paper_rows();
    if fig_args.quick() {
        rows.truncate(4);
    }
    let plat = scaled(&base, shift_for_volume_edge(n));

    banner(
        "Figure 3 — Bilat3d, MIC: scaled relative difference Z- vs A-order",
        "512^3 MRI volume, 60-core Intel MIC/KNC, L2_DATA_READ_MISS_MEM_FILL counter",
        &format!(
            "{n}^3 synthetic MRI phantom, cache model {} (L1 {}B / L2 {}B per core, no L3; 59 cores x up to 4 hw threads sharing private caches)",
            plat.name, plat.hierarchy.l1.size_bytes, plat.hierarchy.l2.size_bytes,
        ),
    );

    let mut inputs = build_bilateral_inputs(n, 2024);
    sfc_bench::contaminate_volume_pair(fig_args.raw(), "mri phantom", &mut inputs.a, &mut inputs.z);
    sfc_bench::bilateral_fault_demo(fig_args.raw(), &inputs.z);
    let mut ckpt = checkpoint_from_args(fig_args.raw());
    let fig = ok_or_exit(run_bilateral_figure_resumable(
        &inputs,
        &rows,
        &threads,
        &plat,
        true,
        &format!("fig3 n{n} seed2024"),
        &mut ckpt,
    ));
    println!();
    emit_figure("fig3", &[&fig.runtime_ds, &fig.counter_ds, &fig.l2_accesses_ds], 2, csv.as_deref());
}
