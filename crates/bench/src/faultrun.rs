//! Fault-injection demonstrations for the figure binaries.
//!
//! Every figure binary accepts the shared fault flags — `--fault-seed N`
//! enables injection, `--panic-rate`, `--flaky-rate`, `--timeout-rate`,
//! `--corrupt-rate`, and `--stall-ms` shape it (see
//! [`FaultRates::from_args`]). When `--fault-seed` is present, the binary
//! first runs the *real* kernel once through the execution engine under a
//! selectable [`ExecPolicy`] (`--fault-policy degraded|supervised|brownout`,
//! default `degraded`) with a seeded random [`FaultPlan`], then prints the
//! [`RunReport`](sfc_harness::RunReport), the
//! [`DefectMap`](sfc_harness::DefectMap), and the
//! [`QualityMap`](sfc_harness::QualityMap) so the degraded-mode machinery
//! is exercised (and readable) end to end before the simulated sweep
//! starts. Under `--fault-policy brownout`, `--deadline-ms N` arms the
//! wall-clock budget of the deadline controller.
//!
//! Independently of the fault demo, `--nan-rate R` contaminates a
//! deterministic random fraction of the *input* voxels with NaN before
//! anything runs (seeded by `--nan-seed`, falling back to `--fault-seed`),
//! exercising the NaN-safe kernels and counters end to end.
//!
//! ```text
//! cargo run -p sfc-bench --release --bin fig2_bilateral_ivb -- \
//!     --quick --fault-seed 7 --panic-rate 0.05 --timeout-rate 0.02
//! cargo run -p sfc-bench --release --bin fig5_volrend_ivb -- \
//!     --quick --fault-seed 11 --timeout-rate 0.3 \
//!     --fault-policy brownout --deadline-ms 400 --nan-rate 0.001
//! ```

use std::time::Duration;

use sfc_core::{
    image_tiles, pencil_count, ArrayOrder3, Axis, Grid3, StencilOrder, StencilSize, Volume3,
    ZOrder3,
};
use sfc_filters::{try_bilateral3d_with_policy, BilateralParams, FilterRun};
use sfc_harness::{
    faults::contaminate_nan, Args, DeadlineBudget, DegradedOutcome, ExecPolicy, FaultPlan,
    FaultRates, SupervisorConfig,
};
use sfc_volrend::{render_with_policy, Camera, RenderOpts, TransferFunction};

use crate::checkpoint::ok_or_exit;

/// Supervisor settings for a demo run: a couple of retries, and a watchdog
/// deadline *below* the scripted stall so `--timeout-rate` items genuinely
/// expire (healthy pencils/tiles finish orders of magnitude faster).
fn supervisor(nthreads: usize, rates: &FaultRates) -> SupervisorConfig {
    SupervisorConfig {
        nthreads,
        max_retries: 2,
        backoff_base: Duration::from_millis(5),
        timeout: Some(Duration::from_millis((rates.stall_ms / 2).max(50))),
        watchdog_poll: Duration::from_millis(5),
        ..Default::default()
    }
}

/// The engine policy a demo runs under: the full graceful-degradation
/// stack (`--fault-policy degraded`, the default), supervision without
/// repair (`--fault-policy supervised`), or deadline-aware brownout
/// (`--fault-policy brownout`, budget armed by `--deadline-ms`).
fn demo_policy(
    args: &Args,
    nthreads: usize,
    rates: &FaultRates,
    output_range: Option<(f32, f32)>,
) -> ExecPolicy {
    let cfg = supervisor(nthreads, rates);
    match args.get_str("fault-policy", "degraded") {
        "supervised" => ExecPolicy::Supervised(cfg),
        "degraded" => ExecPolicy::degraded(cfg, output_range),
        "brownout" => {
            let deadline = match args.get_u64("deadline-ms", 0) {
                0 => DeadlineBudget::none(),
                ms => DeadlineBudget::with_budget(Duration::from_millis(ms)),
            };
            ExecPolicy::brownout(cfg, deadline, output_range)
        }
        other => panic!(
            "--fault-policy expects 'degraded', 'supervised', or 'brownout', got {other:?}"
        ),
    }
}

/// Print the supervised-run report and the defect map.
fn print_outcome(what: &str, unit: &str, nunits: usize, outcome: &DegradedOutcome) {
    let r = &outcome.report;
    eprintln!(
        "fault demo [{what}]: {}/{nunits} {unit}s completed, {} failed, \
         {} retries, {} replacement workers, {:.1} ms",
        r.completed,
        r.failed.len(),
        r.retried,
        r.replacements,
        r.wall_time.as_secs_f64() * 1e3,
    );
    eprintln!("fault demo [{what}]: defects: {}", outcome.defects);
    eprintln!("fault demo [{what}]: quality: {}", outcome.quality);
    if outcome.output_is_whole() {
        if outcome.quality.is_full_quality() {
            eprintln!(
                "fault demo [{what}]: output is WHOLE — every defect was repaired; \
                 the result is bitwise-identical to a fault-free run"
            );
        } else {
            eprintln!(
                "fault demo [{what}]: output is WHOLE but BROWNED OUT — every \
                 {unit} is present, the ones listed above at reduced quality"
            );
        }
    } else {
        eprintln!(
            "fault demo [{what}]: output is DEGRADED — the unrepaired {unit}s \
             above should be treated as missing"
        );
    }
    eprintln!();
}

/// When `--nan-rate R` is set, replace a deterministic random fraction of
/// the input voxels with NaN in **both** layout copies (the two grids keep
/// identical logical contents, so layout comparisons stay fair) and report
/// what was done. Seeded by `--nan-seed`, falling back to `--fault-seed`.
/// Returns the number of voxels contaminated (0 when the flag is absent).
pub fn contaminate_volume_pair(
    args: &Args,
    what: &str,
    a: &mut Grid3<f32, ArrayOrder3>,
    z: &mut Grid3<f32, ZOrder3>,
) -> usize {
    let rate = args.get_f64("nan-rate", 0.0);
    if rate <= 0.0 {
        return 0;
    }
    let seed = args.get_u64("nan-seed", args.get_u64("fault-seed", 0x5EED));
    let dims = a.dims();
    let mut values = a.to_row_major();
    let count = contaminate_nan(&mut values, seed, rate as f32);
    *a = Grid3::from_row_major(dims, &values);
    *z = a.convert();
    eprintln!(
        "nan contamination [{what}]: {count}/{} input voxels set to NaN \
         (rate {rate}, seed {seed}); NaN-safe kernels will exclude them",
        values.len(),
    );
    eprintln!();
    count
}

/// When the fault flags are present, run one bilateral filter over `vol`
/// under the graceful-degradation driver and report what happened.
/// Returns `true` when a demo ran (i.e. `--fault-seed` was given).
pub fn bilateral_fault_demo<V: Volume3 + Sync>(args: &Args, vol: &V) -> bool {
    let Some((seed, rates)) = FaultRates::from_args(args) else {
        return false;
    };
    let run = FilterRun {
        params: BilateralParams::for_size(StencilSize::R3, StencilOrder::Xyz),
        pencil_axis: Axis::X,
        weight: Default::default(),
        nthreads: args.get_usize("fault-threads", 4),
    };
    let n_pencils = pencil_count(vol.dims(), run.pencil_axis);
    let plan = FaultPlan::random_rates(seed, n_pencils, &rates);
    let policy = demo_policy(args, run.nthreads, &rates, None);
    let mut out = Grid3::<f32, ArrayOrder3>::new(vol.dims());
    let outcome = ok_or_exit(try_bilateral3d_with_policy(vol, &mut out, &run, &policy, &plan));
    print_outcome("bilateral r3", "pencil", n_pencils, &outcome);
    true
}

/// When the fault flags are present, render one frame of `vol` from `cam`
/// under the graceful-degradation renderer and report what happened.
/// Returns `true` when a demo ran.
pub fn volrend_fault_demo<V: Volume3 + Sync>(
    args: &Args,
    vol: &V,
    cam: &Camera,
    opts: &RenderOpts,
) -> bool {
    let Some((seed, rates)) = FaultRates::from_args(args) else {
        return false;
    };
    let ntiles = image_tiles(cam.width(), cam.height(), opts.tile, opts.tile).len();
    let plan = FaultPlan::random_rates(seed, ntiles, &rates);
    let policy = demo_policy(
        args,
        args.get_usize("fault-threads", 4),
        &rates,
        Some((0.0, 1.0)),
    );
    let (_img, outcome) = ok_or_exit(render_with_policy(
        vol,
        cam,
        &TransferFunction::fire(),
        opts,
        &policy,
        &plan,
    ));
    print_outcome("volrend", "tile", ntiles, &outcome);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::Dims3;

    #[test]
    fn demos_are_inert_without_the_fault_seed_flag() {
        let args = Args::parse(["--size", "64"].iter().map(|s| s.to_string()));
        let vol = Grid3::<f32, ArrayOrder3>::new(Dims3::cube(8));
        assert!(!bilateral_fault_demo(&args, &vol));
    }

    #[test]
    fn bilateral_demo_runs_and_repairs_under_fault_flags() {
        let args = Args::parse(
            [
                "--fault-seed",
                "7",
                "--panic-rate",
                "0.2",
                "--flaky-rate",
                "0.2",
                "--corrupt-rate",
                "0.2",
                "--fault-threads",
                "2",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        let dims = Dims3::cube(10);
        let data: Vec<f32> = (0..dims.len()).map(|v| (v % 97) as f32 / 97.0).collect();
        let vol = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &data);
        assert!(bilateral_fault_demo(&args, &vol));
    }
}
