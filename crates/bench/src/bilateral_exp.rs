//! Shared machinery for the bilateral-filter figures (paper Figs. 2–3).

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, SfcResult, StencilOrder, StencilSize, ZOrder3};
use sfc_datagen::{mri_phantom, PhantomParams};
use sfc_filters::{config_label, simulate_bilateral_counters, BilateralParams};
use sfc_harness::{scaled_relative_difference, PaperTable};
use sfc_memsim::Platform;

use crate::checkpoint::{cell_through, Checkpoint};

/// The paper's six bilateral rows: each stencil size in its friendly
/// (`px xyz`) and hostile (`pz zyx`) configuration.
pub fn paper_rows() -> Vec<(StencilSize, Axis, StencilOrder)> {
    StencilSize::ALL
        .into_iter()
        .flat_map(|s| {
            [
                (s, Axis::X, StencilOrder::Xyz),
                (s, Axis::Z, StencilOrder::Zyx),
            ]
        })
        .collect()
}

/// Both layouts of the MRI-phantom input volume.
pub struct BilateralInputs {
    /// Array-order copy.
    pub a: Grid3<f32, ArrayOrder3>,
    /// Z-order copy (identical logical contents).
    pub z: Grid3<f32, ZOrder3>,
}

/// Synthesize the phantom once and lay it out both ways.
pub fn build_inputs(n: usize, seed: u64) -> BilateralInputs {
    let dims = Dims3::cube(n);
    let values = mri_phantom(dims, seed, PhantomParams::default());
    let a: Grid3<f32, ArrayOrder3> = Grid3::from_row_major(dims, &values);
    let z: Grid3<f32, ZOrder3> = a.convert();
    BilateralInputs { a, z }
}

/// One figure: `ds` of modeled runtime (left panel) and of the platform
/// counter (right panel), rows × thread-count columns, plus an auxiliary
/// L2-total-accesses panel (see EXPERIMENTS.md: in an idealized LRU
/// hierarchy without prefetchers, part of the effect the paper measured at
/// the L2→L3 boundary appears one level up, at L1→L2).
pub struct BilateralFigure {
    /// Modeled-runtime `ds` table (paper's left panel).
    pub runtime_ds: PaperTable,
    /// Counter `ds` table (paper's right panel).
    pub counter_ds: PaperTable,
    /// Auxiliary: `ds` of total L2 accesses (= L1 misses).
    pub l2_accesses_ds: PaperTable,
}

/// Run the full figure grid. `progress` prints one line per cell to stderr.
pub fn run_bilateral_figure(
    inputs: &BilateralInputs,
    rows: &[(StencilSize, Axis, StencilOrder)],
    threads: &[usize],
    platform: &Platform,
    progress: bool,
) -> BilateralFigure {
    run_bilateral_figure_resumable(inputs, rows, threads, platform, progress, "", &mut None)
        .expect("sweep without a checkpoint cannot fail")
}

/// [`run_bilateral_figure`] with checkpoint/resume: each completed cell is
/// persisted to `ckpt` (when `Some`) under a key derived from `tag`, the
/// platform, the row configuration, and the thread count; on restart,
/// cells already on record are served from the file instead of being
/// re-simulated. Pass a `tag` that pins everything else the cell depends
/// on (figure id, volume size, seed) so a checkpoint is never replayed
/// against different inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_bilateral_figure_resumable(
    inputs: &BilateralInputs,
    rows: &[(StencilSize, Axis, StencilOrder)],
    threads: &[usize],
    platform: &Platform,
    progress: bool,
    tag: &str,
    ckpt: &mut Option<Checkpoint>,
) -> SfcResult<BilateralFigure> {
    let row_labels: Vec<String> = rows
        .iter()
        .map(|&(s, a, o)| config_label(s, a, o))
        .collect();
    let col_labels: Vec<String> = threads.iter().map(|t| t.to_string()).collect();
    let mut runtime_ds = PaperTable::new(
        format!("Runtime (modeled), scaled relative difference Z- vs A-order — {}", platform.name),
        "config",
        row_labels.clone(),
        col_labels.clone(),
    );
    let mut counter_ds = PaperTable::new(
        format!("{}, scaled relative difference Z- vs A-order — {}", platform.counter_name, platform.name),
        "config",
        row_labels.clone(),
        col_labels.clone(),
    );
    let mut l2_accesses_ds = PaperTable::new(
        format!("L2 total accesses (= L1 misses), scaled relative difference — {}", platform.name),
        "config",
        row_labels,
        col_labels,
    );

    for (r, &(size, axis, order)) in rows.iter().enumerate() {
        let params = BilateralParams::for_size(size, order);
        for (c, &nthreads) in threads.iter().enumerate() {
            let key = format!(
                "{tag}|{}|{}|t{nthreads}",
                platform.name,
                config_label(size, axis, order)
            );
            let (cell, resumed) = cell_through(ckpt, &key, || {
                let rep_a =
                    simulate_bilateral_counters(&inputs.a, &params, axis, nthreads, platform);
                let rep_z =
                    simulate_bilateral_counters(&inputs.z, &params, axis, nthreads, platform);
                vec![
                    scaled_relative_difference(
                        rep_a.modeled_runtime_cycles(&platform.cost),
                        rep_z.modeled_runtime_cycles(&platform.cost),
                    ),
                    scaled_relative_difference(
                        platform.counter_value(&rep_a) as f64,
                        platform.counter_value(&rep_z) as f64,
                    ),
                    scaled_relative_difference(
                        rep_a.total().l2.accesses as f64,
                        rep_z.total().l2.accesses as f64,
                    ),
                ]
            })?;
            if cell.len() != 3 {
                return Err(sfc_core::SfcError::Corrupt {
                    what: "checkpoint cell".to_string(),
                    reason: format!("key '{key}' holds {} values, expected 3", cell.len()),
                });
            }
            let (rt, cnt) = (cell[0], cell[1]);
            runtime_ds.set(r, c, rt);
            counter_ds.set(r, c, cnt);
            l2_accesses_ds.set(r, c, cell[2]);
            if progress {
                eprintln!(
                    "  [{}] threads={nthreads:<4} ds(runtime)={rt:6.2} ds(counter)={cnt:8.2}{}",
                    config_label(size, axis, order),
                    if resumed { "  (resumed)" } else { "" }
                );
            }
        }
    }
    Ok(BilateralFigure {
        runtime_ds,
        counter_ds,
        l2_accesses_ds,
    })
}

/// Measure native wall-clock per row (both layouts) at one thread count.
/// Returns a table with columns `a-order (ms)`, `z-order (ms)`, `ds`.
pub fn native_row_times(
    inputs: &BilateralInputs,
    rows: &[(StencilSize, Axis, StencilOrder)],
    nthreads: usize,
    reps: usize,
) -> PaperTable {
    let row_labels: Vec<String> = rows
        .iter()
        .map(|&(s, a, o)| config_label(s, a, o))
        .collect();
    let mut t = PaperTable::new(
        format!("Native wall-clock (median of {reps}), {nthreads} threads"),
        "config",
        row_labels,
        vec!["a-order ms".into(), "z-order ms".into(), "ds".into()],
    );
    for (r, &(size, axis, order)) in rows.iter().enumerate() {
        let run = sfc_filters::FilterRun {
            params: BilateralParams::for_size(size, order),
            pencil_axis: axis,
            weight: Default::default(),
            nthreads,
        };
        let ta = sfc_harness::measure(0, reps, || {
            let out: Grid3<f32, ArrayOrder3> = sfc_filters::bilateral3d(&inputs.a, &run);
            std::hint::black_box(out);
        })
        .median_secs();
        let tz = sfc_harness::measure(0, reps, || {
            let out: Grid3<f32, ArrayOrder3> = sfc_filters::bilateral3d(&inputs.z, &run);
            std::hint::black_box(out);
        })
        .median_secs();
        t.set(r, 0, ta * 1e3);
        t.set(r, 1, tz * 1e3);
        t.set(r, 2, scaled_relative_difference(ta, tz));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_memsim::{platform, scaled};

    #[test]
    fn rows_match_paper_layout() {
        let rows = paper_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], (StencilSize::R1, Axis::X, StencilOrder::Xyz));
        assert_eq!(rows[5], (StencilSize::R5, Axis::Z, StencilOrder::Zyx));
    }

    #[test]
    fn resumable_figure_round_trips_through_its_checkpoint() {
        let inputs = build_inputs(16, 7);
        let plat = scaled(&platform::ivy_bridge(), 15);
        let rows = [(StencilSize::R1, Axis::Z, StencilOrder::Zyx)];
        let path = std::env::temp_dir()
            .join(format!("sfc_fig_ckpt_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(format!("{}.journal", path.display())).ok();

        let mut ckpt = Some(Checkpoint::open(&path).unwrap());
        let first = run_bilateral_figure_resumable(
            &inputs, &rows, &[2, 4], &plat, false, "test n16", &mut ckpt,
        )
        .unwrap();

        // A fresh process resuming from the file has both cells on record
        // and reproduces the tables from the checkpoint alone.
        let mut resumed = Some(Checkpoint::open(&path).unwrap());
        assert_eq!(resumed.as_ref().unwrap().len(), 2);
        let second = run_bilateral_figure_resumable(
            &inputs, &rows, &[2, 4], &plat, false, "test n16", &mut resumed,
        )
        .unwrap();
        for c in 0..2 {
            assert_eq!(first.runtime_ds.get(0, c), second.runtime_ds.get(0, c));
            assert_eq!(first.counter_ds.get(0, c), second.counter_ds.get(0, c));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_figure_has_expected_shape_and_signs() {
        let inputs = build_inputs(16, 7);
        let plat = scaled(&platform::ivy_bridge(), 15);
        let rows = [(StencilSize::R1, Axis::Z, StencilOrder::Zyx)];
        let fig = run_bilateral_figure(&inputs, &rows, &[2, 4], &plat, false);
        assert_eq!(fig.counter_ds.cells.len(), 1);
        assert_eq!(fig.counter_ds.cells[0].len(), 2);
        // Hostile configuration: Z-order should win the counter at least.
        assert!(fig.counter_ds.get(0, 0) > 0.0);
    }
}
