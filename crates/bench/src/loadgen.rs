//! Shared accounting for the `load_gen` driver: the per-outcome
//! [`Tally`] and the exit-code contract.
//!
//! The contract (pinned by test here and relied on by the CI smoke
//! jobs): **every typed protocol reply counts as the server holding its
//! contract** — `ok` (whole or degraded), typed `err`, `overloaded`,
//! `shed`, `expired`, and dedup replays are all successful outcomes of
//! the protocol, and none of them fail the run. Only *transport*
//! failures (refused connections, resets, unparsable replies, bodies
//! that died mid-read) make `load_gen` exit non-zero.

/// Per-outcome reply counts for one load run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Tally {
    /// `ok` replies with a whole, full-quality body.
    pub ok_whole: usize,
    /// `ok` replies carrying degraded/downgraded units.
    pub ok_degraded: usize,
    /// Typed `err` replies.
    pub errs: usize,
    /// `overloaded` admission refusals.
    pub overloaded: usize,
    /// `shed` replies (drain or deadline shedding).
    pub shed: usize,
    /// `expired` replies (deadline exhausted before execution).
    pub expired: usize,
    /// `ok` replies served from the idempotency dedup cache
    /// (`dedup=1`).
    pub dedup: usize,
    /// Acknowledged `save=1` requests (an `ok` reply for a save is the
    /// server's durability promise — chaos runs audit these against the
    /// files replicas actually persisted).
    pub saves_acked: usize,
    /// Extra delivery attempts the resilient client spent beyond each
    /// request's first.
    pub retries: usize,
    /// Transport-level failures — the only outcome that fails the run.
    pub transport_errors: usize,
}

impl Tally {
    /// Accumulate another tally into this one.
    pub fn add(&mut self, other: Tally) {
        self.ok_whole += other.ok_whole;
        self.ok_degraded += other.ok_degraded;
        self.errs += other.errs;
        self.overloaded += other.overloaded;
        self.shed += other.shed;
        self.expired += other.expired;
        self.dedup += other.dedup;
        self.saves_acked += other.saves_acked;
        self.retries += other.retries;
        self.transport_errors += other.transport_errors;
    }

    /// The process exit code for this run: `0` unless a transport
    /// failure occurred.
    pub fn exit_code(&self) -> i32 {
        if self.transport_errors == 0 {
            0
        } else {
            1
        }
    }

    /// The final `load_gen ...` summary line.
    pub fn summary(&self, tenants: usize, requests: usize, elapsed_ms: u128) -> String {
        format!(
            "load_gen tenants={tenants} requests={} ok_whole={} ok_degraded={} errs={} \
             overloaded={} shed={} expired={} dedup={} saves_acked={} retries={} \
             transport_errors={} elapsed_ms={elapsed_ms}",
            tenants * requests,
            self.ok_whole,
            self.ok_degraded,
            self.errs,
            self.overloaded,
            self.shed,
            self.expired,
            self.dedup,
            self.saves_acked,
            self.retries,
            self.transport_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_replies_never_fail_the_run() {
        let t = Tally {
            ok_whole: 3,
            ok_degraded: 2,
            errs: 5,
            overloaded: 4,
            shed: 2,
            expired: 7,
            dedup: 1,
            saves_acked: 2,
            retries: 9,
            transport_errors: 0,
        };
        assert_eq!(t.exit_code(), 0, "typed outcomes are the server holding its contract");
    }

    #[test]
    fn any_transport_error_fails_the_run() {
        let t = Tally {
            ok_whole: 100,
            transport_errors: 1,
            ..Tally::default()
        };
        assert_eq!(t.exit_code(), 1);
        assert_eq!(Tally::default().exit_code(), 0, "an empty run is clean");
    }

    #[test]
    fn add_accumulates_every_field() {
        let one = Tally {
            ok_whole: 1,
            ok_degraded: 2,
            errs: 3,
            overloaded: 4,
            shed: 5,
            expired: 6,
            dedup: 7,
            saves_acked: 8,
            retries: 9,
            transport_errors: 10,
        };
        let mut sum = one;
        sum.add(one);
        assert_eq!(
            sum,
            Tally {
                ok_whole: 2,
                ok_degraded: 4,
                errs: 6,
                overloaded: 8,
                shed: 10,
                expired: 12,
                dedup: 14,
                saves_acked: 16,
                retries: 18,
                transport_errors: 20,
            }
        );
    }

    #[test]
    fn summary_reports_every_outcome_key() {
        let line = Tally::default().summary(8, 4, 123);
        for key in [
            "tenants=8",
            "requests=32",
            "ok_whole=",
            "ok_degraded=",
            "errs=",
            "overloaded=",
            "shed=",
            "expired=",
            "dedup=",
            "saves_acked=",
            "retries=",
            "transport_errors=",
            "elapsed_ms=123",
        ] {
            assert!(line.contains(key), "summary missing {key}: {line}");
        }
    }
}
