//! Output helpers shared by the figure binaries.

use std::path::Path;

use sfc_harness::PaperTable;

/// Print a figure's two tables and optionally persist them as CSV.
pub fn emit_figure(
    figure_id: &str,
    tables: &[&PaperTable],
    precision: usize,
    csv_dir: Option<&Path>,
) {
    for t in tables {
        println!("{}", t.render_text(precision));
    }
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
        for (idx, t) in tables.iter().enumerate() {
            let path = dir.join(format!("{figure_id}_{idx}.csv"));
            std::fs::write(&path, t.render_csv()).expect("write csv");
            println!("wrote {}", path.display());
        }
    }
}

/// Standard experiment banner: what runs, at what scale, on which model.
pub fn banner(figure: &str, paper_setup: &str, ours: &str) {
    println!("== {figure} ==");
    println!("paper setup:  {paper_setup}");
    println!("this run:     {ours}");
    println!("(ds = (a - z)/z; positive means Z-order wins; see DESIGN.md)");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_files_written() {
        let mut t = PaperTable::new("T", "r", vec!["a".into()], vec!["1".into()]);
        t.set(0, 0, 1.5);
        let dir = std::env::temp_dir().join(format!("sfc_out_{}", std::process::id()));
        emit_figure("figX", &[&t], 2, Some(&dir));
        let content = std::fs::read_to_string(dir.join("figX_0.csv")).unwrap();
        assert!(content.contains("1.5"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
