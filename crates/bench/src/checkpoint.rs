//! Checkpoint/resume for long figure sweeps, crash-consistent.
//!
//! A sweep writes one record per completed grid cell so a killed or
//! crashed run can be restarted and will skip every cell it already
//! finished. Persistence is two-tier, built on [`sfc_harness::durable`]:
//!
//! * a JSON **snapshot** — a single object of `key -> [numbers]`, written
//!   via temp-file + fsync + atomic rename ([`sfc_harness::write_atomic`]),
//!   so readers never observe a torn file;
//! * an append-only **journal** (`<path>.journal`) of checksummed
//!   per-cell records, fsynced per append ([`sfc_harness::Journal`]). A
//!   `kill -9` mid-append loses at most the record being written; on the
//!   next [`Checkpoint::open`] the torn tail is truncated, every intact
//!   record is replayed on top of the snapshot, and the result is
//!   compacted back into a fresh snapshot.
//!
//! The journal is folded into the snapshot every
//! [`COMPACT_EVERY`] appends and on every recovering open, bounding both
//! replay time and journal growth. The JSON is read and written by hand
//! (the workspace carries no JSON dependency):
//!
//! ```text
//! {"version":1,"entries":{"ivb|r3 pz zyx|t4":[0.52,1.13,0.98], ...}}
//! ```
//!
//! Non-finite values round-trip as `null`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sfc_core::{SfcError, SfcResult};
use sfc_harness::{write_atomic, Journal};

/// On-disk format version understood by this module.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Journal appends between snapshot compactions.
pub const COMPACT_EVERY: usize = 64;

/// What [`Checkpoint::open`] found and repaired on disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointRecovery {
    /// Completed cells replayed from the journal — appends that had not
    /// yet been compacted into the snapshot (e.g. because the previous run
    /// crashed). None were lost.
    pub journal_cells: usize,
    /// Bytes of torn journal tail truncated away (an interrupted append).
    pub torn_bytes: u64,
}

impl CheckpointRecovery {
    /// True when open had anything to repair or fold in.
    pub fn recovered_anything(&self) -> bool {
        self.journal_cells > 0 || self.torn_bytes > 0
    }
}

/// A resumable record of completed sweep cells, backed by a JSON snapshot
/// plus an append-only journal (see the module docs).
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    entries: BTreeMap<String, Vec<f64>>,
    journal: Journal,
    recovery: CheckpointRecovery,
}

/// `<path>.journal`, the sibling journal of a checkpoint snapshot.
fn journal_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".journal");
    PathBuf::from(os)
}

impl Checkpoint {
    /// Open (or create) a checkpoint at `path`, replaying and folding in
    /// any journal left by a crashed run. A missing file yields an empty
    /// checkpoint; an unreadable or malformed one is a typed
    /// [`SfcError::Corrupt`] / [`SfcError::Io`] — delete the file (and its
    /// `.journal` sibling) to start over.
    pub fn open(path: impl Into<PathBuf>) -> SfcResult<Self> {
        let path = path.into();
        let mut entries = match std::fs::read_to_string(&path) {
            Ok(text) => parse_checkpoint(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(SfcError::io("read checkpoint", e)),
        };
        let (journal, replay) = Journal::open(journal_path(&path))
            .map_err(|e| SfcError::io("open checkpoint journal", e))?;
        let recovery = CheckpointRecovery {
            journal_cells: replay.records.len(),
            torn_bytes: replay.truncated_bytes,
        };
        for record in &replay.records {
            let (key, values) = parse_journal_record(record)?;
            entries.insert(key, values);
        }
        let mut ckpt = Checkpoint {
            path,
            entries,
            journal,
            recovery,
        };
        // Fold a non-empty (or repaired) journal into a fresh snapshot so
        // a crashed run's cells are durable in one place again.
        if recovery.recovered_anything() {
            ckpt.compact()?;
        }
        Ok(ckpt)
    }

    /// File backing this checkpoint's snapshot.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// What [`Checkpoint::open`] recovered from a previous crash.
    pub fn recovery(&self) -> CheckpointRecovery {
        self.recovery
    }

    /// Number of completed cells on record.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Values recorded for `key`, if that cell already completed.
    pub fn get(&self, key: &str) -> Option<&[f64]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Whether `key` already completed.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Record a completed cell and persist it durably: one fsynced journal
    /// append (O(cell), not O(sweep)); every [`COMPACT_EVERY`] appends the
    /// journal is folded into an atomically-rewritten snapshot. After
    /// `record` returns, the cell survives `kill -9`.
    pub fn record(&mut self, key: &str, values: &[f64]) -> SfcResult<()> {
        self.entries.insert(key.to_string(), values.to_vec());
        self.journal
            .append(render_entry(key, values).as_bytes())
            .map_err(|e| SfcError::io("append checkpoint journal", e))?;
        if self.journal.len() >= COMPACT_EVERY {
            self.compact()?;
        }
        Ok(())
    }

    /// Write the full entry set as an atomic snapshot and empty the
    /// journal.
    fn compact(&mut self) -> SfcResult<()> {
        write_atomic(&self.path, render_checkpoint(&self.entries).as_bytes())
            .map_err(|e| SfcError::io("write checkpoint snapshot", e))?;
        self.journal
            .reset()
            .map_err(|e| SfcError::io("reset checkpoint journal", e))
    }

    /// Return the cached values for `key`, or run `compute`, persist its
    /// result, and return it. The bool is `true` when the cell was served
    /// from the checkpoint (skipped).
    pub fn cell<F>(&mut self, key: &str, compute: F) -> SfcResult<(Vec<f64>, bool)>
    where
        F: FnOnce() -> Vec<f64>,
    {
        if let Some(v) = self.entries.get(key) {
            return Ok((v.clone(), true));
        }
        let v = compute();
        self.record(key, &v)?;
        Ok((v, false))
    }
}

/// Serve `key` from `ckpt` when present, otherwise compute and (when a
/// checkpoint is in use) persist. A `None` checkpoint always computes —
/// lets sweep loops take `&mut Option<Checkpoint>` and stay oblivious.
pub fn cell_through<F>(
    ckpt: &mut Option<Checkpoint>,
    key: &str,
    compute: F,
) -> SfcResult<(Vec<f64>, bool)>
where
    F: FnOnce() -> Vec<f64>,
{
    match ckpt {
        Some(c) => c.cell(key, compute),
        None => Ok((compute(), false)),
    }
}

/// CLI helper for the figure binaries: open the file named by
/// `--checkpoint FILE` when the flag is present (announcing how many cells
/// a resumed run will skip), exiting with a diagnostic when the file is
/// unreadable or corrupt.
pub fn checkpoint_from_args(args: &sfc_harness::Args) -> Option<Checkpoint> {
    let path = PathBuf::from(args.get("checkpoint")?);
    match Checkpoint::open(&path) {
        Ok(c) => {
            let rec = c.recovery();
            if rec.torn_bytes > 0 {
                eprintln!(
                    "checkpoint {}: truncated a torn journal tail ({} bytes from an interrupted write)",
                    path.display(),
                    rec.torn_bytes
                );
            }
            if rec.journal_cells > 0 {
                eprintln!(
                    "checkpoint {}: folded {} journaled cells into the snapshot",
                    path.display(),
                    rec.journal_cells
                );
            }
            if !c.is_empty() {
                eprintln!(
                    "checkpoint {}: resuming, {} completed cells will be skipped",
                    path.display(),
                    c.len()
                );
            }
            Some(c)
        }
        Err(e) => {
            eprintln!("cannot open checkpoint {}: {e}", path.display());
            eprintln!("(delete the file to restart the sweep from scratch)");
            std::process::exit(2);
        }
    }
}

/// CLI helper: unwrap a sweep result, exiting with the typed error on
/// failure (checkpoint I/O is the only way a resumable sweep fails).
pub fn ok_or_exit<T>(result: SfcResult<T>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(2);
        }
    }
}

fn render_checkpoint(entries: &BTreeMap<String, Vec<f64>>) -> String {
    let mut s = format!("{{\"version\":{CHECKPOINT_VERSION},\"entries\":{{");
    for (i, (key, values)) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&render_entry(key, values));
    }
    s.push_str("}}\n");
    s
}

/// One `"key":[values]` fragment — both an element of the snapshot object
/// and the payload of a journal record.
fn render_entry(key: &str, values: &[f64]) -> String {
    let mut s = String::with_capacity(key.len() + 16 * values.len() + 8);
    s.push('"');
    s.push_str(&escape_json(key));
    s.push_str("\":[");
    for (j, v) in values.iter().enumerate() {
        if j > 0 {
            s.push(',');
        }
        if v.is_finite() {
            s.push_str(&format!("{v:?}"));
        } else {
            s.push_str("null");
        }
    }
    s.push(']');
    s
}

/// Decode a journal record back into its cell. Records are checksummed by
/// the journal layer, so a parse failure here means real corruption (or a
/// foreign file), not a torn write.
fn parse_journal_record(payload: &[u8]) -> SfcResult<(String, Vec<f64>)> {
    let fragment = std::str::from_utf8(payload)
        .map_err(|_| corrupt("journal record is not UTF-8"))?;
    let wrapped = format!("{{\"version\":{CHECKPOINT_VERSION},\"entries\":{{{fragment}}}}}");
    let mut entries = parse_checkpoint(&wrapped)?;
    if entries.len() != 1 {
        return Err(corrupt("journal record must hold exactly one cell"));
    }
    Ok(entries.pop_first().expect("len checked"))
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal parser for exactly the shape `render_checkpoint` emits (plus
/// arbitrary whitespace). Anything else is `Corrupt`.
fn parse_checkpoint(text: &str) -> SfcResult<BTreeMap<String, Vec<f64>>> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let vkey = p.string()?;
    if vkey != "version" {
        return Err(corrupt("expected \"version\" field first"));
    }
    p.expect(b':')?;
    let version = p.number()?.ok_or_else(|| corrupt("version must be a number"))?;
    if version != f64::from(CHECKPOINT_VERSION) {
        return Err(SfcError::Corrupt {
            what: "checkpoint file".to_string(),
            reason: format!("unsupported version {version}"),
        });
    }
    p.expect(b',')?;
    let ekey = p.string()?;
    if ekey != "entries" {
        return Err(corrupt("expected \"entries\" field"));
    }
    p.expect(b':')?;
    p.expect(b'{')?;
    let mut entries = BTreeMap::new();
    if p.peek()? == b'}' {
        p.expect(b'}')?;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            p.expect(b'[')?;
            let mut values = Vec::new();
            if p.peek()? == b']' {
                p.expect(b']')?;
            } else {
                loop {
                    match p.number()? {
                        Some(v) => values.push(v),
                        None => values.push(f64::NAN),
                    }
                    match p.next_byte()? {
                        b',' => continue,
                        b']' => break,
                        _ => return Err(corrupt("expected ',' or ']' in value list")),
                    }
                }
            }
            entries.insert(key, values);
            match p.next_byte()? {
                b',' => continue,
                b'}' => break,
                _ => return Err(corrupt("expected ',' or '}' after entry")),
            }
        }
    }
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(corrupt("trailing data after closing brace"));
    }
    Ok(entries)
}

fn corrupt(reason: &str) -> SfcError {
    SfcError::Corrupt {
        what: "checkpoint file".to_string(),
        reason: reason.to_string(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> SfcResult<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| corrupt("unexpected end of file"))
    }

    fn next_byte(&mut self) -> SfcResult<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> SfcResult<()> {
        let got = self.next_byte()?;
        if got != want {
            return Err(corrupt(&format!(
                "expected '{}', found '{}'",
                want as char, got as char
            )));
        }
        Ok(())
    }

    fn string(&mut self) -> SfcResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| corrupt("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| corrupt("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| corrupt("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| corrupt("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| corrupt("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(corrupt("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed so multi-byte UTF-8
                    // sequences stay intact.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| corrupt("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| corrupt("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// A JSON number, or `None` for the literal `null`.
    fn number(&mut self) -> SfcResult<Option<f64>> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(None);
        }
        let start = self.pos;
        while self
            .pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| corrupt("invalid number"))?;
        s.parse::<f64>()
            .map(Some)
            .map_err(|_| corrupt(&format!("invalid number '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sfc_ckpt_{}_{tag}.json", std::process::id()))
    }

    /// Remove a checkpoint and its journal sibling.
    fn clean(path: &Path) {
        std::fs::remove_file(path).ok();
        std::fs::remove_file(journal_path(path)).ok();
    }

    #[test]
    fn roundtrip_and_resume() {
        let path = tmp_path("roundtrip");
        clean(&path);
        let mut c = Checkpoint::open(&path).unwrap();
        assert!(c.is_empty());
        c.record("fig2|r1 px xyz|t2", &[0.5, -1.25, 3.0]).unwrap();
        c.record("fig2|r1 pz zyx|t2", &[f64::NAN, 2.0]).unwrap();

        let reopened = Checkpoint::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("fig2|r1 px xyz|t2"), Some(&[0.5, -1.25, 3.0][..]));
        let v = reopened.get("fig2|r1 pz zyx|t2").unwrap();
        assert!(v[0].is_nan(), "NaN survives as null");
        assert_eq!(v[1], 2.0);
        clean(&path);
    }

    #[test]
    fn cell_skips_completed_configs() {
        let path = tmp_path("cell");
        clean(&path);
        let mut c = Checkpoint::open(&path).unwrap();
        let (v, cached) = c.cell("k", || vec![7.0]).unwrap();
        assert_eq!((v.as_slice(), cached), (&[7.0][..], false));
        // Second call must NOT recompute.
        let (v, cached) = c
            .cell("k", || panic!("cell recomputed a completed config"))
            .unwrap();
        assert_eq!((v.as_slice(), cached), (&[7.0][..], true));
        // And a fresh process resuming from the file skips it too.
        let mut resumed = Checkpoint::open(&path).unwrap();
        let (_, cached) = resumed
            .cell("k", || panic!("resume recomputed a completed config"))
            .unwrap();
        assert!(cached);
        clean(&path);
    }

    #[test]
    fn keys_with_quotes_and_unicode_roundtrip() {
        let path = tmp_path("escape");
        clean(&path);
        let mut c = Checkpoint::open(&path).unwrap();
        let key = "weird \"key\"\\ with\ttabs\nand µnicode";
        c.record(key, &[1.0]).unwrap();
        let r = Checkpoint::open(&path).unwrap();
        assert_eq!(r.get(key), Some(&[1.0][..]));
        clean(&path);
    }

    #[test]
    fn corrupt_file_is_a_typed_error() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{\"version\":1,\"entries\":{\"k\":[1.0}").unwrap();
        match Checkpoint::open(&path) {
            Err(SfcError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::write(&path, "{\"version\":99,\"entries\":{}}").unwrap();
        assert!(matches!(
            Checkpoint::open(&path),
            Err(SfcError::Corrupt { .. })
        ));
        clean(&path);
    }

    #[test]
    fn uncompacted_journal_cells_survive_an_abrupt_exit() {
        let path = tmp_path("kill9");
        clean(&path);
        {
            let mut c = Checkpoint::open(&path).unwrap();
            c.record("a", &[1.0]).unwrap();
            c.record("b", &[2.0, 3.0]).unwrap();
            c.record("c", &[4.0]).unwrap();
            // < COMPACT_EVERY records: everything is journal-only. Drop
            // without any shutdown hook — exactly what kill -9 leaves.
        }
        assert!(!path.exists(), "no snapshot expected before first compaction");
        let c = Checkpoint::open(&path).unwrap();
        assert_eq!(c.recovery().journal_cells, 3);
        assert_eq!(c.get("a"), Some(&[1.0][..]));
        assert_eq!(c.get("b"), Some(&[2.0, 3.0][..]));
        assert_eq!(c.get("c"), Some(&[4.0][..]));
        // Open folded the journal into a fresh snapshot.
        assert!(path.exists());
        assert!(c.journal.is_empty());
        clean(&path);
    }

    #[test]
    fn torn_journal_tail_is_truncated_without_losing_cells() {
        use std::io::Write;
        let path = tmp_path("torn");
        clean(&path);
        {
            let mut c = Checkpoint::open(&path).unwrap();
            c.record("done1", &[1.0]).unwrap();
            c.record("done2", &[2.0]).unwrap();
        }
        // Simulate kill -9 mid-append: a partial record at the tail.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(journal_path(&path))
            .unwrap();
        f.write_all(&[42, 0, 0, 0, 7, 7, 7]).unwrap(); // len says 42, body torn
        drop(f);

        let mut c = Checkpoint::open(&path).unwrap();
        assert_eq!(c.recovery().journal_cells, 2);
        assert_eq!(c.recovery().torn_bytes, 7);
        assert!(c.recovery().recovered_anything());
        assert_eq!(c.get("done1"), Some(&[1.0][..]));
        assert_eq!(c.get("done2"), Some(&[2.0][..]));
        // The repaired checkpoint keeps working.
        c.record("after", &[3.0]).unwrap();
        let r = Checkpoint::open(&path).unwrap();
        assert_eq!(r.len(), 3);
        clean(&path);
    }

    #[test]
    fn compaction_bounds_journal_growth() {
        let path = tmp_path("compact");
        clean(&path);
        let mut c = Checkpoint::open(&path).unwrap();
        for i in 0..COMPACT_EVERY {
            c.record(&format!("cell{i:03}"), &[i as f64]).unwrap();
        }
        assert!(
            c.journal.is_empty(),
            "journal must be folded into the snapshot every {COMPACT_EVERY} appends"
        );
        let snapshot = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_checkpoint(&snapshot).unwrap().len(), COMPACT_EVERY);
        c.record("one-more", &[9.0]).unwrap();
        assert_eq!(c.journal.len(), 1);
        let r = Checkpoint::open(&path).unwrap();
        assert_eq!(r.len(), COMPACT_EVERY + 1);
        clean(&path);
    }

    #[test]
    fn journal_record_roundtrips_weird_keys_and_null() {
        let key = "weird \"key\"\\ with\ttabs µ";
        let values = [1.5, f64::NAN, -2.0];
        let (k, v) = parse_journal_record(render_entry(key, &values).as_bytes()).unwrap();
        assert_eq!(k, key);
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan());
        assert_eq!(v[2], -2.0);
        assert!(parse_journal_record(b"not a record").is_err());
    }

    #[test]
    fn cell_through_none_always_computes() {
        let mut none: Option<Checkpoint> = None;
        let (v, cached) = cell_through(&mut none, "k", || vec![1.0]).unwrap();
        assert_eq!((v.as_slice(), cached), (&[1.0][..], false));
        let (_, cached) = cell_through(&mut none, "k", || vec![2.0]).unwrap();
        assert!(!cached, "without a checkpoint nothing is ever skipped");
    }
}
