//! Pencil-parallel drivers for the stencil kernels (paper §III-A).
//!
//! The volume is decomposed into 1-D voxel pencils along a configurable
//! axis; pencils are handed to threads round-robin. The paper found the
//! pencil axis matters (`px` vs `pz` rows in Fig. 2/3); combined with the
//! stencil iteration order it spans the friendly-to-hostile spectrum of
//! access patterns.

use sfc_core::{pencil, pencil_count, Axis, Grid3, Layout3, SfcError, SfcResult, Volume3};
use sfc_harness::{Executor, Schedule, WorkPlan};

use crate::bilateral::BilateralParams;
use crate::fastmath::TapConfig;
use crate::gaussian::convolve_voxel;
use crate::pencil_gather::{bilateral_pencil, GatherPlan};

/// Configuration of one parallel filter execution.
#[derive(Debug, Clone, Copy)]
pub struct FilterRun {
    /// Bilateral parameters (stencil size, sigmas, iteration order).
    pub params: BilateralParams,
    /// Pencil orientation (paper: `px` = `Axis::X`, `pz` = `Axis::Z`).
    pub pencil_axis: Axis,
    /// Worker threads.
    pub nthreads: usize,
    /// Photometric weight evaluation + tap-loop tier
    /// ([`TapConfig::exact()`] is the bitwise-pinned default; see
    /// [`crate::fastmath`]).
    pub weight: TapConfig,
}

impl FilterRun {
    /// Validate the configuration (sigmas, thread count) with typed
    /// errors — the check the `try_` drivers run before touching data.
    pub fn validate(&self) -> SfcResult<()> {
        self.params.validate()?;
        if self.nthreads == 0 {
            return Err(SfcError::InvalidParameter {
                name: "nthreads",
                reason: "need at least one thread".to_string(),
            });
        }
        Ok(())
    }

    /// Depth of this run's brownout quality ladder: each rung shrinks the
    /// stencil radius by one voxel, down to radius 1 (`r → r−1 → … → 1`),
    /// so a radius-5 run has 4 rungs and a radius-1 run has none.
    pub fn brownout_depth(&self) -> u8 {
        self.params.radius.saturating_sub(1).min(u8::MAX as usize) as u8
    }

    /// The filter parameters at brownout ladder `level`: the stencil
    /// radius shrinks by `level` voxels (floored at 1); the sigmas and
    /// iteration order are unchanged, so the smaller kernel is the same
    /// Gaussian re-normalized over its truncated support. Level 0 returns
    /// the configured parameters unchanged.
    pub fn brownout_params(&self, level: u8) -> BilateralParams {
        BilateralParams {
            radius: self.params.radius.saturating_sub(level as usize).max(1),
            ..self.params
        }
    }
}

/// Wrapper making disjoint raw writes shareable across worker threads.
struct Slots(*mut f32);
unsafe impl Sync for Slots {}

fn drive<V, LOut, F>(vol: &V, out: &mut Grid3<f32, LOut>, run: &FilterRun, per_voxel: F)
where
    V: Volume3 + Sync,
    LOut: Layout3,
    F: Fn(usize, usize, usize) -> f32 + Sync,
{
    let dims = vol.dims();
    assert_eq!(dims, out.dims(), "output grid must match input dimensions");
    let axis = run.pencil_axis;
    let n_pencils = pencil_count(dims, axis);
    let out_layout = out.layout().clone();
    let slots = Slots(out.storage_mut().as_mut_ptr());
    let slots = &slots;
    Executor::new(run.nthreads).run(&WorkPlan::static_round_robin(n_pencils), |_tid, pid| {
        let p = pencil(dims, axis, pid);
        for (i, j, k) in p.iter() {
            let value = per_voxel(i, j, k);
            let idx = out_layout.index(i, j, k);
            // SAFETY: the layout is injective over the logical domain
            // and pencils partition it, so each slot is written by
            // exactly one thread; `idx < storage_len` by the layout
            // contract.
            unsafe { *slots.0.add(idx) = value };
        }
    });
}

/// The bilateral driver shared by the static and dynamic schedules:
/// pencil-gather fast path (see [`crate::pencil_gather`]) over any pencil
/// decomposition, writing through the output layout.
fn drive_bilateral<V, LOut>(
    vol: &V,
    out: &mut Grid3<f32, LOut>,
    params: &BilateralParams,
    pencil_axis: Axis,
    nthreads: usize,
    schedule: Schedule,
    weight: TapConfig,
) where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    let dims = vol.dims();
    assert_eq!(dims, out.dims(), "output grid must match input dimensions");
    let kernel = params.spatial_kernel();
    let inv = params.inv_two_sigma_range_sq();
    let plan = GatherPlan::new(&kernel, dims, pencil_axis);
    let weight = weight.clamped();
    let out_layout = out.layout().clone();
    let slots = Slots(out.storage_mut().as_mut_ptr());
    let slots = &slots;
    let work = WorkPlan::from_schedule(pencil_count(dims, pencil_axis), schedule);
    Executor::new(nthreads).run(&work, |_tid, pid| {
        let p = pencil(dims, pencil_axis, pid);
        bilateral_pencil(vol, &kernel, inv, &plan, &p, weight, |i, j, k, value| {
            let idx = out_layout.index(i, j, k);
            // SAFETY: the layout is injective over the logical domain
            // and pencils partition it, so each slot is written by
            // exactly one thread; `idx < storage_len` by the layout
            // contract.
            unsafe { *slots.0.add(idx) = value };
            true
        });
    });
}

/// Bilateral-filter `vol` into `out` (same dimensions, any layouts),
/// validating configuration and shapes with typed errors.
pub fn try_bilateral3d_into<V, LOut>(
    vol: &V,
    out: &mut Grid3<f32, LOut>,
    run: &FilterRun,
) -> SfcResult<()>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    run.validate()?;
    if vol.dims() != out.dims() {
        return Err(SfcError::ShapeMismatch {
            what: "bilateral3d_into",
            expected: format!("output dims {:?}", vol.dims()),
            actual: format!("{:?}", out.dims()),
        });
    }
    drive_bilateral(
        vol,
        out,
        &run.params,
        run.pencil_axis,
        run.nthreads,
        Schedule::StaticRoundRobin,
        run.weight,
    );
    Ok(())
}

/// Bilateral-filter `vol` into `out` (same dimensions, any layouts).
///
/// # Panics
/// Panics on invalid configuration or mismatched dimensions; use
/// [`try_bilateral3d_into`] for untrusted inputs.
pub fn bilateral3d_into<V, LOut>(vol: &V, out: &mut Grid3<f32, LOut>, run: &FilterRun)
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    if let Err(e) = try_bilateral3d_into(vol, out, run) {
        panic!("{e}");
    }
}

/// Bilateral-filter into a freshly allocated grid of layout `LOut`,
/// validating configuration with typed errors.
pub fn try_bilateral3d<V, LOut>(vol: &V, run: &FilterRun) -> SfcResult<Grid3<f32, LOut>>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    let mut out = Grid3::<f32, LOut>::new(vol.dims());
    try_bilateral3d_into(vol, &mut out, run)?;
    Ok(out)
}

/// Bilateral-filter into a freshly allocated grid of layout `LOut`.
///
/// # Panics
/// Panics on invalid configuration; use [`try_bilateral3d`] for untrusted
/// inputs.
pub fn bilateral3d<V, LOut>(vol: &V, run: &FilterRun) -> Grid3<f32, LOut>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    match try_bilateral3d(vol, run) {
        Ok(g) => g,
        Err(e) => panic!("{e}"),
    }
}

/// Plain Gaussian convolution with the same pencil-parallel driver
/// (baseline kernel; ignores `params.sigma_range`).
pub fn convolve3d<V, LOut>(vol: &V, run: &FilterRun) -> Grid3<f32, LOut>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    let kernel = run.params.spatial_kernel();
    let mut out = Grid3::<f32, LOut>::new(vol.dims());
    drive(vol, &mut out, run, |i, j, k| {
        convolve_voxel(vol, &kernel, i, j, k)
    });
    out
}

/// Work-stealing-style bilateral filter over the same pencil decomposition,
/// scheduled dynamically (shared atomic cursor) instead of static
/// round-robin — an alternative used by the scheduling ablation bench.
/// Results are identical; only work assignment differs.
pub fn bilateral3d_dynamic<V, LOut>(
    vol: &V,
    params: &BilateralParams,
    pencil_axis: Axis,
    nthreads: usize,
) -> Grid3<f32, LOut>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    let mut out = Grid3::<f32, LOut>::new(vol.dims());
    drive_bilateral(
        vol,
        &mut out,
        params,
        pencil_axis,
        nthreads,
        Schedule::Dynamic,
        TapConfig::exact(),
    );
    out
}

/// Paper row label for a configuration, e.g. `"r3 pz zyx"`.
pub fn config_label(size: sfc_core::StencilSize, axis: Axis, order: sfc_core::StencilOrder) -> String {
    format!("{} p{} {}", size.label(), axis.name(), order.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilateral::bilateral_reference;
    use sfc_core::{ArrayOrder3, Dims3, StencilOrder, Tiled3, ZOrder3};

    fn test_volume(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect()
    }

    fn run(radius: usize, nthreads: usize, axis: Axis) -> FilterRun {
        FilterRun {
            params: BilateralParams {
                radius,
                sigma_spatial: 1.0,
                sigma_range: 0.15,
                order: StencilOrder::Xyz,
            },
            pencil_axis: axis,
            nthreads,
            weight: TapConfig::exact(),
        }
    }

    #[test]
    fn parallel_matches_reference() {
        let dims = Dims3::new(10, 8, 6);
        let values = test_volume(dims);
        let grid = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let r = run(1, 4, Axis::X);
        let out: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let reference = bilateral_reference(&values, dims, &r.params);
        for (got, want) in out.to_row_major().iter().zip(&reference) {
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn output_is_layout_invariant_bitwise() {
        // Same stencil iteration order + same input values => identical
        // float accumulation regardless of the storage layout.
        let dims = Dims3::new(9, 7, 5);
        let values = test_volume(dims);
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let t = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        let r = run(2, 3, Axis::Z);
        let oa: Grid3<f32, ArrayOrder3> = bilateral3d(&a, &r);
        let oz: Grid3<f32, ArrayOrder3> = bilateral3d(&z, &r);
        let ot: Grid3<f32, ArrayOrder3> = bilateral3d(&t, &r);
        assert_eq!(oa.to_row_major(), oz.to_row_major());
        assert_eq!(oa.to_row_major(), ot.to_row_major());
    }

    #[test]
    fn output_is_thread_count_invariant() {
        let dims = Dims3::new(8, 8, 8);
        let values = test_volume(dims);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let single: Grid3<f32, ZOrder3> = bilateral3d(&grid, &run(1, 1, Axis::X));
        let multi: Grid3<f32, ZOrder3> = bilateral3d(&grid, &run(1, 7, Axis::X));
        assert_eq!(single.to_row_major(), multi.to_row_major());
    }

    #[test]
    fn output_is_pencil_axis_invariant() {
        let dims = Dims3::new(6, 7, 8);
        let values = test_volume(dims);
        let grid = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let px: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &run(1, 3, Axis::X));
        let pz: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &run(1, 3, Axis::Z));
        assert_eq!(px.to_row_major(), pz.to_row_major());
    }

    #[test]
    fn dynamic_path_matches_static_path() {
        let dims = Dims3::new(8, 6, 4);
        let values = test_volume(dims);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let r = run(1, 4, Axis::X);
        let stat: Grid3<f32, ZOrder3> = bilateral3d(&grid, &r);
        let dyn_: Grid3<f32, ZOrder3> = bilateral3d_dynamic(&grid, &r.params, Axis::X, 4);
        assert_eq!(stat.to_row_major(), dyn_.to_row_major());
    }

    #[test]
    fn convolution_of_constant_is_constant() {
        let dims = Dims3::cube(6);
        let grid = Grid3::<f32, ArrayOrder3>::from_fn(dims, |_, _, _| 0.7);
        let out: Grid3<f32, ArrayOrder3> = convolve3d(&grid, &run(2, 2, Axis::Y));
        assert!(out.to_row_major().iter().all(|v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    fn config_labels_match_paper() {
        assert_eq!(
            config_label(sfc_core::StencilSize::R3, Axis::Z, StencilOrder::Zyx),
            "r3 pz zyx"
        );
    }
}
