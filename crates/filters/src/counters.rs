//! Simulated memory-system counters for the bilateral filter.
//!
//! Replays the exact per-thread pencil work split of the native parallel
//! driver through `sfc-memsim`, with software threads mapped onto simulated
//! cores the way the paper's platforms do (one thread per core on Ivy
//! Bridge; up to four threads sharing a core's private caches on the MIC,
//! modeled by interleaving their pencil streams round-robin).

use sfc_core::{pencil, pencil_count, Axis, Grid3, Layout3};
use sfc_harness::{items_for_thread, EventCounter, UnitCounters};
use sfc_memsim::{
    assign_threads_to_cores, interleave_round_robin, run_multicore, CoreSim, Platform,
    SimReport, TracedGrid,
};

use crate::bilateral::{bilateral_voxel, BilateralParams};

/// Process-wide count of NaN voxels the bilateral kernel has encountered
/// and excluded (photometric weight forced to 0). Monotonic; reset
/// explicitly between measurements. Shared [`UnitCounters`] sink batched
/// once per pencil; registered in the metrics plane as
/// `filters.nan_events`.
static NAN_EVENTS: EventCounter = EventCounter::new("filters.nan_events");

/// NaN voxels excluded by the bilateral kernel since the last
/// [`reset_nan_events`].
pub fn nan_events() -> u64 {
    NAN_EVENTS.total()
}

/// Reset the NaN event counter (call before a measured run).
pub fn reset_nan_events() {
    NAN_EVENTS.reset();
}

pub(crate) fn record_nan_events(n: u64) {
    NAN_EVENTS.record_unit(n);
}

/// Simulate the cache behaviour of a bilateral-filter run.
///
/// `nthreads` software threads process pencils along `pencil_axis` with the
/// same round-robin split as [`crate::parallel::bilateral3d`]. Input-volume
/// reads *and* output-volume writes are traced (the output uses the same
/// layout as the input, disjoint address range) — PAPI's total-access
/// counters include store traffic, and in hostile pencil orientations the
/// array-order output stream is a large part of the measured difference.
pub fn simulate_bilateral_counters<L: Layout3>(
    grid: &Grid3<f32, L>,
    params: &BilateralParams,
    pencil_axis: Axis,
    nthreads: usize,
    platform: &Platform,
) -> SimReport {
    let dims = grid.dims();
    let n_pencils = pencil_count(dims, pencil_axis);
    let cores = assign_threads_to_cores(nthreads, platform.cores);
    let kernel = params.spatial_kernel();
    let inv = params.inv_two_sigma_range_sq();

    run_multicore(
        &platform.hierarchy,
        cores.len(),
        true,
        |core_id, sim: &mut CoreSim| {
            // Voxel streams of each software thread hosted by this core,
            // interleaved round-robin at *voxel* granularity — hardware
            // threads share a core cycle-by-cycle, so their access streams
            // mix far finer than whole work items. (With one thread per
            // core this degenerates to the thread's natural order.)
            let streams: Vec<Vec<(usize, usize, usize)>> = cores[core_id]
                .iter()
                .map(|&tid| {
                    items_for_thread(n_pencils, nthreads, tid)
                        .flat_map(|pid| pencil(dims, pencil_axis, pid).iter().collect::<Vec<_>>())
                        .collect()
                })
                .collect();
            let work = interleave_round_robin(&streams);
            let traced = TracedGrid::at_zero(grid, sim);
            // Output buffer lives after the input in the simulated address
            // space, stored under the same layout (the paper's setup).
            let out_base = (grid.layout().storage_len() as u64 * 4).next_power_of_two();
            for (i, j, k) in work {
                let v = bilateral_voxel(&traced, &kernel, inv, i, j, k);
                std::hint::black_box(v);
                let out_idx = traced.index_of(i, j, k) as u64;
                traced.with_sim(|s| s.write(out_base + out_idx * 4, 4));
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{ArrayOrder3, Dims3, StencilOrder, ZOrder3};
    use sfc_memsim::platform;

    fn params() -> BilateralParams {
        BilateralParams {
            radius: 2,
            sigma_spatial: 1.0,
            sigma_range: 0.1,
            order: StencilOrder::Zyx,
        }
    }

    fn volume(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect()
    }

    #[test]
    fn read_counts_are_layout_independent() {
        // Both layouts perform the same number of scalar reads; only the
        // hit/miss split may differ.
        let dims = Dims3::cube(12);
        let values = volume(dims);
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let plat = platform::scaled(&platform::ivy_bridge(), 12);
        let p = params();
        let ra = simulate_bilateral_counters(&a, &p, Axis::Z, 4, &plat);
        let rz = simulate_bilateral_counters(&z, &p, Axis::Z, 4, &plat);
        assert_eq!(ra.total().reads, rz.total().reads);
        // 12³ voxels × 5³ stencil reads + one center read each.
        assert_eq!(ra.total().reads, (12u64 * 12 * 12) * (125 + 1));
    }

    #[test]
    fn hostile_order_hurts_array_order_more_than_zorder() {
        // The paper's core claim at small scale: with a z-innermost stencil
        // and z pencils, array order misses far more than Z-order.
        let dims = Dims3::cube(16);
        let values = volume(dims);
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let plat = platform::scaled(&platform::ivy_bridge(), 15);
        let p = params();
        let miss_a = simulate_bilateral_counters(&a, &p, Axis::Z, 2, &plat)
            .l3_total_cache_accesses();
        let miss_z = simulate_bilateral_counters(&z, &p, Axis::Z, 2, &plat)
            .l3_total_cache_accesses();
        assert!(
            miss_a > miss_z,
            "array-order misses ({miss_a}) should exceed z-order ({miss_z})"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let dims = Dims3::cube(10);
        let values = volume(dims);
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let plat = platform::scaled(&platform::mic_knc(), 12);
        let p = params();
        let r1 = simulate_bilateral_counters(&g, &p, Axis::X, 8, &plat);
        let r2 = simulate_bilateral_counters(&g, &p, Axis::X, 8, &plat);
        assert_eq!(r1.per_core, r2.per_core);
    }

    #[test]
    fn threads_share_cores_on_mic_style_platform() {
        let dims = Dims3::cube(8);
        let values = volume(dims);
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let mut plat = platform::scaled(&platform::mic_knc(), 12);
        plat.cores = 4;
        let r = simulate_bilateral_counters(&g, &params(), Axis::X, 8, &plat);
        assert_eq!(r.per_core.len(), 4, "8 threads fold onto 4 cores");
    }
}
