//! Central-difference gradient magnitude — a third structured-access
//! kernel (6-point stencil), included to show the layout machinery
//! generalizes beyond the two kernels the paper evaluates. Gradient
//! computation is the canonical preprocessing step for the volume
//! renderer's shading and for edge detection in analysis pipelines.

use sfc_core::{Grid3, Layout3, Volume3};

use crate::parallel::FilterRun;

/// Gradient magnitude at one voxel via central differences (clamped
/// boundary, unit voxel spacing).
pub fn gradient_voxel<V: Volume3>(vol: &V, i: usize, j: usize, k: usize) -> f32 {
    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
    let gx = (vol.get_clamped(ii + 1, jj, kk) - vol.get_clamped(ii - 1, jj, kk)) * 0.5;
    let gy = (vol.get_clamped(ii, jj + 1, kk) - vol.get_clamped(ii, jj - 1, kk)) * 0.5;
    let gz = (vol.get_clamped(ii, jj, kk + 1) - vol.get_clamped(ii, jj, kk - 1)) * 0.5;
    (gx * gx + gy * gy + gz * gz).sqrt()
}

/// Pencil-parallel gradient-magnitude field (same driver as the bilateral
/// filter; `run.params` is ignored except for its role in carrying the
/// pencil axis and thread count via `FilterRun`).
pub fn gradient3d<V, LOut>(vol: &V, run: &FilterRun) -> Grid3<f32, LOut>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    use sfc_core::{pencil, pencil_count};
    use sfc_harness::{run_items, Schedule};

    let dims = vol.dims();
    let mut out = Grid3::<f32, LOut>::new(dims);
    let out_layout = out.layout().clone();

    struct Slots(*mut f32);
    unsafe impl Sync for Slots {}
    let slots = Slots(out.storage_mut().as_mut_ptr());
    let slots = &slots;
    let n = pencil_count(dims, run.pencil_axis);
    run_items(run.nthreads, n, Schedule::StaticRoundRobin, |_tid, pid| {
        let p = pencil(dims, run.pencil_axis, pid);
        for (i, j, k) in p.iter() {
            let g = gradient_voxel(vol, i, j, k);
            // SAFETY: layout injective + pencils partition the domain.
            unsafe { *slots.0.add(out_layout.index(i, j, k)) = g };
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilateral::BilateralParams;
    use sfc_core::{ArrayOrder3, Axis, Dims3, FnVolume, StencilOrder, ZOrder3};

    fn run(nthreads: usize) -> FilterRun {
        FilterRun {
            params: BilateralParams {
                radius: 1,
                sigma_spatial: 1.0,
                sigma_range: 0.1,
                order: StencilOrder::Xyz,
            },
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads,
        }
    }

    #[test]
    fn constant_field_has_zero_gradient() {
        let vol = FnVolume::new(Dims3::cube(6), |_, _, _| 3.0);
        let g: sfc_core::Grid3<f32, ArrayOrder3> = gradient3d(&vol, &run(2));
        assert!(g.to_row_major().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn linear_ramp_has_unit_slope_in_interior() {
        let vol = FnVolume::new(Dims3::cube(8), |i, _, _| i as f32);
        let g = gradient_voxel(&vol, 4, 4, 4);
        assert!((g - 1.0).abs() < 1e-6);
        // Boundary uses one-sided clamp: half slope.
        let gb = gradient_voxel(&vol, 0, 4, 4);
        assert!((gb - 0.5).abs() < 1e-6);
    }

    #[test]
    fn diagonal_ramp_combines_components() {
        let vol = FnVolume::new(Dims3::cube(8), |i, j, k| (i + j + k) as f32);
        let g = gradient_voxel(&vol, 4, 4, 4);
        assert!((g - 3f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn layout_and_threads_invariant() {
        let dims = Dims3::new(9, 7, 5);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 97) as f32 / 97.0)
            .collect();
        let a = sfc_core::Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = sfc_core::Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let ga: sfc_core::Grid3<f32, ArrayOrder3> = gradient3d(&a, &run(1));
        let gz: sfc_core::Grid3<f32, ArrayOrder3> = gradient3d(&z, &run(5));
        assert_eq!(ga.to_row_major(), gz.to_row_major());
    }
}
