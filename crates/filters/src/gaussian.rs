//! Gaussian spatial weights and the plain-convolution baseline.
//!
//! The bilateral filter's geometric component `g(i, ī)` (paper Eq. 3) is a
//! Gaussian of the spatial distance between the center voxel and its
//! neighbor. Those weights depend only on the stencil offsets, so they are
//! precomputed once into a [`SpatialKernel`] whose entries are stored in
//! the configured stencil iteration order.

use sfc_core::{stencil_offsets, StencilOrder, Volume3};

/// Unnormalized Gaussian weight `exp(-d² / (2σ²))` of a squared distance.
#[inline]
pub fn gaussian_weight(d2: f32, sigma: f32) -> f32 {
    (-d2 / (2.0 * sigma * sigma)).exp()
}

/// Precomputed cubic stencil: offsets and their spatial Gaussian weights in
/// a fixed iteration order.
#[derive(Debug, Clone)]
pub struct SpatialKernel {
    radius: usize,
    offsets: Vec<(isize, isize, isize)>,
    weights: Vec<f32>,
    weight_sum: f32,
}

impl SpatialKernel {
    /// Build a `(2r+1)³` kernel with standard deviation `sigma_spatial`
    /// (in voxels), enumerated in `order`.
    pub fn new(radius: usize, sigma_spatial: f32, order: StencilOrder) -> Self {
        assert!(sigma_spatial > 0.0, "spatial sigma must be positive");
        let offsets = stencil_offsets(radius, order);
        let weights: Vec<f32> = offsets
            .iter()
            .map(|&(di, dj, dk)| {
                let d2 = (di * di + dj * dj + dk * dk) as f32;
                gaussian_weight(d2, sigma_spatial)
            })
            .collect();
        let weight_sum = weights.iter().sum();
        Self {
            radius,
            offsets,
            weights,
            weight_sum,
        }
    }

    /// Stencil radius in voxels.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Offsets in iteration order.
    #[inline]
    pub fn offsets(&self) -> &[(isize, isize, isize)] {
        &self.offsets
    }

    /// Weights matching [`offsets`](Self::offsets) element-wise.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Sum of all spatial weights (normalizer for plain convolution).
    #[inline]
    pub fn weight_sum(&self) -> f32 {
        self.weight_sum
    }
}

/// Plain Gaussian convolution of one voxel (no photometric term): the
/// baseline stencil kernel. Boundary rule: clamp to edge.
pub fn convolve_voxel<V: Volume3>(
    vol: &V,
    kernel: &SpatialKernel,
    i: usize,
    j: usize,
    k: usize,
) -> f32 {
    let d = vol.dims();
    let r = kernel.radius() as isize;
    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
    let interior = ii >= r
        && jj >= r
        && kk >= r
        && ii + r < d.nx as isize
        && jj + r < d.ny as isize
        && kk + r < d.nz as isize;
    let mut acc = 0.0f32;
    if interior {
        for (&(di, dj, dk), &w) in kernel.offsets().iter().zip(kernel.weights()) {
            let v = vol.get(
                (ii + di) as usize,
                (jj + dj) as usize,
                (kk + dk) as usize,
            );
            acc += w * v;
        }
    } else {
        for (&(di, dj, dk), &w) in kernel.offsets().iter().zip(kernel.weights()) {
            acc += w * vol.get_clamped(ii + di, jj + dj, kk + dk);
        }
    }
    acc / kernel.weight_sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Dims3, FnVolume, StencilOrder};

    #[test]
    fn weight_is_one_at_zero_distance() {
        assert_eq!(gaussian_weight(0.0, 2.0), 1.0);
        assert!(gaussian_weight(4.0, 2.0) < 1.0);
    }

    #[test]
    fn kernel_center_has_max_weight() {
        let k = SpatialKernel::new(2, 1.5, StencilOrder::Xyz);
        let center_pos = k
            .offsets()
            .iter()
            .position(|&o| o == (0, 0, 0))
            .expect("stencil contains its center");
        let wc = k.weights()[center_pos];
        assert!(k.weights().iter().all(|&w| w <= wc));
        assert_eq!(wc, 1.0);
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = SpatialKernel::new(1, 1.0, StencilOrder::Xyz);
        for (idx, &(di, dj, dk)) in k.offsets().iter().enumerate() {
            let mirrored = k
                .offsets()
                .iter()
                .position(|&o| o == (-di, -dj, -dk))
                .unwrap();
            assert_eq!(k.weights()[idx], k.weights()[mirrored]);
        }
    }

    #[test]
    fn convolving_constant_returns_constant() {
        let vol = FnVolume::new(Dims3::cube(8), |_, _, _| 3.25);
        let k = SpatialKernel::new(2, 1.0, StencilOrder::Xyz);
        for &(i, j, k_) in &[(0, 0, 0), (4, 4, 4), (7, 7, 7)] {
            let out = convolve_voxel(&vol, &k, i, j, k_);
            assert!((out - 3.25).abs() < 1e-5, "at ({i},{j},{k_}): {out}");
        }
    }

    #[test]
    fn convolution_smooths_an_impulse() {
        let vol = FnVolume::new(Dims3::cube(9), |i, j, k| {
            if (i, j, k) == (4, 4, 4) {
                1.0
            } else {
                0.0
            }
        });
        let k = SpatialKernel::new(1, 1.0, StencilOrder::Xyz);
        let center = convolve_voxel(&vol, &k, 4, 4, 4);
        let neighbor = convolve_voxel(&vol, &k, 5, 4, 4);
        assert!(center > neighbor && neighbor > 0.0);
        let far = convolve_voxel(&vol, &k, 8, 8, 8);
        assert_eq!(far, 0.0);
    }

    #[test]
    fn interior_and_boundary_paths_agree_where_both_valid() {
        // A voxel that is interior must give the same answer through the
        // clamped path; emulate by comparing against manual accumulation.
        let vol = FnVolume::new(Dims3::cube(8), |i, j, k| (i + 2 * j + 3 * k) as f32);
        let k = SpatialKernel::new(1, 2.0, StencilOrder::Zyx);
        let fast = convolve_voxel(&vol, &k, 4, 4, 4);
        let mut acc = 0.0;
        for (&(di, dj, dk), &w) in k.offsets().iter().zip(k.weights()) {
            acc += w * vol.get_clamped(4 + di, 4 + dj, 4 + dk);
        }
        let slow = acc / k.weight_sum();
        assert_eq!(fast, slow);
    }
}
