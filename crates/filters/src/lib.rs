//! # sfc-filters — the structured-access application kernel
//!
//! 3D bilateral filtering (paper §III-A): an anisotropic, edge-preserving
//! smoother whose stencil access pattern is *structured* — every output
//! voxel reads a fixed `(2r+1)³` neighborhood. The kernel is generic over
//! `sfc_core::Volume3`, so it runs unmodified over array-order, Z-order,
//! tiled, and Hilbert grids, and over `sfc-memsim`'s tracing wrapper.
//!
//! * [`gaussian`] — precomputed spatial kernels + plain-convolution
//!   baseline;
//! * [`bilateral`] — the per-voxel bilateral kernel and an independent
//!   reference implementation;
//! * [`parallel`] — pencil-parallel drivers (paper's static round-robin
//!   pencil assignment; plus a dynamic-schedule variant for the scheduling
//!   ablation);
//! * [`degraded`] — the graceful-degradation driver: supervised execution
//!   with partial-result recovery, typed defect maps, and a repair pass;
//! * [`fastmath`] — fast photometric-weight paths: exponent LUT,
//!   polynomial exp, runtime-dispatched SIMD tap loops behind the
//!   [`TapConfig`] knob (the exact scalar path stays the bitwise oracle);
//! * [`counters`] — simulated cache counters replaying the exact parallel
//!   work split.

#![warn(missing_docs)]

pub mod bilateral;
pub mod bilateral2d;
pub mod counters;
pub mod degraded;
pub mod fastmath;
pub mod gaussian;
pub mod gradient;
pub mod parallel;
pub(crate) mod pencil_gather;
pub mod separable;

pub use bilateral::{bilateral_reference, bilateral_voxel, BilateralParams};
pub use bilateral2d::{bilateral2d, bilateral2d_pixel, Bilateral2dParams};
pub use counters::simulate_bilateral_counters;
pub use degraded::{try_bilateral3d_degraded, try_bilateral3d_with_policy};
pub use fastmath::{detect_tier, SimdTier, TapConfig, WeightMode};
pub use sfc_harness::DegradedOutcome;
pub use gaussian::{convolve_voxel, gaussian_weight, SpatialKernel};
pub use gradient::{gradient3d, gradient_voxel};
pub use counters::{nan_events, reset_nan_events};
pub use parallel::{
    bilateral3d, bilateral3d_dynamic, bilateral3d_into, config_label, convolve3d,
    try_bilateral3d, try_bilateral3d_into, FilterRun,
};
pub use separable::{gaussian_separable3d, Kernel1D};
