//! Separable Gaussian convolution: three 1-D passes (x, then y, then z).
//!
//! A classic optimization of the dense Gaussian baseline — `O(3(2r+1))`
//! reads per voxel instead of `O((2r+1)³)` — and an instructive layout
//! case: each pass sweeps a *different* axis, so under array order one
//! pass is perfectly contiguous and another is maximally strided, while
//! under Z-order all three passes behave alike. (This is the multi-sweep
//! pattern that forces transposes in FFT-style pipelines.)

use sfc_core::{pencil, pencil_count, Axis, Dims3, Grid3, Layout3};
use sfc_harness::{run_items, Schedule};

/// Precomputed 1-D Gaussian taps (unnormalized; normalization divides by
/// the sum so clamped edges stay mean-preserving).
#[derive(Debug, Clone)]
pub struct Kernel1D {
    radius: usize,
    taps: Vec<f32>,
    sum: f32,
}

impl Kernel1D {
    /// Build `2r+1` taps with standard deviation `sigma`.
    pub fn new(radius: usize, sigma: f32) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        let taps: Vec<f32> = (-(radius as isize)..=radius as isize)
            .map(|d| (-(d * d) as f32 / (2.0 * sigma * sigma)).exp())
            .collect();
        let sum = taps.iter().sum();
        Self { radius, taps, sum }
    }

    /// Tap weights, centered.
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Kernel radius.
    pub fn radius(&self) -> usize {
        self.radius
    }
}

/// One 1-D convolution pass along `axis`, pencil-parallel, from `src`
/// into a new grid of the same layout.
fn pass<L: Layout3>(
    src: &Grid3<f32, L>,
    kernel: &Kernel1D,
    axis: Axis,
    nthreads: usize,
) -> Grid3<f32, L> {
    let dims: Dims3 = src.dims();
    let mut out = Grid3::<f32, L>::new(dims);
    let out_layout = out.layout().clone();
    struct Slots(*mut f32);
    unsafe impl Sync for Slots {}
    let slots = Slots(out.storage_mut().as_mut_ptr());
    let slots = &slots;
    let r = kernel.radius as isize;
    let n = pencil_count(dims, axis);
    run_items(nthreads, n, Schedule::StaticRoundRobin, |_tid, pid| {
        let p = pencil(dims, axis, pid);
        for (i, j, k) in p.iter() {
            let (ii, jj, kk) = (i as isize, j as isize, k as isize);
            let mut acc = 0.0f32;
            for (t, &w) in kernel.taps.iter().enumerate() {
                let d = t as isize - r;
                let v = match axis {
                    Axis::X => src.get_clamped(ii + d, jj, kk),
                    Axis::Y => src.get_clamped(ii, jj + d, kk),
                    Axis::Z => src.get_clamped(ii, jj, kk + d),
                };
                acc += w * v;
            }
            // SAFETY: layout injective + pencils partition the domain.
            unsafe { *slots.0.add(out_layout.index(i, j, k)) = acc / kernel.sum };
        }
    });
    out
}

/// Full separable Gaussian blur: x pass, y pass, z pass.
pub fn gaussian_separable3d<L: Layout3>(
    src: &Grid3<f32, L>,
    radius: usize,
    sigma: f32,
    nthreads: usize,
) -> Grid3<f32, L> {
    let kernel = Kernel1D::new(radius, sigma);
    let gx = pass(src, &kernel, Axis::X, nthreads);
    let gy = pass(&gx, &kernel, Axis::Y, nthreads);
    pass(&gy, &kernel, Axis::Z, nthreads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::{convolve_voxel, SpatialKernel};
    use sfc_core::{ArrayOrder3, StencilOrder, Tiled3, ZOrder3};

    fn noise(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect()
    }

    #[test]
    fn kernel_taps_symmetric_and_peaked() {
        let k = Kernel1D::new(3, 1.5);
        assert_eq!(k.taps().len(), 7);
        assert_eq!(k.taps()[0], k.taps()[6]);
        assert_eq!(k.taps()[3], 1.0);
        assert!(k.taps()[3] > k.taps()[2]);
    }

    #[test]
    fn constant_is_fixed_point() {
        let dims = Dims3::cube(8);
        let g = Grid3::<f32, ZOrder3>::from_fn(dims, |_, _, _| 0.3);
        let out = gaussian_separable3d(&g, 2, 1.0, 3);
        assert!(out.to_row_major().iter().all(|v| (v - 0.3).abs() < 1e-5));
    }

    #[test]
    fn matches_dense_convolution_in_the_interior() {
        // Separable == dense for the product-form Gaussian, away from
        // clamped boundaries (boundary normalization differs per pass).
        let dims = Dims3::cube(12);
        let values = noise(dims);
        let g = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let sep = gaussian_separable3d(&g, 2, 1.3, 2);
        let dense_kernel = SpatialKernel::new(2, 1.3, StencilOrder::Xyz);
        for k in 2..10 {
            for j in 2..10 {
                for i in 2..10 {
                    let d = convolve_voxel(&g, &dense_kernel, i, j, k);
                    let s = sep.get(i, j, k);
                    assert!(
                        (d - s).abs() < 1e-4,
                        "mismatch at ({i},{j},{k}): dense {d} vs separable {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn layout_invariant() {
        let dims = Dims3::new(9, 8, 7);
        let values = noise(dims);
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let t = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        let oa = gaussian_separable3d(&a, 1, 1.0, 1).to_row_major();
        let ot = gaussian_separable3d(&t, 1, 1.0, 4).to_row_major();
        for (x, y) in oa.iter().zip(&ot) {
            assert_eq!(x, y, "separable passes are layout-deterministic");
        }
    }

    #[test]
    fn smooths_noise() {
        let dims = Dims3::cube(16);
        let values = noise(dims);
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let out = gaussian_separable3d(&g, 2, 1.5, 2);
        let var = |v: &[f32]| {
            let m = v.iter().sum::<f32>() / v.len() as f32;
            v.iter().map(|x| (x - m).powi(2)).sum::<f32>() / v.len() as f32
        };
        assert!(var(&out.to_row_major()) < var(&values) * 0.5);
    }
}
