//! Fast photometric-weight evaluation: LUT / polynomial exp, SIMD tap loops.
//!
//! BENCH_baseline.json shows the r5 bilateral is *transcendental-bound*:
//! pencil-gather removed the index arithmetic, but every tap still pays a
//! libm `exp()` for the photometric weight, so the table layouts only
//! gained 1.06–1.15x at r5 (vs 1.26–1.32x at r1 where gathering
//! dominates). This module attacks the weight itself, behind an explicit
//! [`WeightMode`] knob so the exact path stays available as the oracle:
//!
//! * [`WeightMode::Exact`] — libm `exp()`, scalar, **bitwise-pinned**: the
//!   reference the layout-invariance and service tests assert against.
//!   Never vectorized (SIMD re-associates the accumulation).
//! * [`WeightMode::Lut`] — the photometric Gaussian `exp(-u)` sampled on
//!   `u = diff² / 2σ_r²` over `[0, 16]` in 4096 bins with linear
//!   interpolation. Indexing the *exponent* rather than the intensity
//!   difference makes one global table serve every `σ_r`. Interpolation
//!   error is `≤ h²/8 ≈ 2e-6` (`h = 16/4096`, `|d²/du² e^{-u}| ≤ 1`) and
//!   the clamped tail contributes `≤ e^{-16} ≈ 1.1e-7`, so per-weight
//!   error is bounded by ~2.1e-6 — asserted by this module's tests and
//!   swept end-to-end by `tests/fastmath_oracle.rs`.
//! * [`WeightMode::FastExp`] — degree-5 polynomial `exp` (the classic
//!   Cephes/sse_mathfun reduction: split off the power of two, evaluate a
//!   minimax polynomial on the ~[-0.35, 0.35] remainder), relative error
//!   ~1e-7. No table traffic, so it vectorizes without gathers — the
//!   fallback when the LUT's cache footprint hurts (tiny volumes) or on
//!   tiers without gather instructions.
//!
//! [`SimdTier`] selects the tap-loop body: `Scalar` everywhere,
//! `Sse2`/`Avx2` on x86_64 behind `is_x86_feature_detected!` (no compile-
//! time features, no new dependencies — `core::arch` is std). The SIMD
//! loops re-associate the weighted sum (8 partial accumulators), which is
//! why they are only reachable in the tolerance-bound modes: `Exact`
//! always runs the scalar loop. NaN taps are counted identically in every
//! mode/tier (the SIMD loops popcount the unordered-compare mask), and a
//! NaN *center* routes to the scalar geometric fallback in every mode, so
//! `nan_events` tallies are invariant across the whole matrix — pinned by
//! the oracle suite.

use std::sync::OnceLock;

/// How the photometric (range) weight `exp(-diff²/2σ_r²)` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// libm `exp()`, scalar — the bitwise-pinned reference.
    Exact,
    /// Interpolated lookup table over the quantized exponent.
    Lut,
    /// Degree-5 polynomial `exp` (no table traffic).
    FastExp,
}

/// Instruction tier for the interior tap loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable scalar loop (the only tier off x86_64).
    Scalar,
    /// 4-lane SSE2 (baseline on every x86_64; scalar element loads, no
    /// gather, so `Lut` on this tier runs the scalar loop).
    Sse2,
    /// 8-lane AVX2 with gathered taps and gathered LUT windows.
    Avx2,
}

impl SimdTier {
    /// Parse a tier name (`scalar`/`sse2`/`avx2`), as accepted by the
    /// bench `--simd` flag and the `SFC_SIMD` override.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(Self::Scalar),
            "sse2" => Some(Self::Sse2),
            "avx2" => Some(Self::Avx2),
            _ => None,
        }
    }

    /// Short label for bench JSON notes.
    pub fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Sse2 => "sse2",
            Self::Avx2 => "avx2",
        }
    }
}

impl WeightMode {
    /// Parse a mode name (`exact`/`lut`/`fastexp`), as accepted by the
    /// bench `--weight` flag and the `SFC_WEIGHT_MODE` override.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(Self::Exact),
            "lut" => Some(Self::Lut),
            "fastexp" => Some(Self::FastExp),
            _ => None,
        }
    }

    /// Short label for bench JSON notes.
    pub fn name(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Lut => "lut",
            Self::FastExp => "fastexp",
        }
    }
}

/// The widest tier the running CPU supports.
pub fn detect_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdTier::Avx2;
        }
        // SSE2 is architectural on x86_64, but keep the runtime check so
        // the dispatch story is uniform.
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdTier::Sse2;
        }
    }
    SimdTier::Scalar
}

/// Weight-evaluation configuration carried by
/// [`FilterRun`](crate::FilterRun): a mode plus the tap-loop tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapConfig {
    /// Photometric weight evaluation.
    pub mode: WeightMode,
    /// Tap-loop instruction tier (ignored — forced scalar — for `Exact`).
    pub tier: SimdTier,
}

impl TapConfig {
    /// The bitwise-pinned reference configuration: exact weights, scalar
    /// loop. This is the default everywhere outputs are contractually
    /// reproducible (the service, the layout-invariance tests).
    pub fn exact() -> Self {
        Self {
            mode: WeightMode::Exact,
            tier: SimdTier::Scalar,
        }
    }

    /// The fastest tolerance-bound configuration for this machine: LUT
    /// weights on the widest detected tier.
    pub fn fast() -> Self {
        Self {
            mode: WeightMode::Lut,
            tier: detect_tier(),
        }
    }

    /// `mode` on the widest detected tier.
    pub fn with_mode(mode: WeightMode) -> Self {
        Self {
            mode,
            tier: detect_tier(),
        }
    }

    /// Clamp the requested tier to what the CPU supports (a forced
    /// `--simd avx2` on a non-AVX2 machine silently degrades rather than
    /// faulting).
    pub fn clamped(mut self) -> Self {
        self.tier = self.tier.min(detect_tier());
        self
    }
}

impl Default for TapConfig {
    fn default() -> Self {
        Self::exact()
    }
}

// ---------------------------------------------------------------------------
// Photometric LUT
// ---------------------------------------------------------------------------

/// LUT bins over the exponent domain `[0, LUT_UMAX]`.
pub(crate) const LUT_LEN: usize = 4096;
/// Exponent clamp: `exp(-16) ≈ 1.1e-7` is below the interpolation error,
/// so larger exponents saturate to the last entry.
pub(crate) const LUT_UMAX: f32 = 16.0;
/// `u → bin` scale.
pub(crate) const LUT_SCALE: f32 = LUT_LEN as f32 / LUT_UMAX;

/// The global photometric table: `lut[i] = exp(-i / LUT_SCALE)`, one
/// extra entry so interpolation may read `i + 1` at the clamp.
pub(crate) fn lut() -> &'static [f32] {
    static LUT: OnceLock<Vec<f32>> = OnceLock::new();
    LUT.get_or_init(|| {
        (0..=LUT_LEN)
            .map(|i| (-(i as f32) / LUT_SCALE).exp())
            .collect()
    })
}

/// `exp(-u)` for `u ≥ 0` via the interpolated table. `u` may be `+inf`
/// (huge intensity difference): it clamps to the tail. Must not be NaN.
#[inline]
pub fn exp_neg_lut(u: f32) -> f32 {
    let t = lut();
    let s = (u * LUT_SCALE).min((LUT_LEN - 1) as f32);
    let i = s as usize; // truncation; s ∈ [0, LUT_LEN-1]
    let frac = s - i as f32;
    let a = t[i];
    let b = t[i + 1];
    a + (b - a) * frac
}

/// `exp(-u)` for `u ≥ 0` via the Cephes/sse_mathfun degree-5 polynomial.
/// Relative error ≤ ~2e-7 over the whole domain; underflows to 0 past the
/// f32 exponent range.
#[inline]
pub fn exp_neg_poly(u: f32) -> f32 {
    // Work on x = -u, clamped to the f32-representable range.
    let x = (-u).max(-87.336_54);
    // Split x = n·ln2 + r with n = round(x/ln2), r ∈ [-ln2/2, ln2/2],
    // using the Cody–Waite two-constant ln2 so r stays accurate.
    let fx = (x * std::f32::consts::LOG2_E + 0.5).floor();
    let r = x - fx * 0.693_359_4 - fx * -2.121_944_4e-4;
    let z = r * r;
    let mut y = 1.987_569_1e-4f32;
    y = y * r + 1.398_199_9e-3;
    y = y * r + 8.333_452e-3;
    y = y * r + 4.166_579_6e-2;
    y = y * r + 1.666_666_5e-1;
    y = y * r + 5.000_000_3e-1;
    let y = y * z + r + 1.0;
    // Scale by 2^n through the exponent bits.
    let n = fx as i32;
    let two_n = f32::from_bits(((n + 127) << 23) as u32);
    y * two_n
}

/// The photometric weight for intensity difference `diff` under `mode`.
/// `diff` must be finite (NaN taps are excluded before weighting).
#[inline]
pub(crate) fn photometric_weight(diff: f32, inv_2sr2: f32, mode: WeightMode) -> f32 {
    let u = (diff * diff) * inv_2sr2;
    match mode {
        WeightMode::Exact => (-u).exp(),
        WeightMode::Lut => exp_neg_lut(u),
        WeightMode::FastExp => exp_neg_poly(u),
    }
}

// ---------------------------------------------------------------------------
// Interior tap loops
// ---------------------------------------------------------------------------

/// Run the interior bilateral tap loop over gathered scratch.
///
/// `bases[t] + shift` indexes tap `t`'s sample for the current voxel
/// (`shift = a - radius`, always in range for an interior voxel);
/// `weights[t]` is the geometric weight. Returns the filtered value and
/// the NaN-tap count (center pre-counted by the caller’s convention:
/// this function counts *taps* only, plus the center via `center_nan`
/// exactly like the exact-path loops).
///
/// Every mode/tier excludes NaN taps from the average with identical
/// tallies; a NaN center takes the scalar geometric branch (no `exp` at
/// all), so its output is bitwise-identical across the whole matrix.
pub(crate) fn tap_run(
    scratch: &[f32],
    bases: &[i32],
    weights: &[f32],
    shift: i32,
    center: f32,
    inv_2sr2: f32,
    cfg: TapConfig,
) -> (f32, u64) {
    if center.is_nan() {
        return tap_run_geometric(scratch, bases, weights, shift);
    }
    #[cfg(target_arch = "x86_64")]
    {
        match (cfg.mode, cfg.tier) {
            (WeightMode::Lut, SimdTier::Avx2) => {
                // SAFETY: tier came from `detect_tier()`/`clamped()`, so
                // AVX2 is present.
                return unsafe {
                    x86::tap_run_avx2(scratch, bases, weights, shift, center, inv_2sr2, true)
                };
            }
            (WeightMode::FastExp, SimdTier::Avx2) => {
                // SAFETY: as above.
                return unsafe {
                    x86::tap_run_avx2(scratch, bases, weights, shift, center, inv_2sr2, false)
                };
            }
            (WeightMode::FastExp, SimdTier::Sse2) => {
                // SAFETY: SSE2 is architectural on x86_64.
                return unsafe {
                    x86::tap_run_sse2_poly(scratch, bases, weights, shift, center, inv_2sr2)
                };
            }
            // `Lut` has no SSE2 gather: run the scalar LUT loop.
            _ => {}
        }
    }
    tap_run_scalar(scratch, bases, weights, shift, center, inv_2sr2, cfg.mode)
}

/// Scalar tap loop, weight mode selectable. With `WeightMode::Exact` this
/// is operation-for-operation the pencil-gather interior loop.
fn tap_run_scalar(
    scratch: &[f32],
    bases: &[i32],
    weights: &[f32],
    shift: i32,
    center: f32,
    inv_2sr2: f32,
    mode: WeightMode,
) -> (f32, u64) {
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    let mut nan_seen = 0u64;
    for (&base, &wg) in bases.iter().zip(weights) {
        let v = scratch[(base + shift) as usize];
        if v.is_nan() {
            nan_seen += 1;
            continue;
        }
        let w = wg * photometric_weight(v - center, inv_2sr2, mode);
        acc += w * v;
        wsum += w;
    }
    let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
    (value, nan_seen)
}

/// Geometric-only fallback for a NaN center (the photometric difference
/// is undefined): identical to the exact path's center-NaN branch in
/// every mode/tier, which keeps those voxels bitwise-stable and the NaN
/// tallies invariant.
fn tap_run_geometric(scratch: &[f32], bases: &[i32], weights: &[f32], shift: i32) -> (f32, u64) {
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    let mut nan_seen = 0u64;
    for (&base, &wg) in bases.iter().zip(weights) {
        let v = scratch[(base + shift) as usize];
        if v.is_nan() {
            nan_seen += 1;
            continue;
        }
        acc += wg * v;
        wsum += wg;
    }
    let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
    (value, nan_seen)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86_64 tap-loop bodies. All functions are `#[target_feature]` and
    //! must only be reached through `tap_run`'s runtime dispatch.
    //!
    //! Lane discipline shared by both kernels:
    //! * taps are processed 8 (AVX2) or 4 (SSE2) at a time in kernel
    //!   order, remainder handled by the scalar loop — so the *set* of
    //!   taps is identical to scalar, only the accumulation order differs
    //!   (which is why `Exact` never lands here);
    //! * NaN lanes are found with an ordered self-compare, counted by
    //!   popcounting the movemask (same tally a scalar `is_nan` loop
    //!   produces), then zeroed in both the value and the weight so they
    //!   contribute nothing to either accumulator.

    use super::{exp_neg_lut, exp_neg_poly, lut, LUT_LEN, LUT_SCALE};
    use std::arch::x86_64::*;

    /// AVX2 interior loop; `use_lut` selects gathered-LUT weights vs the
    /// 8-lane polynomial.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tap_run_avx2(
        scratch: &[f32],
        bases: &[i32],
        weights: &[f32],
        shift: i32,
        center: f32,
        inv_2sr2: f32,
        use_lut: bool,
    ) -> (f32, u64) {
        let n = bases.len();
        let centerv = _mm256_set1_ps(center);
        let invv = _mm256_set1_ps(inv_2sr2);
        let shiftv = _mm256_set1_epi32(shift);
        let mut accv = _mm256_setzero_ps();
        let mut wsumv = _mm256_setzero_ps();
        let mut nan_seen = 0u64;
        let sp = scratch.as_ptr();
        let lp = lut().as_ptr();
        let scalev = _mm256_set1_ps(LUT_SCALE);
        let clampv = _mm256_set1_ps((LUT_LEN - 1) as f32);
        let mut t = 0usize;
        while t + 8 <= n {
            let idx = _mm256_add_epi32(
                _mm256_loadu_si256(bases.as_ptr().add(t).cast()),
                shiftv,
            );
            let v = _mm256_i32gather_ps::<4>(sp, idx);
            // Ordered self-compare: lane is all-ones iff not NaN.
            let ok = _mm256_cmp_ps::<_CMP_ORD_Q>(v, v);
            nan_seen += u64::from((!_mm256_movemask_ps(ok) & 0xff).count_ones());
            let v = _mm256_and_ps(v, ok);
            let wg = _mm256_loadu_ps(weights.as_ptr().add(t));
            let diff = _mm256_sub_ps(v, centerv);
            let u = _mm256_mul_ps(_mm256_mul_ps(diff, diff), invv);
            let ew = if use_lut {
                let s = _mm256_min_ps(_mm256_mul_ps(u, scalev), clampv);
                let i0 = _mm256_cvttps_epi32(s);
                let frac = _mm256_sub_ps(s, _mm256_cvtepi32_ps(i0));
                let a = _mm256_i32gather_ps::<4>(lp, i0);
                let b = _mm256_i32gather_ps::<4>(lp, _mm256_add_epi32(i0, _mm256_set1_epi32(1)));
                _mm256_add_ps(a, _mm256_mul_ps(_mm256_sub_ps(b, a), frac))
            } else {
                exp256_neg(u)
            };
            let w = _mm256_and_ps(_mm256_mul_ps(wg, ew), ok);
            accv = _mm256_add_ps(accv, _mm256_mul_ps(w, v));
            wsumv = _mm256_add_ps(wsumv, w);
            t += 8;
        }
        let mut acc = hsum256(accv);
        let mut wsum = hsum256(wsumv);
        // Remainder taps: scalar, same weight function as the lanes.
        while t < n {
            let v = scratch[(bases[t] + shift) as usize];
            if v.is_nan() {
                nan_seen += 1;
                t += 1;
                continue;
            }
            let diff = v - center;
            let u = diff * diff * inv_2sr2;
            let ew = if use_lut { exp_neg_lut(u) } else { exp_neg_poly(u) };
            let w = weights[t] * ew;
            acc += w * v;
            wsum += w;
            t += 1;
        }
        let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
        (value, nan_seen)
    }

    /// SSE2 interior loop, polynomial weights (no gather on this tier:
    /// taps are loaded lane-by-lane, the arithmetic is 4-wide).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn tap_run_sse2_poly(
        scratch: &[f32],
        bases: &[i32],
        weights: &[f32],
        shift: i32,
        center: f32,
        inv_2sr2: f32,
    ) -> (f32, u64) {
        let n = bases.len();
        let centerv = _mm_set1_ps(center);
        let invv = _mm_set1_ps(inv_2sr2);
        let mut accv = _mm_setzero_ps();
        let mut wsumv = _mm_setzero_ps();
        let mut nan_seen = 0u64;
        let mut t = 0usize;
        while t + 4 <= n {
            let v = _mm_set_ps(
                scratch[(bases[t + 3] + shift) as usize],
                scratch[(bases[t + 2] + shift) as usize],
                scratch[(bases[t + 1] + shift) as usize],
                scratch[(bases[t] + shift) as usize],
            );
            let ok = _mm_cmpord_ps(v, v);
            nan_seen += u64::from((!_mm_movemask_ps(ok) & 0xf).count_ones());
            let v = _mm_and_ps(v, ok);
            let wg = _mm_loadu_ps(weights.as_ptr().add(t));
            let diff = _mm_sub_ps(v, centerv);
            let u = _mm_mul_ps(_mm_mul_ps(diff, diff), invv);
            let w = _mm_and_ps(_mm_mul_ps(wg, exp128_neg(u)), ok);
            accv = _mm_add_ps(accv, _mm_mul_ps(w, v));
            wsumv = _mm_add_ps(wsumv, w);
            t += 4;
        }
        let mut acc = hsum128(accv);
        let mut wsum = hsum128(wsumv);
        while t < n {
            let v = scratch[(bases[t] + shift) as usize];
            if v.is_nan() {
                nan_seen += 1;
                t += 1;
                continue;
            }
            let diff = v - center;
            let w = weights[t] * exp_neg_poly(diff * diff * inv_2sr2);
            acc += w * v;
            wsum += w;
            t += 1;
        }
        let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
        (value, nan_seen)
    }

    /// 8-lane `exp(-u)` for `u ≥ 0`: the same Cephes reduction as
    /// [`exp_neg_poly`], vectorized.
    #[target_feature(enable = "avx2")]
    unsafe fn exp256_neg(u: __m256) -> __m256 {
        let x = _mm256_max_ps(
            _mm256_sub_ps(_mm256_setzero_ps(), u),
            _mm256_set1_ps(-87.336_54),
        );
        let fx = _mm256_floor_ps(_mm256_add_ps(
            _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E)),
            _mm256_set1_ps(0.5),
        ));
        let r = _mm256_sub_ps(x, _mm256_mul_ps(fx, _mm256_set1_ps(0.693_359_4)));
        let r = _mm256_sub_ps(r, _mm256_mul_ps(fx, _mm256_set1_ps(-2.121_944_4e-4)));
        let z = _mm256_mul_ps(r, r);
        let mut y = _mm256_set1_ps(1.987_569_1e-4);
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(1.398_199_9e-3));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(8.333_452e-3));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(4.166_579_6e-2));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(1.666_666_5e-1));
        y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(5.000_000_3e-1));
        let y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, z), r), _mm256_set1_ps(1.0));
        let n = _mm256_cvttps_epi32(fx);
        let two_n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, two_n)
    }

    /// 4-lane `exp(-u)` for `u ≥ 0` (SSE2 only: `floor` built from the
    /// truncating convert, valid because `x/ln2 + 0.5 ≥ -126.9` here and
    /// the truncation adjustment handles the negative direction).
    #[target_feature(enable = "sse2")]
    unsafe fn exp128_neg(u: __m128) -> __m128 {
        let x = _mm_max_ps(_mm_sub_ps(_mm_setzero_ps(), u), _mm_set1_ps(-87.336_54));
        let s = _mm_add_ps(
            _mm_mul_ps(x, _mm_set1_ps(std::f32::consts::LOG2_E)),
            _mm_set1_ps(0.5),
        );
        // floor(s) for possibly-negative s without SSE4.1: truncate, then
        // subtract 1 where truncation rounded up.
        let tr = _mm_cvtepi32_ps(_mm_cvttps_epi32(s));
        let fx = _mm_sub_ps(tr, _mm_and_ps(_mm_cmpgt_ps(tr, s), _mm_set1_ps(1.0)));
        let r = _mm_sub_ps(x, _mm_mul_ps(fx, _mm_set1_ps(0.693_359_4)));
        let r = _mm_sub_ps(r, _mm_mul_ps(fx, _mm_set1_ps(-2.121_944_4e-4)));
        let z = _mm_mul_ps(r, r);
        let mut y = _mm_set1_ps(1.987_569_1e-4);
        y = _mm_add_ps(_mm_mul_ps(y, r), _mm_set1_ps(1.398_199_9e-3));
        y = _mm_add_ps(_mm_mul_ps(y, r), _mm_set1_ps(8.333_452e-3));
        y = _mm_add_ps(_mm_mul_ps(y, r), _mm_set1_ps(4.166_579_6e-2));
        y = _mm_add_ps(_mm_mul_ps(y, r), _mm_set1_ps(1.666_666_5e-1));
        y = _mm_add_ps(_mm_mul_ps(y, r), _mm_set1_ps(5.000_000_3e-1));
        let y = _mm_add_ps(_mm_add_ps(_mm_mul_ps(y, z), r), _mm_set1_ps(1.0));
        let n = _mm_cvttps_epi32(fx);
        let two_n = _mm_castsi128_ps(_mm_slli_epi32::<23>(_mm_add_epi32(n, _mm_set1_epi32(127))));
        _mm_mul_ps(y, two_n)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        hsum128(_mm_add_ps(lo, hi))
    }

    #[target_feature(enable = "sse2")]
    unsafe fn hsum128(v: __m128) -> f32 {
        let shuf = _mm_shuffle_ps::<0b00_00_11_10>(v, v);
        let sums = _mm_add_ps(v, shuf);
        let shuf2 = _mm_shuffle_ps::<0b00_00_00_01>(sums, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_exp_within_bound() {
        // Dense sweep across the table domain plus the clamped tail.
        let mut max_err = 0.0f32;
        for i in 0..200_000 {
            let u = i as f32 * (LUT_UMAX * 1.5 / 200_000.0);
            let err = (exp_neg_lut(u) - (-u).exp()).abs();
            max_err = max_err.max(err);
        }
        assert!(max_err <= 2.5e-6, "LUT max abs error {max_err}");
        assert_eq!(exp_neg_lut(f32::INFINITY), lut()[LUT_LEN - 1]);
    }

    #[test]
    fn poly_matches_exp_within_bound() {
        let mut max_rel = 0.0f32;
        for i in 0..200_000 {
            let u = i as f32 * (40.0 / 200_000.0);
            let want = (-u).exp();
            let got = exp_neg_poly(u);
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel <= 5e-7, "poly max rel error {max_rel}");
        // Saturated inputs underflow cleanly instead of wrapping.
        assert!(exp_neg_poly(1e10) >= 0.0);
        assert!(exp_neg_poly(1e10) < 1e-30);
        assert!(exp_neg_poly(f32::INFINITY) < 1e-30);
    }

    #[test]
    fn exact_mode_uses_libm_exp() {
        for diff in [0.0f32, 0.01, -0.3, 2.5] {
            let inv = 1.0 / (2.0 * 0.1 * 0.1);
            let want = (-(diff * diff) * inv).exp();
            assert_eq!(
                photometric_weight(diff, inv, WeightMode::Exact).to_bits(),
                want.to_bits()
            );
        }
    }

    #[test]
    fn parse_roundtrips() {
        for m in [WeightMode::Exact, WeightMode::Lut, WeightMode::FastExp] {
            assert_eq!(WeightMode::parse(m.name()), Some(m));
        }
        for t in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
            assert_eq!(SimdTier::parse(t.name()), Some(t));
        }
        assert_eq!(WeightMode::parse("nope"), None);
        assert_eq!(SimdTier::parse(""), None);
    }

    #[test]
    fn clamped_never_exceeds_detected() {
        let cfg = TapConfig {
            mode: WeightMode::Lut,
            tier: SimdTier::Avx2,
        }
        .clamped();
        assert!(cfg.tier <= detect_tier());
    }

    /// Every (mode, tier) pair must agree with the scalar exact loop
    /// within the documented tolerance and count NaN taps identically.
    #[test]
    fn tap_run_agrees_across_tiers() {
        let n = 127usize; // odd: exercises every remainder path
        let scratch: Vec<f32> = (0..n + 64)
            .map(|i| {
                if i % 37 == 5 {
                    f32::NAN
                } else {
                    ((i * 2654435761) % 997) as f32 / 997.0
                }
            })
            .collect();
        let bases: Vec<i32> = (0..n as i32).collect();
        let weights: Vec<f32> = (0..n).map(|i| 1.0 / (1.0 + i as f32 * 0.01)).collect();
        let inv = 1.0 / (2.0 * 0.12 * 0.12);
        for center in [0.41f32, f32::NAN] {
            let (want, want_nan) = tap_run(
                &scratch,
                &bases,
                &weights,
                7,
                center,
                inv,
                TapConfig::exact(),
            );
            for mode in [WeightMode::Lut, WeightMode::FastExp] {
                for tier in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
                    let cfg = TapConfig { mode, tier }.clamped();
                    let (got, got_nan) =
                        tap_run(&scratch, &bases, &weights, 7, center, inv, cfg);
                    assert_eq!(got_nan, want_nan, "{mode:?}/{tier:?} NaN tally");
                    if center.is_nan() {
                        assert_eq!(got.to_bits(), want.to_bits(), "{mode:?}/{tier:?} NaN center");
                    } else {
                        assert!(
                            (got - want).abs() <= 1e-4,
                            "{mode:?}/{tier:?}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;

    #[test]
    #[ignore]
    fn time_tap_run_tiers() {
        let n = 1331usize;
        let na = 64usize;
        let scratch: Vec<f32> = (0..n * 4).map(|i| (i % 97) as f32 / 97.0).collect();
        let bases: Vec<i32> = (0..n).map(|i| (i * 3 % (scratch.len() - na)) as i32).collect();
        let weights: Vec<f32> = (0..n).map(|i| 1.0 / (1.0 + i as f32)).collect();
        let rounds = 20_000u32;
        for (label, cfg) in [
            ("exact/scalar", TapConfig::exact()),
            ("lut/scalar", TapConfig { mode: WeightMode::Lut, tier: SimdTier::Scalar }),
            ("fastexp/scalar", TapConfig { mode: WeightMode::FastExp, tier: SimdTier::Scalar }),
            ("fastexp/sse2", TapConfig { mode: WeightMode::FastExp, tier: SimdTier::Sse2 }),
            ("lut/avx2", TapConfig { mode: WeightMode::Lut, tier: SimdTier::Avx2 }),
            ("fastexp/avx2", TapConfig { mode: WeightMode::FastExp, tier: SimdTier::Avx2 }),
        ] {
            let t = std::time::Instant::now();
            let mut acc = 0.0f32;
            for r in 0..rounds {
                let (v, _) = tap_run(&scratch, &bases, &weights, (r % na as u32) as i32, 0.41, 50.0, cfg);
                acc += v;
            }
            let dt = t.elapsed().as_secs_f64();
            let ns_per_tap = dt * 1e9 / (rounds as f64 * n as f64);
            eprintln!("{label}: {ns_per_tap:.2} ns/tap (acc {acc})");
        }
    }
}
