//! Graceful-degradation bilateral driver: partial results + typed defects.
//!
//! The plain parallel drivers ([`crate::parallel`]) abort the whole run
//! when any pencil fails. For long sweeps that is the wrong trade: one
//! poisoned pencil out of thousands should cost one pencil, not the run.
//! [`try_bilateral3d_degraded`] instead:
//!
//! 1. executes the pencil decomposition under the supervised pool
//!    (panic isolation, watchdog deadlines with cooperative cancellation,
//!    bounded retries), **buffering** each pencil and committing it to the
//!    output grid only after its cancel token is checked — an abandoned
//!    attempt never leaves a half-written pencil;
//! 2. folds the supervised failures into a typed
//!    [`DefectMap`](sfc_harness::DefectMap) over pencil ids;
//! 3. runs a post-run validation scan (non-finite + optional plausible
//!    output range) over every pencil, feeding the same map;
//! 4. re-executes every defective pencil single-threaded with fault
//!    injection disabled (the repair pass), rescans it, and marks it
//!    repaired when clean.
//!
//! The kernel is deterministic, so a repaired pencil is bitwise identical
//! to what a fault-free run would have produced: a run whose map ends
//! [`DefectMap::is_whole`] has *exactly* the fault-free output.

use sfc_core::{pencil, pencil_count, Grid3, Layout3, SfcError, SfcResult, Volume3};
use sfc_harness::{
    run_items_supervised_cancellable, scan_unit, DefectMap, DegradedOutcome, FaultPlan,
    SupervisorConfig,
};

use crate::parallel::FilterRun;
use crate::pencil_gather::{bilateral_pencil, GatherPlan};

/// Wrapper making disjoint raw writes shareable across worker threads.
struct Slots(*mut f32);
unsafe impl Sync for Slots {}

/// Poison a computed pencil the way [`sfc_harness::FaultKind::CorruptOutput`]
/// prescribes: alternating non-finite and absurd-but-finite values, so both
/// the NaN and the range arms of the validation scan are exercised.
fn poison(buf: &mut [f32]) {
    for (t, v) in buf.iter_mut().enumerate() {
        *v = if t % 2 == 0 { f32::NAN } else { 1e30 };
    }
}

/// Position of a voxel along its pencil's axis ([`Pencil::coords`]'
/// inverse for the `t` coordinate — pencils span the full axis extent).
#[inline]
fn along(axis: sfc_core::Axis, i: usize, j: usize, k: usize) -> usize {
    match axis {
        sfc_core::Axis::X => i,
        sfc_core::Axis::Y => j,
        sfc_core::Axis::Z => k,
    }
}

/// Compute one pencil into a dense buffer indexed by along-axis position
/// (the emission order of `bilateral_pencil` interleaves caps and interior,
/// so sequential pushes would scramble coordinates). Returns `false` if
/// `keep_going` aborted the pencil.
fn pencil_into_buf<V: Volume3>(
    vol: &V,
    kernel: &crate::gaussian::SpatialKernel,
    inv: f32,
    plan: &GatherPlan,
    p: &sfc_core::Pencil,
    buf: &mut Vec<f32>,
    mut keep_going: impl FnMut() -> bool,
) -> bool {
    buf.clear();
    buf.resize(p.len, 0.0);
    bilateral_pencil(vol, kernel, inv, plan, p, |i, j, k, v| {
        buf[along(p.axis, i, j, k)] = v;
        keep_going()
    })
}

/// Bilateral-filter `vol` into `out` under the supervised pool, returning
/// partial output plus a typed [`DefectMap`] instead of failing the run.
///
/// `faults` scripts injected failures (pass [`FaultPlan::none`] for
/// production); `output_range` is the optional inclusive plausibility
/// interval the validation scan enforces on finite output values. Errors
/// are returned only for invalid *configuration* — execution failures
/// land in the outcome, never abort the run.
pub fn try_bilateral3d_degraded<V, LOut>(
    vol: &V,
    out: &mut Grid3<f32, LOut>,
    run: &FilterRun,
    cfg: &SupervisorConfig,
    faults: &FaultPlan,
    output_range: Option<(f32, f32)>,
) -> SfcResult<DegradedOutcome>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    run.validate()?;
    if vol.dims() != out.dims() {
        return Err(SfcError::ShapeMismatch {
            what: "bilateral3d_degraded",
            expected: format!("output dims {:?}", vol.dims()),
            actual: format!("{:?}", out.dims()),
        });
    }
    let dims = vol.dims();
    let axis = run.pencil_axis;
    let n_pencils = pencil_count(dims, axis);
    let kernel = run.params.spatial_kernel();
    let inv = run.params.inv_two_sigma_range_sq();
    let plan = GatherPlan::new(&kernel, dims, axis);
    // Phase 1: supervised execution with buffered per-pencil commit. The
    // raw output pointer lives only for this phase; the scan and repair
    // phases below use the safe accessors.
    let report = {
        let out_layout = out.layout().clone();
        let slots = Slots(out.storage_mut().as_mut_ptr());
        let slots = &slots;
        run_items_supervised_cancellable(cfg, n_pencils, |_tid, pid, token| {
            faults.fire_cancellable(pid, token)?;
            let p = pencil(dims, axis, pid);
            let mut buf = Vec::new();
            let done = pencil_into_buf(vol, &kernel, inv, &plan, &p, &mut buf, || {
                !token.is_cancelled()
            });
            if !done {
                return Err(SfcError::Cancelled { item: pid });
            }
            token.bail(pid)?;
            if faults.corrupts(pid) {
                poison(&mut buf);
            }
            for (t, &v) in buf.iter().enumerate() {
                let (i, j, k) = p.coords(t);
                let idx = out_layout.index(i, j, k);
                // SAFETY: the layout is injective over the logical domain
                // and pencils partition it; concurrent attempts at the
                // *same* pencil write identical bytes (deterministic
                // kernel), so the race between an abandoned straggler and
                // its retry is benign; `idx < storage_len` by the layout
                // contract.
                unsafe { *slots.0.add(idx) = v };
            }
            Ok(())
        })
    };

    // Phase 2: typed defects from execution failures + validation scan.
    let mut defects = DefectMap::from_run_report("pencil", n_pencils, &report);
    let failed: Vec<usize> = defects.units();
    for pid in 0..n_pencils {
        if failed.binary_search(&pid).is_ok() {
            continue; // already defective; its content is a placeholder
        }
        let p = pencil(dims, axis, pid);
        scan_unit(
            &mut defects,
            pid,
            p.iter().map(|(i, j, k)| out.get(i, j, k)),
            output_range,
        );
    }

    // Phase 3: single-threaded repair with faults disabled, then rescan.
    for pid in defects.units() {
        let p = pencil(dims, axis, pid);
        let mut buf = Vec::new();
        pencil_into_buf(vol, &kernel, inv, &plan, &p, &mut buf, || true);
        for (t, &v) in buf.iter().enumerate() {
            let (i, j, k) = p.coords(t);
            out.set(i, j, k, v);
        }
        let mut rescan = DefectMap::new("pencil", n_pencils);
        let dirty = scan_unit(&mut rescan, pid, buf.iter().copied(), output_range);
        if dirty {
            defects.merge(rescan); // genuinely bad data (e.g. NaN input)
        } else {
            defects.mark_repaired(pid);
        }
    }

    Ok(DegradedOutcome { report, defects })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilateral::BilateralParams;
    use crate::parallel::bilateral3d;
    use sfc_core::{ArrayOrder3, Axis, Dims3, StencilOrder, ZOrder3};
    use sfc_harness::FaultKind;
    use std::time::Duration;

    fn test_volume(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect()
    }

    fn run(nthreads: usize) -> FilterRun {
        FilterRun {
            params: BilateralParams {
                radius: 1,
                sigma_spatial: 1.0,
                sigma_range: 0.15,
                order: StencilOrder::Xyz,
            },
            pencil_axis: Axis::X,
            nthreads,
        }
    }

    fn cfg(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            timeout: Some(Duration::from_millis(500)),
            watchdog_poll: Duration::from_millis(2),
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_degraded_run_matches_plain_driver_bitwise() {
        let dims = Dims3::new(10, 8, 6);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(4);
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &r,
            &cfg(4),
            &FaultPlan::none(),
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert!(outcome.defects.is_clean());
        assert!(outcome.output_is_whole());
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn injected_faults_are_repaired_to_bitwise_identical_output() {
        let dims = Dims3::new(9, 7, 5);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(3);
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let n = pencil_count(dims, Axis::X);
        assert!(n > 6);
        let faults = FaultPlan::none()
            .with(0, FaultKind::Panic)
            .with(2, FaultKind::CorruptOutput)
            .with(4, FaultKind::FailFirst(5)) // exceeds max_retries=1
            .with(5, FaultKind::Stall(Duration::from_secs(10)));
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &r,
            &cfg(3),
            &faults,
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert_eq!(outcome.defects.units(), vec![0, 2, 4, 5]);
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn validation_scan_flags_corrupt_output_without_range() {
        // Even with no plausibility range, the NaN half of the poison
        // pattern is caught.
        let dims = Dims3::new(8, 6, 4);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(2);
        let faults = FaultPlan::none().with(1, FaultKind::CorruptOutput);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome =
            try_bilateral3d_degraded(&grid, &mut out, &r, &cfg(2), &faults, None).unwrap();
        assert_eq!(outcome.defects.units(), vec![1]);
        assert!(outcome.output_is_whole());
    }

    #[test]
    fn config_errors_still_abort() {
        let dims = Dims3::cube(4);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let mut out = Grid3::<f32, ArrayOrder3>::new(Dims3::cube(5));
        let err = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &run(2),
            &cfg(2),
            &FaultPlan::none(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SfcError::ShapeMismatch { .. }));
    }
}
