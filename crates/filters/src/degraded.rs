//! Graceful-degradation bilateral driver: partial results + typed defects.
//!
//! The plain parallel drivers ([`crate::parallel`]) abort the whole run
//! when any pencil fails. For long sweeps that is the wrong trade: one
//! poisoned pencil out of thousands should cost one pencil, not the run.
//! This module adapts the bilateral filter to the execution engine's
//! policy stack ([`sfc_harness::engine`]): [`PencilKernel`] implements
//! [`UnitKernel`] over the pencil decomposition (compute into a dense
//! along-axis buffer, commit through the output layout, read back for
//! validation), and [`try_bilateral3d_with_policy`] runs it under any
//! [`ExecPolicy`]:
//!
//! * [`ExecPolicy::Plain`] — the unbuffered fast drivers of
//!   [`crate::parallel`], plus a synthesized clean outcome;
//! * [`ExecPolicy::Supervised`] — panic isolation, watchdog deadlines with
//!   cooperative cancellation, bounded retries, buffered per-pencil commit
//!   (an abandoned attempt never leaves a half-written pencil);
//! * [`ExecPolicy::Degraded`] — supervision plus the engine's three-phase
//!   pipeline: post-run validation scan (non-finite + optional plausible
//!   output range) and a single-threaded faults-off repair pass;
//! * [`ExecPolicy::Brownout`] — the degraded pipeline under a wall-clock
//!   deadline, with a quality ladder: under pressure a pencil is
//!   recomputed with a reduced stencil radius (`r → r−1 → … → 1`, see
//!   [`FilterRun::brownout_params`]), and every such downgrade is
//!   recorded in the outcome's
//!   [`QualityMap`](sfc_harness::QualityMap).
//!
//! The kernel is deterministic, so a repaired pencil is bitwise identical
//! to what a fault-free run would have produced: a run whose map ends
//! [`DefectMap::is_whole`](sfc_harness::DefectMap::is_whole) has *exactly*
//! the fault-free output. [`try_bilateral3d_degraded`] keeps the PR-3
//! signature as a wrapper over the `Degraded` policy.

use sfc_core::{pencil, pencil_count, Axis, Dims3, Grid3, Layout3, SfcError, SfcResult, Volume3};
use sfc_harness::{
    BrownoutKernel, DegradedOutcome, ExecPolicy, Executor, FaultPlan, RunReport,
    SupervisorConfig, UnitKernel, WorkPlan,
};

use crate::fastmath::TapConfig;
use crate::gaussian::SpatialKernel;
use crate::parallel::FilterRun;
use crate::pencil_gather::{bilateral_pencil, GatherPlan};

/// Wrapper making disjoint raw writes shareable across worker threads.
struct Slots(*mut f32);
unsafe impl Sync for Slots {}

/// Position of a voxel along its pencil's axis ([`Pencil::coords`]'
/// inverse for the `t` coordinate — pencils span the full axis extent).
#[inline]
fn along(axis: Axis, i: usize, j: usize, k: usize) -> usize {
    match axis {
        Axis::X => i,
        Axis::Y => j,
        Axis::Z => k,
    }
}

/// The bilateral filter as an engine [`UnitKernel`]: one work unit is one
/// voxel pencil, computed with the pencil-gather fast path into a dense
/// buffer indexed by along-axis position and committed through the output
/// layout. Holds a raw output pointer; construct it only for the duration
/// of one engine run over an exclusively borrowed grid.
struct PencilKernel<'a, V, LOut> {
    vol: &'a V,
    kernel: SpatialKernel,
    inv: f32,
    plan: GatherPlan,
    dims: Dims3,
    axis: Axis,
    out_layout: LOut,
    slots: Slots,
    /// Photometric weight configuration (tier pre-clamped), applied at
    /// every ladder rung.
    weight: TapConfig,
    /// Brownout quality ladder: `ladder[L-1]` holds the reduced-radius
    /// spatial kernel and gather plan for level `L` (empty outside the
    /// brownout policy — the rungs are never consulted elsewhere).
    ladder: Vec<(SpatialKernel, GatherPlan)>,
}

impl<V: Volume3 + Sync, LOut: Layout3> PencilKernel<'_, V, LOut> {
    /// Compute one pencil with an explicit kernel/plan pair (the full-
    /// quality pair or a ladder rung).
    fn compute_with(
        &self,
        kernel: &SpatialKernel,
        plan: &GatherPlan,
        unit: usize,
        buf: &mut Vec<f32>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        let p = pencil(self.dims, self.axis, unit);
        buf.clear();
        buf.resize(p.len, 0.0);
        bilateral_pencil(self.vol, kernel, self.inv, plan, &p, self.weight, |i, j, k, v| {
            buf[along(p.axis, i, j, k)] = v;
            keep_going()
        })
    }
}

impl<V: Volume3 + Sync, LOut: Layout3> UnitKernel for PencilKernel<'_, V, LOut> {
    type Value = f32;

    fn unit_kind(&self) -> &'static str {
        "pencil"
    }

    /// Fill `buf[t]` with the filtered value at along-axis position `t`
    /// (the emission order of [`bilateral_pencil`] interleaves caps and
    /// interior, so sequential pushes would scramble coordinates).
    fn compute(
        &self,
        unit: usize,
        buf: &mut Vec<f32>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        self.compute_with(&self.kernel, &self.plan, unit, buf, keep_going)
    }

    fn commit(&self, unit: usize, buf: &[f32]) {
        let p = pencil(self.dims, self.axis, unit);
        for (t, &v) in buf.iter().enumerate() {
            let (i, j, k) = p.coords(t);
            let idx = self.out_layout.index(i, j, k);
            // SAFETY: the layout is injective over the logical domain and
            // pencils partition it; concurrent attempts at the *same*
            // pencil write identical bytes (deterministic kernel), so the
            // race between an abandoned straggler and its retry is benign;
            // `idx < storage_len` by the layout contract.
            unsafe { *self.slots.0.add(idx) = v };
        }
    }

    fn read_back(&self, unit: usize, buf: &mut Vec<f32>) {
        let p = pencil(self.dims, self.axis, unit);
        for (i, j, k) in p.iter() {
            let idx = self.out_layout.index(i, j, k);
            // SAFETY: single-threaded phase, after every commit finished.
            buf.push(unsafe { *self.slots.0.add(idx) });
        }
    }

    fn components(value: f32, sink: &mut dyn FnMut(f32)) {
        sink(value);
    }

    fn poison(buf: &mut [f32]) {
        for (t, v) in buf.iter_mut().enumerate() {
            *v = if t % 2 == 0 { f32::NAN } else { 1e30 };
        }
    }
}

impl<V: Volume3 + Sync, LOut: Layout3> BrownoutKernel for PencilKernel<'_, V, LOut> {
    fn max_level(&self) -> u8 {
        self.ladder.len() as u8
    }

    fn compute_at(
        &self,
        unit: usize,
        level: u8,
        buf: &mut Vec<f32>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        match level {
            0 => self.compute(unit, buf, keep_going),
            l => {
                let (kernel, plan) = &self.ladder[usize::from(l) - 1];
                self.compute_with(kernel, plan, unit, buf, keep_going)
            }
        }
    }
}

/// Bilateral-filter `vol` into `out` under an engine [`ExecPolicy`].
///
/// `Plain` runs the unbuffered fast driver (panics propagate, `faults`
/// ignored) and synthesizes a clean outcome; `Supervised` and `Degraded`
/// run the buffered [`PencilKernel`] under the engine, taking their thread
/// count from the policy's supervisor configuration. Errors are returned
/// only for invalid *configuration* — execution failures land in the
/// outcome, never abort the run.
pub fn try_bilateral3d_with_policy<V, LOut>(
    vol: &V,
    out: &mut Grid3<f32, LOut>,
    run: &FilterRun,
    policy: &ExecPolicy,
    faults: &FaultPlan,
) -> SfcResult<DegradedOutcome>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    run.validate()?;
    if vol.dims() != out.dims() {
        return Err(SfcError::ShapeMismatch {
            what: "bilateral3d_degraded",
            expected: format!("output dims {:?}", vol.dims()),
            actual: format!("{:?}", out.dims()),
        });
    }
    let dims = vol.dims();
    let axis = run.pencil_axis;
    let n_pencils = pencil_count(dims, axis);
    if let ExecPolicy::Plain = policy {
        let start = std::time::Instant::now();
        crate::parallel::try_bilateral3d_into(vol, out, run)?;
        return Ok(DegradedOutcome::full_quality(
            RunReport {
                completed: n_pencils,
                wall_time: start.elapsed(),
                ..RunReport::default()
            },
            sfc_harness::DefectMap::new("pencil", n_pencils),
        ));
    }
    let supervisor = match policy {
        ExecPolicy::Supervised(cfg) => cfg,
        ExecPolicy::Degraded(p) => &p.supervisor,
        ExecPolicy::Brownout(p) => &p.supervisor,
        ExecPolicy::Plain => unreachable!(),
    };
    // The quality ladder (one reduced-radius kernel/plan pair per rung)
    // exists only under the brownout policy; other stacks never consult
    // it, so its construction cost is not paid on their path.
    let ladder = if matches!(policy, ExecPolicy::Brownout(_)) {
        (1..=run.brownout_depth())
            .map(|level| {
                let spatial = run.brownout_params(level).spatial_kernel();
                let plan = GatherPlan::new(&spatial, dims, axis);
                (spatial, plan)
            })
            .collect()
    } else {
        Vec::new()
    };
    let spatial = run.params.spatial_kernel();
    let kernel = PencilKernel {
        vol,
        plan: GatherPlan::new(&spatial, dims, axis),
        kernel: spatial,
        inv: run.params.inv_two_sigma_range_sq(),
        dims,
        axis,
        out_layout: out.layout().clone(),
        slots: Slots(out.storage_mut().as_mut_ptr()),
        weight: run.weight.clamped(),
        ladder,
    };
    Ok(Executor::new(supervisor.nthreads).execute_brownout(
        &WorkPlan::from_schedule(n_pencils, supervisor.schedule),
        policy,
        &kernel,
        faults,
    ))
}

/// Bilateral-filter `vol` into `out` under the supervised pool, returning
/// partial output plus a typed [`DefectMap`](sfc_harness::DefectMap)
/// instead of failing the run.
///
/// `faults` scripts injected failures (pass [`FaultPlan::none`] for
/// production); `output_range` is the optional inclusive plausibility
/// interval the validation scan enforces on finite output values. This is
/// the PR-3 entry point, now a wrapper over
/// [`try_bilateral3d_with_policy`] with the full
/// [`ExecPolicy::Degraded`] stack.
pub fn try_bilateral3d_degraded<V, LOut>(
    vol: &V,
    out: &mut Grid3<f32, LOut>,
    run: &FilterRun,
    cfg: &SupervisorConfig,
    faults: &FaultPlan,
    output_range: Option<(f32, f32)>,
) -> SfcResult<DegradedOutcome>
where
    V: Volume3 + Sync,
    LOut: Layout3,
{
    try_bilateral3d_with_policy(vol, out, run, &ExecPolicy::degraded(cfg.clone(), output_range), faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilateral::BilateralParams;
    use crate::parallel::bilateral3d;
    use sfc_core::{ArrayOrder3, Axis, Dims3, StencilOrder, ZOrder3};
    use sfc_harness::{DeadlineBudget, FaultKind};
    use std::time::Duration;

    fn test_volume(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect()
    }

    fn run(nthreads: usize) -> FilterRun {
        FilterRun {
            params: BilateralParams {
                radius: 1,
                sigma_spatial: 1.0,
                sigma_range: 0.15,
                order: StencilOrder::Xyz,
            },
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads,
        }
    }

    fn cfg(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            timeout: Some(Duration::from_millis(500)),
            watchdog_poll: Duration::from_millis(2),
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_degraded_run_matches_plain_driver_bitwise() {
        let dims = Dims3::new(10, 8, 6);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(4);
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &r,
            &cfg(4),
            &FaultPlan::none(),
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert!(outcome.defects.is_clean());
        assert!(outcome.output_is_whole());
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn injected_faults_are_repaired_to_bitwise_identical_output() {
        let dims = Dims3::new(9, 7, 5);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(3);
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let n = pencil_count(dims, Axis::X);
        assert!(n > 6);
        let faults = FaultPlan::none()
            .with(0, FaultKind::Panic)
            .with(2, FaultKind::CorruptOutput)
            .with(4, FaultKind::FailFirst(5)) // exceeds max_retries=1
            .with(5, FaultKind::Stall(Duration::from_secs(10)));
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &r,
            &cfg(3),
            &faults,
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert_eq!(outcome.defects.units(), vec![0, 2, 4, 5]);
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn validation_scan_flags_corrupt_output_without_range() {
        // Even with no plausibility range, the NaN half of the poison
        // pattern is caught.
        let dims = Dims3::new(8, 6, 4);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(2);
        let faults = FaultPlan::none().with(1, FaultKind::CorruptOutput);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome =
            try_bilateral3d_degraded(&grid, &mut out, &r, &cfg(2), &faults, None).unwrap();
        assert_eq!(outcome.defects.units(), vec![1]);
        assert!(outcome.output_is_whole());
    }

    #[test]
    fn config_errors_still_abort() {
        let dims = Dims3::cube(4);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let mut out = Grid3::<f32, ArrayOrder3>::new(Dims3::cube(5));
        let err = try_bilateral3d_degraded(
            &grid,
            &mut out,
            &run(2),
            &cfg(2),
            &FaultPlan::none(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SfcError::ShapeMismatch { .. }));
    }

    #[test]
    fn plain_policy_is_the_fast_driver_with_a_clean_outcome() {
        let dims = Dims3::new(7, 6, 5);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(2);
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let outcome = try_bilateral3d_with_policy(
            &grid,
            &mut out,
            &r,
            &ExecPolicy::Plain,
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(outcome.defects.is_clean());
        assert_eq!(outcome.report.completed, pencil_count(dims, Axis::X));
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn brownout_zero_budget_repairs_at_reduced_radius() {
        let dims = Dims3::new(8, 6, 5);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r2 = FilterRun {
            params: BilateralParams {
                radius: 2,
                sigma_spatial: 1.0,
                sigma_range: 0.15,
                order: StencilOrder::Xyz,
            },
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 2,
        };
        assert_eq!(r2.brownout_depth(), 1);
        // A zero budget sheds every pencil to the repair pass, which runs
        // the deepest ladder rung — here radius 1, so the output must be
        // bitwise-identical to a plain radius-1 run.
        let r1 = FilterRun {
            params: r2.brownout_params(1),
            ..r2
        };
        let reference: Grid3<f32, ArrayOrder3> = bilateral3d(&grid, &r1);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let policy = ExecPolicy::brownout(
            cfg(2),
            DeadlineBudget::with_budget(Duration::ZERO),
            Some((0.0, 1.0)),
        );
        let outcome =
            try_bilateral3d_with_policy(&grid, &mut out, &r2, &policy, &FaultPlan::none())
                .unwrap();
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(outcome.quality.len(), pencil_count(dims, Axis::X));
        assert_eq!(outcome.quality.max_level(), 1);
        assert_eq!(out.to_row_major(), reference.to_row_major());
    }

    #[test]
    fn supervised_policy_isolates_panics_without_repair() {
        let dims = Dims3::new(8, 5, 4);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &test_volume(dims));
        let r = run(2);
        let faults = FaultPlan::none().with(3, FaultKind::Panic);
        let mut out = Grid3::<f32, ArrayOrder3>::new(dims);
        let supervisor = SupervisorConfig {
            max_retries: 0,
            ..cfg(2)
        };
        let outcome = try_bilateral3d_with_policy(
            &grid,
            &mut out,
            &r,
            &ExecPolicy::Supervised(supervisor),
            &faults,
        )
        .unwrap();
        // Supervised-only: the failed pencil is in the map but nothing is
        // repaired, so the output is not whole.
        assert_eq!(outcome.defects.units(), vec![3]);
        assert!(!outcome.output_is_whole());
    }
}
