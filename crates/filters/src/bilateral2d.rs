//! 2D bilateral filter — the original Tomasi & Manduchi 1998 formulation
//! the paper's 3D kernel extends. Operates on layout-generic `Grid2`
//! images; useful both in its own right (image denoising) and as a
//! smaller-dimensional check of the layout machinery.

use sfc_core::{Dims2, Grid2, Layout2};

/// Parameters of the 2D bilateral filter.
#[derive(Debug, Clone, Copy)]
pub struct Bilateral2dParams {
    /// Stencil radius in pixels.
    pub radius: usize,
    /// Geometric Gaussian standard deviation, in pixels.
    pub sigma_spatial: f32,
    /// Photometric Gaussian standard deviation, in value units.
    pub sigma_range: f32,
}

impl Default for Bilateral2dParams {
    fn default() -> Self {
        Self {
            radius: 2,
            sigma_spatial: 1.5,
            sigma_range: 0.1,
        }
    }
}

/// Filter one pixel (clamped boundary).
pub fn bilateral2d_pixel<L: Layout2>(
    img: &Grid2<f32, L>,
    params: &Bilateral2dParams,
    i: usize,
    j: usize,
) -> f32 {
    let r = params.radius as isize;
    let inv_2ss = 1.0 / (2.0 * params.sigma_spatial * params.sigma_spatial);
    let inv_2sr = 1.0 / (2.0 * params.sigma_range * params.sigma_range);
    let center = img.get(i, j);
    let (ii, jj) = (i as isize, j as isize);
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    for dj in -r..=r {
        for di in -r..=r {
            let v = img.get_clamped(ii + di, jj + dj);
            let d2 = (di * di + dj * dj) as f32;
            let diff = v - center;
            let w = (-d2 * inv_2ss).exp() * (-(diff * diff) * inv_2sr).exp();
            acc += w * v;
            wsum += w;
        }
    }
    acc / wsum
}

/// Filter a whole image into a new grid of the same layout.
pub fn bilateral2d<L: Layout2>(
    img: &Grid2<f32, L>,
    params: &Bilateral2dParams,
) -> Grid2<f32, L> {
    let dims: Dims2 = img.dims();
    let mut out = Grid2::<f32, L>::new(dims);
    for (i, j) in dims.iter() {
        out.set(i, j, bilateral2d_pixel(img, params, i, j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{ArrayOrder2, HilbertOrder2, Tiled2, ZOrder2};

    fn noisy_step(dims: Dims2) -> Vec<f32> {
        dims.iter()
            .map(|(i, j)| {
                let base = if i < dims.nx / 2 { 0.2 } else { 0.8 };
                let n = (((i * 31 + j * 17) % 13) as f32 / 13.0 - 0.5) * 0.05;
                base + n
            })
            .collect()
    }

    #[test]
    fn constant_image_is_fixed_point() {
        let img = Grid2::<f32, ArrayOrder2>::from_fn(Dims2::square(8), |_, _| 0.6);
        let out = bilateral2d(&img, &Bilateral2dParams::default());
        assert!(out.to_row_major().iter().all(|v| (v - 0.6).abs() < 1e-6));
    }

    #[test]
    fn output_is_layout_invariant() {
        let dims = Dims2::new(12, 9);
        let values = noisy_step(dims);
        let a = Grid2::<f32, ArrayOrder2>::from_row_major(dims, &values);
        let z: Grid2<f32, ZOrder2> = a.convert();
        let t: Grid2<f32, Tiled2> = a.convert();
        let h: Grid2<f32, HilbertOrder2> = a.convert();
        let p = Bilateral2dParams::default();
        let oa = bilateral2d(&a, &p).to_row_major();
        assert_eq!(oa, bilateral2d(&z, &p).to_row_major());
        assert_eq!(oa, bilateral2d(&t, &p).to_row_major());
        assert_eq!(oa, bilateral2d(&h, &p).to_row_major());
    }

    #[test]
    fn preserves_edge_and_reduces_noise() {
        let dims = Dims2::square(16);
        let values = noisy_step(dims);
        let img = Grid2::<f32, ZOrder2>::from_row_major(dims, &values);
        let out = bilateral2d(&img, &Bilateral2dParams::default());
        // Edge preserved: left half stays near 0.2, right half near 0.8.
        assert!(out.get(2, 8) < 0.35);
        assert!(out.get(13, 8) > 0.65);
        // Noise reduced: variance within the left half drops.
        let var = |g: &dyn Fn(usize, usize) -> f32| {
            let vals: Vec<f32> = (0..dims.ny)
                .flat_map(|j| (1..dims.nx / 2 - 1).map(move |i| (i, j)))
                .map(|(i, j)| g(i, j))
                .collect();
            let m = vals.iter().sum::<f32>() / vals.len() as f32;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f32>() / vals.len() as f32
        };
        let before = var(&|i, j| img.get(i, j));
        let after = var(&|i, j| out.get(i, j));
        assert!(after < before, "variance {before} -> {after}");
    }
}
