//! Pencil-gather fast path for the bilateral filter.
//!
//! The per-voxel kernel ([`crate::bilateral::bilateral_voxel`]) pays a
//! full layout index computation per stencil tap — `(2r+1)³` of them per
//! voxel, 1,331 for the paper's r5 configuration. But consecutive voxels
//! of a pencil share almost their entire neighborhood: the stencil taps of
//! the whole pencil live in the `(2r+1)²` rows of voxels that run parallel
//! to it. This module gathers those rows **once per pencil** into a
//! contiguous row-major scratch buffer (each row read with a single
//! incremental cursor walk, see [`sfc_core::cursor`]), after which the
//! per-voxel tap loop is pure contiguous arithmetic with *zero* index
//! computation.
//!
//! ## Bitwise equivalence
//!
//! The fast path iterates the taps in exactly the kernel's configured
//! [`sfc_core::StencilOrder`] (`tap_base` is built in `offsets()` order)
//! and performs the identical sequence of f32 operations on the identical
//! sample values, so its outputs are bit-for-bit equal to the per-voxel
//! path — the `output_is_layout_invariant_bitwise` tests hold unchanged.
//! Equal footing across layouts is also preserved: every layout goes
//! through the same `Layout3::cursor` abstraction; only the (layout-
//! independent) redundancy of recomputing indices is removed.
//!
//! ## Routing
//!
//! Every pencil long enough to contain an interior voxel (`n_a > 2r`)
//! goes through the gather: stencil rows whose *cross* coordinates fall
//! outside the volume are gathered from the clamped edge row (exactly the
//! values `get_clamped` serves), so only the *along-axis* tap coordinate
//! is left to clamp. Since each gathered row spans the whole axis, even
//! the first/last `r` voxels of a pencil read the scratch (with a per-tap
//! clamp mirroring `get_clamped`). Only pencils too short for any
//! interior voxel fall back to
//! [`crate::bilateral::bilateral_voxel_counted`]. NaN events are
//! accumulated locally and flushed to the shared counter once per pencil.
//!
//! ## Brownout ladder
//!
//! The gather geometry depends only on `(kernel, dims, axis)`, so the
//! brownout quality ladder ([`crate::degraded`]) precomputes one
//! [`GatherPlan`] per reduced-radius rung up front and picks the rung's
//! plan per attempt — a downgraded pencil gathers `(2(r−L)+1)²` rows
//! instead of `(2r+1)²`, shrinking both the memory traffic and the tap
//! loop quadratically with the ladder level. The per-thread scratch is
//! sized by whichever plan ran last and is reused across rungs.

use std::cell::RefCell;

use sfc_core::{Axis, Dims3, Pencil, Volume3};

use crate::bilateral::bilateral_voxel_counted_mode;
use crate::fastmath::{photometric_weight, TapConfig, WeightMode};
use crate::gaussian::SpatialKernel;

thread_local! {
    /// Reusable per-thread gather scratch; grown on demand, never shrunk
    /// within a run, so steady state performs zero allocations.
    static SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Precomputed gather geometry for one `(kernel, dims, pencil axis)`
/// combination; shared read-only across worker threads.
pub(crate) struct GatherPlan {
    /// Stencil radius.
    radius: usize,
    /// Extent of the pencil axis (row length).
    n_a: usize,
    /// Cross-axis extents (`b` = faster-varying fixed axis of the pencil,
    /// `c` = slower, matching [`Pencil::a`]/[`Pencil::b`]).
    n_b: usize,
    n_c: usize,
    /// Per-tap scratch offset, in kernel tap order:
    /// `row_id * n_a + (d_axis + r)` — add `voxel_a - r` to index the tap
    /// sample for the voxel at pencil position `voxel_a`.
    tap_base: Vec<usize>,
    /// `tap_base` as `i32`, the form the SIMD tap loops gather with
    /// (scratch extents always fit: `(2r+1)² · n_a` is far below `i32`).
    tap_base_i32: Vec<i32>,
    /// Per-tap `(row_id * n_a, d_axis)` pairs, in kernel tap order, for
    /// the boundary caps whose along-axis taps must clamp.
    tap_cap: Vec<(usize, isize)>,
    /// Scratch offset of the center row (`row_id(0,0) * n_a`).
    center_row: usize,
}

/// Split a stencil offset into (along-axis, faster-cross, slower-cross)
/// components matching the pencil's `(t, a, b)` coordinate roles.
#[inline]
fn split_offset(axis: Axis, (di, dj, dk): (isize, isize, isize)) -> (isize, isize, isize) {
    match axis {
        Axis::X => (di, dj, dk),
        Axis::Y => (dj, di, dk),
        Axis::Z => (dk, di, dj),
    }
}

/// Recombine (along-axis, faster-cross, slower-cross) coordinates into
/// `(i, j, k)`; inverse of the role split in [`split_offset`].
#[inline]
fn join_coords(axis: Axis, a: usize, b: usize, c: usize) -> (usize, usize, usize) {
    match axis {
        Axis::X => (a, b, c),
        Axis::Y => (b, a, c),
        Axis::Z => (b, c, a),
    }
}

impl GatherPlan {
    pub(crate) fn new(kernel: &SpatialKernel, dims: Dims3, axis: Axis) -> Self {
        let r = kernel.radius();
        let w = 2 * r + 1;
        let n_a = axis.extent(dims);
        let (n_b, n_c) = match axis {
            Axis::X => (dims.ny, dims.nz),
            Axis::Y => (dims.nx, dims.nz),
            Axis::Z => (dims.nx, dims.ny),
        };
        let ri = r as isize;
        let mut tap_base = Vec::with_capacity(kernel.offsets().len());
        let mut tap_cap = Vec::with_capacity(kernel.offsets().len());
        for &off in kernel.offsets() {
            let (da, db, dc) = split_offset(axis, off);
            let row_id = ((db + ri) as usize) + w * ((dc + ri) as usize);
            tap_base.push(row_id * n_a + (da + ri) as usize);
            tap_cap.push((row_id * n_a, da));
        }
        let tap_base_i32 = tap_base.iter().map(|&b| b as i32).collect();
        Self {
            radius: r,
            n_a,
            n_b,
            n_c,
            tap_base,
            tap_base_i32,
            tap_cap,
            center_row: (r + w * r) * n_a,
        }
    }

    /// Whether `p` qualifies for the gather fast path: the pencil must
    /// contain at least one voxel whose along-axis taps are all in
    /// bounds. Cross coordinates never disqualify a pencil — rows whose
    /// cross coordinate falls outside the volume are gathered from the
    /// clamped edge row, which holds exactly the values `get_clamped`
    /// serves for those taps.
    #[inline]
    fn pencil_can_gather(&self) -> bool {
        self.n_a > 2 * self.radius
    }
}

/// Filter one pencil, writing each voxel's result via `write(i, j, k, v)`.
///
/// Interior spans use the gathered-scratch fast path; everything else
/// falls back to the per-voxel clamped kernel. With
/// [`TapConfig::exact()`] outputs are bitwise identical to calling
/// [`crate::bilateral::bilateral_voxel`] per voxel; the `Lut`/`FastExp`
/// modes stay within the tolerance documented in [`crate::fastmath`] and
/// count NaN events identically.
///
/// `write` returns a continue flag: `false` aborts the rest of the pencil
/// (cooperative cancellation — the degraded driver polls its cancel token
/// there). Returns `true` when every voxel of the pencil was written; NaN
/// events seen so far are flushed either way.
pub(crate) fn bilateral_pencil<V, F>(
    vol: &V,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    plan: &GatherPlan,
    p: &Pencil,
    cfg: TapConfig,
    mut write: F,
) -> bool
where
    V: Volume3,
    F: FnMut(usize, usize, usize, f32) -> bool,
{
    let mut nan_seen = 0u64;
    let mut completed = true;
    if plan.pencil_can_gather() {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            gather_rows(vol, plan, p, &mut scratch);
            let r = plan.radius;
            // Boundary caps: only the along-axis taps are left to clamp
            // (cross clamping happened at gather time), and the gathered
            // rows span the whole axis — so caps read the scratch too,
            // with a per-tap clamp. Caps are O(r) voxels per pencil, so
            // they use the scalar loop in every mode (mode-aware weights,
            // no SIMD).
            for t in (0..r).chain(p.len - r..p.len) {
                let (v, n) =
                    bilateral_cap_from_scratch(&scratch, plan, kernel, inv_2sr2, t, cfg.mode);
                nan_seen += n;
                let (i, j, k) = p.coords(t);
                if !write(i, j, k, v) {
                    completed = false;
                    return;
                }
            }
            // Interior span: pure scratch arithmetic. Exact mode keeps the
            // original scalar loop (bitwise oracle); the tolerance modes
            // dispatch through the fastmath tap loops.
            if cfg.mode == WeightMode::Exact {
                for a in r..p.len - r {
                    let (v, n) = bilateral_from_scratch(&scratch, plan, kernel, inv_2sr2, a);
                    nan_seen += n;
                    let (i, j, k) = p.coords(a);
                    if !write(i, j, k, v) {
                        completed = false;
                        return;
                    }
                }
            } else {
                for a in r..p.len - r {
                    let center = scratch[plan.center_row + a];
                    let (v, n) = crate::fastmath::tap_run(
                        &scratch,
                        &plan.tap_base_i32,
                        kernel.weights(),
                        (a - r) as i32,
                        center,
                        inv_2sr2,
                        cfg,
                    );
                    nan_seen += n + u64::from(center.is_nan());
                    let (i, j, k) = p.coords(a);
                    if !write(i, j, k, v) {
                        completed = false;
                        return;
                    }
                }
            }
        });
    } else {
        for (i, j, k) in p.iter() {
            let (v, n) = bilateral_voxel_counted_mode(vol, kernel, inv_2sr2, i, j, k, cfg.mode);
            nan_seen += n;
            if !write(i, j, k, v) {
                completed = false;
                break;
            }
        }
    }
    crate::counters::record_nan_events(nan_seen);
    completed
}

/// Gather the pencil's `(2r+1)²` neighbor rows into `scratch`
/// (row-major: row `(db+r) + (2r+1)(dc+r)`, each of length `n_a`).
///
/// Cross coordinates that fall outside the volume clamp to the nearest
/// face — the gathered row then holds exactly the values the per-voxel
/// path's `get_clamped` would return for those taps, so boundary pencils
/// produce bitwise-identical output through the scratch loops. (Rows past
/// a face duplicate the edge row; the redundant reads are the price of
/// keeping every tap loop branch-free.)
fn gather_rows<V: Volume3>(vol: &V, plan: &GatherPlan, p: &Pencil, scratch: &mut Vec<f32>) {
    let r = plan.radius as isize;
    let w = 2 * plan.radius + 1;
    let n_a = plan.n_a;
    scratch.resize(w * w * n_a, 0.0);
    for dc in 0..w {
        for db in 0..w {
            let b = (p.a as isize + db as isize - r).clamp(0, plan.n_b as isize - 1) as usize;
            let c = (p.b as isize + dc as isize - r).clamp(0, plan.n_c as isize - 1) as usize;
            let (i0, j0, k0) = join_coords(p.axis, 0, b, c);
            let row = (db + w * dc) * n_a;
            vol.gather_axis_run(i0, j0, k0, p.axis, &mut scratch[row..row + n_a]);
        }
    }
}

/// The bilateral kernel's interior branch, reading taps from gathered
/// scratch. Must mirror `bilateral_voxel_counted`'s interior loop exactly
/// — same tap order, same f32 operations — for bitwise-equal output.
#[inline]
fn bilateral_from_scratch(
    scratch: &[f32],
    plan: &GatherPlan,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    a: usize,
) -> (f32, u64) {
    let center = scratch[plan.center_row + a];
    let center_nan = center.is_nan();
    let shift = a - plan.radius;
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    let mut nan_seen: u64 = u64::from(center_nan);
    for (&base, &wg) in plan.tap_base.iter().zip(kernel.weights()) {
        let v = scratch[base + shift];
        if v.is_nan() {
            nan_seen += 1;
            continue;
        }
        let w = if center_nan {
            wg
        } else {
            let diff = v - center;
            wg * (-(diff * diff) * inv_2sr2).exp()
        };
        acc += w * v;
        wsum += w;
    }
    let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
    (value, nan_seen)
}

/// The boundary-cap variant of [`bilateral_from_scratch`]: the voxel sits
/// within `r` of a pencil end, so each tap's along-axis coordinate clamps
/// to `[0, n_a)` — exactly what `get_clamped` does in the per-voxel slow
/// path (the cross coordinates never clamp for a gathered pencil). Same
/// tap order, same f32 operations: with `WeightMode::Exact` the output
/// stays bitwise-equal ([`photometric_weight`] is the identical `exp`
/// expression — float negation commutes with multiplication bit-for-bit).
#[inline]
fn bilateral_cap_from_scratch(
    scratch: &[f32],
    plan: &GatherPlan,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    a: usize,
    mode: WeightMode,
) -> (f32, u64) {
    let center = scratch[plan.center_row + a];
    let center_nan = center.is_nan();
    let hi = plan.n_a as isize - 1;
    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    let mut nan_seen: u64 = u64::from(center_nan);
    for (&(row, da), &wg) in plan.tap_cap.iter().zip(kernel.weights()) {
        let ta = (a as isize + da).clamp(0, hi) as usize;
        let v = scratch[row + ta];
        if v.is_nan() {
            nan_seen += 1;
            continue;
        }
        let w = if center_nan {
            wg
        } else {
            wg * photometric_weight(v - center, inv_2sr2, mode)
        };
        acc += w * v;
        wsum += w;
    }
    let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
    (value, nan_seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bilateral::{bilateral_voxel, BilateralParams};
    use sfc_core::{pencils, Grid3, StencilOrder, Tiled3, ZOrder3};

    fn params(radius: usize, order: StencilOrder) -> BilateralParams {
        BilateralParams {
            radius,
            sigma_spatial: 1.0,
            sigma_range: 0.12,
            order,
        }
    }

    fn noisy(dims: Dims3) -> Vec<f32> {
        (0..dims.len())
            .map(|v| ((v * 2654435761) % 977) as f32 / 977.0)
            .collect()
    }

    #[test]
    fn gathered_pencils_match_per_voxel_kernel_bitwise() {
        let dims = Dims3::new(11, 9, 7);
        let values = noisy(dims);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        for order in [StencilOrder::Xyz, StencilOrder::Zyx] {
            let p = params(2, order);
            let kernel = p.spatial_kernel();
            let inv = p.inv_two_sigma_range_sq();
            for axis in Axis::ALL {
                let plan = GatherPlan::new(&kernel, dims, axis);
                for pen in pencils(dims, axis) {
                    bilateral_pencil(&grid, &kernel, inv, &plan, &pen, TapConfig::exact(), |i, j, k, v| {
                        let want = bilateral_voxel(&grid, &kernel, inv, i, j, k);
                        assert_eq!(
                            v.to_bits(),
                            want.to_bits(),
                            "mismatch at ({i},{j},{k}) axis {axis:?}"
                        );
                        true
                    });
                }
            }
        }
    }

    #[test]
    fn nan_events_flush_once_per_pencil() {
        let dims = Dims3::cube(8);
        let mut values = noisy(dims);
        values[3 + 3 * 8 + 3 * 64] = f32::NAN;
        let grid = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        let p = params(1, StencilOrder::Xyz);
        let kernel = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        let plan = GatherPlan::new(&kernel, dims, Axis::X);
        let before = crate::counters::nan_events();
        for pen in pencils(dims, Axis::X) {
            bilateral_pencil(&grid, &kernel, inv, &plan, &pen, TapConfig::exact(), |_, _, _, _| true);
        }
        // The NaN voxel is seen once per covering stencil: 27 neighbors'
        // stencils include it, plus its own center pre-count.
        assert_eq!(crate::counters::nan_events() - before, 28);
    }

    #[test]
    fn short_pencils_route_to_slow_path() {
        // radius 2 with a 4-long axis: no interior voxels anywhere.
        let dims = Dims3::new(4, 9, 9);
        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &noisy(dims));
        let p = params(2, StencilOrder::Xyz);
        let kernel = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        let plan = GatherPlan::new(&kernel, dims, Axis::X);
        for pen in pencils(dims, Axis::X) {
            assert!(!plan.pencil_can_gather());
            let mut count = 0;
            bilateral_pencil(&grid, &kernel, inv, &plan, &pen, TapConfig::exact(), |i, j, k, v| {
                assert_eq!(
                    v.to_bits(),
                    bilateral_voxel(&grid, &kernel, inv, i, j, k).to_bits()
                );
                count += 1;
                true
            });
            assert_eq!(count, pen.len);
        }
    }
}
