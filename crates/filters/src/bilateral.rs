//! The 3D bilateral filter kernel (paper §III-A).
//!
//! Output voxel `D(i)` is the normalized weighted average of the stencil
//! neighborhood, where each neighbor's weight is the product of a
//! geometric Gaussian `g` (precomputed — it depends only on offsets) and a
//! photometric Gaussian `c` of the value difference (computed per sample —
//! it depends on the data, which is what makes the filter edge-preserving
//! and more expensive than plain convolution).

use sfc_core::{SfcError, SfcResult, StencilOrder, StencilSize, Volume3};

use crate::gaussian::SpatialKernel;

/// Bilateral filter parameters.
#[derive(Debug, Clone, Copy)]
pub struct BilateralParams {
    /// Stencil radius in voxels (paper sizes: 1, 2, 5 — see
    /// [`StencilSize`]).
    pub radius: usize,
    /// Geometric (spatial) Gaussian standard deviation, in voxels.
    pub sigma_spatial: f32,
    /// Photometric (range) Gaussian standard deviation, in value units.
    pub sigma_range: f32,
    /// Stencil iteration order (paper: `xyz` friendly, `zyx` hostile).
    pub order: StencilOrder,
}

impl BilateralParams {
    /// Sensible defaults for unit-range data: `σ_s = radius/2`, `σ_r = 0.1`.
    pub fn for_size(size: StencilSize, order: StencilOrder) -> Self {
        let radius = size.radius();
        Self {
            radius,
            sigma_spatial: (radius as f32 / 2.0).max(0.5),
            sigma_range: 0.1,
            order,
        }
    }

    /// Build the precomputed spatial kernel for these parameters.
    pub fn spatial_kernel(&self) -> SpatialKernel {
        SpatialKernel::new(self.radius, self.sigma_spatial, self.order)
    }

    /// Validate the parameters, returning a typed error for sigmas that
    /// are non-positive or non-finite (CLI flags, config files).
    pub fn validate(&self) -> SfcResult<()> {
        if !(self.sigma_range > 0.0 && self.sigma_range.is_finite()) {
            return Err(SfcError::InvalidParameter {
                name: "sigma_range",
                reason: format!("range sigma must be positive and finite, got {}", self.sigma_range),
            });
        }
        if !(self.sigma_spatial > 0.0 && self.sigma_spatial.is_finite()) {
            return Err(SfcError::InvalidParameter {
                name: "sigma_spatial",
                reason: format!(
                    "spatial sigma must be positive and finite, got {}",
                    self.sigma_spatial
                ),
            });
        }
        Ok(())
    }

    /// `1 / (2 σ_r²)` — the factor the photometric exponent needs.
    ///
    /// # Panics
    /// Panics on an invalid `sigma_range`; [`BilateralParams::validate`]
    /// first when the parameters are untrusted.
    pub fn inv_two_sigma_range_sq(&self) -> f32 {
        assert!(self.sigma_range > 0.0, "range sigma must be positive");
        1.0 / (2.0 * self.sigma_range * self.sigma_range)
    }
}

/// Filter a single voxel. `inv_2sr2` is
/// [`BilateralParams::inv_two_sigma_range_sq`], hoisted by callers.
///
/// NaN voxels (corrupt data) are excluded instead of poisoning the
/// average: a NaN *neighbor* gets photometric weight 0, and a NaN *center*
/// falls back to a plain geometric average of its non-NaN neighbors (the
/// photometric difference is undefined), which repairs the voxel. Every
/// excluded NaN is counted in [`crate::counters::nan_events`]. Only if the
/// entire neighborhood is NaN does the output degrade to `0.0`.
pub fn bilateral_voxel<V: Volume3>(
    vol: &V,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    i: usize,
    j: usize,
    k: usize,
) -> f32 {
    let (value, nan_seen) = bilateral_voxel_counted(vol, kernel, inv_2sr2, i, j, k);
    crate::counters::record_nan_events(nan_seen);
    value
}

/// [`bilateral_voxel`] without the counter flush: returns the filtered
/// value and the number of NaN samples excluded. The parallel drivers use
/// this to accumulate NaN counts per pencil and touch the shared atomic
/// once per work item instead of once per voxel.
pub(crate) fn bilateral_voxel_counted<V: Volume3>(
    vol: &V,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    i: usize,
    j: usize,
    k: usize,
) -> (f32, u64) {
    bilateral_voxel_counted_mode(vol, kernel, inv_2sr2, i, j, k, crate::fastmath::WeightMode::Exact)
}

/// [`bilateral_voxel_counted`] with a selectable photometric
/// [`WeightMode`](crate::fastmath::WeightMode). `Exact` performs the
/// identical f32 operation sequence as always (bitwise-pinned); the
/// tolerance modes substitute only the weight evaluation, never the tap
/// order or the NaN bookkeeping. This is the boundary-pencil slow path,
/// so it stays scalar in every mode.
pub(crate) fn bilateral_voxel_counted_mode<V: Volume3>(
    vol: &V,
    kernel: &SpatialKernel,
    inv_2sr2: f32,
    i: usize,
    j: usize,
    k: usize,
    mode: crate::fastmath::WeightMode,
) -> (f32, u64) {
    let d = vol.dims();
    let center = vol.get(i, j, k);
    let center_nan = center.is_nan();
    let r = kernel.radius() as isize;
    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
    let interior = ii >= r
        && jj >= r
        && kk >= r
        && ii + r < d.nx as isize
        && jj + r < d.ny as isize
        && kk + r < d.nz as isize;

    let mut acc = 0.0f32;
    let mut wsum = 0.0f32;
    let mut nan_seen: u64 = u64::from(center_nan);
    let mut tap = |v: f32, wg: f32| {
        if v.is_nan() {
            nan_seen += 1;
            return;
        }
        let w = if center_nan {
            wg
        } else {
            wg * crate::fastmath::photometric_weight(v - center, inv_2sr2, mode)
        };
        acc += w * v;
        wsum += w;
    };
    if interior {
        for (&(di, dj, dk), &wg) in kernel.offsets().iter().zip(kernel.weights()) {
            let v = vol.get(
                (ii + di) as usize,
                (jj + dj) as usize,
                (kk + dk) as usize,
            );
            tap(v, wg);
        }
    } else {
        for (&(di, dj, dk), &wg) in kernel.offsets().iter().zip(kernel.weights()) {
            let v = vol.get_clamped(ii + di, jj + dj, kk + dk);
            tap(v, wg);
        }
    }
    // With a non-NaN center, wsum >= the center's own weight
    // (1 * exp(0)) > 0; it can only be 0 when every sample was NaN.
    let value = if wsum > 0.0 { acc / wsum } else { 0.0 };
    (value, nan_seen)
}

/// Single-threaded reference implementation over a row-major buffer —
/// deliberately written independently of the `Volume3`/layout machinery so
/// tests can cross-check the production kernel against it.
pub fn bilateral_reference(
    input: &[f32],
    dims: sfc_core::Dims3,
    params: &BilateralParams,
) -> Vec<f32> {
    assert_eq!(input.len(), dims.len());
    let r = params.radius as isize;
    let sw = |d2: f32| (-d2 / (2.0 * params.sigma_spatial * params.sigma_spatial)).exp();
    let cw = |d: f32| (-(d * d) / (2.0 * params.sigma_range * params.sigma_range)).exp();
    let at = |i: isize, j: isize, k: isize| -> f32 {
        let ci = i.clamp(0, dims.nx as isize - 1) as usize;
        let cj = j.clamp(0, dims.ny as isize - 1) as usize;
        let ck = k.clamp(0, dims.nz as isize - 1) as usize;
        input[ci + cj * dims.nx + ck * dims.nx * dims.ny]
    };
    let mut out = Vec::with_capacity(dims.len());
    for (i, j, k) in dims.iter() {
        let center = at(i as isize, j as isize, k as isize);
        let mut acc = 0.0f32;
        let mut wsum = 0.0f32;
        for dk in -r..=r {
            for dj in -r..=r {
                for di in -r..=r {
                    let v = at(i as isize + di, j as isize + dj, k as isize + dk);
                    let w = sw((di * di + dj * dj + dk * dk) as f32) * cw(v - center);
                    acc += w * v;
                    wsum += w;
                }
            }
        }
        out.push(acc / wsum);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc_core::{Dims3, FnVolume, Grid3, StencilOrder, ZOrder3};

    fn params(radius: usize) -> BilateralParams {
        BilateralParams {
            radius,
            sigma_spatial: 1.0,
            sigma_range: 0.1,
            order: StencilOrder::Xyz,
        }
    }

    #[test]
    fn constant_input_is_fixed_point() {
        let vol = FnVolume::new(Dims3::cube(8), |_, _, _| 0.4);
        let p = params(2);
        let k = p.spatial_kernel();
        let out = bilateral_voxel(&vol, &k, p.inv_two_sigma_range_sq(), 3, 3, 3);
        assert!((out - 0.4).abs() < 1e-6);
    }

    #[test]
    fn preserves_a_sharp_edge_better_than_it_smooths_flat_noise() {
        // Step edge along x at i = 4: values 0.0 | 1.0.
        let vol = FnVolume::new(Dims3::cube(9), |i, _, _| if i < 4 { 0.0 } else { 1.0 });
        let p = params(2);
        let k = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        // A voxel right at the edge keeps its side's value almost exactly:
        let low_side = bilateral_voxel(&vol, &k, inv, 3, 4, 4);
        let high_side = bilateral_voxel(&vol, &k, inv, 4, 4, 4);
        assert!(low_side < 0.05, "edge must be preserved, got {low_side}");
        assert!(high_side > 0.95, "edge must be preserved, got {high_side}");
    }

    #[test]
    fn large_sigma_range_approaches_plain_convolution() {
        let vol = FnVolume::new(Dims3::cube(9), |i, j, k| {
            ((i * 7 + j * 3 + k * 11) % 13) as f32 / 13.0
        });
        let p = BilateralParams {
            radius: 1,
            sigma_spatial: 1.0,
            sigma_range: 1e4, // photometric term ≈ 1 everywhere
            order: StencilOrder::Xyz,
        };
        let k = p.spatial_kernel();
        let b = bilateral_voxel(&vol, &k, p.inv_two_sigma_range_sq(), 4, 4, 4);
        let c = crate::gaussian::convolve_voxel(&vol, &k, 4, 4, 4);
        assert!((b - c).abs() < 1e-4, "bilateral {b} vs convolution {c}");
    }

    #[test]
    fn matches_reference_implementation() {
        let dims = Dims3::new(7, 6, 5);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 1000) as f32 / 1000.0)
            .collect();
        let p = params(1);
        let reference = bilateral_reference(&values, dims, &p);

        let grid = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let k = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        for (idx, (i, j, kk)) in dims.iter().enumerate() {
            let got = bilateral_voxel(&grid, &k, inv, i, j, kk);
            assert!(
                (got - reference[idx]).abs() < 1e-5,
                "mismatch at ({i},{j},{kk}): {got} vs {}",
                reference[idx]
            );
        }
    }

    #[test]
    fn nan_neighbor_is_excluded_not_propagated() {
        let before = crate::counters::nan_events();
        let vol = FnVolume::new(Dims3::cube(5), |i, j, k| {
            if (i, j, k) == (2, 2, 2) {
                f32::NAN
            } else {
                0.5
            }
        });
        let p = params(1);
        let k = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        // A voxel whose stencil covers the NaN still produces its clean value.
        let out = bilateral_voxel(&vol, &k, inv, 1, 2, 2);
        assert!((out - 0.5).abs() < 1e-6, "NaN must not leak: {out}");
        assert!(crate::counters::nan_events() > before, "event must be counted");
    }

    #[test]
    fn nan_center_is_repaired_from_neighbors() {
        let vol = FnVolume::new(Dims3::cube(5), |i, j, k| {
            if (i, j, k) == (2, 2, 2) {
                f32::NAN
            } else {
                0.7
            }
        });
        let p = params(1);
        let k = p.spatial_kernel();
        let out = bilateral_voxel(&vol, &k, p.inv_two_sigma_range_sq(), 2, 2, 2);
        assert!((out - 0.7).abs() < 1e-6, "NaN center must be repaired: {out}");
    }

    #[test]
    fn fully_nan_neighborhood_degrades_to_zero() {
        let vol = FnVolume::new(Dims3::cube(5), |_, _, _| f32::NAN);
        let p = params(1);
        let k = p.spatial_kernel();
        let out = bilateral_voxel(&vol, &k, p.inv_two_sigma_range_sq(), 2, 2, 2);
        assert_eq!(out, 0.0);
    }

    #[test]
    fn validate_rejects_bad_sigmas() {
        let mut p = params(1);
        assert!(p.validate().is_ok());
        p.sigma_range = 0.0;
        assert!(p.validate().is_err());
        p.sigma_range = f32::NAN;
        assert!(p.validate().is_err());
        p.sigma_range = 0.1;
        p.sigma_spatial = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn boundary_voxels_are_finite_and_reasonable() {
        let vol = FnVolume::new(Dims3::cube(4), |i, j, k| (i + j + k) as f32 / 9.0);
        let p = params(2); // radius larger than distance to edge
        let k = p.spatial_kernel();
        let inv = p.inv_two_sigma_range_sq();
        for (i, j, kk) in Dims3::cube(4).iter() {
            let v = bilateral_voxel(&vol, &k, inv, i, j, kk);
            assert!(v.is_finite());
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
