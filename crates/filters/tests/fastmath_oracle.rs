//! Tolerance-oracle suite for the fast photometric-weight paths.
//!
//! The exact scalar configuration ([`TapConfig::exact`]) is the bitwise
//! oracle: these tests run the full `bilateral3d` pipeline under every
//! fast configuration (LUT / polynomial exp × scalar / detected SIMD
//! tier) against it and assert
//!
//! * the maximum absolute output error stays inside a documented bound,
//! * NaN-substitution tallies are *identical* (fast paths may approximate
//!   weights, never change which taps are defective), and
//! * the exact configuration itself stays bit-for-bit frozen (checksum
//!   pin), so the fast paths can never leak into the reference result.

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, HilbertOrder3, SplitMix64, StencilOrder, ZOrder3};
use sfc_filters::{
    bilateral3d, fastmath, nan_events, reset_nan_events, BilateralParams, FilterRun, SimdTier,
    TapConfig, WeightMode,
};

/// Output error budget for the fast weight paths, in value units on
/// unit-range data. The LUT's interpolation error is ~2e-6 per weight and
/// the polynomial's relative error ~5e-7; after the weighted-average
/// normalization the end-to-end effect stays far below this.
const TOL: f32 = 1e-4;

fn values_for(dims: Dims3, seed: u64, nan_every: Option<usize>) -> Vec<f32> {
    (0..dims.len())
        .map(|v| {
            if nan_every.is_some_and(|n| v % n == 0) {
                return f32::NAN;
            }
            let mut h = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            (h % 1000) as f32 / 1000.0
        })
        .collect()
}

fn run_for(radius: usize, weight: TapConfig) -> FilterRun {
    FilterRun {
        params: BilateralParams {
            radius,
            sigma_spatial: (radius as f32 / 2.0).max(0.8),
            sigma_range: 0.1,
            order: StencilOrder::Xyz,
        },
        pencil_axis: Axis::X,
        nthreads: 2,
        weight,
    }
}

/// Run `bilateral3d` and return (row-major output, NaN-event tally).
fn filter(dims: Dims3, values: &[f32], run: &FilterRun) -> (Vec<f32>, u64) {
    let g = Grid3::<f32, ZOrder3>::from_row_major(dims, values);
    reset_nan_events();
    let out: Grid3<f32, ArrayOrder3> = bilateral3d(&g, run);
    (out.to_row_major(), nan_events())
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Every fast configuration worth distinguishing on this machine: both
/// approximate modes, forced-scalar and widest-detected tier each.
fn fast_configs() -> Vec<TapConfig> {
    let mut cfgs = Vec::new();
    for mode in [WeightMode::Lut, WeightMode::FastExp] {
        cfgs.push(TapConfig {
            mode,
            tier: SimdTier::Scalar,
        });
        let detected = TapConfig::with_mode(mode);
        if detected.tier != SimdTier::Scalar {
            cfgs.push(detected);
        }
    }
    cfgs
}

#[test]
fn lut_covers_full_quantized_range() {
    // Probe every one of the 4096 quantization cells over [0, 16] at its
    // midpoint and lower edge, plus the clamped tail, against libm exp.
    // (Constants mirror fastmath's LUT geometry.)
    let cells = 4096usize;
    let umax = 16.0f32;
    let mut max_err = 0.0f32;
    for i in 0..cells {
        for off in [0.0f32, 0.5] {
            let u = (i as f32 + off) * (umax / cells as f32);
            let err = (fastmath::exp_neg_lut(u) - (-u).exp()).abs();
            max_err = max_err.max(err);
        }
    }
    assert!(max_err <= 2.5e-6, "LUT max abs error {max_err}");
    // Tail: everything past umax clamps to the last cell, still tiny.
    for u in [umax, 20.0, 1.0e6, f32::INFINITY] {
        assert!(fastmath::exp_neg_lut(u) <= 1.2e-7, "tail at {u}");
    }
    // Polynomial over the same range.
    let mut max_rel = 0.0f32;
    for i in 0..10_000 {
        let u = i as f32 * (umax / 10_000.0);
        let want = (-u).exp();
        let rel = (fastmath::exp_neg_poly(u) - want).abs() / want;
        max_rel = max_rel.max(rel);
    }
    assert!(max_rel <= 5e-7, "poly max rel error {max_rel}");
}

#[test]
fn fast_modes_match_exact_within_tolerance_r1_r3_r5() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for radius in [1, 3, 5] {
        let dims = Dims3::new(12, 9, 8);
        let values = values_for(dims, rng.next_u64(), None);
        let (want, _) = filter(dims, &values, &run_for(radius, TapConfig::exact()));
        for cfg in fast_configs() {
            let (got, _) = filter(dims, &values, &run_for(radius, cfg));
            let err = max_abs_diff(&want, &got);
            assert!(
                err <= TOL,
                "r{radius} {:?}/{:?}: max abs err {err} > {TOL}",
                cfg.mode,
                cfg.tier
            );
        }
    }
}

#[test]
fn nan_tallies_identical_across_all_configs() {
    // Defect accounting is part of the contract: a fast weight path may
    // perturb values inside tolerance but must see exactly the same NaN
    // taps as the exact path.
    let mut rng = SplitMix64::new(0x5EED_0002);
    for (radius, nan_every) in [(1, 7), (3, 13), (5, 29)] {
        let dims = Dims3::new(11, 10, 7);
        let values = values_for(dims, rng.next_u64(), Some(nan_every));
        let (_, want_nans) = filter(dims, &values, &run_for(radius, TapConfig::exact()));
        assert!(want_nans > 0, "test vector must actually contain NaN taps");
        for cfg in fast_configs() {
            let (out, got_nans) = filter(dims, &values, &run_for(radius, cfg));
            assert_eq!(
                got_nans, want_nans,
                "r{radius} {:?}/{:?} NaN tally",
                cfg.mode, cfg.tier
            );
            for v in out {
                assert!(v.is_finite(), "NaN leaked into output under {cfg:?}");
            }
        }
    }
}

#[test]
fn exact_config_is_bitwise_frozen() {
    // Checksum pin over the exact-mode output bits for a fixed input: the
    // exact configuration is the contractual reference and must survive
    // fast-path refactors untouched. If this fails, the scalar exact
    // kernel changed behavior — that is a breaking change, not a tweak.
    let dims = Dims3::new(10, 9, 6);
    let values = values_for(dims, 0xABCD_EF01_2345_6789, None);
    let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for radius in [1, 3] {
        let (out, _) = filter(dims, &values, &run_for(radius, TapConfig::exact()));
        for v in out {
            hash ^= u64::from(v.to_bits());
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    assert_eq!(
        hash, 0x724e_6fdd_78f9_f092,
        "exact-mode output bits changed (update only if intentional)"
    );
}

#[test]
fn fast_path_agrees_on_hilbert_layout_too() {
    // The fast tap loops read through the gather plan, which is
    // layout-sensitive; make sure agreement holds over the Hilbert grid
    // (non-contiguous pencils) as well as Z-order.
    let dims = Dims3::new(9, 8, 10);
    let values = values_for(dims, 0x1357_9BDF, None);
    let g = Grid3::<f32, HilbertOrder3>::from_row_major(dims, &values);
    let exact: Grid3<f32, ArrayOrder3> = bilateral3d(&g, &run_for(3, TapConfig::exact()));
    let fast: Grid3<f32, ArrayOrder3> = bilateral3d(&g, &run_for(3, TapConfig::fast()));
    let err = max_abs_diff(&exact.to_row_major(), &fast.to_row_major());
    assert!(err <= TOL, "hilbert r3 max abs err {err}");
}
