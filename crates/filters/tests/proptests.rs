//! Property-style tests for the bilateral filter: output-range containment,
//! invariances, and agreement with the independent reference. Seeded
//! deterministic sweeps (no external property-testing dependency).

use sfc_core::{ArrayOrder3, Axis, Dims3, Grid3, SplitMix64, StencilOrder, Tiled3, ZOrder3};
use sfc_filters::{bilateral3d, bilateral_reference, BilateralParams, FilterRun};

fn small_dims(rng: &mut SplitMix64) -> Dims3 {
    Dims3::new(rng.usize_in(2, 10), rng.usize_in(2, 10), rng.usize_in(2, 10))
}

fn values_for(dims: Dims3, seed: u64) -> Vec<f32> {
    (0..dims.len())
        .map(|v| {
            let mut h = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 31;
            (h % 1000) as f32 / 1000.0
        })
        .collect()
}

fn params(radius: usize, order: StencilOrder) -> BilateralParams {
    BilateralParams {
        radius,
        sigma_spatial: 1.2,
        sigma_range: 0.15,
        order,
    }
}

#[test]
fn output_within_input_range() {
    let mut rng = SplitMix64::new(0x3001);
    for _ in 0..32 {
        // A normalized weighted average can never escape the input's range.
        let dims = small_dims(&mut rng);
        let values = values_for(dims, rng.next_u64());
        let g = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let run = FilterRun {
            params: params(1, StencilOrder::Xyz),
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 2,
        };
        let out: Grid3<f32, ArrayOrder3> = bilateral3d(&g, &run);
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in out.to_row_major() {
            assert!(v >= min - 1e-5 && v <= max + 1e-5, "{v} outside [{min},{max}]");
        }
    }
}

#[test]
fn matches_reference() {
    let mut rng = SplitMix64::new(0x3002);
    for _ in 0..32 {
        let dims = small_dims(&mut rng);
        let values = values_for(dims, rng.next_u64());
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let p = params(1, StencilOrder::Xyz);
        let run = FilterRun {
            params: p,
            pencil_axis: Axis::Y,
            weight: Default::default(),
            nthreads: 3,
        };
        let out: Grid3<f32, ArrayOrder3> = bilateral3d(&g, &run);
        let want = bilateral_reference(&values, dims, &p);
        for (got, want) in out.to_row_major().iter().zip(&want) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }
}

#[test]
fn layout_invariance() {
    let mut rng = SplitMix64::new(0x3003);
    for _ in 0..32 {
        let dims = small_dims(&mut rng);
        let values = values_for(dims, rng.next_u64());
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let t = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        let run = FilterRun {
            params: params(2, StencilOrder::Zyx),
            pencil_axis: Axis::Z,
            weight: Default::default(),
            nthreads: 2,
        };
        let oa: Grid3<f32, ArrayOrder3> = bilateral3d(&a, &run);
        let ot: Grid3<f32, ArrayOrder3> = bilateral3d(&t, &run);
        assert_eq!(oa.to_row_major(), ot.to_row_major());
    }
}

#[test]
fn permutation_of_threads_is_invisible() {
    let mut rng = SplitMix64::new(0x3004);
    for _ in 0..32 {
        let dims = small_dims(&mut rng);
        let values = values_for(dims, rng.next_u64());
        let (n1, n2) = (rng.usize_in(1, 6), rng.usize_in(1, 6));
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let p = params(1, StencilOrder::Yzx);
        let r1 = FilterRun { params: p, pencil_axis: Axis::X, nthreads: n1, weight: Default::default() };
        let r2 = FilterRun { params: p, pencil_axis: Axis::X, nthreads: n2, weight: Default::default() };
        let o1: Grid3<f32, ZOrder3> = bilateral3d(&g, &r1);
        let o2: Grid3<f32, ZOrder3> = bilateral3d(&g, &r2);
        assert_eq!(o1.to_row_major(), o2.to_row_major());
    }
}

#[test]
fn idempotent_on_constants() {
    let mut rng = SplitMix64::new(0x3005);
    for _ in 0..32 {
        let dims = small_dims(&mut rng);
        let c = rng.f32_unit();
        let g = Grid3::<f32, ArrayOrder3>::from_fn(dims, |_, _, _| c);
        let run = FilterRun {
            params: params(1, StencilOrder::Xyz),
            pencil_axis: Axis::X,
            weight: Default::default(),
            nthreads: 1,
        };
        let out: Grid3<f32, ArrayOrder3> = bilateral3d(&g, &run);
        for v in out.to_row_major() {
            assert!((v - c).abs() < 1e-5);
        }
    }
}
