//! Property tests for the log2 histogram: bucket round-trips, quantile
//! monotonicity, and merge/record equivalence, driven by a seeded
//! [`SplitMix64`] stream (the repo's stand-in for a proptest crate).

use sfc_core::SplitMix64;
use sfc_harness::metrics::{log2_bucket, log2_bucket_range, LOG2_BUCKETS};
use sfc_harness::{HistogramSnapshot, Log2Histogram};

/// Values that sit exactly on bucket edges, where an off-by-one in the
/// leading-zeros arithmetic would land them one bucket over.
fn boundary_values() -> Vec<u64> {
    let mut vals = vec![0u64, 1, 2, 3];
    for k in 1..64u32 {
        let p = 1u64 << k;
        vals.extend([p - 1, p, p + 1]);
    }
    vals.push(u64::MAX - 1);
    vals.push(u64::MAX);
    vals
}

/// A mixed stream of random magnitudes: small values are as common as
/// huge ones, so every bucket region gets exercised.
fn random_values(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let raw = rng.next_u64();
            let shift = (rng.next_u64() % 64) as u32;
            raw >> shift
        })
        .collect()
}

#[test]
fn bucket_round_trip_holds_for_boundaries_and_random_values() {
    let mut vals = boundary_values();
    vals.extend(random_values(0xB0B, 20_000));
    for v in vals {
        let b = log2_bucket(v);
        assert!(b < LOG2_BUCKETS, "bucket {b} out of range for {v}");
        let (lo, hi) = log2_bucket_range(b);
        assert!(
            lo <= v && v <= hi,
            "value {v} -> bucket {b} but range is [{lo}, {hi}]"
        );
    }
}

#[test]
fn bucket_ranges_partition_u64_exactly() {
    // Consecutive ranges must tile [0, u64::MAX] with no gap or overlap.
    let (lo0, _) = log2_bucket_range(0);
    assert_eq!(lo0, 0);
    for b in 1..LOG2_BUCKETS {
        let (_, prev_hi) = log2_bucket_range(b - 1);
        let (lo, hi) = log2_bucket_range(b);
        assert_eq!(lo, prev_hi + 1, "gap/overlap between buckets {} and {b}", b - 1);
        assert!(lo <= hi);
    }
    let (_, last_hi) = log2_bucket_range(LOG2_BUCKETS - 1);
    assert_eq!(last_hi, u64::MAX);
}

#[test]
fn quantiles_are_monotone_and_bounded_by_max() {
    for seed in [1u64, 7, 42] {
        let h = Log2Histogram::new();
        let vals = random_values(seed, 5_000);
        let true_max = vals.iter().copied().max().unwrap_or(0);
        for v in &vals {
            h.record(*v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, vals.len() as u64);
        assert_eq!(snap.max, true_max);
        let qs: Vec<u64> = (0..=20).map(|i| snap.quantile(i as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        // Every quantile is a bucket upper bound clamped by the true max.
        assert_eq!(snap.quantile(1.0), true_max);
        for (i, q) in qs.iter().enumerate() {
            assert!(
                *q <= true_max,
                "q{} = {q} exceeds max {true_max}",
                i * 5
            );
        }
    }
}

#[test]
fn quantile_is_an_upper_bound_on_the_true_percentile() {
    // The log2 quantile returns its bucket's upper bound, so it can
    // overshoot the exact order statistic but never undershoot it.
    let h = Log2Histogram::new();
    let mut vals = random_values(0xFEED, 4_001);
    for v in &vals {
        h.record(*v);
    }
    let snap = h.snapshot();
    vals.sort_unstable();
    for q in [0.5, 0.9, 0.95, 0.99] {
        let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
        let exact = vals[rank - 1];
        let est = snap.quantile(q);
        assert!(
            est >= exact,
            "q={q}: histogram estimate {est} below exact order statistic {exact}"
        );
        // And the estimate stays within the exact value's bucket (the
        // log2 error contract: at most one power of two).
        assert!(
            est <= log2_bucket_range(log2_bucket(exact)).1,
            "q={q}: estimate {est} left the exact value's bucket"
        );
    }
}

#[test]
fn merging_snapshots_equals_recording_into_one_histogram() {
    let one = Log2Histogram::new();
    let parts: Vec<Log2Histogram> = (0..4).map(|_| Log2Histogram::new()).collect();
    let mut rng = SplitMix64::new(0xCAFE);
    for i in 0..10_000usize {
        let v = rng.next_u64() >> (rng.next_u64() % 64);
        one.record(v);
        parts[i % parts.len()].record(v);
    }
    let mut merged = HistogramSnapshot::default();
    for p in &parts {
        merged.merge(&p.snapshot());
    }
    assert_eq!(merged, one.snapshot(), "merge must equal single-histogram recording");
}

#[test]
fn delta_undoes_merge() {
    let h = Log2Histogram::new();
    let mut rng = SplitMix64::new(3);
    for _ in 0..500 {
        h.record(rng.next_u64() >> 40);
    }
    let before = h.snapshot();
    for _ in 0..500 {
        h.record(rng.next_u64() >> 40);
    }
    let after = h.snapshot();
    let d = after.delta(&before);
    assert_eq!(d.count, 500);
    let mut rebuilt = before;
    rebuilt.merge(&d);
    // max is tracked as a high-water mark, so delta keeps the later max;
    // everything else must round-trip exactly.
    assert_eq!(rebuilt.buckets, after.buckets);
    assert_eq!(rebuilt.count, after.count);
    assert_eq!(rebuilt.sum, after.sum);
}
