//! Proves the metrics hot path is allocation-free: after registration,
//! recording into counters, gauges, and histograms performs no heap
//! allocation (relaxed atomics only). Uses a counting `#[global_allocator]`
//! wrapper, which is why this lives in its own integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sfc_harness::{metrics, LazyCounter, LazyGauge, LazyHistogram};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static COUNTER: LazyCounter = LazyCounter::new("alloc_test.counter");
static GAUGE: LazyGauge = LazyGauge::new("alloc_test.gauge");
static HISTOGRAM: LazyHistogram = LazyHistogram::new("alloc_test.histogram");

#[test]
fn recording_allocates_nothing_after_registration() {
    // Registration itself may allocate (name strings, leaked storage):
    // force it, plus a first record through every code path, before
    // opening the measurement window.
    COUNTER.add(1);
    GAUGE.set(1);
    HISTOGRAM.record(1);
    HISTOGRAM.record_duration_us(Duration::from_micros(3));
    let direct_counter = metrics::counter("alloc_test.direct");
    let direct_hist = metrics::histogram("alloc_test.direct_hist");
    direct_counter.add(1);
    direct_hist.record(1);

    // The counter is process-wide, so unrelated one-time lazy init (test
    // harness buffers) can dirty a single window. A hot-path allocation
    // would fire on every one of the 100k iterations in EVERY window, so
    // requiring one clean window out of several is still a strict proof.
    let mut min_allocs = u64::MAX;
    for _attempt in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 0..100_000u64 {
            COUNTER.add(1);
            GAUGE.set(i as i64);
            HISTOGRAM.record(i * 31);
            HISTOGRAM.record_duration_us(Duration::from_nanos(i));
            direct_counter.add(2);
            direct_hist.record(i);
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        min_allocs = min_allocs.min(after - before);
        if min_allocs == 0 {
            break;
        }
    }

    assert_eq!(
        min_allocs, 0,
        "metrics hot path allocated {min_allocs} times in every 100k-iteration window"
    );
    assert!(COUNTER.value() >= 100_001);
    assert!(HISTOGRAM.handle().snapshot().count >= 200_002);
}
