//! Paper-style result tables: labeled rows × a concurrency sweep.
//!
//! The paper's figures 2, 3, 5 and 6 are grids of `ds` values with test
//! configurations as rows and thread counts as columns. [`PaperTable`]
//! renders that shape as aligned text, Markdown, or CSV.

/// A rows × columns table of `f64` measurements with labels.
#[derive(Debug, Clone)]
pub struct PaperTable {
    /// Table title (e.g. `"Runtime"` or `"Total L3 Cache Accesses"`).
    pub title: String,
    /// Label of the row-name column (e.g. `"config"` or `"viewpoint"`).
    pub row_header: String,
    /// Row labels, one per row.
    pub row_labels: Vec<String>,
    /// Column labels (e.g. thread counts).
    pub col_labels: Vec<String>,
    /// Cell values, `cells[row][col]`.
    pub cells: Vec<Vec<f64>>,
}

impl PaperTable {
    /// Create an empty (NaN-filled) table of the given shape.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        row_labels: Vec<String>,
        col_labels: Vec<String>,
    ) -> Self {
        let cells = vec![vec![f64::NAN; col_labels.len()]; row_labels.len()];
        Self {
            title: title.into(),
            row_header: row_header.into(),
            row_labels,
            col_labels,
            cells,
        }
    }

    /// Set one cell.
    ///
    /// # Panics
    /// Panics if `row`/`col` are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.cells[row][col] = value;
    }

    /// Get one cell.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.cells[row][col]
    }

    fn format_cell(value: f64, precision: usize) -> String {
        if value.is_nan() {
            "n/a".to_string()
        } else {
            format!("{value:.precision$}")
        }
    }

    /// Render as an aligned plain-text table.
    pub fn render_text(&self, precision: usize) -> String {
        let mut col_widths: Vec<usize> =
            self.col_labels.iter().map(|l| l.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &v)| {
                        let s = Self::format_cell(v, precision);
                        col_widths[c] = col_widths[c].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let label_width = self
            .row_labels
            .iter()
            .map(|l| l.len())
            .chain([self.row_header.len()])
            .max()
            .unwrap_or(0);

        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("{:<label_width$}", self.row_header));
        for (c, l) in self.col_labels.iter().enumerate() {
            out.push_str(&format!("  {:>width$}", l, width = col_widths[c]));
        }
        out.push('\n');
        for (r, label) in self.row_labels.iter().enumerate() {
            out.push_str(&format!("{label:<label_width$}"));
            for (c, cell) in rendered[r].iter().enumerate() {
                out.push_str(&format!("  {:>width$}", cell, width = col_widths[c]));
            }
            out.push('\n');
        }
        out
    }

    /// Render as GitHub-flavored Markdown.
    pub fn render_markdown(&self, precision: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.row_header));
        for l in &self.col_labels {
            out.push_str(&format!(" {l} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.col_labels {
            out.push_str("---|");
        }
        out.push('\n');
        for (r, label) in self.row_labels.iter().enumerate() {
            out.push_str(&format!("| {label} |"));
            for &v in &self.cells[r] {
                out.push_str(&format!(" {} |", Self::format_cell(v, precision)));
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (title omitted; header row then data rows).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_header);
        for l in &self.col_labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for (r, label) in self.row_labels.iter().enumerate() {
            out.push_str(label);
            for &v in &self.cells[r] {
                out.push(',');
                if v.is_nan() {
                    out.push_str("nan");
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PaperTable {
        let mut t = PaperTable::new(
            "Runtime",
            "config",
            vec!["r1 px xyz".into(), "r5 pz zyx".into()],
            vec!["2".into(), "24".into()],
        );
        t.set(0, 0, -0.02);
        t.set(0, 1, -0.06);
        t.set(1, 0, 2.23);
        t.set(1, 1, 2.31);
        t
    }

    #[test]
    fn text_rendering_contains_all_cells() {
        let s = sample().render_text(2);
        assert!(s.contains("# Runtime"));
        assert!(s.contains("r1 px xyz"));
        assert!(s.contains("-0.02"));
        assert!(s.contains("2.31"));
        // Header contains both thread counts.
        let header = s.lines().nth(1).unwrap();
        assert!(header.contains('2') && header.contains("24"));
    }

    #[test]
    fn markdown_has_separator_row() {
        let s = sample().render_markdown(2);
        assert!(s.contains("|---|---|---|"));
        assert!(s.contains("| r5 pz zyx | 2.23 | 2.31 |"));
    }

    #[test]
    fn csv_roundtrip_values() {
        let s = sample().render_csv();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines[0], "config,2,24");
        assert_eq!(lines[1], "r1 px xyz,-0.02,-0.06");
    }

    #[test]
    fn unset_cells_render_na() {
        let t = PaperTable::new("X", "r", vec!["a".into()], vec!["c".into()]);
        assert!(t.render_text(2).contains("n/a"));
        assert!(t.render_csv().contains("nan"));
    }

    #[test]
    fn get_set() {
        let mut t = sample();
        t.set(1, 1, 9.5);
        assert_eq!(t.get(1, 1), 9.5);
    }
}
