//! Deadline-aware admission control and the brownout quality record.
//!
//! The supervised/degraded layers (PR 3–4) keep a run *correct* under
//! faults, but nothing bounds its *wall-clock* behaviour: a timeout storm
//! or an oversubscribed machine makes a sweep run arbitrarily long at
//! full quality. This module provides the control-plane vocabulary for
//! [`ExecPolicy::Brownout`](crate::ExecPolicy::Brownout), which trades
//! per-unit output quality for latency instead:
//!
//! * a [`DeadlineBudget`] — an optional wall-clock budget for the whole
//!   run plus the knobs of the per-unit control loop (EWMA smoothing,
//!   soft-deadline headroom, circuit-breaker threshold, AIMD floor);
//! * a [`DeadlineController`] — the runtime state: an online EWMA of unit
//!   latency (observed over successes *and* failed attempts, so a stall
//!   storm raises it), an AIMD limit on effective concurrency (additive
//!   +1 per on-time unit, halved when a unit overruns its soft deadline
//!   `EWMA × headroom`), a per-unit failed-attempt counter (the circuit
//!   breaker), and the admission decision combining them;
//! * a [`QualityMap`] — the mirror of
//!   [`DefectMap`](crate::degrade::DefectMap) for *quality*: every unit
//!   that was computed below full quality is recorded with its ladder
//!   level and a [`DowngradeReason`], so callers can see exactly what the
//!   deadline bought and what it cost.
//!
//! The invariant the engine builds on: with no budget and no failures the
//! controller admits every unit at level 0 (full quality), so a brownout
//! run is bitwise-identical to a plain one.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use sfc_core::{SfcError, SfcResult};

use crate::metrics::{LazyCounter, LazyGauge};
use crate::supervise::CancelToken;

// Process-wide mirrors of the per-run controller state, on the metrics
// plane: every controller folds its events into these as they happen
// (one relaxed atomic each), so brownout decisions are observable
// across runs, not only in per-run QualityMaps.
static SHED_TOTAL: LazyCounter = LazyCounter::new("deadline.shed");
static DOWNGRADES_TOTAL: LazyCounter = LazyCounter::new("deadline.downgrades");
static BREAKER_TOTAL: LazyCounter = LazyCounter::new("deadline.breaker_trips");
static OVERRUNS_TOTAL: LazyCounter = LazyCounter::new("deadline.overruns");
static EWMA_GAUGE: LazyGauge = LazyGauge::new("deadline.ewma_us");
static WINDOW_GAUGE: LazyGauge = LazyGauge::new("deadline.window");

/// Wall-clock budget and control-loop knobs for a brownout run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineBudget {
    /// Wall-clock budget for the whole run. `None` disables deadline
    /// pressure and shedding — only the circuit breaker can then downgrade
    /// a unit (and only after failed attempts).
    pub budget: Option<Duration>,
    /// Smoothing factor of the online unit-latency EWMA, in `(0, 1]`
    /// (higher = reacts faster to a latency shift).
    pub ewma_alpha: f64,
    /// A unit's *soft deadline* is `EWMA × soft_deadline_factor`; an
    /// attempt that takes longer counts as an overrun and halves the AIMD
    /// concurrency limit.
    pub soft_deadline_factor: f64,
    /// Failed attempts after which a unit's circuit breaker trips: further
    /// attempts are admitted straight at degraded quality instead of
    /// retrying the full-quality computation.
    pub breaker_threshold: u32,
    /// Floor of the AIMD effective-concurrency limit.
    pub min_concurrency: usize,
}

impl Default for DeadlineBudget {
    fn default() -> Self {
        Self {
            budget: None,
            ewma_alpha: 0.2,
            soft_deadline_factor: 4.0,
            breaker_threshold: 2,
            min_concurrency: 1,
        }
    }
}

impl DeadlineBudget {
    /// No deadline pressure: admit everything at full quality unless the
    /// circuit breaker trips.
    pub fn none() -> Self {
        Self::default()
    }

    /// The default control loop under a wall-clock budget.
    pub fn with_budget(budget: Duration) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }
}

/// Why a unit was computed below full quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DowngradeReason {
    /// Deadline pressure: the projected completion of the remaining units
    /// (EWMA × remaining / effective concurrency) exceeded the remaining
    /// budget, so healthy units were coarsened to catch up.
    Pressure,
    /// The unit's circuit breaker tripped after repeated failed attempts;
    /// it was admitted straight at degraded quality instead of retried at
    /// full quality.
    Breaker,
    /// The unit arrived after the hard deadline and was shed from the
    /// admission queue; the repair pass recomputed it at the deepest
    /// ladder level.
    Shed,
}

impl fmt::Display for DowngradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DowngradeReason::Pressure => write!(f, "pressure"),
            DowngradeReason::Breaker => write!(f, "breaker"),
            DowngradeReason::Shed => write!(f, "shed"),
        }
    }
}

/// One unit computed below full quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityEntry {
    /// Unit index (pencil id, tile id, …).
    pub unit: usize,
    /// Ladder level the committed output was computed at (1 = one rung
    /// below full quality; 0 never appears in the map).
    pub level: u8,
    /// What forced the downgrade.
    pub reason: DowngradeReason,
}

/// A typed record of quality downgrades for one brownout run — the
/// quality-plane mirror of [`DefectMap`](crate::degrade::DefectMap):
/// where a defect map says which units are *untrustworthy*, a quality map
/// says which units are *valid but coarser than asked for*. At most one
/// entry per unit (the level of the committed output), sorted by unit.
#[derive(Debug, Clone, Default)]
pub struct QualityMap {
    unit_kind: &'static str,
    nunits: usize,
    entries: Vec<QualityEntry>,
}

impl QualityMap {
    /// An all-full-quality map over `nunits` units of `unit_kind`.
    pub fn new(unit_kind: &'static str, nunits: usize) -> Self {
        Self {
            unit_kind,
            nunits,
            entries: Vec::new(),
        }
    }

    /// Record that `unit`'s committed output was computed at `level`.
    /// Level 0 clears the entry instead (the unit is back at full
    /// quality, e.g. after a full-quality repair); re-recording a unit
    /// replaces its previous entry — the map describes the *final* bytes.
    pub fn record(&mut self, unit: usize, level: u8, reason: DowngradeReason) {
        if level == 0 {
            self.clear(unit);
            return;
        }
        match self.entries.binary_search_by_key(&unit, |e| e.unit) {
            Ok(at) => self.entries[at] = QualityEntry { unit, level, reason },
            Err(at) => self.entries.insert(at, QualityEntry { unit, level, reason }),
        }
    }

    /// Remove `unit`'s entry (its final output is full quality).
    pub fn clear(&mut self, unit: usize) {
        if let Ok(at) = self.entries.binary_search_by_key(&unit, |e| e.unit) {
            self.entries.remove(at);
        }
    }

    /// True when every unit was computed at full quality.
    pub fn is_full_quality(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of downgraded units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no unit was downgraded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of units in the run.
    pub fn nunits(&self) -> usize {
        self.nunits
    }

    /// What a unit is ("pencil", "tile").
    pub fn unit_kind(&self) -> &'static str {
        self.unit_kind
    }

    /// The downgraded unit indices, sorted ascending.
    pub fn units(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.unit).collect()
    }

    /// The ladder level `unit` was committed at (`None` = full quality).
    pub fn level_of(&self, unit: usize) -> Option<u8> {
        self.entries
            .binary_search_by_key(&unit, |e| e.unit)
            .ok()
            .map(|at| self.entries[at].level)
    }

    /// Whether `unit` was downgraded.
    pub fn contains(&self, unit: usize) -> bool {
        self.level_of(unit).is_some()
    }

    /// All entries, sorted by unit.
    pub fn entries(&self) -> &[QualityEntry] {
        &self.entries
    }

    /// The deepest ladder level in the map (0 for a full-quality map).
    pub fn max_level(&self) -> u8 {
        self.entries.iter().map(|e| e.level).max().unwrap_or(0)
    }
}

impl fmt::Display for QualityMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_full_quality() {
            return write!(f, "full quality ({} {}s)", self.nunits, self.unit_kind);
        }
        write!(
            f,
            "{} of {} {}s downgraded: ",
            self.entries.len(),
            self.nunits,
            self.unit_kind
        )?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{} {}: level {} ({})", self.unit_kind, e.unit, e.level, e.reason)?;
        }
        Ok(())
    }
}

/// What the controller decided for a unit about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Compute at full quality.
    Full,
    /// Compute at ladder level `level` (recorded with `reason`).
    Degraded {
        /// Ladder level to compute at.
        level: u8,
        /// What forced the downgrade.
        reason: DowngradeReason,
    },
    /// Past the hard deadline: do not compute; the unit is shed to the
    /// degraded-quality repair pass.
    Shed,
}

/// Runtime state of one brownout run's deadline control loop. Shared by
/// every worker thread; all state is atomic.
#[derive(Debug)]
pub(crate) struct DeadlineController {
    cfg: DeadlineBudget,
    start: Instant,
    nunits: usize,
    nthreads: usize,
    max_level: u8,
    /// f64 bits of the latency EWMA in microseconds; `u64::MAX` = unset.
    ewma_us: AtomicU64,
    /// Units successfully committed so far.
    committed: AtomicUsize,
    /// AIMD effective-concurrency limit in `[min_concurrency, nthreads]`.
    limit: AtomicUsize,
    /// Units currently holding an admission slot.
    inflight: AtomicUsize,
    /// Soft-deadline overruns observed (each one halves `limit`).
    overruns: AtomicUsize,
    /// Units shed past the hard deadline.
    shed: AtomicUsize,
    /// Per-unit failed-attempt counts (the circuit breaker's memory).
    failures: Vec<AtomicU32>,
}

/// RAII admission slot: holding one counts against the AIMD limit.
pub(crate) struct SlotGuard<'a>(&'a DeadlineController);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

const EWMA_UNSET: u64 = u64::MAX;

impl DeadlineController {
    pub(crate) fn new(
        cfg: &DeadlineBudget,
        nunits: usize,
        nthreads: usize,
        max_level: u8,
    ) -> Self {
        let nthreads = nthreads.max(1);
        Self {
            cfg: *cfg,
            start: Instant::now(),
            nunits,
            nthreads,
            max_level,
            ewma_us: AtomicU64::new(EWMA_UNSET),
            committed: AtomicUsize::new(0),
            limit: AtomicUsize::new(nthreads),
            inflight: AtomicUsize::new(0),
            overruns: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            failures: (0..nunits).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// The current latency EWMA in microseconds, if any unit has finished.
    fn ewma(&self) -> Option<f64> {
        match self.ewma_us.load(Ordering::Relaxed) {
            EWMA_UNSET => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Fold one observed attempt latency into the EWMA (lock-free CAS).
    fn observe(&self, elapsed: Duration) {
        let sample = elapsed.as_secs_f64() * 1e6;
        let mut cur = self.ewma_us.load(Ordering::Relaxed);
        loop {
            let next = if cur == EWMA_UNSET {
                sample
            } else {
                let prev = f64::from_bits(cur);
                prev + self.cfg.ewma_alpha * (sample - prev)
            };
            match self.ewma_us.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    EWMA_GAUGE.set(next as i64);
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// The per-unit soft deadline (`EWMA × headroom`), once an EWMA exists.
    fn soft_deadline(&self) -> Option<Duration> {
        self.ewma()
            .map(|us| Duration::from_secs_f64(us * self.cfg.soft_deadline_factor / 1e6))
    }

    /// Ladder level demanded by deadline pressure alone: 0 while the
    /// projected completion of the remaining units fits the remaining
    /// budget, then one level per doubling of the overshoot ratio.
    fn pressure_level(&self) -> u8 {
        let Some(budget) = self.cfg.budget else {
            return 0;
        };
        let Some(ewma_us) = self.ewma() else {
            return 0; // nothing observed yet: no basis for pressure
        };
        let remaining = budget.saturating_sub(self.start.elapsed());
        if remaining.is_zero() {
            return self.max_level;
        }
        let remaining_units = self
            .nunits
            .saturating_sub(self.committed.load(Ordering::Relaxed))
            .max(1);
        let concurrency = self.limit.load(Ordering::Relaxed).max(1);
        let projected_us = ewma_us * remaining_units as f64 / concurrency as f64;
        let ratio = projected_us / (remaining.as_secs_f64() * 1e6);
        if ratio <= 1.0 {
            0
        } else {
            // ratio in (1,2] → 1 rung, (2,4] → 2, … capped at the ladder.
            (ratio.log2().ceil() as u64).min(u64::from(self.max_level)) as u8
        }
    }

    /// Decide what to do with `unit` before an attempt runs. Called before
    /// the admission slot is acquired so a shed unit never waits for one.
    pub(crate) fn admit(&self, unit: usize) -> Admission {
        if let Some(budget) = self.cfg.budget {
            if self.start.elapsed() >= budget {
                self.shed.fetch_add(1, Ordering::Relaxed);
                SHED_TOTAL.add(1);
                return Admission::Shed;
            }
        }
        let tripped = self.max_level > 0
            && self.failures[unit].load(Ordering::Relaxed) >= self.cfg.breaker_threshold;
        let pressure = self.pressure_level();
        let level = if tripped { pressure.max(1) } else { pressure };
        let level = level.min(self.max_level);
        if level == 0 {
            Admission::Full
        } else {
            DOWNGRADES_TOTAL.add(1);
            if tripped {
                BREAKER_TOTAL.add(1);
            }
            Admission::Degraded {
                level,
                reason: if tripped {
                    DowngradeReason::Breaker
                } else {
                    DowngradeReason::Pressure
                },
            }
        }
    }

    /// Block until an admission slot is free (effective concurrency below
    /// the AIMD limit), or until the attempt's cancel token fires. The
    /// hard deadline is re-checked on every poll: a storm can throttle the
    /// limit to 1 and park admitted units here, and without the re-check
    /// each of them would still burn a full watchdog period *serially*
    /// after the budget is already gone.
    pub(crate) fn acquire<'a>(
        &'a self,
        unit: usize,
        token: &CancelToken,
    ) -> SfcResult<SlotGuard<'a>> {
        loop {
            token.bail(unit)?;
            if let Some(budget) = self.cfg.budget {
                if self.start.elapsed() >= budget {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    SHED_TOTAL.add(1);
                    return Err(SfcError::Cancelled { item: unit });
                }
            }
            let cur = self.inflight.load(Ordering::Acquire);
            if cur < self.limit.load(Ordering::Acquire)
                && self
                    .inflight
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Ok(SlotGuard(self));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Account a successful commit: fold the latency into the EWMA, bump
    /// the completion count, and run the AIMD step (additive +1 on an
    /// on-time unit, multiplicative halving on a soft-deadline overrun).
    pub(crate) fn on_success(&self, elapsed: Duration) {
        let soft = self.soft_deadline();
        self.observe(elapsed);
        self.committed.fetch_add(1, Ordering::Relaxed);
        match soft {
            Some(soft) if elapsed > soft => self.throttle(),
            _ => {
                let cap = self.nthreads;
                let _ = self
                    .limit
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |l| {
                        (l < cap).then_some(l + 1)
                    });
                WINDOW_GAUGE.set(self.limit.load(Ordering::Relaxed) as i64);
            }
        }
    }

    /// Account a failed attempt (error, panic, timeout): feed the circuit
    /// breaker, fold the burnt wall-clock into the EWMA so storms raise
    /// it, and halve the concurrency limit.
    pub(crate) fn on_failed_attempt(&self, unit: usize, elapsed: Duration) {
        self.failures[unit].fetch_add(1, Ordering::Relaxed);
        self.observe(elapsed);
        self.throttle();
    }

    /// Multiplicative decrease of the AIMD limit.
    fn throttle(&self) {
        self.overruns.fetch_add(1, Ordering::Relaxed);
        OVERRUNS_TOTAL.add(1);
        let floor = self.cfg.min_concurrency.max(1);
        let _ = self
            .limit
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |l| {
                let next = (l / 2).max(floor);
                (next != l).then_some(next)
            });
        WINDOW_GAUGE.set(self.limit.load(Ordering::Relaxed) as i64);
    }

    /// Ladder level for the faults-off repair pass: full quality while the
    /// budget (if any) has wall-clock left, the deepest rung once it is
    /// exhausted — repairing shed units at full quality would blow the
    /// very deadline that shed them.
    pub(crate) fn repair_level(&self) -> u8 {
        match self.cfg.budget {
            Some(budget) if self.start.elapsed() >= budget => self.max_level,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_map_records_sorts_and_replaces() {
        let mut q = QualityMap::new("tile", 64);
        assert!(q.is_full_quality() && q.is_empty());
        assert_eq!(q.to_string(), "full quality (64 tiles)");
        q.record(9, 2, DowngradeReason::Pressure);
        q.record(3, 1, DowngradeReason::Breaker);
        q.record(9, 3, DowngradeReason::Shed); // replaces the first entry
        assert_eq!(q.units(), vec![3, 9]);
        assert_eq!(q.level_of(9), Some(3));
        assert_eq!(q.level_of(4), None);
        assert!(q.contains(3) && !q.contains(4));
        assert_eq!(q.max_level(), 3);
        assert_eq!(q.len(), 2);
        let s = q.to_string();
        assert!(s.contains("tile 3: level 1 (breaker)"), "{s}");
        assert!(s.contains("tile 9: level 3 (shed)"), "{s}");
        q.record(9, 0, DowngradeReason::Pressure); // level 0 clears
        assert_eq!(q.units(), vec![3]);
        q.clear(3);
        assert!(q.is_full_quality());
    }

    #[test]
    fn no_budget_and_no_failures_admits_full_quality() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 100, 4, 3);
        for unit in 0..100 {
            assert_eq!(ctl.admit(unit), Admission::Full);
        }
        // Even with latency observed, no budget means no pressure.
        ctl.on_success(Duration::from_millis(50));
        assert_eq!(ctl.admit(0), Admission::Full);
    }

    #[test]
    fn breaker_trips_after_threshold_failures() {
        let cfg = DeadlineBudget {
            breaker_threshold: 2,
            ..DeadlineBudget::none()
        };
        let ctl = DeadlineController::new(&cfg, 10, 2, 3);
        assert_eq!(ctl.admit(7), Admission::Full);
        ctl.on_failed_attempt(7, Duration::from_millis(1));
        assert_eq!(ctl.admit(7), Admission::Full); // 1 < threshold
        ctl.on_failed_attempt(7, Duration::from_millis(1));
        assert_eq!(
            ctl.admit(7),
            Admission::Degraded {
                level: 1,
                reason: DowngradeReason::Breaker
            }
        );
        // Other units are unaffected.
        assert_eq!(ctl.admit(8), Admission::Full);
    }

    #[test]
    fn breaker_is_inert_without_a_ladder() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 4, 2, 0);
        ctl.on_failed_attempt(1, Duration::from_millis(1));
        ctl.on_failed_attempt(1, Duration::from_millis(1));
        ctl.on_failed_attempt(1, Duration::from_millis(1));
        assert_eq!(ctl.admit(1), Admission::Full);
    }

    #[test]
    fn exhausted_budget_sheds() {
        let cfg = DeadlineBudget::with_budget(Duration::from_millis(1));
        let ctl = DeadlineController::new(&cfg, 10, 2, 3);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(ctl.admit(0), Admission::Shed);
        assert_eq!(ctl.repair_level(), 3);
    }

    #[test]
    fn projected_overrun_applies_pressure() {
        let cfg = DeadlineBudget::with_budget(Duration::from_secs(1));
        let ctl = DeadlineController::new(&cfg, 1000, 1, 3);
        // EWMA ~50 ms per unit, ~1000 units remaining on one slot:
        // projected ≈ 50 s against a 1 s budget → deepest rung.
        ctl.on_success(Duration::from_millis(50));
        match ctl.admit(1) {
            Admission::Degraded {
                level,
                reason: DowngradeReason::Pressure,
            } => assert!(level >= 1),
            other => panic!("expected pressure downgrade, got {other:?}"),
        }
    }

    #[test]
    fn aimd_halves_on_failure_and_recovers_additively() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 100, 8, 2);
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 8);
        ctl.on_failed_attempt(0, Duration::from_millis(10));
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 4);
        ctl.on_failed_attempt(1, Duration::from_millis(10));
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 2);
        // Fast (on-time) completions recover the limit one step at a time.
        ctl.on_success(Duration::from_millis(1));
        ctl.on_success(Duration::from_millis(1));
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 4);
        for _ in 0..10 {
            ctl.on_success(Duration::from_millis(1));
        }
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 8); // capped at nthreads
    }

    #[test]
    fn soft_deadline_overrun_throttles() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 100, 4, 2);
        ctl.on_success(Duration::from_millis(2)); // establishes EWMA ≈ 2 ms
        // 2 ms EWMA × factor 4 = 8 ms soft deadline; 100 ms blows it.
        ctl.on_success(Duration::from_millis(100));
        assert_eq!(ctl.limit.load(Ordering::Relaxed), 2);
        assert_eq!(ctl.overruns.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn slots_gate_effective_concurrency() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 10, 2, 0);
        let token = CancelToken::new();
        let a = ctl.acquire(0, &token).unwrap();
        let _b = ctl.acquire(1, &token).unwrap();
        assert_eq!(ctl.inflight.load(Ordering::Relaxed), 2);
        // Both slots taken: a cancelled waiter bails instead of spinning.
        let blocked = CancelToken::new();
        blocked.cancel();
        assert!(ctl.acquire(2, &blocked).is_err());
        drop(a);
        assert_eq!(ctl.inflight.load(Ordering::Relaxed), 1);
        let _c = ctl.acquire(3, &token).unwrap();
    }

    #[test]
    fn repair_level_is_full_quality_inside_the_budget() {
        let ctl = DeadlineController::new(&DeadlineBudget::none(), 4, 1, 3);
        assert_eq!(ctl.repair_level(), 0);
        let cfg = DeadlineBudget::with_budget(Duration::from_secs(3600));
        let ctl = DeadlineController::new(&cfg, 4, 1, 3);
        assert_eq!(ctl.repair_level(), 0);
    }
}
