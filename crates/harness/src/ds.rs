//! The paper's "scaled, relative difference" metric (§IV-B2).
//!
//! With `a` the array-order measurement and `z` the Z-order measurement,
//!
//! ```text
//! ds = (a − z) / z
//! ```
//!
//! `ds > 0` means array order measured *higher* (Z-order wins for
//! lower-is-better quantities like runtime or miss counts); `ds = 1.0` is
//! a 100 % difference, `ds = 10.0` a 1000 % difference.

/// Compute `ds = (a - z) / z`. Returns `NaN` when `z == 0` and `a == 0`,
/// and `±INFINITY` when only `z == 0` — callers format those explicitly.
pub fn scaled_relative_difference(a: f64, z: f64) -> f64 {
    (a - z) / z
}

/// Format a `ds` value the way the paper's figures print cells
/// (two decimals, explicit sign for negatives via the standard formatter).
pub fn format_ds(ds: f64) -> String {
    if ds.is_nan() {
        "  n/a".to_string()
    } else if ds.is_infinite() {
        if ds > 0.0 { "  inf" } else { " -inf" }.to_string()
    } else {
        format!("{ds:5.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interpretation() {
        // ds = 0.1 → 10% difference; 1.0 → 100%; 10.0 → 1000%.
        assert!((scaled_relative_difference(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((scaled_relative_difference(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((scaled_relative_difference(11.0, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn negative_when_array_order_wins() {
        assert!(scaled_relative_difference(0.9, 1.0) < 0.0);
    }

    #[test]
    fn zero_when_equal() {
        assert_eq!(scaled_relative_difference(5.0, 5.0), 0.0);
    }

    #[test]
    fn degenerate_cases() {
        assert!(scaled_relative_difference(0.0, 0.0).is_nan());
        assert!(scaled_relative_difference(1.0, 0.0).is_infinite());
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ds(0.27), " 0.27");
        assert_eq!(format_ds(-0.02), "-0.02");
        assert_eq!(format_ds(131.43), "131.43");
        assert_eq!(format_ds(f64::NAN), "  n/a");
        assert_eq!(format_ds(f64::INFINITY), "  inf");
    }
}
