//! Client-side retry pacing: decorrelated-jitter backoff and a
//! token-bucket retry budget.
//!
//! Both primitives exist so a fleet of clients retrying against a dying
//! server *spreads out* instead of synchronizing into a retry storm:
//!
//! * [`DecorrelatedJitter`] implements the "decorrelated jitter" schedule
//!   (Brooker, AWS Architecture Blog 2015): each delay is drawn uniformly
//!   from `[base, prev * 3]` and clamped to `cap`, so consecutive retries
//!   from one client drift apart and retries from *different* clients
//!   (different seeds) never align. The sequence is deterministic per
//!   seed — chaos tests can pin it.
//! * [`RetryBudget`] is the gRPC-style retry throttle: a bucket that
//!   spends one token per retry and refills a *fraction* of a token per
//!   success. When the server is healthy, successes keep the bucket full
//!   and every transient is retried; when the server is dying, successes
//!   stop, the bucket drains, and the client fleet collectively backs
//!   down to first-attempts-only instead of multiplying the load.

use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

use sfc_core::SplitMix64;

/// Decorrelated-jitter backoff schedule (deterministic per seed).
#[derive(Debug, Clone)]
pub struct DecorrelatedJitter {
    rng: SplitMix64,
    base: Duration,
    cap: Duration,
    prev: Duration,
}

impl DecorrelatedJitter {
    /// A schedule starting at `base`, clamped to `cap`.
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        DecorrelatedJitter {
            rng: SplitMix64::new(seed),
            base,
            cap: cap.max(base),
            prev: base,
        }
    }

    /// The next delay: uniform in `[base, prev * 3]`, clamped to `cap`.
    pub fn next_delay(&mut self) -> Duration {
        let base_us = self.base.as_micros() as u64;
        let hi_us = (self.prev.as_micros() as u64)
            .saturating_mul(3)
            .clamp(base_us.saturating_add(1), self.cap.as_micros() as u64 + 1);
        let span = hi_us - base_us;
        let us = base_us + self.rng.u64_below(span.max(1));
        self.prev = Duration::from_micros(us).min(self.cap);
        self.prev
    }

    /// Restart the schedule at `base` (call after a success).
    pub fn reset(&mut self) {
        self.prev = self.base;
    }
}

/// Token-bucket retry budget shared by every request on a client
/// (thread-safe; tokens are stored in millitoken granularity).
#[derive(Debug)]
pub struct RetryBudget {
    /// Millitokens currently available.
    tokens: AtomicI64,
    /// Bucket capacity in millitokens.
    cap: i64,
    /// Millitokens refunded per observed success.
    refill: i64,
}

impl RetryBudget {
    /// A budget holding `cap` retry tokens, refilled `per_success`
    /// tokens (fractional; e.g. `0.1`) on every success. The bucket
    /// starts full.
    pub fn new(cap: f64, per_success: f64) -> Self {
        let cap_mt = (cap.max(0.0) * 1000.0) as i64;
        RetryBudget {
            tokens: AtomicI64::new(cap_mt),
            cap: cap_mt,
            refill: (per_success.max(0.0) * 1000.0) as i64,
        }
    }

    /// Record a success: refund a fraction of a token, up to the cap.
    pub fn on_success(&self) {
        let prev = self.tokens.fetch_add(self.refill, Ordering::Relaxed);
        if prev + self.refill > self.cap {
            self.tokens.store(self.cap, Ordering::Relaxed);
        }
    }

    /// Try to spend one retry token. Returns `false` (and spends
    /// nothing) when the bucket is empty — the caller must not retry.
    pub fn try_spend(&self) -> bool {
        let mut cur = self.tokens.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                return false;
            }
            match self.tokens.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whole retry tokens currently available.
    pub fn available(&self) -> u64 {
        (self.tokens.load(Ordering::Relaxed).max(0) / 1000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_within_base_and_cap() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_millis(200);
        let mut j = DecorrelatedJitter::new(42, base, cap);
        for _ in 0..200 {
            let d = j.next_delay();
            assert!(d >= base, "{d:?} below base");
            assert!(d <= cap, "{d:?} above cap");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_decorrelated_across_seeds() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(500);
        let seq = |seed: u64| -> Vec<Duration> {
            let mut j = DecorrelatedJitter::new(seed, base, cap);
            (0..16).map(|_| j.next_delay()).collect()
        };
        assert_eq!(seq(7), seq(7), "same seed, same schedule");
        assert_ne!(seq(7), seq(8), "different seeds must not align");
    }

    #[test]
    fn jitter_reset_restarts_from_base() {
        let base = Duration::from_millis(10);
        let mut j = DecorrelatedJitter::new(1, base, Duration::from_secs(1));
        for _ in 0..8 {
            j.next_delay();
        }
        j.reset();
        // First post-reset delay is drawn from [base, 3*base].
        let d = j.next_delay();
        assert!(d <= base * 3, "{d:?} exceeds 3x base after reset");
    }

    #[test]
    fn budget_spends_down_to_zero_then_refuses() {
        let b = RetryBudget::new(3.0, 0.1);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "empty bucket refuses");
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn budget_refills_fractionally_on_success() {
        let b = RetryBudget::new(2.0, 0.5);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
        b.on_success();
        assert!(!b.try_spend(), "half a token is not a whole token");
        b.on_success();
        assert!(b.try_spend(), "two successes refund one retry");
    }

    #[test]
    fn budget_never_exceeds_cap() {
        let b = RetryBudget::new(1.0, 1.0);
        for _ in 0..50 {
            b.on_success();
        }
        assert_eq!(b.available(), 1);
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }
}
