//! # sfc-harness — experiment plumbing
//!
//! Shared machinery for the timing and counter experiments:
//!
//! * [`pool`] — the paper's two work-assignment strategies (static
//!   round-robin pencils, dynamic tile queue) over OS threads;
//! * [`supervise`] — the supervised variant: panic isolation, watchdog
//!   timeouts, bounded retry with backoff, structured failure reports;
//! * [`faults`] — deterministic fault injection (panics, stalls, flaky
//!   items, NaN/file corruption) for exercising the supervisor;
//! * [`timing`] — warmup/repeat wall-clock measurement;
//! * [`ds`] — the paper's "scaled, relative difference" metric;
//! * [`table`] — paper-figure-shaped result tables (text/Markdown/CSV);
//! * [`cli`] — a tiny dependency-free argument parser for the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod cli;
pub mod ds;
pub mod faults;
pub mod pool;
pub mod supervise;
pub mod table;
pub mod timing;

pub use cli::Args;
pub use ds::{format_ds, scaled_relative_difference};
pub use faults::{FaultKind, FaultPlan};
pub use pool::{items_for_thread, run_items, run_items_with_output, Schedule};
pub use supervise::{run_items_supervised, ItemFailure, RunReport, SupervisorConfig};
pub use table::PaperTable;
pub use timing::{measure, time_once, TimingStats};
