//! # sfc-harness — experiment plumbing
//!
//! Shared machinery for the timing and counter experiments:
//!
//! * [`engine`] — the composable execution engine: [`WorkPlan`]
//!   partitioning, the single [`Executor`]-owned thread scope, stackable
//!   [`ExecPolicy`] layers (plain / supervised / degraded) over a
//!   [`UnitKernel`], and the shared [`UnitCounters`] event sink;
//! * [`pool`] — the paper's two work-assignment strategies (static
//!   round-robin pencils, dynamic tile queue), a façade over the engine;
//! * [`supervise`] — the supervised variant: panic isolation, watchdog
//!   timeouts with cooperative cancellation, bounded retry with backoff,
//!   structured failure reports;
//! * [`faults`] — deterministic fault injection (panics, stalls, flaky
//!   items, output/NaN/file corruption) for exercising the supervisor;
//! * [`degrade`] — the typed [`DefectMap`] of failed/invalid output units
//!   that graceful-degradation drivers return alongside partial results;
//! * [`deadline`] — deadline-aware admission control for
//!   [`ExecPolicy::Brownout`]: wall-clock [`DeadlineBudget`]s, an
//!   EWMA/AIMD controller with a per-unit circuit breaker, and the
//!   [`QualityMap`] recording every unit committed below full quality;
//! * [`durable`] — crash-consistent persistence: atomic whole-file
//!   replacement and an append-only checksummed journal with torn-tail
//!   recovery;
//! * [`metrics`] — the process-wide observability plane: a registry of
//!   typed counters/gauges/log2 histograms (lock-free hot path), snapshot
//!   merge/delta, an interval sampler, and Prometheus text exposition;
//! * [`backoff`] — client-side retry pacing: decorrelated-jitter backoff
//!   schedules and a token-bucket [`RetryBudget`] that prevents retry
//!   storms against a dying server;
//! * [`timing`] — warmup/repeat wall-clock measurement;
//! * [`ds`] — the paper's "scaled, relative difference" metric;
//! * [`table`] — paper-figure-shaped result tables (text/Markdown/CSV);
//! * [`cli`] — a tiny dependency-free argument parser for the experiment
//!   binaries.

#![warn(missing_docs)]

pub mod backoff;
pub mod cli;
pub mod deadline;
pub mod degrade;
pub mod ds;
pub mod durable;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod pool;
pub mod supervise;
pub mod table;
pub mod timing;

pub use backoff::{DecorrelatedJitter, RetryBudget};
pub use cli::{Args, FigArgs};
pub use deadline::{DeadlineBudget, DowngradeReason, QualityEntry, QualityMap};
pub use degrade::{scan_unit, Defect, DefectKind, DefectMap, DegradedOutcome, FailureClass};
pub use ds::{format_ds, scaled_relative_difference};
pub use durable::{write_atomic, write_atomic_with, Journal, JournalRecovery};
pub use engine::{
    BrownoutKernel, BrownoutPolicy, DegradedPolicy, EventCounter, ExecPolicy, Executor,
    Partition, UnitCounters, UnitKernel, WorkPlan,
};
pub use faults::{FaultKind, FaultPlan, FaultRates, FaultyFile, IoFaultPlan, IoFaultRates};
pub use metrics::{
    encode_prometheus, validate_prometheus_text, Counter, Gauge, HistogramSnapshot, LazyCounter,
    LazyGauge, LazyHistogram, Log2Histogram, MetricValue, Registry, Sampler, Snapshot,
};
pub use pool::{items_for_thread, run_items, run_items_with_output, Schedule};
pub use supervise::{
    run_items_supervised, run_items_supervised_cancellable, CancelToken, ItemFailure,
    RunReport, SupervisorConfig,
};
pub use table::PaperTable;
pub use timing::{measure, time_once, TimingStats};
