//! Wall-clock measurement utilities.

use std::time::{Duration, Instant};

/// Time one invocation of `f`, returning its result and elapsed time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Summary statistics over repeated timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Fastest repetition.
    pub min: Duration,
    /// Median repetition (robust central tendency; what tables report).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest repetition.
    pub max: Duration,
    /// Number of repetitions measured.
    pub reps: usize,
}

impl TimingStats {
    /// Median in seconds as `f64` (convenience for `ds` computations).
    pub fn median_secs(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// Run `f` `reps` times (after `warmup` unmeasured runs) and summarize.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn measure(warmup: usize, reps: usize, mut f: impl FnMut()) -> TimingStats {
    assert!(reps > 0, "need at least one measured repetition");
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    TimingStats {
        min: samples[0],
        median: samples[samples.len() / 2],
        mean: total / reps as u32,
        max: *samples.last().expect("reps > 0"),
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn measure_counts_reps_and_orders_stats() {
        let mut calls = 0usize;
        let stats = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7, "warmup + measured");
        assert_eq!(stats.reps, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert!(stats.mean >= stats.min && stats.mean <= stats.max);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_reps_panics() {
        measure(0, 0, || {});
    }

    #[test]
    fn median_secs_is_consistent() {
        let stats = measure(0, 3, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!((stats.median_secs() - stats.median.as_secs_f64()).abs() < 1e-12);
    }
}
