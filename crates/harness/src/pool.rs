//! Shared-memory worker pool with the paper's two assignment strategies.
//!
//! The paper (§III) parallelizes the bilateral filter by handing voxel
//! pencils to threads **statically round-robin**, and the raycaster by
//! letting threads pull 32×32 image tiles from a **dynamic** queue (the
//! "worker-pool model" that motivated their POSIX-threads implementation).
//! Both strategies are implemented here over abstract item indices; the
//! actual thread scope lives in the execution engine ([`crate::engine`]) —
//! [`run_items`] is a thin façade over
//! [`Executor::run`](crate::engine::Executor::run).

use crate::engine::{Executor, WorkPlan};

/// Work-assignment strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Item `i` is processed by thread `i % nthreads` (paper's pencil
    /// assignment).
    StaticRoundRobin,
    /// Threads repeatedly claim the next unprocessed item (paper's tile
    /// worker pool).
    Dynamic,
}

/// The items thread `tid` of `nthreads` processes under static round-robin
/// assignment. Exposed so counter simulations can replicate the native
/// work split exactly.
pub fn items_for_thread(
    nitems: usize,
    nthreads: usize,
    tid: usize,
) -> impl Iterator<Item = usize> {
    debug_assert!(tid < nthreads);
    (tid..nitems).step_by(nthreads.max(1))
}

/// Run `worker(tid, item)` over `0..nitems` using `nthreads` OS threads and
/// the chosen schedule. Blocks until all items are processed.
///
/// `worker` must be safe to call concurrently from distinct threads with
/// distinct items; each item is processed exactly once.
pub fn run_items<F>(nthreads: usize, nitems: usize, schedule: Schedule, worker: F)
where
    F: Fn(usize, usize) + Sync,
{
    Executor::new(nthreads).run(&WorkPlan::from_schedule(nitems, schedule), worker);
}

/// Mutable-output variant: splits `outputs` so each item owns one output
/// slot, avoiding interior mutability in callers that write per-item
/// results. `worker(tid, item, &mut outputs[item])`.
pub fn run_items_with_output<T, F>(
    nthreads: usize,
    outputs: &mut [T],
    schedule: Schedule,
    worker: F,
) where
    T: Send,
    F: Fn(usize, usize, &mut T) + Sync,
{
    // Hand out raw slots via a pointer wrapper; disjointness is guaranteed
    // because each item index is processed exactly once.
    struct Slots<T>(*mut T);
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(outputs.as_mut_ptr());
    let slots = &slots; // capture the Sync wrapper, not the raw pointer field
    let n = outputs.len();
    run_items(nthreads, n, schedule, |tid, item| {
        // SAFETY: `item` is unique per invocation (run_items contract) and
        // in-bounds, so no two threads alias the same slot.
        let slot = unsafe { &mut *slots.0.add(item) };
        worker(tid, item, slot);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn round_robin_split_covers_all_items_once() {
        let nitems = 103;
        let nthreads = 7;
        let mut seen = vec![0u32; nitems];
        for tid in 0..nthreads {
            for item in items_for_thread(nitems, nthreads, tid) {
                seen[item] += 1;
                assert_eq!(item % nthreads, tid);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn static_schedule_processes_each_item_once() {
        let nitems = 1000;
        let counts: Vec<AtomicU64> = (0..nitems).map(|_| AtomicU64::new(0)).collect();
        run_items(8, nitems, Schedule::StaticRoundRobin, |_tid, item| {
            counts[item].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dynamic_schedule_processes_each_item_once() {
        let nitems = 1000;
        let counts: Vec<AtomicU64> = (0..nitems).map(|_| AtomicU64::new(0)).collect();
        run_items(8, nitems, Schedule::Dynamic, |_tid, item| {
            counts[item].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_runs_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        run_items(1, 5, Schedule::Dynamic, |tid, item| {
            assert_eq!(tid, 0);
            order.lock().unwrap().push(item);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        run_items(4, 0, Schedule::Dynamic, |_, _| panic!("no items to run"));
    }

    #[test]
    fn with_output_writes_every_slot() {
        let mut out = vec![0usize; 257];
        run_items_with_output(6, &mut out, Schedule::StaticRoundRobin, |_tid, item, slot| {
            *slot = item * 2;
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn with_output_dynamic() {
        let mut out = vec![0u64; 64];
        run_items_with_output(3, &mut out, Schedule::Dynamic, |_t, item, slot| {
            *slot = item as u64 + 1;
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_items(0, 1, Schedule::Dynamic, |_, _| {});
    }
}
