//! Supervised worker pool: panic isolation, watchdog timeouts, bounded
//! retry with exponential backoff.
//!
//! [`run_items`](crate::run_items) assumes every item completes; one panic
//! tears down the whole experiment and one wedged item hangs it. Long
//! unattended bench sweeps need the opposite: a worker failure should cost
//! *one item*, be retried if transient, and be reported in a structured way
//! at the end. [`run_items_supervised`] provides that:
//!
//! * each item runs under [`std::panic::catch_unwind`], so a panicking
//!   worker closure is converted into a typed
//!   [`SfcError::WorkerPanic`] carrying the panic payload;
//! * a watchdog thread (armed by [`SupervisorConfig::timeout`]) detects
//!   items that exceed their per-item wall-clock budget, accounts them as
//!   [`SfcError::Timeout`], and spawns a replacement worker so throughput
//!   recovers while the wedged thread is written off;
//! * failed items are retried up to [`SupervisorConfig::max_retries`]
//!   times with exponential backoff, then recorded in
//!   [`RunReport::failed`].
//!
//! This module holds the supervised *vocabulary* — [`CancelToken`],
//! [`SupervisorConfig`], [`ItemFailure`], [`RunReport`] — and the legacy
//! entry points; the queue/epoch/watchdog machinery itself lives in the
//! execution engine ([`crate::engine`]), whose single thread scope also
//! hosts the watchdog's replacement workers
//! ([`Executor::run_supervised`](crate::engine::Executor::run_supervised)).
//!
//! ## Timeout semantics
//!
//! Threads cannot be killed, so a timed-out worker closure keeps running
//! until it returns on its own; its late result is discarded (an attempt's
//! outcome is claimed exactly once through a per-item epoch CAS). The run
//! itself completes as soon as every item is accounted — but process exit
//! still waits on the scoped thread, so worker closures must terminate
//! *eventually*. The supervisor turns "slow" into a reported failure; it
//! cannot turn "infinite loop" into one — unless the worker cooperates:
//! [`run_items_supervised_cancellable`] hands each attempt a
//! [`CancelToken`] that the watchdog fires together with the timeout, so a
//! cooperative worker notices (`token.is_cancelled()` / `token.bail(item)?`)
//! and abandons the wedged unit instead of wedging its thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sfc_core::{SfcError, SfcResult};

use crate::engine::{Executor, WorkPlan};
use crate::pool::Schedule;

/// Cooperative cancellation flag for one supervised attempt.
///
/// The watchdog fires the token when it expires an attempt's deadline;
/// long-running worker closures should poll it at a convenient granularity
/// (per voxel row, per pixel, per chunk) and return early. The token is a
/// couple of relaxed atomic loads per poll — cheap enough for inner loops.
///
/// Tokens form a tree: [`CancelToken::child`] derives a token that also
/// observes its parent, so firing a *run*-scoped token (client disconnect,
/// shutdown drain) cancels every per-attempt token derived from it, while
/// firing one attempt's token leaves its siblings untouched.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<CancelInner>);

#[derive(Debug, Default)]
struct CancelInner {
    fired: AtomicBool,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, unfired root token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires when either it or `self` is cancelled. Used by
    /// the supervised worker loop so a run-scoped cancellation reaches
    /// every in-flight attempt.
    pub fn child(&self) -> Self {
        Self(Arc::new(CancelInner {
            fired: AtomicBool::new(false),
            parent: Some(self.clone()),
        }))
    }

    /// Fire the token (idempotent). Does not fire the parent.
    pub fn cancel(&self) {
        self.0.fired.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on this token or
    /// any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        if self.0.fired.load(Ordering::Acquire) {
            return true;
        }
        match &self.0.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// Convenience for worker closures: `token.bail(item)?` returns
    /// [`SfcError::Cancelled`] once the token has fired.
    pub fn bail(&self, item: usize) -> SfcResult<()> {
        if self.is_cancelled() {
            Err(SfcError::Cancelled { item })
        } else {
            Ok(())
        }
    }

    /// Sleep up to `total`, waking early (and returning
    /// [`SfcError::Cancelled`]) if the token fires. Polls every 1 ms; used
    /// by the fault injector's stalls so a cancelled stall releases its
    /// thread promptly instead of sleeping out the full duration.
    pub fn sleep_cancellable(&self, item: usize, total: Duration) -> SfcResult<()> {
        let slice = Duration::from_millis(1);
        let deadline = Instant::now() + total;
        loop {
            self.bail(item)?;
            let now = Instant::now();
            if now >= deadline {
                return Ok(());
            }
            std::thread::sleep(slice.min(deadline - now));
        }
    }
}

/// Configuration of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker threads to start with (replacements for wedged workers come
    /// on top).
    pub nthreads: usize,
    /// Initial claim order. Supervision requires a shared queue (a static
    /// split cannot rebalance around a lost worker), so this selects the
    /// order in which items are offered: `Dynamic` is `0..nitems`,
    /// `StaticRoundRobin` is the concatenated per-thread round-robin
    /// batches of the unsupervised pool.
    pub schedule: Schedule,
    /// Per-item wall-clock budget. `None` disables the watchdog.
    pub timeout: Option<Duration>,
    /// Additional attempts allowed after a retryable failure (so an item
    /// is tried at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before retry attempt `n` is `backoff_base * 2^(n-1)`.
    pub backoff_base: Duration,
    /// Watchdog scan interval; only meaningful with a timeout.
    pub watchdog_poll: Duration,
    /// Run-scoped cancellation: firing this token abandons the *whole*
    /// run — queued units are accounted as [`SfcError::Cancelled`] without
    /// running, and every in-flight attempt's per-attempt token (a
    /// [`CancelToken::child`] of this one) observes the cancellation and
    /// bails. This is how a service cancels an abandoned request (client
    /// disconnect, shutdown drain) without tearing down the executor.
    pub cancel: CancelToken,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            nthreads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            schedule: Schedule::Dynamic,
            timeout: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            watchdog_poll: Duration::from_millis(2),
            cancel: CancelToken::new(),
        }
    }
}

/// One item that exhausted its retry budget (or failed terminally).
#[derive(Debug)]
pub struct ItemFailure {
    /// The item index that failed.
    pub item: usize,
    /// Attempts made (including the first).
    pub attempts: u32,
    /// The error from the last attempt.
    pub error: SfcError,
}

/// Outcome of a supervised run.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Items that completed successfully.
    pub completed: usize,
    /// Items that exhausted their retry budget, sorted by item index.
    pub failed: Vec<ItemFailure>,
    /// Retry attempts that were scheduled (across all items).
    pub retried: usize,
    /// Replacement workers spawned for wedged (timed-out) workers.
    pub replacements: usize,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
}

impl RunReport {
    /// True if every item completed successfully.
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Run `worker(tid, item)` over `0..nitems` under supervision: panics are
/// isolated per item, failures are retried with exponential backoff, and —
/// when [`SupervisorConfig::timeout`] is set — a watchdog times out stuck
/// items and spawns replacement workers. Returns a [`RunReport`]; it never
/// panics because of worker behaviour.
///
/// The worker may be called concurrently from different threads; a given
/// item may be attempted more than once (on retry), but each *attempt's*
/// outcome is accounted exactly once and each item contributes exactly one
/// unit to `completed + failed.len()`.
///
/// # Panics
/// Panics if `cfg.nthreads == 0` (misconfiguration, not worker failure).
pub fn run_items_supervised<F>(cfg: &SupervisorConfig, nitems: usize, worker: F) -> RunReport
where
    F: Fn(usize, usize) -> SfcResult<()> + Sync,
{
    run_items_supervised_cancellable(cfg, nitems, |tid, item, _token| worker(tid, item))
}

/// [`run_items_supervised`] with cooperative cancellation: the worker
/// receives a per-attempt [`CancelToken`] that the watchdog fires when it
/// expires the attempt's deadline. A cooperative worker polls the token
/// (`token.bail(item)?`) and abandons the wedged unit, releasing its
/// thread back to the pool instead of running the doomed attempt to
/// completion; its `Cancelled` return is discarded because the watchdog
/// already claimed the attempt's outcome as a [`SfcError::Timeout`].
///
/// # Panics
/// Panics if `cfg.nthreads == 0` (misconfiguration, not worker failure).
pub fn run_items_supervised_cancellable<F>(
    cfg: &SupervisorConfig,
    nitems: usize,
    worker: F,
) -> RunReport
where
    F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + Sync,
{
    Executor::new(cfg.nthreads).run_supervised(
        &WorkPlan::from_schedule(nitems, cfg.schedule),
        cfg,
        worker,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    fn quick(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        }
    }

    #[test]
    fn clean_run_completes_every_item_once() {
        let n = 257;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let report = run_items_supervised(&quick(6), n, |_tid, item| {
            counts[item].fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert_eq!(report.completed, n);
        assert!(report.all_ok());
        assert_eq!(report.retried, 0);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let report = run_items_supervised(&quick(4), 0, |_, _| panic!("no items"));
        assert_eq!(report.completed, 0);
        assert!(report.all_ok());
    }

    #[test]
    fn panicking_item_is_isolated_and_reported() {
        let cfg = SupervisorConfig {
            max_retries: 0,
            ..quick(4)
        };
        let report = run_items_supervised(&cfg, 50, |_tid, item| {
            if item == 17 {
                panic!("injected panic on {item}");
            }
            Ok(())
        });
        assert_eq!(report.completed, 49);
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.item, 17);
        assert_eq!(f.attempts, 1);
        assert!(
            matches!(&f.error, SfcError::WorkerPanic { payload, .. } if payload.contains("injected panic on 17")),
            "{:?}",
            f.error
        );
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let n = 20;
        let tries: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let report = run_items_supervised(&quick(4), n, |_tid, item| {
            let t = tries[item].fetch_add(1, Ordering::Relaxed);
            if item % 5 == 0 && t == 0 {
                panic!("flaky first attempt");
            }
            Ok(())
        });
        assert_eq!(report.completed, n);
        assert!(report.all_ok());
        assert_eq!(report.retried, 4); // items 0, 5, 10, 15
    }

    #[test]
    fn retry_budget_is_bounded() {
        let attempts = AtomicU64::new(0);
        let cfg = SupervisorConfig {
            max_retries: 3,
            ..quick(2)
        };
        let report = run_items_supervised(&cfg, 1, |_tid, _item| {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(SfcError::WorkerPanic {
                item: 0,
                payload: "always fails".into(),
            })
        });
        assert_eq!(attempts.load(Ordering::Relaxed), 4); // 1 + 3 retries
        assert_eq!(report.retried, 3);
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].attempts, 4);
    }

    #[test]
    fn non_retryable_error_fails_immediately() {
        let attempts = AtomicU64::new(0);
        let report = run_items_supervised(&quick(2), 1, |_tid, item| {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(SfcError::InvalidParameter {
                name: "x",
                reason: format!("bad item {item}"),
            })
        });
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
        assert_eq!(report.retried, 0);
        assert_eq!(report.failed.len(), 1);
    }

    #[test]
    fn hung_item_trips_watchdog_without_deadlocking_the_run() {
        let cfg = SupervisorConfig {
            nthreads: 3,
            timeout: Some(Duration::from_millis(30)),
            max_retries: 0,
            watchdog_poll: Duration::from_millis(2),
            ..quick(3)
        };
        let report = run_items_supervised(&cfg, 40, |_tid, item| {
            if item == 7 {
                // Finite sleep: long enough to trip the watchdog, short
                // enough that the scope can still join the wedged thread.
                std::thread::sleep(Duration::from_millis(300));
            }
            Ok(())
        });
        assert_eq!(report.completed, 39);
        assert_eq!(report.failed.len(), 1);
        assert!(matches!(report.failed[0].error, SfcError::Timeout { item: 7, .. }));
        assert!(report.replacements >= 1);
    }

    #[test]
    fn static_order_covers_all_items() {
        let order = WorkPlan::from_schedule(10, Schedule::StaticRoundRobin).initial_order(3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(order[..4], [0, 3, 6, 9]);
        let cfg = SupervisorConfig {
            schedule: Schedule::StaticRoundRobin,
            ..quick(3)
        };
        let report = run_items_supervised(&cfg, 100, |_, _| Ok(()));
        assert_eq!(report.completed, 100);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_items_supervised(&quick(0), 1, |_, _| Ok(()));
    }

    #[test]
    fn attempt_count_is_bounded_for_every_max_retries() {
        for max_retries in [0u32, 1, 2, 5] {
            let attempts = AtomicU64::new(0);
            let cfg = SupervisorConfig {
                max_retries,
                ..quick(3)
            };
            let report = run_items_supervised(&cfg, 1, |_tid, item| {
                attempts.fetch_add(1, Ordering::Relaxed);
                Err(SfcError::WorkerPanic {
                    item,
                    payload: "always fails".into(),
                })
            });
            assert_eq!(
                attempts.load(Ordering::Relaxed),
                u64::from(max_retries) + 1,
                "exactly max_retries + 1 attempts for max_retries={max_retries}"
            );
            assert_eq!(report.failed[0].attempts, max_retries + 1);
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        // Attempt n is delayed by backoff_base * 2^(n-1); record the
        // timestamps of each attempt and check the lower bounds (upper
        // bounds would race the scheduler). Single item, single thread:
        // the schedule is fully deterministic.
        let base = Duration::from_millis(8);
        let cfg = SupervisorConfig {
            nthreads: 1,
            max_retries: 3,
            backoff_base: base,
            ..Default::default()
        };
        let stamps: Mutex<Vec<Instant>> = Mutex::new(Vec::new());
        let report = run_items_supervised(&cfg, 1, |_tid, item| {
            stamps.lock().unwrap().push(Instant::now());
            Err(SfcError::WorkerPanic {
                item,
                payload: "flaky".into(),
            })
        });
        assert_eq!(report.retried, 3);
        let stamps = stamps.into_inner().unwrap();
        assert_eq!(stamps.len(), 4);
        for n in 1..stamps.len() {
            let gap = stamps[n] - stamps[n - 1];
            let want = base * (1 << (n - 1));
            assert!(
                gap >= want,
                "attempt {n} fired after {gap:?}, backoff schedule requires >= {want:?}"
            );
        }
    }

    #[test]
    fn watchdog_expired_item_is_reported_within_its_retry_budget() {
        // A perpetually-stalling item must end in the failure report after
        // at most max_retries + 1 timed-out attempts — reported, never
        // retried forever. No should_panic: the run returns normally.
        let attempts = AtomicU64::new(0);
        let cfg = SupervisorConfig {
            nthreads: 2,
            timeout: Some(Duration::from_millis(20)),
            max_retries: 1,
            watchdog_poll: Duration::from_millis(2),
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let report = run_items_supervised_cancellable(&cfg, 6, |_tid, item, token| {
            if item == 2 {
                attempts.fetch_add(1, Ordering::Relaxed);
                // Stall "forever" (bounded only by the cancel token).
                token.sleep_cancellable(item, Duration::from_secs(10))?;
            }
            Ok(())
        });
        assert_eq!(report.completed, 5);
        assert_eq!(report.failed.len(), 1);
        let f = &report.failed[0];
        assert_eq!(f.item, 2);
        assert!(matches!(f.error, SfcError::Timeout { item: 2, .. }), "{:?}", f.error);
        assert_eq!(f.attempts, 2, "one original attempt + one retry, then reported");
        let tried = attempts.load(Ordering::Relaxed);
        assert!(tried <= 2, "watchdog-expired item must not retry forever ({tried} attempts)");
    }

    #[test]
    fn cancel_token_releases_a_cooperative_worker() {
        // The watchdog fires the token at the deadline; the worker notices
        // and returns, so the run needs no replacement threads beyond the
        // watchdog's own accounting and finishes fast.
        let observed = AtomicBool::new(false);
        let cfg = SupervisorConfig {
            nthreads: 2,
            timeout: Some(Duration::from_millis(15)),
            max_retries: 0,
            watchdog_poll: Duration::from_millis(1),
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let start = Instant::now();
        let report = run_items_supervised_cancellable(&cfg, 8, |_tid, item, token| {
            if item == 3 {
                let r = token.sleep_cancellable(item, Duration::from_secs(30));
                if r.is_err() {
                    observed.store(true, Ordering::Release);
                }
                r?;
            }
            Ok(())
        });
        assert!(start.elapsed() < Duration::from_secs(5), "cancel must unwedge the run");
        assert!(observed.load(Ordering::Acquire), "worker must observe its token");
        assert_eq!(report.completed, 7);
        assert!(matches!(report.failed[0].error, SfcError::Timeout { item: 3, .. }));
    }

    #[test]
    fn late_cancelled_return_is_not_double_accounted() {
        // The watchdog claims the attempt as Timeout; the worker's
        // Cancelled return must lose the epoch CAS and be discarded, so
        // the item contributes exactly one unit to completed + failed.
        let cfg = SupervisorConfig {
            nthreads: 2,
            timeout: Some(Duration::from_millis(10)),
            max_retries: 0,
            watchdog_poll: Duration::from_millis(1),
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let report = run_items_supervised_cancellable(&cfg, 4, |_tid, item, token| {
            if item == 1 {
                token.sleep_cancellable(item, Duration::from_millis(200))?;
            }
            Ok(())
        });
        assert_eq!(report.completed + report.failed.len(), 4);
        assert_eq!(report.failed.len(), 1);
    }
}
