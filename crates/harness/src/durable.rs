//! Crash-consistent persistence primitives.
//!
//! Everything the workspace writes to disk — SFCV volumes, rendered
//! images, sweep checkpoints — must survive a `kill -9` mid-write: a
//! crashed run may be restarted hours later and anything truncated-but-
//! plausible on disk would silently poison the resumed sweep. Two
//! primitives cover every write pattern in the repo:
//!
//! * [`write_atomic`] — whole-file replacement via temp file + `fsync` +
//!   atomic rename (+ parent-directory `fsync`): readers observe either
//!   the old bytes or the new bytes, never a torn mixture.
//! * [`Journal`] — an append-only log of checksummed records for
//!   incremental state (one record per completed sweep cell). A record is
//!   `len | FNV-1a 64 | payload`; on open, the journal replays every
//!   intact record and truncates the first torn or corrupt tail, so a
//!   crash mid-append loses at most the record being written — never a
//!   completed one.
//!
//! Both report failures as `std::io::Result`; callers wrap them into
//! [`sfc_core::SfcError::Io`] with their own context.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::faults::{FaultyFile, IoFaultPlan};
use sfc_core::fnv1a64;

/// Sibling path used for the temp file of [`write_atomic`]. Deterministic
/// (no PID/timestamp) so a stale temp from a crashed process is simply
/// overwritten by the next writer instead of accumulating.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = std::ffi::OsString::from(".");
    name.push(path.file_name().unwrap_or_else(|| "durable".as_ref()));
    name.push(".tmp");
    path.with_file_name(name)
}

/// Sync the directory containing `path` so a just-committed rename (or
/// file creation) is durable. Directories that cannot be *opened* are
/// tolerated (some platforms forbid it — there is nothing better to do),
/// but a directory that opens and then fails to `fsync` is a real I/O
/// error and is propagated: swallowing it would let `write_atomic`
/// report success for a rename that a power loss can still undo.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        if let Ok(d) = File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// Replace the contents of `path` atomically: write `bytes` to a sibling
/// temp file, `fsync` it, rename over `path`, and `fsync` the directory.
/// A crash at any point leaves either the previous file or the new one —
/// never a truncated hybrid. When any step *fails* (rather than the
/// process dying), the temp file is removed before the error is
/// returned, so an error path never strands a `.tmp` sibling. Only an
/// outright crash can leave one, and [`tmp_sibling`]'s deterministic
/// name means the next writer overwrites it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    write_atomic_with(path, bytes, &IoFaultPlan::none())
}

/// [`write_atomic`] with every filesystem operation routed through an
/// [`IoFaultPlan`]: create/write/fsync go through a [`FaultyFile`], and
/// the rename + parent-directory fsync are guarded by control-point
/// draws. Production callers use [`write_atomic`] (a no-fault plan);
/// chaos tests script each step to fail and assert the contract below.
///
/// Contract on error: `path` holds either its previous contents or the
/// complete new bytes (a post-rename fsync failure cannot undo the
/// rename) — never a torn mixture — and the temp sibling has been
/// removed.
pub fn write_atomic_with(
    path: &Path,
    bytes: &[u8],
    faults: &IoFaultPlan,
) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let attempt = (|| {
        let mut f = FaultyFile::create(&tmp, faults.clone())?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        faults.fire_control("rename")?;
        std::fs::rename(&tmp, path)?;
        faults.fire_control("parent dir sync")?;
        sync_parent_dir(path)?;
        Ok(())
    })();
    if attempt.is_err() {
        // The rename (if reached) either succeeded — making this a no-op —
        // or failed with the temp still in place; either way the temp must
        // not outlive the error. Removal failure is unreportable on top of
        // the original error and the stale-temp path is already harmless.
        std::fs::remove_file(&tmp).ok();
    }
    attempt
}

/// Fixed per-record header: payload length (`u32` LE) + FNV-1a 64 of the
/// payload (`u64` LE).
const RECORD_HEADER: usize = 4 + 8;

/// What [`Journal::open`] found on disk.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail that were truncated away (0 on a clean
    /// journal). A crash mid-append shows up here as the partial record.
    pub truncated_bytes: u64,
}

impl JournalRecovery {
    /// True when the journal needed repair on open.
    pub fn was_torn(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// An append-only log of checksummed records with torn-tail recovery.
///
/// Appends are durable (`fsync` per record) and self-delimiting; a reader
/// never needs the writer to have finished. Use [`Journal::open`] to
/// replay existing records (repairing a torn tail in place) and
/// [`Journal::append`] to add more.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Records currently in the file (appended or replayed).
    len: usize,
}

impl Journal {
    /// Open (creating if missing) the journal at `path`, replaying every
    /// intact record. A torn or corrupt tail — short header, short
    /// payload, or checksum mismatch — is truncated off the file so the
    /// journal is append-ready again; everything before it is returned.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Self, JournalRecovery)> {
        let path = path.into();
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if !existed {
            // A brand-new journal is a directory-entry mutation just like
            // a rename: without a parent fsync, a crash can forget the
            // file ever existed even after records were fsync'd into it.
            sync_parent_dir(&path)?;
        }
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut recovery = JournalRecovery::default();
        let mut pos = 0usize;
        while bytes.len() - pos >= RECORD_HEADER {
            let Ok(len_bytes) = <[u8; 4]>::try_from(&bytes[pos..pos + 4]) else {
                break; // unreachable: length-guarded above; treat as torn
            };
            let Ok(sum_bytes) = <[u8; 8]>::try_from(&bytes[pos + 4..pos + 12]) else {
                break;
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            let want = u64::from_le_bytes(sum_bytes);
            let start = pos + RECORD_HEADER;
            let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                break; // torn payload (or absurd length from a torn header)
            };
            if fnv1a64(&bytes[start..end]) != want {
                break; // corrupt record: everything from here on is suspect
            }
            recovery.records.push(bytes[start..end].to_vec());
            pos = end;
        }
        if pos != bytes.len() {
            recovery.truncated_bytes = (bytes.len() - pos) as u64;
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        let len = recovery.records.len();
        Ok((Self { file, path, len }, recovery))
    }

    /// Append one record and `fsync` it. After `append` returns, the
    /// record survives a crash; if the process dies mid-append, the next
    /// [`Journal::open`] truncates the partial record.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "journal record > 4 GiB")
        })?;
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        buf.extend_from_slice(&len.to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.len += 1;
        Ok(())
    }

    /// Discard every record (used after the state has been compacted into
    /// an atomically-written snapshot).
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.len = 0;
        Ok(())
    }

    /// Number of records currently in the journal.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file backing this journal.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sfc_durable_{}_{tag}", std::process::id()))
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let path = tmp("atomic");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        assert!(!tmp_sibling(&path).exists(), "temp must be renamed away");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_cleans_its_temp_on_every_injected_error_path() {
        use crate::faults::FaultKind;
        // Operation schedule of write_atomic_with: 0 = create the temp,
        // 1 = write the payload, 2 = fsync the temp, 3 = rename control
        // point, 4 = parent-dir-sync control point. Fail each in turn and
        // assert the contract: an error comes back, no `.tmp` sibling is
        // left behind, and the destination is never torn.
        let path = tmp("atomic_errpaths");
        std::fs::remove_file(&path).ok();
        let faulted_steps: &[(u64, FaultKind)] = &[
            (0, FaultKind::IoError),   // create fails
            (1, FaultKind::IoError),   // write fails outright
            (1, FaultKind::ShortWrite),// write tears mid-payload
            (2, FaultKind::IoError),   // temp fsync fails
            (3, FaultKind::IoError),   // rename fails
            (4, FaultKind::IoError),   // parent-dir fsync fails
        ];
        // Pass 1: destination does not exist yet.
        for &(op, kind) in faulted_steps {
            let plan = IoFaultPlan::none().with_op(op, kind);
            let err = write_atomic_with(&path, b"fresh payload", &plan).unwrap_err();
            assert!(err.to_string().contains("injected"), "op {op}: {err}");
            assert!(
                !tmp_sibling(&path).exists(),
                "op {op} ({kind:?}): orphaned temp left behind"
            );
            match std::fs::read(&path) {
                // Only a post-rename failure may publish the new bytes.
                Ok(bytes) => {
                    assert_eq!(bytes, b"fresh payload", "op {op}: torn destination");
                    assert!(op >= 4, "op {op}: destination appeared before the rename");
                }
                Err(_) => assert!(op < 4, "op {op}: rename succeeded yet no file"),
            }
            std::fs::remove_file(&path).ok();
        }
        // Pass 2: destination holds prior contents that must survive
        // every pre-rename failure untouched.
        for &(op, kind) in faulted_steps {
            write_atomic(&path, b"previous contents").unwrap();
            let plan = IoFaultPlan::none().with_op(op, kind);
            write_atomic_with(&path, b"replacement!!", &plan).unwrap_err();
            assert!(!tmp_sibling(&path).exists(), "op {op}: orphaned temp");
            let on_disk = std::fs::read(&path).unwrap();
            if op < 4 {
                assert_eq!(on_disk, b"previous contents", "op {op}: old bytes lost");
            } else {
                assert_eq!(on_disk, b"replacement!!", "op {op}: torn destination");
            }
            std::fs::remove_file(&path).ok();
        }
        // A no-fault plan still succeeds through the same code path.
        write_atomic_with(&path, b"clean run", &IoFaultPlan::none()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"clean run");
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_temp_from_a_crashed_writer_is_harmless() {
        let path = tmp("stale");
        std::fs::write(tmp_sibling(&path), b"garbage from a dead process").unwrap();
        write_atomic(&path, b"real contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"real contents");
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_roundtrip() {
        let path = tmp("journal_rt");
        std::fs::remove_file(&path).ok();
        let (mut j, rec) = Journal::open(&path).unwrap();
        assert!(rec.records.is_empty() && !rec.was_torn());
        j.append(b"alpha").unwrap();
        j.append(b"").unwrap(); // empty payloads are legal
        j.append(b"gamma gamma").unwrap();
        assert_eq!(j.len(), 3);
        drop(j);
        let (j2, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"alpha".to_vec(), vec![], b"gamma gamma".to_vec()]);
        assert!(!rec.was_torn());
        assert_eq!(j2.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_completed_records_survive() {
        let path = tmp("journal_torn");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        j.append(b"three").unwrap();
        drop(j);
        // Simulate kill -9 mid-append: chop 2 bytes off the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let (mut j, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(rec.was_torn());
        // The journal is append-ready after repair.
        j.append(b"four").unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[2], b"four");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_byte_offset_of_the_final_record_recovers() {
        // Exhaustive torn-tail sweep: a kill -9 can land after any byte
        // of the final append — mid-length, mid-checksum, or mid-payload.
        // For every prefix length, recovery must (a) open successfully,
        // (b) keep every earlier record bit-exact, (c) drop the torn
        // record entirely (no partial payload ever surfaces), and
        // (d) leave the journal append-ready.
        let path = tmp("journal_sweep");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"first record").unwrap();
        j.append(b"second record").unwrap();
        let intact_len = std::fs::metadata(&path).unwrap().len();
        j.append(b"final record, torn somewhere").unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        let final_record_len = full.len() as u64 - intact_len;
        assert!(final_record_len > 12, "record spans header and payload");

        for cut in 0..final_record_len {
            let torn_len = intact_len + cut;
            std::fs::write(&path, &full[..torn_len as usize]).unwrap();
            let (mut j, rec) = Journal::open(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: open failed: {e}"));
            assert_eq!(
                rec.records,
                vec![b"first record".to_vec(), b"second record".to_vec()],
                "cut at byte {cut}: intact records must survive exactly"
            );
            // A cut of zero bytes is a journal that cleanly ends before
            // the final record; every other cut is a reported tear.
            assert_eq!(
                rec.was_torn(),
                cut > 0,
                "cut at byte {cut}: tear reported iff bytes were torn"
            );
            assert_eq!(
                rec.truncated_bytes, cut,
                "cut at byte {cut}: every torn byte accounted"
            );
            // Append-ready after repair: the new record replays cleanly.
            j.append(b"post-repair").unwrap();
            drop(j);
            let (_, rec) = Journal::open(&path).unwrap();
            assert_eq!(rec.records.len(), 3, "cut at byte {cut}");
            assert_eq!(rec.records[2], b"post-repair", "cut at byte {cut}");
            assert!(!rec.was_torn(), "cut at byte {cut}: repaired journal is clean");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_stops_replay_at_the_corrupt_record() {
        let path = tmp("journal_flip");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"good").unwrap();
        j.append(b"soon bad").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // corrupt the second record's payload
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert!(rec.was_torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn creating_a_journal_in_a_fresh_directory_survives_parent_sync() {
        // Exercises the parent-directory fsync on first creation: the
        // parent is a just-made directory we can open and sync.
        let dir = tmp("journal_newdir");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let (mut j, rec) = Journal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        j.append(b"first").unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"first".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_the_journal() {
        let path = tmp("journal_reset");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(b"x").unwrap();
        j.reset().unwrap();
        assert!(j.is_empty());
        j.append(b"y").unwrap();
        drop(j);
        let (_, rec) = Journal::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"y".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_length_in_torn_header_does_not_overflow() {
        let path = tmp("journal_huge_len");
        // A lone header claiming a 4 GiB payload with no payload bytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.was_torn());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
