//! A minimal `--key value` argument parser for the experiment binaries
//! (keeps the workspace free of CLI dependencies), plus [`FigArgs`], the
//! shared flag vocabulary of the paper-figure binaries.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parsed command-line options: `--key value`, `--key=value`, and bare
/// `--flag` (a key with no value).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of tokens (typically `std::env::args().skip(1)`).
    ///
    /// A token `--k` followed by a token that does not start with `--` is a
    /// key/value pair; otherwise `--k` is a flag. `--k=v` is always a pair.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut out = Args::default();
        let toks: Vec<String> = tokens.into_iter().collect();
        let mut idx = 0;
        while idx < toks.len() {
            let t = &toks[idx];
            if let Some(stripped) = t.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    out.values.insert(k.to_string(), v.to_string());
                } else if idx + 1 < toks.len() && !toks[idx + 1].starts_with("--") {
                    out.values
                        .insert(stripped.to_string(), toks[idx + 1].clone());
                    idx += 1;
                } else {
                    out.flags.push(stripped.to_string());
                }
            }
            idx += 1;
        }
        out
    }

    /// Parse the process's own arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Raw string value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `usize` value or `default`.
    ///
    /// # Panics
    /// Panics with a clear message when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// `f64` value or `default`.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")))
            .unwrap_or(default)
    }

    /// `u64` value or `default`.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// String value or `default`.
    pub fn get_str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// True if `--key` appeared as a bare flag (or with any value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key) || self.values.contains_key(key)
    }

    /// Comma-separated list of `usize` (e.g. `--threads 2,4,8`) or default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects integers, got {s:?}"))
                })
                .collect(),
        }
    }
}

/// The flag vocabulary shared by the paper-figure binaries (fig2–fig6):
/// `--size N`, `--quick`, `--csv DIR`, `--native`, `--checkpoint FILE`,
/// `--image N`, `--tile N`, `--threads LIST`, plus the fault-injection
/// keys read by `FaultRates::from_args`. Each binary previously
/// hand-parsed these; this builder is the single definition of their
/// names and defaults.
#[derive(Debug, Clone, Default)]
pub struct FigArgs {
    args: Args,
}

impl FigArgs {
    /// Wrap already-parsed arguments.
    pub fn new(args: Args) -> Self {
        Self { args }
    }

    /// Parse the process's own arguments.
    pub fn from_env() -> Self {
        Self::new(Args::from_env())
    }

    /// The underlying parser, for binary-specific keys (fault flags,
    /// `--ortho`, `--native-threads`, …).
    pub fn raw(&self) -> &Args {
        &self.args
    }

    /// `--size N` — volume edge (default 64).
    pub fn size(&self) -> usize {
        self.args.get_usize("size", 64)
    }

    /// `--quick` — smoke mode: truncated rows/viewpoints and a two-point
    /// thread grid.
    pub fn quick(&self) -> bool {
        self.args.has("quick")
    }

    /// `--csv DIR` — emit per-table CSV files into `DIR`.
    pub fn csv(&self) -> Option<PathBuf> {
        self.args.get("csv").map(PathBuf::from)
    }

    /// `--native` — also run the native wall-clock rows on this host.
    pub fn native(&self) -> bool {
        self.args.has("native")
    }

    /// `--checkpoint FILE` — journal path for resumable sweeps.
    pub fn checkpoint(&self) -> Option<PathBuf> {
        self.args.get("checkpoint").map(PathBuf::from)
    }

    /// The thread-count grid: `quick_pair` under `--quick`, else
    /// `--threads LIST` (defaulting to the platform's concurrency grid).
    pub fn thread_grid(&self, quick_pair: [usize; 2], default: &[usize]) -> Vec<usize> {
        if self.quick() {
            quick_pair.to_vec()
        } else {
            self.args.get_usize_list("threads", default)
        }
    }

    /// `--image N` — framebuffer edge in pixels (default: one ray per
    /// voxel face, i.e. [`FigArgs::size`]).
    pub fn image(&self) -> usize {
        self.args.get_usize("image", self.size())
    }

    /// `--tile N` — tile edge; the default `image/16` preserves the
    /// paper's 256-tile decomposition (32² tiles on a 512² framebuffer).
    pub fn tile(&self, image: usize) -> usize {
        self.args.get_usize("tile", (image / 16).max(4))
    }

    /// `--deadline-ms N` — wall-clock budget for the brownout fault demo
    /// (`--fault-policy brownout`). Absent or `0` means no budget: the
    /// brownout stack then only downgrades via its circuit breaker.
    pub fn deadline_ms(&self) -> Option<u64> {
        match self.args.get_u64("deadline-ms", 0) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// `--nan-rate R` — fraction of input voxels to overwrite with NaN
    /// before the experiment (exercising the NaN-safe kernels end to
    /// end); 0 (the default) leaves the input untouched.
    pub fn nan_rate(&self) -> f64 {
        self.args.get_f64("nan-rate", 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    fn fig(s: &str) -> FigArgs {
        FigArgs::new(parse(s))
    }

    #[test]
    fn fig_args_defaults() {
        let f = fig("");
        assert_eq!(f.size(), 64);
        assert!(!f.quick());
        assert!(f.csv().is_none());
        assert!(f.checkpoint().is_none());
        assert_eq!(f.image(), 64);
        assert_eq!(f.tile(f.image()), 4);
        assert_eq!(f.thread_grid([2, 24], &[2, 4, 8]), vec![2, 4, 8]);
    }

    #[test]
    fn fig_args_quick_selects_the_two_point_grid() {
        let f = fig("--quick --threads 3,5");
        // --quick wins over an explicit list: smoke mode is a fixed shape.
        assert_eq!(f.thread_grid([59, 236], &[1]), vec![59, 236]);
    }

    #[test]
    fn fig_args_explicit_values() {
        let f = fig("--size 128 --image 256 --tile 32 --csv out --checkpoint ck.bin --native");
        assert_eq!(f.size(), 128);
        assert_eq!(f.image(), 256);
        assert_eq!(f.tile(f.image()), 32);
        assert_eq!(f.csv().unwrap(), PathBuf::from("out"));
        assert_eq!(f.checkpoint().unwrap(), PathBuf::from("ck.bin"));
        assert!(f.native());
        assert_eq!(f.thread_grid([2, 24], &[2]), vec![2]);
    }

    #[test]
    fn fig_args_deadline_and_nan_rate() {
        let f = fig("");
        assert_eq!(f.deadline_ms(), None);
        assert_eq!(f.nan_rate(), 0.0);
        let f = fig("--deadline-ms 0 --nan-rate 0.25");
        assert_eq!(f.deadline_ms(), None); // 0 = unset
        assert!((f.nan_rate() - 0.25).abs() < 1e-12);
        let f = fig("--deadline-ms 400");
        assert_eq!(f.deadline_ms(), Some(400));
    }

    #[test]
    fn key_value_pairs() {
        let a = parse("--size 128 --seed=42 --layout z-order");
        assert_eq!(a.get_usize("size", 0), 128);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert_eq!(a.get_str("layout", ""), "z-order");
    }

    #[test]
    fn flags_and_defaults() {
        let a = parse("--verbose --size 16");
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--csv --markdown");
        assert!(a.has("csv") && a.has("markdown"));
    }

    #[test]
    fn float_values() {
        let a = parse("--sigma 2.5");
        assert!((a.get_f64("sigma", 0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lists() {
        let a = parse("--threads 2,4, 8");
        // Note: "8" is a separate token, so only "2,4," belongs to the key;
        // trailing empty entries would fail parse — use no spaces in lists.
        let a2 = parse("--threads 2,4,8");
        assert_eq!(a2.get_usize_list("threads", &[]), vec![2, 4, 8]);
        assert_eq!(a.get_usize_list("missing", &[1, 2]), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        parse("--size banana").get_usize("size", 0);
    }
}
