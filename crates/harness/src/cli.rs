//! A minimal `--key value` argument parser for the experiment binaries
//! (keeps the workspace free of CLI dependencies).

use std::collections::BTreeMap;

/// Parsed command-line options: `--key value`, `--key=value`, and bare
/// `--flag` (a key with no value).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of tokens (typically `std::env::args().skip(1)`).
    ///
    /// A token `--k` followed by a token that does not start with `--` is a
    /// key/value pair; otherwise `--k` is a flag. `--k=v` is always a pair.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut out = Args::default();
        let toks: Vec<String> = tokens.into_iter().collect();
        let mut idx = 0;
        while idx < toks.len() {
            let t = &toks[idx];
            if let Some(stripped) = t.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    out.values.insert(k.to_string(), v.to_string());
                } else if idx + 1 < toks.len() && !toks[idx + 1].starts_with("--") {
                    out.values
                        .insert(stripped.to_string(), toks[idx + 1].clone());
                    idx += 1;
                } else {
                    out.flags.push(stripped.to_string());
                }
            }
            idx += 1;
        }
        out
    }

    /// Parse the process's own arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Raw string value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// `usize` value or `default`.
    ///
    /// # Panics
    /// Panics with a clear message when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// `f64` value or `default`.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")))
            .unwrap_or(default)
    }

    /// `u64` value or `default`.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// String value or `default`.
    pub fn get_str<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// True if `--key` appeared as a bare flag (or with any value).
    pub fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key) || self.values.contains_key(key)
    }

    /// Comma-separated list of `usize` (e.g. `--threads 2,4,8`) or default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects integers, got {s:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse("--size 128 --seed=42 --layout z-order");
        assert_eq!(a.get_usize("size", 0), 128);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert_eq!(a.get_str("layout", ""), "z-order");
    }

    #[test]
    fn flags_and_defaults() {
        let a = parse("--verbose --size 16");
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("--csv --markdown");
        assert!(a.has("csv") && a.has("markdown"));
    }

    #[test]
    fn float_values() {
        let a = parse("--sigma 2.5");
        assert!((a.get_f64("sigma", 0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn lists() {
        let a = parse("--threads 2,4, 8");
        // Note: "8" is a separate token, so only "2,4," belongs to the key;
        // trailing empty entries would fail parse — use no spaces in lists.
        let a2 = parse("--threads 2,4,8");
        assert_eq!(a2.get_usize_list("threads", &[]), vec![2, 4, 8]);
        assert_eq!(a.get_usize_list("missing", &[1, 2]), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn bad_integer_panics() {
        parse("--size banana").get_usize("size", 0);
    }
}
