//! The workspace's one metrics plane: a process-wide registry of typed
//! [`Counter`]/[`Gauge`]/[`Log2Histogram`] handles, [`Snapshot`]s with
//! merge/delta semantics, an interval [`Sampler`] that folds polled
//! sources into the registry, and a Prometheus text-format encoder
//! (rezolus-style; see DESIGN.md §11).
//!
//! # Hot-path cost contract
//!
//! After a handle is registered (first touch of a [`LazyCounter`] /
//! [`LazyGauge`] / [`LazyHistogram`], which takes the registry lock once
//! and leaks the metric storage), recording is **lock-free and
//! allocation-free**: a counter add is one relaxed `fetch_add`, a gauge
//! set is one relaxed `store`, and a histogram record is three relaxed
//! `fetch_add`s plus one relaxed `fetch_max` into fixed bucket arrays.
//! `tests/metrics.rs` pins this with a counting global allocator.
//!
//! # Naming scheme
//!
//! Registry names are stable dotted paths, `<crate-or-plane>.<counter>`
//! (`engine.units_completed`, `filters.nan_events`,
//! `server.cache.hits`, `deadline.shed`, `store.repairs`,
//! `engine.unit_latency_us.pencil`). The Prometheus encoder sanitizes
//! dots to underscores and prefixes `sfc_`, so `server.cache.hits`
//! exports as `sfc_server_cache_hits_total`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `b >= 1`
/// holds `[2^(b-1), 2^b - 1]`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const LOG2_BUCKETS: usize = 65;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Typed metric storage
// ---------------------------------------------------------------------------

/// A monotonically increasing event count (one relaxed atomic).
///
/// `reset` exists because the repo's measurement protocol zeroes event
/// counters between measured runs; exposition treats the value as the
/// count since the last reset.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n` events (no-op for zero; relaxed).
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (between measured runs).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time signed value (one relaxed atomic), for polled state:
/// resident bytes, AIMD window, EWMA latency.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (usable in `static` initializers).
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Replace the value (relaxed).
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The log2 bucket index of `v`: 0 for 0, otherwise `floor(log2 v) + 1`.
pub fn log2_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `b` (clamped to
/// the last bucket).
pub fn log2_bucket_range(b: usize) -> (u64, u64) {
    match b.min(LOG2_BUCKETS - 1) {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

/// A fixed-bucket latency/size histogram with power-of-two bucket
/// boundaries (rezolus heatmap-style). Recording is four relaxed atomic
/// operations; there is no allocation anywhere in the type after
/// construction.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram (usable in `static` initializers).
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (lock-free, allocation-free).
    pub fn record(&self, v: u64) {
        self.buckets[log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] in microseconds (the repo's latency unit).
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy of the bucket array and summary
    /// fields. (Consistent enough for exposition: buckets are read after
    /// `count`, so the bucket total is never *behind* `count`.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut buckets = [0u64; LOG2_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Zero every bucket and summary field (between measured runs).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-data copy of a [`Log2Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`log2_bucket_range`]).
    pub buckets: [u64; LOG2_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest observation
    /// (the exact maximum for the top non-empty bucket, since `max` is
    /// tracked). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut last_nonempty = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            last_nonempty = b;
            seen += n;
            if seen >= rank {
                let (_, hi) = log2_bucket_range(b);
                // The histogram's tracked max tightens the top bucket.
                return if b == last_nonempty_bucket(&self.buckets) {
                    hi.min(self.max)
                } else {
                    hi
                };
            }
        }
        let (_, hi) = log2_bucket_range(last_nonempty);
        hi.min(self.max)
    }

    /// Merge another snapshot into this one: bucketwise sums, as if all
    /// observations had been recorded into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Observations gained since `earlier` (bucketwise saturating
    /// difference; `max` keeps the current value, since a maximum cannot
    /// be un-observed).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (a, b) in out.buckets.iter_mut().zip(&earlier.buckets) {
            *a = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.wrapping_sub(earlier.sum);
        out
    }
}

fn last_nonempty_bucket(buckets: &[u64; LOG2_BUCKETS]) -> usize {
    buckets
        .iter()
        .rposition(|&n| n > 0)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A registered metric's storage.
#[derive(Debug, Clone, Copy)]
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Log2Histogram),
}

struct Entry {
    name: String,
    metric: MetricRef,
}

/// The process-wide registry: name → typed metric storage. Registration
/// (the only allocating operation) happens once per name; the returned
/// `&'static` handles are then recorded into without any locking.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &lock(&self.entries).len())
            .finish()
    }
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn find(&self, name: &str) -> Option<MetricRef> {
        lock(&self.entries)
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.metric)
    }

    fn register(&self, name: &str, metric: MetricRef) -> MetricRef {
        let mut entries = lock(&self.entries);
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return e.metric;
        }
        entries.push(Entry {
            name: name.to_string(),
            metric,
        });
        metric
    }

    /// The counter registered under `name`, registering (one leaked
    /// allocation) on first use. If `name` is already registered as a
    /// different kind, a detached unregistered counter is returned — the
    /// caller's recording still works, exposition keeps the first kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let existing = self.find(name);
        match existing {
            Some(MetricRef::Counter(c)) => c,
            Some(_) => Box::leak(Box::new(Counter::new())),
            None => {
                let fresh: &'static Counter = Box::leak(Box::new(Counter::new()));
                match self.register(name, MetricRef::Counter(fresh)) {
                    MetricRef::Counter(c) => c,
                    _ => fresh,
                }
            }
        }
    }

    /// The gauge registered under `name` (see [`Registry::counter`] for
    /// the registration/mismatch rules).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let existing = self.find(name);
        match existing {
            Some(MetricRef::Gauge(g)) => g,
            Some(_) => Box::leak(Box::new(Gauge::new())),
            None => {
                let fresh: &'static Gauge = Box::leak(Box::new(Gauge::new()));
                match self.register(name, MetricRef::Gauge(fresh)) {
                    MetricRef::Gauge(g) => g,
                    _ => fresh,
                }
            }
        }
    }

    /// The histogram registered under `name` (see [`Registry::counter`]
    /// for the registration/mismatch rules).
    pub fn histogram(&self, name: &str) -> &'static Log2Histogram {
        let existing = self.find(name);
        match existing {
            Some(MetricRef::Histogram(h)) => h,
            Some(_) => Box::leak(Box::new(Log2Histogram::new())),
            None => {
                let fresh: &'static Log2Histogram = Box::leak(Box::new(Log2Histogram::new()));
                match self.register(name, MetricRef::Histogram(fresh)) {
                    MetricRef::Histogram(h) => h,
                    _ => fresh,
                }
            }
        }
    }

    /// Names currently registered, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.entries).iter().map(|e| e.name.clone()).collect();
        names.sort();
        names
    }

    /// A point-in-time [`Snapshot`] of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let entries = lock(&self.entries);
        let mut snap = Snapshot::default();
        for e in entries.iter() {
            match e.metric {
                MetricRef::Counter(c) => snap.set_counter(&e.name, c.value()),
                MetricRef::Gauge(g) => snap.set_gauge(&e.name, g.value()),
                MetricRef::Histogram(h) => snap.set_histogram(&e.name, h.snapshot()),
            }
        }
        snap
    }

    /// Zero every registered counter and histogram (gauges keep their
    /// last polled value). Test/measurement plumbing.
    pub fn reset(&self) {
        let entries = lock(&self.entries);
        for e in entries.iter() {
            match e.metric {
                MetricRef::Counter(c) => c.reset(),
                MetricRef::Gauge(_) => {}
                MetricRef::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide registry every lazy handle registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Find-or-register a counter in the [`global`] registry.
pub fn counter(name: &str) -> &'static Counter {
    global().counter(name)
}

/// Find-or-register a gauge in the [`global`] registry.
pub fn gauge(name: &str) -> &'static Gauge {
    global().gauge(name)
}

/// Find-or-register a histogram in the [`global`] registry.
pub fn histogram(name: &str) -> &'static Log2Histogram {
    global().histogram(name)
}

// ---------------------------------------------------------------------------
// Lazy static handles
// ---------------------------------------------------------------------------

/// A `static`-friendly counter handle: registration into the global
/// registry is deferred to first use, every later touch is one relaxed
/// atomic on the registered storage.
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the registry entry `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The registered storage (registers on first call).
    pub fn handle(&self) -> &'static Counter {
        self.cell.get_or_init(|| counter(self.name))
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.handle().value()
    }

    /// Zero the counter.
    pub fn reset(&self) {
        self.handle().reset();
    }
}

/// A `static`-friendly gauge handle (see [`LazyCounter`]).
#[derive(Debug)]
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the registry entry `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The registered storage (registers on first call).
    pub fn handle(&self) -> &'static Gauge {
        self.cell.get_or_init(|| gauge(self.name))
    }

    /// Replace the value.
    pub fn set(&self, v: i64) {
        self.handle().set(v);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.handle().value()
    }
}

/// A `static`-friendly histogram handle (see [`LazyCounter`]).
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Log2Histogram>,
}

impl LazyHistogram {
    /// A handle for the registry entry `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The registered storage (registers on first call).
    pub fn handle(&self) -> &'static Log2Histogram {
        self.cell.get_or_init(|| histogram(self.name))
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.handle().record(v);
    }

    /// Record a duration in microseconds (see
    /// [`Log2Histogram::record_duration_us`]).
    pub fn record_duration_us(&self, d: std::time::Duration) {
        self.handle().record_duration_us(d);
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A snapshotted metric value.
// Snapshots are cold-path plain data; keeping the histogram inline (vs
// boxing it) preserves `Copy`, which the merge/delta code relies on.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time signed value.
    Gauge(i64),
    /// Log2-bucket histogram contents.
    Histogram(HistogramSnapshot),
}

/// A point-in-time, name-sorted copy of a set of metrics. Snapshots are
/// plain data: they can be merged (union, summing shared counters and
/// histograms), diffed ([`Snapshot::delta`]), formatted (the `stats`
/// verb), or encoded ([`encode_prometheus`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or overwrite) a counter entry.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.entries.insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Set (or overwrite) a gauge entry.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.entries.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Set (or overwrite) a histogram entry.
    pub fn set_histogram(&mut self, name: &str, h: HistogramSnapshot) {
        self.entries.insert(name.to_string(), MetricValue::Histogram(h));
    }

    /// The entry named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// A counter's value (0 when absent — counters that never fired are
    /// indistinguishable from unregistered ones by design).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// A histogram's contents, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge `other` into `self`: counters and histograms sum, gauges
    /// take `other`'s (newer) value, entries unique to either side are
    /// kept. Merging mismatched kinds keeps `other`'s value.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.entries {
            match (self.entries.get_mut(name), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += *b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(slot), v) => *slot = *v,
                (None, v) => {
                    self.entries.insert(name.clone(), *v);
                }
            }
        }
    }

    /// What changed since `earlier`: counters and histograms become
    /// differences (saturating at zero), gauges keep their current
    /// value, entries absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (name, v) in &self.entries {
            let dv = match (v, earlier.entries.get(name)) {
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    MetricValue::Counter(a.saturating_sub(*b))
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    MetricValue::Histogram(a.delta(b))
                }
                (v, _) => *v,
            };
            out.entries.insert(name.clone(), dv);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// A polled metrics source: called on every sampler tick to fold derived
/// state (controller windows, cache residency, queue depths) into
/// registry gauges/counters.
pub type SampleFn = Box<dyn Fn(&Registry) + Send>;

/// An interval sampler thread (rezolus-style): every `interval` it runs
/// each source against the registry. Stopped by [`Sampler::stop`] or
/// drop; the final tick runs on stop so a scrape right after shutdown
/// still sees fresh polled values.
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Sampler {
    /// Spawn a sampler over the [`global`] registry.
    pub fn spawn(interval: Duration, sources: Vec<SampleFn>) -> Sampler {
        Self::spawn_on(global(), interval, sources)
    }

    /// Spawn a sampler folding `sources` into `registry` every
    /// `interval`. The thread wakes in small slices so stop latency is
    /// bounded by ~10 ms, not by the interval.
    pub fn spawn_on(
        registry: &'static Registry,
        interval: Duration,
        sources: Vec<SampleFn>,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("sfc-metrics-sampler".into())
            .spawn(move || {
                let tick = |reg: &Registry| {
                    for s in &sources {
                        s(reg);
                    }
                };
                let slice = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
                loop {
                    tick(registry);
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if flag.load(Ordering::Relaxed) {
                            tick(registry); // final fold before exit
                            return;
                        }
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .ok();
        Sampler { stop, handle }
    }

    /// Stop the sampler and join its thread (runs one final tick).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

/// Sanitize a dotted registry name into a Prometheus metric family name:
/// `sfc_` prefix, every non-`[a-zA-Z0-9_]` byte mapped to `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("sfc_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Encode a snapshot as Prometheus text exposition format (version
/// 0.0.4): `# TYPE` headers, `_total`-suffixed counters, cumulative
/// `_bucket{le="…"}` series plus `_sum`/`_count` for histograms, and a
/// non-standard-but-well-formed `_max` gauge per histogram.
pub fn encode_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.iter() {
        let fam = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {fam}_total counter\n"));
                out.push_str(&format!("{fam}_total {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {fam} gauge\n"));
                out.push_str(&format!("{fam} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {fam} histogram\n"));
                let mut cum = 0u64;
                for (b, &n) in h.buckets.iter().enumerate() {
                    cum += n;
                    if n == 0 && b != LOG2_BUCKETS - 1 {
                        continue; // sparse: only emit buckets that grew
                    }
                    let (_, hi) = log2_bucket_range(b);
                    out.push_str(&format!("{fam}_bucket{{le=\"{hi}\"}} {cum}\n"));
                }
                out.push_str(&format!("{fam}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{fam}_sum {}\n", h.sum));
                out.push_str(&format!("{fam}_count {}\n", h.count));
                out.push_str(&format!("# TYPE {fam}_max gauge\n"));
                out.push_str(&format!("{fam}_max {}\n", h.max));
            }
        }
    }
    out
}

/// Validate Prometheus text exposition syntax (the subset this repo
/// emits, which is a strict subset of the 0.0.4 format): every line is a
/// comment (`# TYPE`/`# HELP`) or a `name[{labels}] value` sample with a
/// well-formed metric name and a parseable value; `_bucket` series are
/// cumulative non-decreasing and end with an `+Inf` bucket equal to
/// `_count`. Returns the number of samples on success.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut samples = 0usize;
    // family → (last cumulative bucket value, saw +Inf, count value)
    let mut buckets: BTreeMap<String, (u64, Option<u64>)> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ") || rest.starts_with("EOF"))
            {
                return Err(format!("line {}: unknown comment form: {line:?}", lineno + 1));
            }
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let fam = it.next().unwrap_or("");
                let kind = it.next().unwrap_or("");
                if !valid_name(fam) {
                    return Err(format!("line {}: bad family name {fam:?}", lineno + 1));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {}: bad metric type {kind:?}", lineno + 1));
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let (name_part, rest) = match line.find(['{', ' ']) {
            Some(i) => line.split_at(i),
            None => return Err(format!("line {}: no value: {line:?}", lineno + 1)),
        };
        if !valid_name(name_part) {
            return Err(format!("line {}: bad metric name {name_part:?}", lineno + 1));
        }
        let (labels, value_str) = if let Some(stripped) = rest.strip_prefix('{') {
            let end = stripped
                .find('}')
                .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
            (Some(&stripped[..end]), stripped[end + 1..].trim())
        } else {
            (None, rest.trim())
        };
        let value_str = value_str.split_whitespace().next().unwrap_or("");
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s
                .parse()
                .map_err(|_| format!("line {}: bad sample value {s:?}", lineno + 1))?,
        };
        samples += 1;

        if let Some(fam) = name_part.strip_suffix("_bucket") {
            let le = labels
                .and_then(|l| {
                    l.split(',').find_map(|kv| {
                        kv.trim()
                            .strip_prefix("le=\"")
                            .and_then(|v| v.strip_suffix('"'))
                    })
                })
                .ok_or_else(|| format!("line {}: _bucket without le label", lineno + 1))?;
            let cum = value as u64;
            let entry = buckets.entry(fam.to_string()).or_insert((0, None));
            if cum < entry.0 {
                return Err(format!(
                    "line {}: histogram {fam} buckets not cumulative ({cum} < {})",
                    lineno + 1,
                    entry.0
                ));
            }
            entry.0 = cum;
            if le == "+Inf" {
                entry.1 = Some(cum);
            }
        } else if let Some(fam) = name_part.strip_suffix("_count") {
            counts.insert(fam.to_string(), value as u64);
        }
    }

    for (fam, (_, inf)) in &buckets {
        let inf = inf.ok_or_else(|| format!("histogram {fam} missing +Inf bucket"))?;
        if let Some(count) = counts.get(fam) {
            if *count != inf {
                return Err(format!(
                    "histogram {fam}: +Inf bucket {inf} != count {count}"
                ));
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        assert_eq!(log2_bucket_range(0), (0, 0));
        assert_eq!(log2_bucket_range(1), (1, 1));
        assert_eq!(log2_bucket_range(2), (2, 3));
        assert_eq!(log2_bucket_range(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let h = Log2Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.0), 1);
        // p50 = 3rd smallest (3) → bucket [2,3] upper bound 3.
        assert_eq!(s.quantile(0.5), 3);
        // p100 lands in the top bucket, tightened by the tracked max.
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn registry_find_or_register_is_idempotent() {
        let reg = Registry::new();
        let a = reg.counter("x.events") as *const Counter;
        let b = reg.counter("x.events") as *const Counter;
        assert_eq!(a, b, "same storage for the same name");
        reg.counter("x.events").add(3);
        assert_eq!(reg.snapshot().counter("x.events"), 3);
        assert_eq!(reg.names(), vec!["x.events".to_string()]);
    }

    #[test]
    fn kind_mismatch_returns_detached_storage() {
        let reg = Registry::new();
        reg.counter("x.val").add(1);
        // Same name as a gauge: detached handle, registry keeps counter.
        reg.gauge("x.val").set(99);
        assert_eq!(reg.snapshot().counter("x.val"), 1);
    }

    #[test]
    fn snapshot_merge_and_delta() {
        let mut a = Snapshot::new();
        a.set_counter("c", 5);
        a.set_gauge("g", 1);
        let mut b = Snapshot::new();
        b.set_counter("c", 7);
        b.set_gauge("g", 2);
        b.set_counter("only_b", 1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("c"), 12);
        assert_eq!(merged.gauge("g"), 2);
        assert_eq!(merged.counter("only_b"), 1);
        let d = b.delta(&a);
        assert_eq!(d.counter("c"), 2);
        assert_eq!(d.gauge("g"), 2, "gauges pass through");
    }

    #[test]
    fn prometheus_roundtrip_validates() {
        let reg = Registry::new();
        reg.counter("eng.done").add(41);
        reg.gauge("eng.window").set(-3);
        let h = reg.histogram("eng.lat_us");
        for v in 0..200u64 {
            h.record(v * 37);
        }
        let text = encode_prometheus(&reg.snapshot());
        let samples = validate_prometheus_text(&text).expect("valid exposition");
        assert!(samples >= 3, "{text}");
        assert!(text.contains("# TYPE sfc_eng_done_total counter"), "{text}");
        assert!(text.contains("sfc_eng_done_total 41"), "{text}");
        assert!(text.contains("sfc_eng_window -3"), "{text}");
        assert!(text.contains("sfc_eng_lat_us_bucket{le=\"+Inf\"} 200"), "{text}");
        assert!(text.contains("sfc_eng_lat_us_count 200"), "{text}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("9bad_name 1\n").is_err());
        assert!(validate_prometheus_text("x{le=\"7\" 1\n").is_err());
        assert!(validate_prometheus_text("x notanumber\n").is_err());
        assert!(validate_prometheus_text("# FROB x\n").is_err());
        // Non-cumulative buckets.
        let bad = "h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_prometheus_text(bad).is_err());
        // Missing +Inf.
        assert!(validate_prometheus_text("h_bucket{le=\"1\"} 5\n").is_err());
    }

    #[test]
    fn sampler_folds_sources_on_an_interval() {
        // Use the global registry under a test-unique name.
        let src: SampleFn = Box::new(|reg: &Registry| {
            reg.gauge("test.sampler.tick").set(7);
            reg.counter("test.sampler.polls").add(1);
        });
        let sampler = Sampler::spawn(Duration::from_millis(5), vec![src]);
        std::thread::sleep(Duration::from_millis(30));
        sampler.stop();
        assert_eq!(gauge("test.sampler.tick").value(), 7);
        assert!(counter("test.sampler.polls").value() >= 2);
    }
}
