//! The composable execution engine every kernel driver runs on.
//!
//! The paper's two kernels share one parallelization story — partition the
//! volume into ordered work units (voxel pencils for the bilateral filter,
//! §III-D; 32×32 image tiles for the raycaster, §III-E) and hand units to
//! threads either statically round-robin or through a dynamic queue. This
//! module implements that story **once**, as three composable pieces:
//!
//! * a [`WorkPlan`] — how many units there are and how they are
//!   partitioned across threads ([`Partition::StaticRoundRobin`] or
//!   [`Partition::DynamicQueue`] with a configurable claim chunk);
//! * an [`Executor`] — owns the **single** `std::thread::scope` worker
//!   loop in the workspace. Every parallel kernel path (plain pools,
//!   supervised pools, degraded pipelines, the cache-simulator core sweep)
//!   funnels through [`scoped_workers`];
//! * a stack of [`ExecPolicy`] layers — [`ExecPolicy::Plain`] (run to
//!   completion, panics propagate), [`ExecPolicy::Supervised`] (panic
//!   isolation, watchdog timeouts with cooperative cancellation, bounded
//!   retry with exponential backoff), [`ExecPolicy::Degraded`]
//!   (supervised execution with buffered per-unit commit, a typed
//!   [`DefectMap`] over units, a post-run validation scan, and a
//!   single-threaded faults-off repair pass), and [`ExecPolicy::Brownout`]
//!   (the degraded pipeline under deadline-aware admission control: an
//!   EWMA/AIMD [`DeadlineController`](crate::deadline) adapts effective
//!   concurrency, a per-unit circuit breaker stops retrying chronically
//!   failing units at full quality, and kernels with a [`BrownoutKernel`]
//!   quality ladder are asked for coarser — but valid — output under
//!   pressure, every downgrade recorded in a [`QualityMap`]).
//!
//! Kernels plug in through the [`UnitKernel`] trait (compute a unit into a
//! buffer, commit it, read it back for validation) and batch their NaN
//! tallies through the [`UnitCounters`] sink trait (one shared-atomic
//! update per unit, not per voxel). The legacy entry points —
//! [`run_items`](crate::run_items),
//! [`run_items_supervised`](crate::run_items_supervised) and friends — are
//! thin wrappers over [`Executor`] and keep their exact semantics.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sfc_core::{SfcError, SfcResult};

use crate::deadline::{Admission, DeadlineBudget, DeadlineController, DowngradeReason, QualityMap};
use crate::degrade::{scan_unit, DefectMap, DegradedOutcome};
use crate::faults::FaultPlan;
use crate::metrics::{self, LazyCounter, Log2Histogram};
use crate::pool::{items_for_thread, Schedule};
use crate::supervise::{CancelToken, ItemFailure, RunReport, SupervisorConfig};

// ---------------------------------------------------------------------------
// Work plans
// ---------------------------------------------------------------------------

/// How a plan's units are split across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Unit `i` is processed by thread `i % nthreads` (the paper's pencil
    /// assignment).
    StaticRoundRobin,
    /// Threads repeatedly claim the next `chunk` unprocessed units from a
    /// shared cursor (the paper's tile worker pool; `chunk = 1` is the
    /// classic one-item-at-a-time queue).
    DynamicQueue {
        /// Units claimed per queue operation (normalized to at least 1).
        chunk: usize,
    },
}

/// An ordered set of work units plus its partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPlan {
    nunits: usize,
    partition: Partition,
}

impl WorkPlan {
    /// A plan over `0..nunits` with an explicit partition. A
    /// `DynamicQueue` chunk of 0 is normalized to 1.
    pub fn new(nunits: usize, partition: Partition) -> Self {
        let partition = match partition {
            Partition::DynamicQueue { chunk } => Partition::DynamicQueue {
                chunk: chunk.max(1),
            },
            p => p,
        };
        Self { nunits, partition }
    }

    /// Static round-robin plan (pencil assignment).
    pub fn static_round_robin(nunits: usize) -> Self {
        Self::new(nunits, Partition::StaticRoundRobin)
    }

    /// Dynamic-queue plan with single-unit claims (tile worker pool).
    pub fn dynamic(nunits: usize) -> Self {
        Self::new(nunits, Partition::DynamicQueue { chunk: 1 })
    }

    /// The plan matching a legacy [`Schedule`] value.
    pub fn from_schedule(nunits: usize, schedule: Schedule) -> Self {
        match schedule {
            Schedule::StaticRoundRobin => Self::static_round_robin(nunits),
            Schedule::Dynamic => Self::dynamic(nunits),
        }
    }

    /// Number of work units.
    pub fn nunits(&self) -> usize {
        self.nunits
    }

    /// Partitioning strategy.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Initial claim order for a supervised queue. A dynamic plan offers
    /// `0..nunits`; a static plan offers the concatenated per-thread
    /// round-robin batches of the unsupervised pool, so the first claims
    /// reproduce the static split while retries can still rebalance.
    pub fn initial_order(&self, nthreads: usize) -> Vec<usize> {
        match self.partition {
            Partition::DynamicQueue { .. } => (0..self.nunits).collect(),
            Partition::StaticRoundRobin => {
                let nthreads = nthreads.max(1);
                let mut order = Vec::with_capacity(self.nunits);
                for tid in 0..nthreads {
                    order.extend(items_for_thread(self.nunits, nthreads, tid));
                }
                order
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The one thread scope
// ---------------------------------------------------------------------------

/// Spawn `nthreads` workers running `worker(tid)` inside the workspace's
/// single `std::thread::scope`, plus an optional monitor thread (the
/// supervised watchdog). The monitor receives a `respawn` callback that
/// starts replacement workers inside the same scope — that is how a
/// wedged worker's capacity is restored without a second scope anywhere.
fn scoped_workers<W, M>(nthreads: usize, worker: &W, monitor: Option<M>)
where
    W: Fn(usize) + Sync,
    M: FnOnce(&dyn Fn(usize)) + Send,
{
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            s.spawn(move || worker(tid));
        }
        if let Some(monitor) = monitor {
            s.spawn(move || {
                let respawn = |tid: usize| {
                    s.spawn(move || worker(tid));
                };
                monitor(&respawn);
            });
        }
    });
}

/// Placeholder monitor type for callers that do not supervise.
type NoMonitor = fn(&dyn Fn(usize));

// ---------------------------------------------------------------------------
// Poison-tolerant locking
// ---------------------------------------------------------------------------
//
// Every mutex in this module guards plain bookkeeping data (queues, defect
// logs, heartbeat slots) that is consistent at every point a panic can
// unwind through — the engine's own panic isolation catches kernel panics
// *outside* any lock, but a `commit` implementation can still panic while
// a sibling holds a lock, and a long-running service must not turn one
// tenant's poisoned unit into a permanently wedged executor. Recovering
// the guard is therefore always correct here; propagating the poison
// would only re-panic threads that did nothing wrong.

/// Lock `m`, recovering the guard from a poisoned mutex.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Consume `m`, recovering the value from a poisoned mutex.
fn unwrap_lock<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Executes [`WorkPlan`]s on a fixed-size worker pool. Construction is the
/// only place a thread count is validated; every kernel driver goes
/// through here.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    nthreads: usize,
}

impl Executor {
    /// An executor with `nthreads` workers.
    ///
    /// # Panics
    /// Panics if `nthreads == 0` (misconfiguration, not worker failure).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "need at least one thread");
        Self { nthreads }
    }

    /// Worker-pool size.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Run `worker(tid, unit)` over every unit of `plan`. Blocks until all
    /// units are processed; each unit is processed exactly once. With one
    /// thread the units run serially in index order on the caller's thread
    /// (no spawn, no atomics) — the fast path every single-threaded
    /// benchmark row takes.
    pub fn run<F>(&self, plan: &WorkPlan, worker: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        let n = plan.nunits;
        if self.nthreads == 1 {
            for unit in 0..n {
                worker(0, unit);
            }
            return;
        }
        match plan.partition {
            Partition::StaticRoundRobin => {
                let nthreads = self.nthreads;
                scoped_workers(
                    nthreads,
                    &|tid| {
                        for unit in items_for_thread(n, nthreads, tid) {
                            worker(tid, unit);
                        }
                    },
                    None::<NoMonitor>,
                );
            }
            Partition::DynamicQueue { chunk } => {
                let next = AtomicUsize::new(0);
                let next = &next;
                scoped_workers(
                    self.nthreads,
                    &|tid| loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for unit in start..n.min(start + chunk) {
                            worker(tid, unit);
                        }
                    },
                    None::<NoMonitor>,
                );
            }
        }
    }

    /// [`Executor::run`] with per-unit panic isolation: a panicking unit is
    /// caught, the remaining units still run, and the lowest-indexed
    /// panicked unit is reported as a typed [`SfcError::WorkerPanic`].
    /// Used by the cache-simulator core sweep so one bad core simulation
    /// no longer aborts the whole sweep.
    pub fn try_run<F>(&self, plan: &WorkPlan, worker: F) -> SfcResult<()>
    where
        F: Fn(usize, usize) + Sync,
    {
        let first: Mutex<Option<(usize, String)>> = Mutex::new(None);
        self.run(plan, |tid, unit| {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| worker(tid, unit))) {
                let mut slot = lock(&first);
                // Keep the lowest unit index so the reported error is
                // deterministic regardless of thread interleaving.
                if slot.as_ref().is_none_or(|(u, _)| unit < *u) {
                    *slot = Some((unit, panic_payload_string(&payload)));
                }
            }
        });
        match unwrap_lock(first) {
            None => Ok(()),
            Some((item, payload)) => Err(SfcError::WorkerPanic { item, payload }),
        }
    }

    /// Run `worker(tid, unit, token)` under supervision: per-unit panic
    /// isolation, bounded retry with exponential backoff, and — when
    /// `cfg.timeout` is set — a watchdog that expires overdue attempts,
    /// fires their cancel token, and respawns replacement workers. Returns
    /// a [`RunReport`]; never panics because of worker behaviour.
    ///
    /// The executor's thread count and the plan's partition supersede the
    /// `nthreads`/`schedule` fields of `cfg` (the legacy wrappers pass
    /// consistent values). Each *attempt's* outcome is accounted exactly
    /// once (per-unit epoch CAS), and each unit contributes exactly one
    /// unit to `completed + failed.len()`.
    pub fn run_supervised<F>(&self, plan: &WorkPlan, cfg: &SupervisorConfig, worker: F) -> RunReport
    where
        F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + Sync,
    {
        let start = Instant::now();
        let nitems = plan.nunits;
        if nitems == 0 {
            return RunReport::default();
        }

        let queue: VecDeque<Entry> = plan
            .initial_order(self.nthreads)
            .into_iter()
            .map(|item| Entry {
                item,
                attempt: 0,
                not_before: start,
            })
            .collect();
        let shared = Shared {
            worker: &worker,
            cfg: cfg.clone(),
            nitems,
            queue: Mutex::new(queue),
            cv: Condvar::new(),
            epoch: (0..nitems).map(|_| AtomicU32::new(0)).collect(),
            heartbeats: Mutex::new(Vec::new()),
            accounted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            retried: AtomicUsize::new(0),
            replacements: AtomicUsize::new(0),
            failures: Mutex::new(Vec::new()),
            done: AtomicBool::new(false),
            next_tid: AtomicUsize::new(self.nthreads),
        };

        {
            let sh = &shared;
            scoped_workers(
                self.nthreads,
                &|tid| sh.worker_loop(tid),
                cfg.timeout
                    .map(|limit| move |respawn: &dyn Fn(usize)| watchdog_loop(sh, respawn, limit)),
            );
        }

        let mut failed = unwrap_lock(shared.failures);
        failed.sort_by_key(|f| f.item);
        RunReport {
            completed: shared.completed.load(Ordering::Relaxed),
            failed,
            retried: shared.retried.load(Ordering::Relaxed),
            replacements: shared.replacements.load(Ordering::Relaxed),
            wall_time: start.elapsed(),
        }
    }

    /// Execute a [`UnitKernel`] under a policy stack. All three policies
    /// use the kernel's buffered compute/commit cycle:
    ///
    /// * [`ExecPolicy::Plain`] — every unit computed and committed, panics
    ///   propagate, `faults` is ignored (fault injection requires
    ///   supervision); the outcome is a clean [`DefectMap`].
    /// * [`ExecPolicy::Supervised`] — supervised execution with buffered
    ///   commit; failed units become [`DefectMap`] entries, no validation
    ///   scan or repair.
    /// * [`ExecPolicy::Degraded`] — the full three-phase pipeline:
    ///   supervised execution, post-run validation scan (non-finite +
    ///   optional plausibility range over every committed unit), and a
    ///   single-threaded faults-off repair pass that re-computes each
    ///   defective unit and marks it repaired when its rescan is clean.
    /// * [`ExecPolicy::Brownout`] — the degraded pipeline under deadline
    ///   admission control. For a plain [`UnitKernel`] (no quality
    ///   ladder) the deadline can only shed past-budget units to the
    ///   repair pass; kernels with a real ladder should be driven through
    ///   [`Executor::execute_brownout`] instead.
    pub fn execute<K: UnitKernel>(
        &self,
        plan: &WorkPlan,
        policy: &ExecPolicy,
        kernel: &K,
        faults: &FaultPlan,
    ) -> DegradedOutcome {
        let nunits = plan.nunits;
        match policy {
            ExecPolicy::Plain => {
                let start = Instant::now();
                let latency = unit_latency(kernel.unit_kind());
                self.run(plan, |_tid, unit| {
                    let t0 = Instant::now();
                    let mut buf = Vec::new();
                    kernel.compute(unit, &mut buf, &mut || true);
                    kernel.commit(unit, &buf);
                    latency.record_duration_us(t0.elapsed());
                });
                let outcome = DegradedOutcome::full_quality(
                    RunReport {
                        completed: nunits,
                        wall_time: start.elapsed(),
                        ..RunReport::default()
                    },
                    DefectMap::new(kernel.unit_kind(), nunits),
                );
                record_outcome_metrics(&outcome);
                outcome
            }
            ExecPolicy::Supervised(cfg) => {
                let report = self.supervised_commit_phase(plan, cfg, kernel, faults);
                let defects = DefectMap::from_run_report(kernel.unit_kind(), nunits, &report);
                let outcome = DegradedOutcome::full_quality(report, defects);
                record_outcome_metrics(&outcome);
                outcome
            }
            ExecPolicy::Degraded(policy) => self.run_degraded(plan, policy, kernel, faults),
            ExecPolicy::Brownout(policy) => {
                self.run_brownout(plan, policy, &NoLadder(kernel), faults)
            }
        }
    }

    /// [`Executor::execute`] for kernels with a brownout quality ladder.
    /// Under [`ExecPolicy::Brownout`] the deadline controller may admit
    /// units at a coarser ladder level; every other policy behaves exactly
    /// as in [`Executor::execute`] (the ladder is never consulted).
    pub fn execute_brownout<K: BrownoutKernel>(
        &self,
        plan: &WorkPlan,
        policy: &ExecPolicy,
        kernel: &K,
        faults: &FaultPlan,
    ) -> DegradedOutcome {
        match policy {
            ExecPolicy::Brownout(policy) => self.run_brownout(plan, policy, kernel, faults),
            other => self.execute(plan, other, kernel, faults),
        }
    }

    /// Phase 1 of the supervised/degraded pipelines: compute each unit
    /// into a local buffer under supervision, check the cancel token, then
    /// commit — an abandoned attempt never leaves a half-written unit.
    fn supervised_commit_phase<K: UnitKernel>(
        &self,
        plan: &WorkPlan,
        cfg: &SupervisorConfig,
        kernel: &K,
        faults: &FaultPlan,
    ) -> RunReport {
        let latency = unit_latency(kernel.unit_kind());
        self.run_supervised(plan, cfg, |_tid, unit, token| {
            faults.fire_cancellable(unit, token)?;
            let t0 = Instant::now();
            let mut buf = Vec::new();
            let done = kernel.compute(unit, &mut buf, &mut || !token.is_cancelled());
            if !done {
                return Err(SfcError::Cancelled { item: unit });
            }
            token.bail(unit)?;
            if faults.corrupts(unit) {
                K::poison(&mut buf);
            }
            kernel.commit(unit, &buf);
            latency.record_duration_us(t0.elapsed());
            Ok(())
        })
    }

    /// The generic graceful-degradation pipeline (execute → validate →
    /// repair) shared by the bilateral and raycasting degraded drivers.
    fn run_degraded<K: UnitKernel>(
        &self,
        plan: &WorkPlan,
        policy: &DegradedPolicy,
        kernel: &K,
        faults: &FaultPlan,
    ) -> DegradedOutcome {
        let nunits = plan.nunits;
        let report = self.supervised_commit_phase(plan, &policy.supervisor, kernel, faults);

        // Phase 2: typed defects from execution failures + validation scan
        // of every successfully committed unit (failed units hold
        // placeholder data and are already in the map).
        let mut defects = DefectMap::from_run_report(kernel.unit_kind(), nunits, &report);
        let failed: Vec<usize> = defects.units();
        let mut values = Vec::new();
        let mut comps = Vec::new();
        for unit in 0..nunits {
            if failed.binary_search(&unit).is_ok() {
                continue;
            }
            values.clear();
            kernel.read_back(unit, &mut values);
            comps.clear();
            for &v in &values {
                K::components(v, &mut |c| comps.push(c));
            }
            scan_unit(&mut defects, unit, comps.iter().copied(), policy.output_range);
        }

        // Phase 3: single-threaded repair with faults disabled, then a
        // rescan of the freshly computed buffer (not a read-back — the
        // rescan judges the recomputation itself).
        for unit in defects.units() {
            let mut buf = Vec::new();
            kernel.compute(unit, &mut buf, &mut || true);
            kernel.commit(unit, &buf);
            comps.clear();
            for &v in &buf {
                K::components(v, &mut |c| comps.push(c));
            }
            let mut rescan = DefectMap::new(kernel.unit_kind(), nunits);
            let dirty = scan_unit(&mut rescan, unit, comps.iter().copied(), policy.output_range);
            if dirty {
                defects.merge(rescan); // genuinely bad data (e.g. NaN input)
            } else {
                defects.mark_repaired(unit);
            }
        }

        let outcome = DegradedOutcome::full_quality(report, defects);
        record_outcome_metrics(&outcome);
        outcome
    }

    /// The brownout pipeline: the degraded execute/validate/repair cycle
    /// with a [`DeadlineController`] deciding, per attempt, whether a unit
    /// runs at full quality, at a coarser ladder level, or is shed past
    /// the hard deadline straight to the repair pass.
    ///
    /// Control flow per attempt: the admission decision is taken *before*
    /// the AIMD concurrency slot is acquired, so once the budget is
    /// exhausted the remaining queue drains at memory speed instead of
    /// serializing through the gate. A cancelled attempt (watchdog fired
    /// its token) never commits — the token is checked after compute — so
    /// at most one attempt's bytes land per unit in practice; the
    /// [`QualityMap`] records levels in commit order (last write wins).
    ///
    /// With no budget and no failures every unit is admitted at level 0,
    /// which the [`BrownoutKernel`] contract makes bitwise-identical to
    /// [`UnitKernel::compute`] — so a pressure-free brownout run equals a
    /// plain run byte for byte.
    fn run_brownout<K: BrownoutKernel>(
        &self,
        plan: &WorkPlan,
        policy: &BrownoutPolicy,
        kernel: &K,
        faults: &FaultPlan,
    ) -> DegradedOutcome {
        let nunits = plan.nunits;
        let ctl = DeadlineController::new(&policy.deadline, nunits, self.nthreads, kernel.max_level());
        let latency = unit_latency(kernel.unit_kind());
        let downgrades: Mutex<Vec<(usize, u8, DowngradeReason)>> = Mutex::new(Vec::new());

        let report = self.run_supervised(plan, &policy.supervisor, |_tid, unit, token| {
            let admission = ctl.admit(unit);
            let level = match admission {
                // Past the hard deadline: shed without burning an
                // admission slot or a fault roll. `Cancelled` is not
                // retryable, so the unit goes straight to the defect map
                // and is recomputed (coarsely) by the repair pass.
                Admission::Shed => return Err(SfcError::Cancelled { item: unit }),
                Admission::Full => 0,
                Admission::Degraded { level, .. } => level,
            };
            let attempt = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _slot = ctl.acquire(unit, token)?;
                faults.fire_cancellable(unit, token)?;
                let mut buf = Vec::new();
                let done = kernel.compute_at(unit, level, &mut buf, &mut || !token.is_cancelled());
                if !done {
                    return Err(SfcError::Cancelled { item: unit });
                }
                token.bail(unit)?;
                if faults.corrupts(unit) {
                    K::poison(&mut buf);
                }
                kernel.commit(unit, &buf);
                if let Admission::Degraded { level, reason } = admission {
                    let mut log = lock(&downgrades);
                    log.push((unit, level, reason));
                }
                Ok(())
            }));
            match outcome {
                Ok(Ok(())) => {
                    let elapsed = attempt.elapsed();
                    latency.record_duration_us(elapsed);
                    ctl.on_success(elapsed);
                    Ok(())
                }
                Ok(Err(err)) => {
                    ctl.on_failed_attempt(unit, attempt.elapsed());
                    Err(err)
                }
                Err(payload) => {
                    // Feed the breaker/EWMA, then let the supervised
                    // worker loop account the panic as usual.
                    ctl.on_failed_attempt(unit, attempt.elapsed());
                    std::panic::resume_unwind(payload)
                }
            }
        });

        // Phase 2: defects from execution failures + validation scan of
        // committed units, exactly as in the degraded pipeline.
        let mut defects = DefectMap::from_run_report(kernel.unit_kind(), nunits, &report);
        let failed: Vec<usize> = defects.units();
        let mut values = Vec::new();
        let mut comps = Vec::new();
        for unit in 0..nunits {
            if failed.binary_search(&unit).is_ok() {
                continue;
            }
            values.clear();
            kernel.read_back(unit, &mut values);
            comps.clear();
            for &v in &values {
                K::components(v, &mut |c| comps.push(c));
            }
            scan_unit(&mut defects, unit, comps.iter().copied(), policy.output_range);
        }

        let mut quality = QualityMap::new(kernel.unit_kind(), nunits);
        for (unit, level, reason) in unwrap_lock(downgrades) {
            quality.record(unit, level, reason);
        }

        // Phase 3: single-threaded faults-off repair. Inside the budget
        // the repair runs at full quality; once the budget is exhausted it
        // runs at the deepest ladder rung — recomputing shed units at full
        // quality would blow the very deadline that shed them.
        let repair_level = ctl.repair_level();
        for unit in defects.units() {
            let mut buf = Vec::new();
            kernel.compute_at(unit, repair_level, &mut buf, &mut || true);
            kernel.commit(unit, &buf);
            comps.clear();
            for &v in &buf {
                K::components(v, &mut |c| comps.push(c));
            }
            let mut rescan = DefectMap::new(kernel.unit_kind(), nunits);
            let dirty = scan_unit(&mut rescan, unit, comps.iter().copied(), policy.output_range);
            if dirty {
                defects.merge(rescan);
            } else {
                defects.mark_repaired(unit);
            }
            if repair_level > 0 {
                quality.record(unit, repair_level, DowngradeReason::Shed);
            } else {
                quality.clear(unit); // repaired at full quality
            }
        }

        let outcome = DegradedOutcome {
            report,
            defects,
            quality,
        };
        record_outcome_metrics(&outcome);
        outcome
    }
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

/// Stackable execution-policy layers (see [`Executor::execute`]).
#[derive(Debug, Clone)]
pub enum ExecPolicy {
    /// Run to completion; worker panics propagate; no fault injection.
    Plain,
    /// Supervised execution: panic isolation, watchdog timeouts with
    /// cooperative cancellation, bounded retry with backoff.
    Supervised(SupervisorConfig),
    /// Supervised execution plus the validate/repair pipeline.
    Degraded(DegradedPolicy),
    /// The degraded pipeline under deadline-aware admission control: a
    /// wall-clock [`DeadlineBudget`], AIMD concurrency adaptation, a
    /// per-unit circuit breaker, and the [`BrownoutKernel`] quality
    /// ladder. With no budget and no failures this is bitwise-identical
    /// to [`ExecPolicy::Plain`].
    Brownout(BrownoutPolicy),
}

impl ExecPolicy {
    /// The full graceful-degradation stack with an optional inclusive
    /// plausibility range for finite output components.
    pub fn degraded(supervisor: SupervisorConfig, output_range: Option<(f32, f32)>) -> Self {
        ExecPolicy::Degraded(DegradedPolicy {
            supervisor,
            output_range,
        })
    }

    /// The deadline-aware brownout stack.
    pub fn brownout(
        supervisor: SupervisorConfig,
        deadline: DeadlineBudget,
        output_range: Option<(f32, f32)>,
    ) -> Self {
        ExecPolicy::Brownout(BrownoutPolicy {
            supervisor,
            deadline,
            output_range,
        })
    }

    /// Human-readable policy name for logs and demo banners.
    pub fn label(&self) -> &'static str {
        match self {
            ExecPolicy::Plain => "plain",
            ExecPolicy::Supervised(_) => "supervised",
            ExecPolicy::Degraded(_) => "degraded",
            ExecPolicy::Brownout(_) => "brownout",
        }
    }
}

/// Configuration of the [`ExecPolicy::Degraded`] stack.
#[derive(Debug, Clone)]
pub struct DegradedPolicy {
    /// Supervision parameters for the execute phase.
    pub supervisor: SupervisorConfig,
    /// Optional inclusive plausibility interval the validation scan
    /// enforces on finite output components.
    pub output_range: Option<(f32, f32)>,
}

/// Configuration of the [`ExecPolicy::Brownout`] stack.
#[derive(Debug, Clone)]
pub struct BrownoutPolicy {
    /// Supervision parameters for the execute phase.
    pub supervisor: SupervisorConfig,
    /// Wall-clock budget and control-loop knobs.
    pub deadline: DeadlineBudget,
    /// Optional inclusive plausibility interval the validation scan
    /// enforces on finite output components.
    pub output_range: Option<(f32, f32)>,
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// A kernel the engine can drive: computes one work unit at a time into a
/// dense buffer, commits the buffer to the output, and can read a
/// committed unit back for validation. Implementations wrap the output in
/// a raw-pointer slot structure so disjoint units commit concurrently.
pub trait UnitKernel: Sync {
    /// Element type of a unit's buffer (a voxel value, a pixel, …).
    type Value: Copy + Send;

    /// The unit noun used in defect maps ("pencil", "tile", …).
    fn unit_kind(&self) -> &'static str;

    /// Compute `unit` into `buf` (cleared/sized by the implementation),
    /// polling `keep_going` at a convenient granularity. Returns `false`
    /// when aborted by `keep_going`; partial buffers are never committed.
    fn compute(&self, unit: usize, buf: &mut Vec<Self::Value>, keep_going: &mut dyn FnMut() -> bool)
        -> bool;

    /// Commit a fully computed buffer to the output. May be called
    /// concurrently for distinct units; concurrent commits of the *same*
    /// unit must write identical bytes (deterministic kernels do).
    fn commit(&self, unit: usize, buf: &[Self::Value]);

    /// Read a committed unit back from the output, in the same order
    /// `compute` fills the buffer. Only called single-threaded, after all
    /// concurrent commits have finished.
    fn read_back(&self, unit: usize, buf: &mut Vec<Self::Value>);

    /// Decompose a value into its finite-checkable f32 components (one
    /// per voxel value, four per RGBA pixel, …) for the validation scan.
    fn components(value: Self::Value, sink: &mut dyn FnMut(f32));

    /// Overwrite a computed buffer the way
    /// [`FaultKind::CorruptOutput`](crate::FaultKind::CorruptOutput)
    /// prescribes (alternating non-finite and absurd-but-finite values),
    /// so both arms of the validation scan are exercised.
    fn poison(buf: &mut [Self::Value]);
}

/// A [`UnitKernel`] with a *quality ladder*: the same unit can be
/// computed at progressively coarser — but still valid — quality levels
/// (bilateral pencils with a reduced stencil radius, raycast tiles with a
/// larger step and a lower early-termination threshold). The brownout
/// policy climbs down the ladder under deadline pressure instead of
/// blowing the budget.
///
/// Contract: `compute_at(unit, 0, …)` must be **bitwise-identical** to
/// [`UnitKernel::compute`] — level 0 *is* full quality — and every level
/// up to [`BrownoutKernel::max_level`] must fill the buffer with the same
/// shape (same length, same element order) so commit/read-back/validation
/// are level-agnostic.
pub trait BrownoutKernel: UnitKernel {
    /// Deepest available ladder level (0 = no ladder: the kernel can only
    /// be computed at full quality).
    fn max_level(&self) -> u8;

    /// Compute `unit` at ladder `level` (clamped to
    /// [`BrownoutKernel::max_level`] by the engine) into `buf`, polling
    /// `keep_going` like [`UnitKernel::compute`].
    fn compute_at(
        &self,
        unit: usize,
        level: u8,
        buf: &mut Vec<Self::Value>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool;
}

/// Adapter giving any [`UnitKernel`] an empty quality ladder, so
/// [`Executor::execute`] can run ladder-less kernels under
/// [`ExecPolicy::Brownout`] (the deadline can then only shed, not
/// coarsen).
struct NoLadder<'a, K: UnitKernel>(&'a K);

impl<K: UnitKernel> UnitKernel for NoLadder<'_, K> {
    type Value = K::Value;

    fn unit_kind(&self) -> &'static str {
        self.0.unit_kind()
    }

    fn compute(&self, unit: usize, buf: &mut Vec<K::Value>, keep_going: &mut dyn FnMut() -> bool)
        -> bool {
        self.0.compute(unit, buf, keep_going)
    }

    fn commit(&self, unit: usize, buf: &[K::Value]) {
        self.0.commit(unit, buf)
    }

    fn read_back(&self, unit: usize, buf: &mut Vec<K::Value>) {
        self.0.read_back(unit, buf)
    }

    fn components(value: K::Value, sink: &mut dyn FnMut(f32)) {
        K::components(value, sink)
    }

    fn poison(buf: &mut [K::Value]) {
        K::poison(buf)
    }
}

impl<K: UnitKernel> BrownoutKernel for NoLadder<'_, K> {
    fn max_level(&self) -> u8 {
        0
    }

    fn compute_at(
        &self,
        unit: usize,
        _level: u8,
        buf: &mut Vec<K::Value>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        self.0.compute(unit, buf, keep_going)
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A sink for per-unit event tallies (NaN substitutions, excluded voxels).
/// Kernels count locally while computing a unit and flush **once per
/// unit**, so the shared atomic is touched per pencil/tile, not per voxel.
pub trait UnitCounters: Sync {
    /// Add one unit's event count (no-op for zero).
    fn record_unit(&self, events: u64);
    /// Total events recorded since the last [`UnitCounters::reset`].
    fn total(&self) -> u64;
    /// Reset to zero (call before a measured run).
    fn reset(&self);
}

/// The standard process-wide [`UnitCounters`] sink: a named counter in
/// the [`metrics`] registry (registered lazily on first touch), so every
/// kernel event tally is visible on the one metrics plane. Recording
/// stays a single relaxed atomic add; const-constructible so crates keep
/// their counters in `static`s.
#[derive(Debug)]
pub struct EventCounter(LazyCounter);

impl EventCounter {
    /// A counter registered in the global metrics registry as `name`
    /// (stable dotted path, e.g. `filters.nan_events`).
    pub const fn new(name: &'static str) -> Self {
        Self(LazyCounter::new(name))
    }
}

impl UnitCounters for EventCounter {
    fn record_unit(&self, events: u64) {
        self.0.add(events);
    }

    fn total(&self) -> u64 {
        self.0.value()
    }

    fn reset(&self) {
        self.0.reset();
    }
}

// ---------------------------------------------------------------------------
// Engine metrics
// ---------------------------------------------------------------------------

static UNITS_COMPLETED: LazyCounter = LazyCounter::new("engine.units_completed");
static UNITS_FAILED: LazyCounter = LazyCounter::new("engine.units_failed");
static UNITS_RETRIED: LazyCounter = LazyCounter::new("engine.units_retried");
static DEFECTS: LazyCounter = LazyCounter::new("engine.defects");
static UNITS_REPAIRED: LazyCounter = LazyCounter::new("engine.units_repaired");
static UNITS_DOWNGRADED: LazyCounter = LazyCounter::new("engine.units_downgraded");

/// The per-unit commit-latency histogram for a kernel's unit kind
/// (`engine.unit_latency_us.pencil`, `engine.unit_latency_us.tile`, …).
/// Looked up once per run — one registry lock per `execute`, zero
/// allocation afterwards.
fn unit_latency(unit_kind: &str) -> &'static Log2Histogram {
    metrics::histogram(&format!("engine.unit_latency_us.{unit_kind}"))
}

/// Fold a finished run's report, defect map, and quality map into the
/// engine's registry counters. Called once per policy pipeline.
fn record_outcome_metrics(outcome: &DegradedOutcome) {
    UNITS_COMPLETED.add(outcome.report.completed as u64);
    UNITS_FAILED.add(outcome.report.failed.len() as u64);
    UNITS_RETRIED.add(outcome.report.retried as u64);
    DEFECTS.add(outcome.defects.len() as u64);
    let unrepaired = outcome.defects.unrepaired_units().len();
    UNITS_REPAIRED.add(outcome.defects.units().len().saturating_sub(unrepaired) as u64);
    UNITS_DOWNGRADED.add(outcome.quality.len() as u64);
}

// ---------------------------------------------------------------------------
// Supervised machinery (moved here from supervise.rs so the watchdog's
// replacement workers spawn inside the same single thread scope)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Entry {
    item: usize,
    attempt: u32,
    not_before: Instant,
}

/// Per-worker heartbeat: what the worker is running, since when, and the
/// cancel token the watchdog fires if the attempt overstays its deadline.
#[derive(Default)]
struct Heartbeat {
    current: Mutex<Option<(usize, u32, Instant, CancelToken)>>,
}

struct Shared<'a, F> {
    worker: &'a F,
    cfg: SupervisorConfig,
    nitems: usize,
    queue: Mutex<VecDeque<Entry>>,
    cv: Condvar,
    /// Per-item attempt epoch: an attempt's outcome (completion, error, or
    /// watchdog timeout) is claimed by CAS-ing `attempt -> attempt + 1`,
    /// so a wedged worker finishing late can never double-account.
    epoch: Vec<AtomicU32>,
    heartbeats: Mutex<Vec<Arc<Heartbeat>>>,
    accounted: AtomicUsize,
    completed: AtomicUsize,
    retried: AtomicUsize,
    replacements: AtomicUsize,
    failures: Mutex<Vec<ItemFailure>>,
    done: AtomicBool,
    next_tid: AtomicUsize,
}

impl<F> Shared<'_, F>
where
    F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + Sync,
{
    fn next_entry(&self) -> Option<Entry> {
        let mut q = lock(&self.queue);
        loop {
            if self.done.load(Ordering::Acquire) {
                return None;
            }
            if self.cfg.cancel.is_cancelled() {
                // Run-scoped cancellation: ignore backoff holds so the
                // queue drains at memory speed (each entry is accounted
                // as `Cancelled` by the worker loop without running).
                return q.pop_front();
            }
            let now = Instant::now();
            if let Some(pos) = q.iter().position(|e| e.not_before <= now) {
                return q.remove(pos);
            }
            // Nothing ready: sleep until the earliest backoff expires, or a
            // bounded interval if the queue is empty (another worker may
            // still fail and requeue, or the run may finish).
            let wait = q
                .iter()
                .map(|e| e.not_before.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(20))
                .max(Duration::from_micros(100));
            q = self
                .cv
                .wait_timeout(q, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    fn account_one(&self) {
        let n = self.accounted.fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.nitems {
            self.done.store(true, Ordering::Release);
            self.cv.notify_all();
        }
    }

    fn success(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.account_one();
    }

    fn failure(&self, entry: Entry, error: SfcError) {
        let attempts = entry.attempt + 1;
        if entry.attempt < self.cfg.max_retries && error.is_retryable() {
            self.retried.fetch_add(1, Ordering::Relaxed);
            let factor = 1u32 << entry.attempt.min(16);
            let delay = self.cfg.backoff_base.saturating_mul(factor);
            let mut q = lock(&self.queue);
            q.push_back(Entry {
                item: entry.item,
                attempt: attempts,
                not_before: Instant::now() + delay,
            });
            drop(q);
            self.cv.notify_all();
        } else {
            lock(&self.failures).push(ItemFailure {
                item: entry.item,
                attempts,
                error,
            });
            self.account_one();
        }
    }

    fn worker_loop(&self, tid: usize) {
        let hb = Arc::new(Heartbeat::default());
        lock(&self.heartbeats).push(hb.clone());
        while let Some(entry) = self.next_entry() {
            if self.cfg.cancel.is_cancelled() {
                // Claim the attempt (the watchdog may race us) and account
                // the unit as cancelled without running it.
                if self.epoch[entry.item]
                    .compare_exchange(
                        entry.attempt,
                        entry.attempt + 1,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    self.failure(entry, SfcError::Cancelled { item: entry.item });
                }
                continue;
            }
            let token = self.cfg.cancel.child();
            *lock(&hb.current) = Some((entry.item, entry.attempt, Instant::now(), token.clone()));
            let result =
                catch_unwind(AssertUnwindSafe(|| (self.worker)(tid, entry.item, &token)));
            *lock(&hb.current) = None;
            // Claim this attempt's outcome; if the watchdog already timed
            // it out, the late result is discarded.
            if self.epoch[entry.item]
                .compare_exchange(
                    entry.attempt,
                    entry.attempt + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            match result {
                Ok(Ok(())) => self.success(),
                Ok(Err(e)) => self.failure(entry, e),
                Err(payload) => self.failure(
                    entry,
                    SfcError::WorkerPanic {
                        item: entry.item,
                        payload: panic_payload_string(&payload),
                    },
                ),
            }
        }
    }
}

pub(crate) fn panic_payload_string(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn watchdog_loop<F>(sh: &Shared<'_, F>, respawn: &dyn Fn(usize), limit: Duration)
where
    F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + Sync,
{
    loop {
        {
            let q = lock(&sh.queue);
            if sh.done.load(Ordering::Acquire) {
                return;
            }
            // Waking on the queue condvar lets run completion end the
            // watchdog immediately instead of after one more poll.
            let _ = sh
                .cv
                .wait_timeout(q, sh.cfg.watchdog_poll)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if sh.done.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        let slots: Vec<_> = lock(&sh.heartbeats).clone();
        for hb in slots {
            let current = lock(&hb.current).clone();
            let Some((item, attempt, started, token)) = current else {
                continue;
            };
            if now.saturating_duration_since(started) < limit {
                continue;
            }
            // Claim the overdue attempt; if the worker finished in the
            // meantime its own CAS won and this is a no-op.
            if sh.epoch[item]
                .compare_exchange(attempt, attempt + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Ask the wedged worker to abandon the unit; a cooperative
            // closure returns promptly and its thread rejoins the pool.
            token.cancel();
            sh.failure(
                Entry {
                    item,
                    attempt,
                    not_before: now,
                },
                SfcError::Timeout { item, limit },
            );
            // The wedged worker may never come back: restore pool capacity.
            sh.replacements.fetch_add(1, Ordering::Relaxed);
            let tid = sh.next_tid.fetch_add(1, Ordering::Relaxed);
            respawn(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn static_plan_order_matches_pool_split() {
        let plan = WorkPlan::static_round_robin(10);
        let order = plan.initial_order(3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert_eq!(order[..4], [0, 3, 6, 9]);
        let concat: Vec<usize> = (0..3)
            .flat_map(|tid| items_for_thread(10, 3, tid))
            .collect();
        assert_eq!(order, concat);
        assert_eq!(WorkPlan::dynamic(5).initial_order(4), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunked_dynamic_queue_processes_each_unit_once() {
        let n = 103;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let plan = WorkPlan::new(n, Partition::DynamicQueue { chunk: 4 });
        Executor::new(5).run(&plan, |_tid, unit| {
            counts[unit].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_chunk_is_normalized() {
        let plan = WorkPlan::new(7, Partition::DynamicQueue { chunk: 0 });
        assert_eq!(plan.partition(), Partition::DynamicQueue { chunk: 1 });
        let seen = AtomicU64::new(0);
        Executor::new(3).run(&plan, |_tid, _unit| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn single_thread_runs_serially_in_order() {
        let order = Mutex::new(Vec::new());
        Executor::new(1).run(&WorkPlan::dynamic(5), |tid, unit| {
            assert_eq!(tid, 0);
            order.lock().unwrap().push(unit);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_run_isolates_panics_and_finishes_other_units() {
        let n = 20;
        let done: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let err = Executor::new(4)
            .try_run(&WorkPlan::static_round_robin(n), |_tid, unit| {
                if unit == 7 || unit == 13 {
                    panic!("boom on {unit}");
                }
                done[unit].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(
            matches!(&err, SfcError::WorkerPanic { item: 7, payload } if payload.contains("boom on 7")),
            "{err:?}"
        );
        for (u, d) in done.iter().enumerate() {
            let want = u64::from(u != 7 && u != 13);
            assert_eq!(d.load(Ordering::Relaxed), want, "unit {u}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        Executor::new(0);
    }

    #[test]
    fn run_supervised_retries_transient_failures() {
        let n = 12;
        let tries: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let report = Executor::new(4).run_supervised(
            &WorkPlan::dynamic(n),
            &cfg,
            |_tid, unit, _token| {
                if tries[unit].fetch_add(1, Ordering::Relaxed) == 0 && unit % 4 == 0 {
                    panic!("flaky first attempt");
                }
                Ok(())
            },
        );
        assert_eq!(report.completed, n);
        assert!(report.all_ok());
        assert_eq!(report.retried, 3); // units 0, 4, 8
    }

    /// Toy kernel over a flat f32 output, with a scriptable set of source
    /// units whose recomputation stays bad (NaN input analog).
    struct ToyKernel {
        out: Mutex<Vec<f32>>,
        unit_len: usize,
        always_bad: Vec<usize>,
    }

    impl ToyKernel {
        fn new(nunits: usize, unit_len: usize) -> Self {
            Self {
                out: Mutex::new(vec![0.0; nunits * unit_len]),
                unit_len,
                always_bad: Vec::new(),
            }
        }
    }

    impl UnitKernel for ToyKernel {
        type Value = f32;

        fn unit_kind(&self) -> &'static str {
            "toyunit"
        }

        fn compute(
            &self,
            unit: usize,
            buf: &mut Vec<f32>,
            keep_going: &mut dyn FnMut() -> bool,
        ) -> bool {
            buf.clear();
            for t in 0..self.unit_len {
                if !keep_going() {
                    return false;
                }
                let v = if self.always_bad.contains(&unit) {
                    f32::NAN
                } else {
                    (unit * self.unit_len + t) as f32 * 0.5
                };
                buf.push(v);
            }
            true
        }

        fn commit(&self, unit: usize, buf: &[f32]) {
            let mut out = self.out.lock().unwrap();
            out[unit * self.unit_len..(unit + 1) * self.unit_len].copy_from_slice(buf);
        }

        fn read_back(&self, unit: usize, buf: &mut Vec<f32>) {
            let out = self.out.lock().unwrap();
            buf.extend_from_slice(&out[unit * self.unit_len..(unit + 1) * self.unit_len]);
        }

        fn components(value: f32, sink: &mut dyn FnMut(f32)) {
            sink(value);
        }

        fn poison(buf: &mut [f32]) {
            for (t, v) in buf.iter_mut().enumerate() {
                *v = if t % 2 == 0 { f32::NAN } else { 1e30 };
            }
        }
    }

    fn expected_output(nunits: usize, unit_len: usize) -> Vec<f32> {
        (0..nunits * unit_len).map(|i| i as f32 * 0.5).collect()
    }

    fn quick_cfg(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            timeout: Some(Duration::from_millis(500)),
            watchdog_poll: Duration::from_millis(2),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn plain_policy_executes_every_unit_with_clean_outcome() {
        let kernel = ToyKernel::new(9, 4);
        let exec = Executor::new(3);
        let outcome = exec.execute(
            &WorkPlan::dynamic(9),
            &ExecPolicy::Plain,
            &kernel,
            &FaultPlan::none(),
        );
        assert!(outcome.defects.is_clean());
        assert_eq!(outcome.report.completed, 9);
        assert_eq!(*kernel.out.lock().unwrap(), expected_output(9, 4));
    }

    #[test]
    fn degraded_policy_repairs_injected_faults_to_identical_output() {
        let kernel = ToyKernel::new(12, 5);
        let faults = FaultPlan::none()
            .with(1, FaultKind::Panic)
            .with(4, FaultKind::CorruptOutput)
            .with(6, FaultKind::FailFirst(5)); // exceeds max_retries=1
        let outcome = Executor::new(3).execute(
            &WorkPlan::static_round_robin(12),
            &ExecPolicy::degraded(quick_cfg(3), Some((0.0, 1e6))),
            &kernel,
            &faults,
        );
        assert_eq!(outcome.defects.units(), vec![1, 4, 6]);
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(*kernel.out.lock().unwrap(), expected_output(12, 5));
    }

    #[test]
    fn degraded_policy_keeps_unrepairable_units_in_the_map() {
        let mut kernel = ToyKernel::new(6, 3);
        kernel.always_bad.push(2); // recomputation is NaN too
        let outcome = Executor::new(2).execute(
            &WorkPlan::dynamic(6),
            &ExecPolicy::degraded(quick_cfg(2), None),
            &kernel,
            &FaultPlan::none(),
        );
        assert_eq!(outcome.defects.unrepaired_units(), vec![2]);
        assert!(!outcome.output_is_whole());
    }

    #[test]
    fn supervised_policy_records_failures_without_scanning() {
        let kernel = ToyKernel::new(8, 2);
        // CorruptOutput poisons the committed buffer but supervised-only
        // execution does not scan, so the defect map stays empty while a
        // panic fault is still recorded from the run report.
        let faults = FaultPlan::none()
            .with(3, FaultKind::CorruptOutput)
            .with(5, FaultKind::Panic);
        let cfg = SupervisorConfig {
            max_retries: 0,
            ..quick_cfg(2)
        };
        let outcome = Executor::new(2).execute(
            &WorkPlan::dynamic(8),
            &ExecPolicy::Supervised(cfg),
            &kernel,
            &faults,
        );
        assert_eq!(outcome.defects.units(), vec![5]);
        assert_eq!(outcome.report.completed, 7);
        assert_eq!(ExecPolicy::Plain.label(), "plain");
    }

    /// [`ToyKernel`] with a quality ladder: level `L > 0` writes the full-
    /// quality value offset by `1000·L`, so a downgraded unit is visible
    /// (and its level recoverable) from the output bytes.
    struct LadderToy {
        inner: ToyKernel,
        depth: u8,
    }

    impl UnitKernel for LadderToy {
        type Value = f32;

        fn unit_kind(&self) -> &'static str {
            self.inner.unit_kind()
        }

        fn compute(
            &self,
            unit: usize,
            buf: &mut Vec<f32>,
            keep_going: &mut dyn FnMut() -> bool,
        ) -> bool {
            self.inner.compute(unit, buf, keep_going)
        }

        fn commit(&self, unit: usize, buf: &[f32]) {
            self.inner.commit(unit, buf)
        }

        fn read_back(&self, unit: usize, buf: &mut Vec<f32>) {
            self.inner.read_back(unit, buf)
        }

        fn components(value: f32, sink: &mut dyn FnMut(f32)) {
            ToyKernel::components(value, sink)
        }

        fn poison(buf: &mut [f32]) {
            ToyKernel::poison(buf)
        }
    }

    impl BrownoutKernel for LadderToy {
        fn max_level(&self) -> u8 {
            self.depth
        }

        fn compute_at(
            &self,
            unit: usize,
            level: u8,
            buf: &mut Vec<f32>,
            keep_going: &mut dyn FnMut() -> bool,
        ) -> bool {
            if level == 0 {
                return self.inner.compute(unit, buf, keep_going);
            }
            buf.clear();
            for t in 0..self.inner.unit_len {
                if !keep_going() {
                    return false;
                }
                let full = (unit * self.inner.unit_len + t) as f32 * 0.5;
                buf.push(full + 1000.0 * f32::from(level));
            }
            true
        }
    }

    #[test]
    fn brownout_without_pressure_matches_plain_bitwise() {
        let kernel = LadderToy {
            inner: ToyKernel::new(10, 4),
            depth: 3,
        };
        let outcome = Executor::new(3).execute_brownout(
            &WorkPlan::dynamic(10),
            &ExecPolicy::brownout(quick_cfg(3), DeadlineBudget::none(), None),
            &kernel,
            &FaultPlan::none(),
        );
        assert!(outcome.defects.is_clean());
        assert!(outcome.quality.is_full_quality(), "{}", outcome.quality);
        assert_eq!(outcome.report.completed, 10);
        assert_eq!(*kernel.inner.out.lock().unwrap(), expected_output(10, 4));
    }

    #[test]
    fn brownout_sheds_past_budget_and_records_quality() {
        let kernel = LadderToy {
            inner: ToyKernel::new(6, 3),
            depth: 2,
        };
        // A zero budget is exhausted before the first admission: every
        // unit is shed, then repaired at the deepest ladder rung.
        let outcome = Executor::new(2).execute_brownout(
            &WorkPlan::dynamic(6),
            &ExecPolicy::brownout(
                quick_cfg(2),
                DeadlineBudget::with_budget(Duration::ZERO),
                None,
            ),
            &kernel,
            &FaultPlan::none(),
        );
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(outcome.quality.units(), (0..6).collect::<Vec<_>>());
        assert_eq!(outcome.quality.max_level(), 2);
        assert!(outcome
            .quality
            .entries()
            .iter()
            .all(|e| e.reason == DowngradeReason::Shed));
        let want: Vec<f32> = expected_output(6, 3).iter().map(|v| v + 2000.0).collect();
        assert_eq!(*kernel.inner.out.lock().unwrap(), want);
    }

    #[test]
    fn brownout_breaker_admits_chronic_failures_degraded() {
        let kernel = LadderToy {
            inner: ToyKernel::new(8, 2),
            depth: 2,
        };
        // Unit 3 fails its first two attempts; the breaker (threshold 2)
        // then admits attempt 3 straight at a degraded level instead of
        // retrying the full-quality computation.
        let faults = FaultPlan::none().with(3, FaultKind::FailFirst(2));
        let cfg = SupervisorConfig {
            max_retries: 3,
            ..quick_cfg(2)
        };
        let outcome = Executor::new(2).execute_brownout(
            &WorkPlan::dynamic(8),
            &ExecPolicy::brownout(cfg, DeadlineBudget::none(), None),
            &kernel,
            &faults,
        );
        assert!(outcome.defects.is_clean(), "{}", outcome.defects);
        assert_eq!(outcome.quality.units(), vec![3]);
        assert_eq!(outcome.quality.level_of(3), Some(1));
        assert_eq!(outcome.quality.entries()[0].reason, DowngradeReason::Breaker);
        // Everything but unit 3 is full quality; unit 3 carries the
        // level-1 offset.
        let mut want = expected_output(8, 2);
        for v in &mut want[6..8] {
            *v += 1000.0;
        }
        assert_eq!(*kernel.inner.out.lock().unwrap(), want);
    }

    #[test]
    fn plain_kernel_under_brownout_policy_sheds_only() {
        // execute() wraps ladder-less kernels in NoLadder: no downgraded
        // levels exist, so even a blown budget yields full-quality
        // repairs and an empty quality map.
        let kernel = ToyKernel::new(5, 2);
        let outcome = Executor::new(2).execute(
            &WorkPlan::dynamic(5),
            &ExecPolicy::brownout(
                quick_cfg(2),
                DeadlineBudget::with_budget(Duration::ZERO),
                None,
            ),
            &kernel,
            &FaultPlan::none(),
        );
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert!(outcome.quality.is_full_quality());
        assert_eq!(*kernel.out.lock().unwrap(), expected_output(5, 2));
        assert_eq!(
            ExecPolicy::brownout(quick_cfg(2), DeadlineBudget::none(), None).label(),
            "brownout"
        );
    }

    #[test]
    fn event_counter_batches_and_resets() {
        static COUNTER: EventCounter = EventCounter::new("engine.test_events");
        COUNTER.reset();
        Executor::new(4).run(&WorkPlan::dynamic(100), |_tid, unit| {
            COUNTER.record_unit(u64::from(unit % 3 == 0)); // 34 units
        });
        assert_eq!(COUNTER.total(), 34);
        COUNTER.record_unit(0);
        assert_eq!(COUNTER.total(), 34);
        COUNTER.reset();
        assert_eq!(COUNTER.total(), 0);
    }
}
