//! Degraded-mode completion: typed defect maps for partial results.
//!
//! The supervised pool ([`crate::run_items_supervised`]) keeps a sweep
//! alive through worker failures, but a driver still needs to say *which
//! units of output* are untrustworthy — failed pencils of a filtered
//! volume, failed tiles of a rendered image, regions that a post-run scan
//! found non-finite. A [`DefectMap`] is that record: a sorted set of
//! per-unit [`Defect`]s that drivers return alongside their (partially
//! valid) output, feed into a single-threaded repair pass, and surface to
//! the user so figure comparability can be judged (see DESIGN.md,
//! "Degraded-mode semantics").

use std::fmt;

use sfc_core::SfcError;

use crate::supervise::RunReport;

/// Coarse classification of a unit failure, derived from the
/// [`SfcError`] the last attempt produced. Carried by value (rather than
/// the error itself) so defect maps stay `Clone` and cheaply reportable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The worker panicked.
    Panic,
    /// The watchdog expired the item's deadline.
    Timeout,
    /// The worker noticed its cancel token and bailed.
    Cancelled,
    /// An I/O error.
    Io,
    /// Validation rejected the item's parameters or data.
    Invalid,
    /// Anything else.
    Other,
}

impl FailureClass {
    /// Classify an [`SfcError`].
    pub fn of(error: &SfcError) -> Self {
        match error {
            SfcError::WorkerPanic { .. } => FailureClass::Panic,
            SfcError::Timeout { .. } => FailureClass::Timeout,
            SfcError::Cancelled { .. } => FailureClass::Cancelled,
            SfcError::Io { .. } => FailureClass::Io,
            SfcError::InvalidDims { .. }
            | SfcError::InvalidParameter { .. }
            | SfcError::ShapeMismatch { .. }
            | SfcError::SizeOverflow { .. }
            | SfcError::Corrupt { .. } => FailureClass::Invalid,
            _ => FailureClass::Other,
        }
    }
}

/// Why a unit is defective.
#[derive(Debug, Clone, PartialEq)]
pub enum DefectKind {
    /// The unit's supervised execution exhausted its retry budget.
    Failed {
        /// Coarse class of the final error.
        class: FailureClass,
        /// Attempts made (including the first).
        attempts: u32,
        /// The final error rendered to a string.
        reason: String,
    },
    /// The post-run validation scan found non-finite values in the unit's
    /// output.
    NonFinite {
        /// Number of non-finite values in the unit.
        count: usize,
    },
    /// The post-run validation scan found finite values outside the
    /// plausible output range.
    OutOfRange {
        /// Number of out-of-range values in the unit.
        count: usize,
    },
}

/// One defective output unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Defect {
    /// Unit index (pencil id, tile id, ...).
    pub unit: usize,
    /// Why the unit is untrustworthy.
    pub kind: DefectKind,
    /// Whether a repair pass subsequently regenerated this unit. When
    /// `true` the output is whole again and the defect is historical.
    pub repaired: bool,
}

/// A typed map of defective output units for one degraded run.
///
/// `unit_kind` names what a unit is (`"pencil"`, `"tile"`) so reports read
/// naturally; `nunits` records the total so "3 of 4096 pencils" can be
/// stated without external context.
#[derive(Debug, Clone, Default)]
pub struct DefectMap {
    unit_kind: &'static str,
    nunits: usize,
    defects: Vec<Defect>,
}

impl DefectMap {
    /// An empty map over `nunits` units of `unit_kind`.
    pub fn new(unit_kind: &'static str, nunits: usize) -> Self {
        Self {
            unit_kind,
            nunits,
            defects: Vec::new(),
        }
    }

    /// Build a map from the failures of a supervised run. The report's
    /// failures are already sorted by item.
    pub fn from_run_report(unit_kind: &'static str, nunits: usize, report: &RunReport) -> Self {
        let mut map = Self::new(unit_kind, nunits);
        for f in &report.failed {
            map.record(
                f.item,
                DefectKind::Failed {
                    class: FailureClass::of(&f.error),
                    attempts: f.attempts,
                    reason: f.error.to_string(),
                },
            );
        }
        map
    }

    /// Record a defect for `unit` (keeps the map sorted; a unit may carry
    /// several defects of different kinds).
    pub fn record(&mut self, unit: usize, kind: DefectKind) {
        let at = self
            .defects
            .partition_point(|d| d.unit <= unit);
        self.defects.insert(
            at,
            Defect {
                unit,
                kind,
                repaired: false,
            },
        );
    }

    /// Mark every defect of `unit` as repaired.
    pub fn mark_repaired(&mut self, unit: usize) {
        for d in self.defects.iter_mut().filter(|d| d.unit == unit) {
            d.repaired = true;
        }
    }

    /// True when no defects were recorded at all.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
    }

    /// True when every recorded defect has been repaired (vacuously true
    /// for a clean map) — i.e. the output is whole.
    pub fn is_whole(&self) -> bool {
        self.defects.iter().all(|d| d.repaired)
    }

    /// Number of recorded defects (repaired ones included).
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// True when the map holds no defects.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// Total number of units in the run.
    pub fn nunits(&self) -> usize {
        self.nunits
    }

    /// What a unit is ("pencil", "tile").
    pub fn unit_kind(&self) -> &'static str {
        self.unit_kind
    }

    /// The distinct defective unit indices, sorted ascending.
    pub fn units(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.defects.iter().map(|d| d.unit).collect();
        v.dedup(); // already sorted by construction
        v
    }

    /// The distinct unit indices still unrepaired, sorted ascending.
    pub fn unrepaired_units(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .defects
            .iter()
            .filter(|d| !d.repaired)
            .map(|d| d.unit)
            .collect();
        v.dedup();
        v
    }

    /// Whether `unit` has any recorded defect.
    pub fn contains(&self, unit: usize) -> bool {
        self.defects.binary_search_by_key(&unit, |d| d.unit).is_ok()
    }

    /// All defects, sorted by unit.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// Absorb another map over the same unit space (used when the
    /// validation scan adds defects on top of the execution failures).
    pub fn merge(&mut self, other: DefectMap) {
        for d in other.defects {
            let at = self.defects.partition_point(|e| e.unit <= d.unit);
            self.defects.insert(at, d);
        }
    }
}

impl fmt::Display for DefectMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean ({} {}s)", self.nunits, self.unit_kind);
        }
        let units = self.units();
        let unrepaired = self.unrepaired_units();
        write!(
            f,
            "{} defective {}(s) of {} ({} unrepaired): ",
            units.len(),
            self.unit_kind,
            self.nunits,
            unrepaired.len()
        )?;
        for (i, d) in self.defects.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            let state = if d.repaired { "repaired" } else { "UNREPAIRED" };
            match &d.kind {
                DefectKind::Failed { class, attempts, .. } => {
                    write!(f, "{} {}: {class:?} after {attempts} attempt(s) [{state}]",
                        self.unit_kind, d.unit)?;
                }
                DefectKind::NonFinite { count } => {
                    write!(f, "{} {}: {count} non-finite value(s) [{state}]",
                        self.unit_kind, d.unit)?;
                }
                DefectKind::OutOfRange { count } => {
                    write!(f, "{} {}: {count} out-of-range value(s) [{state}]",
                        self.unit_kind, d.unit)?;
                }
            }
        }
        Ok(())
    }
}

/// What a degraded driver produced alongside its partial output: the
/// supervised execution report plus the (post-repair) defect map, and —
/// for brownout runs — the quality map of units committed below full
/// quality. Shared by the filter and renderer drivers so callers handle
/// both uniformly.
#[derive(Debug)]
pub struct DegradedOutcome {
    /// The supervised pool's execution report (retries, replacements,
    /// per-item failures, wall time).
    pub report: RunReport,
    /// Typed per-unit defects; repaired entries are historical.
    pub defects: DefectMap,
    /// Units whose committed output was computed below full quality
    /// (always full quality outside [`ExecPolicy::Brownout`]).
    ///
    /// [`ExecPolicy::Brownout`]: crate::ExecPolicy::Brownout
    pub quality: crate::deadline::QualityMap,
}

impl DegradedOutcome {
    /// An outcome with an all-full-quality map matching `defects`' unit
    /// universe — the shape every non-brownout policy produces.
    pub fn full_quality(report: RunReport, defects: DefectMap) -> Self {
        let quality = crate::deadline::QualityMap::new(defects.unit_kind(), defects.nunits());
        Self {
            report,
            defects,
            quality,
        }
    }

    /// True when the output is whole — either nothing failed, or every
    /// defective unit was successfully repaired. (Downgraded-quality
    /// units are still *whole*: valid, just coarser; see
    /// [`DegradedOutcome::quality`].)
    pub fn output_is_whole(&self) -> bool {
        self.defects.is_whole()
    }
}

/// Scan one unit's values, recording a [`DefectKind::NonFinite`] /
/// [`DefectKind::OutOfRange`] defect into `map` when anything fails.
/// `range` is an optional inclusive plausibility interval for finite
/// values. Returns true when the unit is defective.
pub fn scan_unit<I: IntoIterator<Item = f32>>(
    map: &mut DefectMap,
    unit: usize,
    values: I,
    range: Option<(f32, f32)>,
) -> bool {
    let mut non_finite = 0usize;
    let mut out_of_range = 0usize;
    for v in values {
        if !v.is_finite() {
            non_finite += 1;
        } else if let Some((lo, hi)) = range {
            if v < lo || v > hi {
                out_of_range += 1;
            }
        }
    }
    if non_finite > 0 {
        map.record(unit, DefectKind::NonFinite { count: non_finite });
    }
    if out_of_range > 0 {
        map.record(unit, DefectKind::OutOfRange { count: out_of_range });
    }
    non_finite > 0 || out_of_range > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::ItemFailure;
    use std::time::Duration;

    #[test]
    fn map_records_sorts_and_reports() {
        let mut m = DefectMap::new("pencil", 100);
        assert!(m.is_clean() && m.is_whole());
        m.record(7, DefectKind::NonFinite { count: 3 });
        m.record(2, DefectKind::OutOfRange { count: 1 });
        m.record(7, DefectKind::OutOfRange { count: 2 });
        assert_eq!(m.units(), vec![2, 7]);
        assert!(m.contains(7) && !m.contains(3));
        assert!(!m.is_whole());
        m.mark_repaired(7);
        assert_eq!(m.unrepaired_units(), vec![2]);
        m.mark_repaired(2);
        assert!(m.is_whole() && !m.is_clean());
        let s = m.to_string();
        assert!(s.contains("pencil") && s.contains("repaired"), "{s}");
    }

    #[test]
    fn from_run_report_classifies_failures() {
        let report = RunReport {
            completed: 8,
            failed: vec![
                ItemFailure {
                    item: 3,
                    attempts: 3,
                    error: SfcError::WorkerPanic {
                        item: 3,
                        payload: "boom".into(),
                    },
                },
                ItemFailure {
                    item: 5,
                    attempts: 1,
                    error: SfcError::Timeout {
                        item: 5,
                        limit: Duration::from_millis(10),
                    },
                },
            ],
            retried: 2,
            replacements: 0,
            wall_time: Duration::from_millis(1),
        };
        let m = DefectMap::from_run_report("tile", 10, &report);
        assert_eq!(m.units(), vec![3, 5]);
        match &m.defects()[0].kind {
            DefectKind::Failed { class, attempts, reason } => {
                assert_eq!(*class, FailureClass::Panic);
                assert_eq!(*attempts, 3);
                assert!(reason.contains("boom"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(
            &m.defects()[1].kind,
            DefectKind::Failed { class: FailureClass::Timeout, .. }
        ));
    }

    #[test]
    fn scan_flags_nan_and_range() {
        let mut m = DefectMap::new("tile", 4);
        assert!(!scan_unit(&mut m, 0, [0.1, 0.9], Some((0.0, 1.0))));
        assert!(scan_unit(&mut m, 1, [f32::NAN, 0.5, f32::INFINITY], Some((0.0, 1.0))));
        assert!(scan_unit(&mut m, 2, [0.5, 1e30], Some((0.0, 1.0))));
        assert_eq!(m.units(), vec![1, 2]);
        assert!(matches!(m.defects()[0].kind, DefectKind::NonFinite { count: 2 }));
        assert!(matches!(m.defects()[1].kind, DefectKind::OutOfRange { count: 1 }));
        // Without a range, huge finite values pass.
        let mut m2 = DefectMap::new("tile", 1);
        assert!(!scan_unit(&mut m2, 0, [1e30], None));
    }

    #[test]
    fn merge_keeps_sorted_order() {
        let mut a = DefectMap::new("pencil", 10);
        a.record(5, DefectKind::NonFinite { count: 1 });
        let mut b = DefectMap::new("pencil", 10);
        b.record(2, DefectKind::OutOfRange { count: 1 });
        b.record(8, DefectKind::NonFinite { count: 2 });
        a.merge(b);
        assert_eq!(a.units(), vec![2, 5, 8]);
    }
}
