//! Deterministic fault injection for exercising the supervised pool and
//! the typed error paths.
//!
//! A [`FaultPlan`] decorates a worker closure with scripted failures —
//! panics, stalls, transient errors — keyed by item index, so tests can
//! assert exactly which items fail, retry, and recover. Free functions
//! corrupt data in the two other ways the robustness layer must survive:
//! NaN-contaminated voxel buffers and truncated/bit-flipped volume files.
//!
//! Everything is seeded and deterministic: a failing CI run reproduces
//! locally from the same seed.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use sfc_core::{SfcError, SfcResult, SplitMix64};

use crate::cli::Args;
use crate::supervise::CancelToken;

/// What to inject at a given item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on every attempt (tests panic isolation and retry limits).
    Panic,
    /// Sleep for the given duration before succeeding (tests the
    /// watchdog; keep it finite — scoped threads must eventually join).
    Stall(Duration),
    /// Return a retryable [`SfcError::WorkerPanic`]-class error on the
    /// first `n` attempts, then succeed (tests backoff-to-success).
    FailFirst(u32),
    /// Return a non-retryable [`SfcError::InvalidParameter`] every attempt
    /// (tests that validation errors are not retried).
    Invalid,
    /// Let the item complete, but have the degraded driver poison its
    /// output with NaN and out-of-range values afterwards (tests the
    /// post-run validation scan + repair path; [`FaultPlan::fire`] is a
    /// no-op for this kind — drivers consult [`FaultPlan::corrupts`]).
    CorruptOutput,
}

/// Per-item fault probabilities for a randomized [`FaultPlan`], typically
/// parsed from the shared CLI flags (see [`FaultRates::from_args`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an item panics on every attempt.
    pub panic: f32,
    /// Probability an item fails (retryably) on its first attempt.
    pub flaky: f32,
    /// Probability an item stalls past the watchdog deadline.
    pub stall: f32,
    /// Probability an item's output is poisoned after completion.
    pub corrupt: f32,
    /// How long a stalled item sleeps.
    pub stall_ms: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self {
            panic: 0.0,
            flaky: 0.0,
            stall: 0.0,
            corrupt: 0.0,
            stall_ms: 200,
        }
    }
}

impl FaultRates {
    /// Parse the shared fault-injection flags from an experiment binary's
    /// arguments. Returns `None` unless `--fault-seed <u64>` is present;
    /// the rates (`--panic-rate`, `--flaky-rate`, `--timeout-rate`,
    /// `--corrupt-rate`, all default 0) and `--stall-ms` ride along.
    pub fn from_args(args: &Args) -> Option<(u64, FaultRates)> {
        let seed = args.get("fault-seed")?;
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| panic!("--fault-seed expects an integer, got {seed:?}"));
        let rates = FaultRates {
            panic: args.get_f64("panic-rate", 0.0) as f32,
            flaky: args.get_f64("flaky-rate", 0.0) as f32,
            stall: args.get_f64("timeout-rate", 0.0) as f32,
            corrupt: args.get_f64("corrupt-rate", 0.0) as f32,
            stall_ms: args.get_u64("stall-ms", 200),
        };
        Some((seed, rates))
    }
}

/// A scripted set of per-item faults plus per-item attempt counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<usize, (FaultKind, AtomicU32)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a fault for one item (builder-style).
    pub fn with(mut self, item: usize, kind: FaultKind) -> Self {
        self.faults.insert(item, (kind, AtomicU32::new(0)));
        self
    }

    /// Seeded random plan: each item independently panics with probability
    /// `panic_rate` or fails its first attempt with probability
    /// `flaky_rate`. Deterministic for a `(seed, nitems)` pair.
    pub fn random(seed: u64, nitems: usize, panic_rate: f32, flaky_rate: f32) -> Self {
        Self::random_rates(
            seed,
            nitems,
            &FaultRates {
                panic: panic_rate,
                flaky: flaky_rate,
                ..FaultRates::default()
            },
        )
    }

    /// Seeded random plan over the full fault menu. Each item draws at most
    /// one fault (panic beats flaky beats stall beats corrupt); the per-item
    /// RNG stream consumes a fixed number of draws so the assignment for a
    /// `(seed, nitems)` pair is stable even as rates change.
    pub fn random_rates(seed: u64, nitems: usize, rates: &FaultRates) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::none();
        for item in 0..nitems {
            let draws = [
                rng.chance(rates.panic),
                rng.chance(rates.flaky),
                rng.chance(rates.stall),
                rng.chance(rates.corrupt),
            ];
            if draws[0] {
                plan = plan.with(item, FaultKind::Panic);
            } else if draws[1] {
                plan = plan.with(item, FaultKind::FailFirst(1));
            } else if draws[2] {
                plan = plan.with(item, FaultKind::Stall(Duration::from_millis(rates.stall_ms)));
            } else if draws[3] {
                plan = plan.with(item, FaultKind::CorruptOutput);
            }
        }
        plan
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Items scripted to panic on every attempt (these can never succeed).
    pub fn doomed_items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, (k, _))| matches!(k, FaultKind::Panic | FaultKind::Invalid))
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Items whose output is scripted to be poisoned after completion
    /// (see [`FaultKind::CorruptOutput`]).
    pub fn corrupt_items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, (k, _))| matches!(k, FaultKind::CorruptOutput))
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// True when `item` is scripted for [`FaultKind::CorruptOutput`].
    /// Degraded drivers call this after computing a unit to decide whether
    /// to poison its committed output.
    pub fn corrupts(&self, item: usize) -> bool {
        matches!(self.faults.get(&item), Some((FaultKind::CorruptOutput, _)))
    }

    /// Fire the fault scripted for `item`, if any. Call at the top of a
    /// worker closure; panics, sleeps, or returns `Err` according to the
    /// plan and the per-item attempt count.
    pub fn fire(&self, item: usize) -> SfcResult<()> {
        self.fire_inner(item, None)
    }

    /// Like [`FaultPlan::fire`], but a stalled item sleeps cooperatively:
    /// when the watchdog fires `token`, the stall is abandoned with
    /// [`SfcError::Cancelled`] instead of wedging a worker thread for the
    /// full scripted duration.
    pub fn fire_cancellable(&self, item: usize, token: &CancelToken) -> SfcResult<()> {
        self.fire_inner(item, Some(token))
    }

    fn fire_inner(&self, item: usize, token: Option<&CancelToken>) -> SfcResult<()> {
        let Some((kind, attempts)) = self.faults.get(&item) else {
            return Ok(());
        };
        let attempt = attempts.fetch_add(1, Ordering::Relaxed);
        match kind {
            FaultKind::Panic => panic!("injected fault: panic on item {item}"),
            FaultKind::Stall(d) => {
                match token {
                    Some(t) => t.sleep_cancellable(item, *d)?,
                    None => std::thread::sleep(*d),
                }
                Ok(())
            }
            FaultKind::FailFirst(n) => {
                if attempt < *n {
                    Err(SfcError::WorkerPanic {
                        item,
                        payload: format!(
                            "injected transient failure on item {item} (attempt {attempt})"
                        ),
                    })
                } else {
                    Ok(())
                }
            }
            FaultKind::Invalid => Err(SfcError::InvalidParameter {
                name: "injected",
                reason: format!("non-retryable fault on item {item}"),
            }),
            FaultKind::CorruptOutput => Ok(()),
        }
    }

    /// Wrap a worker closure so scripted faults fire before the real work.
    pub fn wrap<'a, F>(&'a self, inner: F) -> impl Fn(usize, usize) -> SfcResult<()> + 'a
    where
        F: Fn(usize, usize) -> SfcResult<()> + 'a,
    {
        move |tid, item| {
            self.fire(item)?;
            inner(tid, item)
        }
    }

    /// [`FaultPlan::wrap`] for cancellation-aware workers: scripted stalls
    /// observe the supervisor's cancel token.
    pub fn wrap_cancellable<'a, F>(
        &'a self,
        inner: F,
    ) -> impl Fn(usize, usize, &CancelToken) -> SfcResult<()> + 'a
    where
        F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + 'a,
    {
        move |tid, item, token| {
            self.fire_cancellable(item, token)?;
            inner(tid, item, token)
        }
    }
}

/// Replace a deterministic random subset of voxels with NaN. Returns the
/// number contaminated (at least one when `rate > 0` and the buffer is
/// non-empty, so tests can rely on contamination happening).
pub fn contaminate_nan(values: &mut [f32], seed: u64, rate: f32) -> usize {
    if values.is_empty() || rate <= 0.0 {
        return 0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut count = 0;
    for v in values.iter_mut() {
        if rng.chance(rate) {
            *v = f32::NAN;
            count += 1;
        }
    }
    if count == 0 {
        let idx = rng.usize_in(0, values.len());
        values[idx] = f32::NAN;
        count = 1;
    }
    count
}

/// Truncate a file by `bytes` from the end (simulates an interrupted
/// write). Truncating at or past the start leaves an empty file.
pub fn truncate_file(path: &Path, bytes: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    f.set_len(len.saturating_sub(bytes))
}

/// Flip one bit of a file in place (simulates storage corruption).
/// `byte_offset` is clamped to the file; errors if the file is empty.
pub fn flip_bit(path: &Path, byte_offset: u64, bit: u8) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot flip a bit in an empty file",
        ));
    }
    let offset = byte_offset.min(len - 1);
    let mut b = [0u8];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.fire(3).is_ok());
    }

    #[test]
    fn fail_first_recovers_after_n_attempts() {
        let plan = FaultPlan::none().with(5, FaultKind::FailFirst(2));
        assert!(plan.fire(5).is_err());
        assert!(plan.fire(5).is_err());
        assert!(plan.fire(5).is_ok());
        assert!(plan.fire(4).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        FaultPlan::none().with(0, FaultKind::Panic).fire(0).ok();
    }

    #[test]
    fn random_plan_is_deterministic() {
        let a = FaultPlan::random(9, 100, 0.1, 0.2);
        let b = FaultPlan::random(9, 100, 0.1, 0.2);
        assert_eq!(a.doomed_items(), b.doomed_items());
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn random_rates_covers_the_full_menu() {
        let rates = FaultRates {
            panic: 0.1,
            flaky: 0.1,
            stall: 0.1,
            corrupt: 0.1,
            stall_ms: 5,
        };
        let a = FaultPlan::random_rates(11, 400, &rates);
        let b = FaultPlan::random_rates(11, 400, &rates);
        assert_eq!(a.doomed_items(), b.doomed_items());
        assert_eq!(a.corrupt_items(), b.corrupt_items());
        assert!(!a.doomed_items().is_empty(), "panic faults should land at 10%");
        assert!(!a.corrupt_items().is_empty(), "corrupt faults should land at 10%");
        // Corrupt items fire as no-ops and are not doomed.
        let c = a.corrupt_items()[0];
        assert!(a.corrupts(c));
        assert!(a.fire(c).is_ok());
        assert!(!a.doomed_items().contains(&c));
    }

    #[test]
    fn rates_parse_from_cli_flags() {
        let args = Args::parse(
            "--fault-seed 42 --panic-rate 0.02 --flaky-rate 0.1 --timeout-rate 0.05 \
             --corrupt-rate 0.03 --stall-ms 150"
                .split_whitespace()
                .map(String::from),
        );
        let (seed, rates) = FaultRates::from_args(&args).expect("seed present");
        assert_eq!(seed, 42);
        assert!((rates.panic - 0.02).abs() < 1e-6);
        assert!((rates.flaky - 0.1).abs() < 1e-6);
        assert!((rates.stall - 0.05).abs() < 1e-6);
        assert!((rates.corrupt - 0.03).abs() < 1e-6);
        assert_eq!(rates.stall_ms, 150);
        // No --fault-seed → fault injection disabled entirely.
        let off = Args::parse("--panic-rate 0.5".split_whitespace().map(String::from));
        assert!(FaultRates::from_args(&off).is_none());
    }

    #[test]
    fn cancellable_stall_is_released_by_the_token() {
        let plan = FaultPlan::none().with(0, FaultKind::Stall(Duration::from_secs(30)));
        let token = CancelToken::new();
        token.cancel();
        let start = std::time::Instant::now();
        let err = plan.fire_cancellable(0, &token).unwrap_err();
        assert!(matches!(err, SfcError::Cancelled { item: 0 }));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn nan_contamination_counts_and_lands() {
        let mut v = vec![1.0f32; 1000];
        let n = contaminate_nan(&mut v, 7, 0.05);
        assert_eq!(v.iter().filter(|x| x.is_nan()).count(), n);
        assert!(n > 0);
        // Tiny rate still contaminates at least one voxel.
        let mut w = vec![1.0f32; 4];
        assert!(contaminate_nan(&mut w, 7, 1e-9) >= 1);
        // Zero rate contaminates nothing.
        let mut u = vec![1.0f32; 4];
        assert_eq!(contaminate_nan(&mut u, 7, 0.0), 0);
    }

    #[test]
    fn file_corruption_helpers() {
        let mut path = std::env::temp_dir();
        path.push(format!("sfc_faults_test_{}", std::process::id()));
        std::fs::write(&path, [0u8; 64]).unwrap();
        flip_bit(&path, 10, 3).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[10], 1 << 3);
        truncate_file(&path, 16).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 48);
        truncate_file(&path, 1000).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert!(flip_bit(&path, 0, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
