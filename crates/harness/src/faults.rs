//! Deterministic fault injection for exercising the supervised pool and
//! the typed error paths.
//!
//! A [`FaultPlan`] decorates a worker closure with scripted failures —
//! panics, stalls, transient errors — keyed by item index, so tests can
//! assert exactly which items fail, retry, and recover. An [`IoFaultPlan`]
//! does the same for *file operations*: threaded through a [`FaultyFile`]
//! wrapper it injects I/O errors, torn writes, silent bit flips, and
//! device stalls underneath the out-of-core brick store's production code
//! paths. Free functions corrupt data in the two other ways the
//! robustness layer must survive: NaN-contaminated voxel buffers and
//! truncated/bit-flipped volume files.
//!
//! Everything is seeded and deterministic: a failing CI run reproduces
//! locally from the same seed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sfc_core::{SfcError, SfcResult, SplitMix64};

use crate::cli::Args;
use crate::supervise::CancelToken;

/// What to inject at a given item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic on every attempt (tests panic isolation and retry limits).
    Panic,
    /// Sleep for the given duration before succeeding (tests the
    /// watchdog; keep it finite — scoped threads must eventually join).
    Stall(Duration),
    /// Return a retryable [`SfcError::WorkerPanic`]-class error on the
    /// first `n` attempts, then succeed (tests backoff-to-success).
    FailFirst(u32),
    /// Return a non-retryable [`SfcError::InvalidParameter`] every attempt
    /// (tests that validation errors are not retried).
    Invalid,
    /// Let the item complete, but have the degraded driver poison its
    /// output with NaN and out-of-range values afterwards (tests the
    /// post-run validation scan + repair path; [`FaultPlan::fire`] is a
    /// no-op for this kind — drivers consult [`FaultPlan::corrupts`]).
    CorruptOutput,
    /// An I/O operation fails outright with an injected [`std::io::Error`]
    /// (tests bounded retry-with-backoff on reads and temp-file cleanup on
    /// writes). Interpreted by the [`IoFaultPlan`]/[`FaultyFile`] layer;
    /// a no-op in worker-item plans.
    IoError,
    /// A write persists only a prefix of its buffer and then errors — the
    /// torn write a power loss or a full disk produces (tests that torn
    /// bricks are never accepted). I/O-layer only.
    ShortWrite,
    /// One bit of the transferred buffer is flipped in flight — silent
    /// storage bit rot (tests checksum verification, scrubbing, and
    /// read-repair). I/O-layer only.
    BitFlip,
    /// The operation stalls for the given duration before succeeding
    /// (tests that slow devices delay, but do not fail, a read). I/O-layer
    /// only.
    SlowIo(Duration),
}

/// Per-item fault probabilities for a randomized [`FaultPlan`], typically
/// parsed from the shared CLI flags (see [`FaultRates::from_args`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability an item panics on every attempt.
    pub panic: f32,
    /// Probability an item fails (retryably) on its first attempt.
    pub flaky: f32,
    /// Probability an item stalls past the watchdog deadline.
    pub stall: f32,
    /// Probability an item's output is poisoned after completion.
    pub corrupt: f32,
    /// How long a stalled item sleeps.
    pub stall_ms: u64,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self {
            panic: 0.0,
            flaky: 0.0,
            stall: 0.0,
            corrupt: 0.0,
            stall_ms: 200,
        }
    }
}

impl FaultRates {
    /// Parse the shared fault-injection flags from an experiment binary's
    /// arguments. Returns `None` unless `--fault-seed <u64>` is present;
    /// the rates (`--panic-rate`, `--flaky-rate`, `--timeout-rate`,
    /// `--corrupt-rate`, all default 0) and `--stall-ms` ride along.
    pub fn from_args(args: &Args) -> Option<(u64, FaultRates)> {
        let seed = args.get("fault-seed")?;
        let seed: u64 = seed
            .parse()
            .unwrap_or_else(|_| panic!("--fault-seed expects an integer, got {seed:?}"));
        let rates = FaultRates {
            panic: args.get_f64("panic-rate", 0.0) as f32,
            flaky: args.get_f64("flaky-rate", 0.0) as f32,
            stall: args.get_f64("timeout-rate", 0.0) as f32,
            corrupt: args.get_f64("corrupt-rate", 0.0) as f32,
            stall_ms: args.get_u64("stall-ms", 200),
        };
        Some((seed, rates))
    }
}

/// A scripted set of per-item faults plus per-item attempt counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<usize, (FaultKind, AtomicU32)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a fault for one item (builder-style).
    pub fn with(mut self, item: usize, kind: FaultKind) -> Self {
        self.faults.insert(item, (kind, AtomicU32::new(0)));
        self
    }

    /// Seeded random plan: each item independently panics with probability
    /// `panic_rate` or fails its first attempt with probability
    /// `flaky_rate`. Deterministic for a `(seed, nitems)` pair.
    pub fn random(seed: u64, nitems: usize, panic_rate: f32, flaky_rate: f32) -> Self {
        Self::random_rates(
            seed,
            nitems,
            &FaultRates {
                panic: panic_rate,
                flaky: flaky_rate,
                ..FaultRates::default()
            },
        )
    }

    /// Seeded random plan over the full fault menu. Each item draws at most
    /// one fault (panic beats flaky beats stall beats corrupt); the per-item
    /// RNG stream consumes a fixed number of draws so the assignment for a
    /// `(seed, nitems)` pair is stable even as rates change.
    pub fn random_rates(seed: u64, nitems: usize, rates: &FaultRates) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::none();
        for item in 0..nitems {
            let draws = [
                rng.chance(rates.panic),
                rng.chance(rates.flaky),
                rng.chance(rates.stall),
                rng.chance(rates.corrupt),
            ];
            if draws[0] {
                plan = plan.with(item, FaultKind::Panic);
            } else if draws[1] {
                plan = plan.with(item, FaultKind::FailFirst(1));
            } else if draws[2] {
                plan = plan.with(item, FaultKind::Stall(Duration::from_millis(rates.stall_ms)));
            } else if draws[3] {
                plan = plan.with(item, FaultKind::CorruptOutput);
            }
        }
        plan
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Items scripted to panic on every attempt (these can never succeed).
    pub fn doomed_items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, (k, _))| matches!(k, FaultKind::Panic | FaultKind::Invalid))
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// Items whose output is scripted to be poisoned after completion
    /// (see [`FaultKind::CorruptOutput`]).
    pub fn corrupt_items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .faults
            .iter()
            .filter(|(_, (k, _))| matches!(k, FaultKind::CorruptOutput))
            .map(|(&i, _)| i)
            .collect();
        v.sort_unstable();
        v
    }

    /// True when `item` is scripted for [`FaultKind::CorruptOutput`].
    /// Degraded drivers call this after computing a unit to decide whether
    /// to poison its committed output.
    pub fn corrupts(&self, item: usize) -> bool {
        matches!(self.faults.get(&item), Some((FaultKind::CorruptOutput, _)))
    }

    /// Fire the fault scripted for `item`, if any. Call at the top of a
    /// worker closure; panics, sleeps, or returns `Err` according to the
    /// plan and the per-item attempt count.
    pub fn fire(&self, item: usize) -> SfcResult<()> {
        self.fire_inner(item, None)
    }

    /// Like [`FaultPlan::fire`], but a stalled item sleeps cooperatively:
    /// when the watchdog fires `token`, the stall is abandoned with
    /// [`SfcError::Cancelled`] instead of wedging a worker thread for the
    /// full scripted duration.
    pub fn fire_cancellable(&self, item: usize, token: &CancelToken) -> SfcResult<()> {
        self.fire_inner(item, Some(token))
    }

    fn fire_inner(&self, item: usize, token: Option<&CancelToken>) -> SfcResult<()> {
        let Some((kind, attempts)) = self.faults.get(&item) else {
            return Ok(());
        };
        let attempt = attempts.fetch_add(1, Ordering::Relaxed);
        match kind {
            FaultKind::Panic => panic!("injected fault: panic on item {item}"),
            FaultKind::Stall(d) => {
                match token {
                    Some(t) => t.sleep_cancellable(item, *d)?,
                    None => std::thread::sleep(*d),
                }
                Ok(())
            }
            FaultKind::FailFirst(n) => {
                if attempt < *n {
                    Err(SfcError::WorkerPanic {
                        item,
                        payload: format!(
                            "injected transient failure on item {item} (attempt {attempt})"
                        ),
                    })
                } else {
                    Ok(())
                }
            }
            FaultKind::Invalid => Err(SfcError::InvalidParameter {
                name: "injected",
                reason: format!("non-retryable fault on item {item}"),
            }),
            // I/O kinds are interpreted by the IoFaultPlan/FaultyFile
            // layer; in a worker-item plan they inject nothing.
            FaultKind::CorruptOutput
            | FaultKind::IoError
            | FaultKind::ShortWrite
            | FaultKind::BitFlip
            | FaultKind::SlowIo(_) => Ok(()),
        }
    }

    /// Wrap a worker closure so scripted faults fire before the real work.
    pub fn wrap<'a, F>(&'a self, inner: F) -> impl Fn(usize, usize) -> SfcResult<()> + 'a
    where
        F: Fn(usize, usize) -> SfcResult<()> + 'a,
    {
        move |tid, item| {
            self.fire(item)?;
            inner(tid, item)
        }
    }

    /// [`FaultPlan::wrap`] for cancellation-aware workers: scripted stalls
    /// observe the supervisor's cancel token.
    pub fn wrap_cancellable<'a, F>(
        &'a self,
        inner: F,
    ) -> impl Fn(usize, usize, &CancelToken) -> SfcResult<()> + 'a
    where
        F: Fn(usize, usize, &CancelToken) -> SfcResult<()> + 'a,
    {
        move |tid, item, token| {
            self.fire_cancellable(item, token)?;
            inner(tid, item, token)
        }
    }
}

/// Per-operation probabilities for a randomized [`IoFaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoFaultRates {
    /// Probability an operation fails with an injected I/O error.
    pub io_error: f32,
    /// Probability a write persists only a prefix, then errors.
    pub short_write: f32,
    /// Probability one bit of the transferred buffer is flipped.
    pub bit_flip: f32,
    /// Probability the operation stalls before succeeding.
    pub slow_io: f32,
    /// How long a stalled operation sleeps.
    pub slow_ms: u64,
}

impl Default for IoFaultRates {
    fn default() -> Self {
        Self {
            io_error: 0.0,
            short_write: 0.0,
            bit_flip: 0.0,
            slow_io: 0.0,
            slow_ms: 5,
        }
    }
}

struct IoPlanInner {
    scripted: HashMap<u64, FaultKind>,
    rates: IoFaultRates,
    seed: u64,
    op: AtomicU64,
    injected: AtomicU64,
}

/// A deterministic schedule of I/O faults, keyed by *operation sequence
/// number*: every file operation routed through a [`FaultyFile`] (or
/// through [`crate::durable::write_atomic_with`]) draws the next number
/// and consults the plan. Cloning is cheap (shared state), so one plan
/// can be threaded through a store handle, its journal, and its manifest
/// writer and still produce one global, reproducible fault sequence.
///
/// Scripted entries ([`IoFaultPlan::with_op`]) pin a fault to an exact
/// operation; the seeded rates fire everywhere else. A `(seed, rates)`
/// pair replays identically — a failing CI run reproduces locally.
#[derive(Clone)]
pub struct IoFaultPlan {
    inner: Arc<IoPlanInner>,
}

impl std::fmt::Debug for IoFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoFaultPlan")
            .field("seed", &self.inner.seed)
            .field("rates", &self.inner.rates)
            .field("scripted", &self.inner.scripted.len())
            .field("ops", &self.ops())
            .field("injected", &self.injected())
            .finish()
    }
}

impl Default for IoFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl IoFaultPlan {
    /// A plan that injects nothing (the production configuration).
    pub fn none() -> Self {
        Self::random(0, IoFaultRates::default())
    }

    /// Seeded random plan over the I/O fault menu. Each operation draws a
    /// fixed number of chances (io_error beats short_write beats bit_flip
    /// beats slow_io) so the fault at operation `n` depends only on
    /// `(seed, n)` — never on how many faults fired before it.
    pub fn random(seed: u64, rates: IoFaultRates) -> Self {
        Self {
            inner: Arc::new(IoPlanInner {
                scripted: HashMap::new(),
                rates,
                seed,
                op: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Script a fault for one exact operation number (builder-style; only
    /// valid before the plan is cloned into a file handle).
    ///
    /// # Panics
    /// Panics if the plan has already been shared (scripting must happen
    /// at construction time to stay deterministic).
    pub fn with_op(mut self, op: u64, kind: FaultKind) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("script IoFaultPlan ops before sharing the plan")
            .scripted
            .insert(op, kind);
        self
    }

    /// Operations observed so far.
    pub fn ops(&self) -> u64 {
        self.inner.op.load(Ordering::Relaxed)
    }

    /// Faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::Relaxed)
    }

    /// Draw the fault (if any) for the next operation.
    fn draw(&self) -> Option<(u64, FaultKind)> {
        let op = self.inner.op.fetch_add(1, Ordering::Relaxed);
        let kind = if let Some(k) = self.inner.scripted.get(&op) {
            Some(*k)
        } else {
            let r = &self.inner.rates;
            // Per-op RNG stream: the draw for op n is independent of all
            // other ops, so retries of the same logical read re-draw.
            let mut rng = SplitMix64::new(self.inner.seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let draws = [
                rng.chance(r.io_error),
                rng.chance(r.short_write),
                rng.chance(r.bit_flip),
                rng.chance(r.slow_io),
            ];
            if draws[0] {
                Some(FaultKind::IoError)
            } else if draws[1] {
                Some(FaultKind::ShortWrite)
            } else if draws[2] {
                Some(FaultKind::BitFlip)
            } else if draws[3] {
                Some(FaultKind::SlowIo(Duration::from_millis(r.slow_ms)))
            } else {
                None
            }
        };
        if kind.is_some() {
            self.inner.injected.fetch_add(1, Ordering::Relaxed);
        }
        kind.map(|k| (op, k))
    }

    fn injected_err(op: u64, what: &str) -> std::io::Error {
        std::io::Error::other(format!("injected I/O fault: {what} failed (op {op})"))
    }

    /// Fire the next operation's fault for a *control* operation (open,
    /// fsync, rename, directory sync): an [`FaultKind::IoError`] or
    /// [`FaultKind::ShortWrite`] draw fails the operation, a
    /// [`FaultKind::SlowIo`] stalls it, a [`FaultKind::BitFlip`] is
    /// meaningless without a buffer and passes.
    pub fn fire_control(&self, what: &str) -> std::io::Result<()> {
        match self.draw() {
            Some((op, FaultKind::IoError)) | Some((op, FaultKind::ShortWrite)) => {
                Err(Self::injected_err(op, what))
            }
            Some((_, FaultKind::SlowIo(d))) => {
                std::thread::sleep(d);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Apply the next operation's fault to a buffer just read:
    /// `IoError` fails the read, `BitFlip` flips one deterministic bit of
    /// the buffer (seeded by the op number), `SlowIo` stalls,
    /// `ShortWrite` does not apply to reads.
    fn fire_read(&self, buf: &mut [u8]) -> std::io::Result<()> {
        match self.draw() {
            Some((op, FaultKind::IoError)) => Err(Self::injected_err(op, "read")),
            Some((op, FaultKind::BitFlip)) => {
                if !buf.is_empty() {
                    let bit = SplitMix64::new(self.inner.seed ^ op).next_u64() as usize
                        % (buf.len() * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(())
            }
            Some((_, FaultKind::SlowIo(d))) => {
                std::thread::sleep(d);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Decide the next operation's fault for a buffer about to be
    /// written. Returns how many prefix bytes to actually write and an
    /// optional bit to flip; an `IoError` fails before any byte lands.
    fn fire_write(&self, len: usize) -> std::io::Result<(usize, Option<usize>)> {
        match self.draw() {
            Some((op, FaultKind::IoError)) => Err(Self::injected_err(op, "write")),
            Some((_, FaultKind::ShortWrite)) => Ok((len / 2, None)),
            Some((op, FaultKind::BitFlip)) if len > 0 => {
                let bit = SplitMix64::new(self.inner.seed ^ op).next_u64() as usize % (len * 8);
                Ok((len, Some(bit)))
            }
            Some((_, FaultKind::SlowIo(d))) => {
                std::thread::sleep(d);
                Ok((len, None))
            }
            _ => Ok((len, None)),
        }
    }
}

/// A [`File`] wrapper that routes every read, write, seek, open, and sync
/// through an [`IoFaultPlan`] — the single choke point the out-of-core
/// brick store does *all* its I/O through, so chaos tests exercise the
/// exact production code paths with faults injected underneath them.
///
/// Semantics per fault kind:
/// * [`FaultKind::IoError`] — the operation fails with
///   `ErrorKind::Other`; no bytes are transferred.
/// * [`FaultKind::ShortWrite`] — half the buffer is written for real,
///   then the write errors (a torn write: bytes are on disk, the caller
///   knows the operation failed).
/// * [`FaultKind::BitFlip`] — reads see one flipped bit in the returned
///   buffer; writes persist one flipped bit (silent corruption — the
///   operation *succeeds*).
/// * [`FaultKind::SlowIo`] — the operation sleeps, then succeeds.
#[derive(Debug)]
pub struct FaultyFile {
    inner: File,
    plan: IoFaultPlan,
}

impl FaultyFile {
    /// Create (truncating) a file, drawing an open-operation fault.
    pub fn create(path: &Path, plan: IoFaultPlan) -> std::io::Result<Self> {
        plan.fire_control("create")?;
        Ok(Self {
            inner: File::create(path)?,
            plan,
        })
    }

    /// Open with explicit options, drawing an open-operation fault.
    pub fn options(opts: &OpenOptions, path: &Path, plan: IoFaultPlan) -> std::io::Result<Self> {
        plan.fire_control("open")?;
        Ok(Self {
            inner: opts.open(path)?,
            plan,
        })
    }

    /// Open read-only, drawing an open-operation fault.
    pub fn open(path: &Path, plan: IoFaultPlan) -> std::io::Result<Self> {
        Self::options(OpenOptions::new().read(true), path, plan)
    }

    /// Flush file data and metadata to stable storage (faultable).
    pub fn sync_all(&self) -> std::io::Result<()> {
        self.plan.fire_control("fsync")?;
        self.inner.sync_all()
    }

    /// Flush file data to stable storage (faultable).
    pub fn sync_data(&self) -> std::io::Result<()> {
        self.plan.fire_control("fdatasync")?;
        self.inner.sync_data()
    }

    /// File metadata (not faulted: metadata is read from the kernel's
    /// in-memory inode, not the device).
    pub fn metadata(&self) -> std::io::Result<std::fs::Metadata> {
        self.inner.metadata()
    }

    /// The fault plan this handle draws from.
    pub fn plan(&self) -> &IoFaultPlan {
        &self.plan
    }
}

impl Read for FaultyFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // Remember where the read started so an injected failure does not
        // silently consume the data (a retry must see the same bytes).
        let pos = self.inner.stream_position()?;
        let n = self.inner.read(buf)?;
        if let Err(e) = self.plan.fire_read(&mut buf[..n]) {
            self.inner.seek(SeekFrom::Start(pos))?;
            return Err(e);
        }
        Ok(n)
    }
}

impl Write for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let (n, flip) = self.plan.fire_write(buf.len())?;
        if n < buf.len() {
            // Torn write: persist the prefix, then report failure.
            self.inner.write_all(&buf[..n])?;
            return Err(std::io::Error::other(format!(
                "injected I/O fault: short write ({n} of {} bytes persisted)",
                buf.len()
            )));
        }
        match flip {
            Some(bit) => {
                let mut corrupted = buf.to_vec();
                corrupted[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_all(&corrupted)?;
                Ok(buf.len())
            }
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultyFile {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Replace a deterministic random subset of voxels with NaN. Returns the
/// number contaminated (at least one when `rate > 0` and the buffer is
/// non-empty, so tests can rely on contamination happening).
pub fn contaminate_nan(values: &mut [f32], seed: u64, rate: f32) -> usize {
    if values.is_empty() || rate <= 0.0 {
        return 0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut count = 0;
    for v in values.iter_mut() {
        if rng.chance(rate) {
            *v = f32::NAN;
            count += 1;
        }
    }
    if count == 0 {
        let idx = rng.usize_in(0, values.len());
        values[idx] = f32::NAN;
        count = 1;
    }
    count
}

/// Truncate a file by `bytes` from the end (simulates an interrupted
/// write). Truncating at or past the start leaves an empty file.
pub fn truncate_file(path: &Path, bytes: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = f.metadata()?.len();
    f.set_len(len.saturating_sub(bytes))
}

/// Flip one bit of a file in place (simulates storage corruption).
/// `byte_offset` is clamped to the file; errors if the file is empty.
pub fn flip_bit(path: &Path, byte_offset: u64, bit: u8) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    let len = f.metadata()?.len();
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "cannot flip a bit in an empty file",
        ));
    }
    let offset = byte_offset.min(len - 1);
    let mut b = [0u8];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.fire(3).is_ok());
    }

    #[test]
    fn fail_first_recovers_after_n_attempts() {
        let plan = FaultPlan::none().with(5, FaultKind::FailFirst(2));
        assert!(plan.fire(5).is_err());
        assert!(plan.fire(5).is_err());
        assert!(plan.fire(5).is_ok());
        assert!(plan.fire(4).is_ok());
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        FaultPlan::none().with(0, FaultKind::Panic).fire(0).ok();
    }

    #[test]
    fn random_plan_is_deterministic() {
        let a = FaultPlan::random(9, 100, 0.1, 0.2);
        let b = FaultPlan::random(9, 100, 0.1, 0.2);
        assert_eq!(a.doomed_items(), b.doomed_items());
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn random_rates_covers_the_full_menu() {
        let rates = FaultRates {
            panic: 0.1,
            flaky: 0.1,
            stall: 0.1,
            corrupt: 0.1,
            stall_ms: 5,
        };
        let a = FaultPlan::random_rates(11, 400, &rates);
        let b = FaultPlan::random_rates(11, 400, &rates);
        assert_eq!(a.doomed_items(), b.doomed_items());
        assert_eq!(a.corrupt_items(), b.corrupt_items());
        assert!(!a.doomed_items().is_empty(), "panic faults should land at 10%");
        assert!(!a.corrupt_items().is_empty(), "corrupt faults should land at 10%");
        // Corrupt items fire as no-ops and are not doomed.
        let c = a.corrupt_items()[0];
        assert!(a.corrupts(c));
        assert!(a.fire(c).is_ok());
        assert!(!a.doomed_items().contains(&c));
    }

    #[test]
    fn rates_parse_from_cli_flags() {
        let args = Args::parse(
            "--fault-seed 42 --panic-rate 0.02 --flaky-rate 0.1 --timeout-rate 0.05 \
             --corrupt-rate 0.03 --stall-ms 150"
                .split_whitespace()
                .map(String::from),
        );
        let (seed, rates) = FaultRates::from_args(&args).expect("seed present");
        assert_eq!(seed, 42);
        assert!((rates.panic - 0.02).abs() < 1e-6);
        assert!((rates.flaky - 0.1).abs() < 1e-6);
        assert!((rates.stall - 0.05).abs() < 1e-6);
        assert!((rates.corrupt - 0.03).abs() < 1e-6);
        assert_eq!(rates.stall_ms, 150);
        // No --fault-seed → fault injection disabled entirely.
        let off = Args::parse("--panic-rate 0.5".split_whitespace().map(String::from));
        assert!(FaultRates::from_args(&off).is_none());
    }

    #[test]
    fn cancellable_stall_is_released_by_the_token() {
        let plan = FaultPlan::none().with(0, FaultKind::Stall(Duration::from_secs(30)));
        let token = CancelToken::new();
        token.cancel();
        let start = std::time::Instant::now();
        let err = plan.fire_cancellable(0, &token).unwrap_err();
        assert!(matches!(err, SfcError::Cancelled { item: 0 }));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn nan_contamination_counts_and_lands() {
        let mut v = vec![1.0f32; 1000];
        let n = contaminate_nan(&mut v, 7, 0.05);
        assert_eq!(v.iter().filter(|x| x.is_nan()).count(), n);
        assert!(n > 0);
        // Tiny rate still contaminates at least one voxel.
        let mut w = vec![1.0f32; 4];
        assert!(contaminate_nan(&mut w, 7, 1e-9) >= 1);
        // Zero rate contaminates nothing.
        let mut u = vec![1.0f32; 4];
        assert_eq!(contaminate_nan(&mut u, 7, 0.0), 0);
    }

    fn io_tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sfc_iofault_{}_{tag}", std::process::id()))
    }

    #[test]
    fn faulty_file_without_faults_is_transparent() {
        let path = io_tmp("clean");
        let plan = IoFaultPlan::none();
        let mut f = FaultyFile::create(&path, plan.clone()).unwrap();
        f.write_all(b"hello brick store").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let mut f = FaultyFile::open(&path, plan.clone()).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello brick store");
        assert_eq!(plan.injected(), 0);
        assert!(plan.ops() > 0, "every operation is drawn");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scripted_io_error_fails_the_exact_operation() {
        let path = io_tmp("ioerr");
        std::fs::write(&path, [7u8; 32]).unwrap();
        // op 0 = open (ok here), op 1 = first read fails, op 2 succeeds.
        let plan = IoFaultPlan::none().with_op(1, FaultKind::IoError);
        let mut f = FaultyFile::open(&path, plan.clone()).unwrap();
        let mut buf = [0u8; 32];
        let err = f.read_exact(&mut buf).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The failed read consumed no data: the retry sees all 32 bytes.
        f.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [7u8; 32]);
        assert_eq!(plan.injected(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_on_read_corrupts_exactly_one_bit() {
        let path = io_tmp("flipread");
        std::fs::write(&path, [0u8; 64]).unwrap();
        let plan = IoFaultPlan::none().with_op(1, FaultKind::BitFlip);
        let mut f = FaultyFile::open(&path, plan).unwrap();
        let mut buf = [0u8; 64];
        f.read_exact(&mut buf).unwrap();
        let flipped: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped in transit");
        // The file itself is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), [0u8; 64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let path = io_tmp("short");
        let plan = IoFaultPlan::none().with_op(1, FaultKind::ShortWrite);
        let mut f = FaultyFile::create(&path, plan).unwrap();
        let err = f.write_all(&[9u8; 100]).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        drop(f);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), 50, "half the buffer was torn onto disk");
        assert!(on_disk.iter().all(|&b| b == 9));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slow_io_delays_but_succeeds() {
        let path = io_tmp("slow");
        std::fs::write(&path, [1u8; 8]).unwrap();
        let plan =
            IoFaultPlan::none().with_op(1, FaultKind::SlowIo(Duration::from_millis(30)));
        let mut f = FaultyFile::open(&path, plan.clone()).unwrap();
        let mut buf = [0u8; 8];
        let start = std::time::Instant::now();
        f.read_exact(&mut buf).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(buf, [1u8; 8]);
        assert_eq!(plan.injected(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_io_plans_replay_identically() {
        let rates = IoFaultRates {
            io_error: 0.2,
            bit_flip: 0.2,
            ..IoFaultRates::default()
        };
        let trace = |seed| -> Vec<bool> {
            let plan = IoFaultPlan::random(seed, rates);
            (0..200).map(|_| plan.draw().is_some()).collect()
        };
        assert_eq!(trace(42), trace(42), "same seed, same schedule");
        assert_ne!(trace(42), trace(43), "different seed, different schedule");
        assert!(trace(42).iter().any(|&f| f), "rates actually fire");
    }

    #[test]
    fn io_kinds_are_noops_in_worker_item_plans() {
        let plan = FaultPlan::none()
            .with(0, FaultKind::IoError)
            .with(1, FaultKind::ShortWrite)
            .with(2, FaultKind::BitFlip)
            .with(3, FaultKind::SlowIo(Duration::from_secs(60)));
        let start = std::time::Instant::now();
        for item in 0..4 {
            assert!(plan.fire(item).is_ok());
        }
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(plan.doomed_items().is_empty());
    }

    #[test]
    fn file_corruption_helpers() {
        let mut path = std::env::temp_dir();
        path.push(format!("sfc_faults_test_{}", std::process::id()));
        std::fs::write(&path, [0u8; 64]).unwrap();
        flip_bit(&path, 10, 3).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[10], 1 << 3);
        truncate_file(&path, 16).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 48);
        truncate_file(&path, 1000).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert!(flip_bit(&path, 0, 0).is_err());
        std::fs::remove_file(&path).ok();
    }
}
