//! Trilinear reconstruction of the scalar field at continuous positions.
//!
//! Each sample touches the 8 voxels surrounding the position — this is the
//! renderer's entire data access pattern, and the reason ray slope
//! determines which layout wins.

use sfc_core::Volume3;

use crate::vec3::Vec3;

/// Trilinearly interpolate the field at a continuous position in voxel
/// space (voxel `(i,j,k)`'s center sits at `(i+0.5, j+0.5, k+0.5)`).
/// Positions outside the volume clamp to the boundary voxels.
///
/// NaN voxels (corrupt data) are substituted with `0.0` rather than
/// poisoning the whole ray; each substitution is counted in
/// [`crate::counters::nan_samples`].
pub fn sample_trilinear<V: Volume3>(vol: &V, p: Vec3) -> f32 {
    let d = vol.dims();
    // Shift so voxel centers are at integers, clamp into the center range
    // (boundary rule: positions outside snap to the edge voxels), then
    // split into base + frac.
    let x = (p.x - 0.5).clamp(0.0, (d.nx - 1) as f32);
    let y = (p.y - 0.5).clamp(0.0, (d.ny - 1) as f32);
    let z = (p.z - 0.5).clamp(0.0, (d.nz - 1) as f32);
    let (x0f, y0f, z0f) = (x.floor(), y.floor(), z.floor());
    let (tx, ty, tz) = (x - x0f, y - y0f, z - z0f);
    let (x0, y0, z0) = (x0f as usize, y0f as usize, z0f as usize);
    let x1 = (x0 + 1).min(d.nx - 1);
    let y1 = (y0 + 1).min(d.ny - 1);
    let z1 = (z0 + 1).min(d.nz - 1);

    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let mut nan_seen = 0u64;
    let mut tap = |i: usize, j: usize, k: usize| {
        let v = vol.get(i, j, k);
        if v.is_nan() {
            nan_seen += 1;
            0.0
        } else {
            v
        }
    };
    let c000 = tap(x0, y0, z0);
    let c100 = tap(x1, y0, z0);
    let c010 = tap(x0, y1, z0);
    let c110 = tap(x1, y1, z0);
    let c001 = tap(x0, y0, z1);
    let c101 = tap(x1, y0, z1);
    let c011 = tap(x0, y1, z1);
    let c111 = tap(x1, y1, z1);
    crate::counters::record_nan_samples(nan_seen);
    let c00 = lerp(c000, c100, tx);
    let c10 = lerp(c010, c110, tx);
    let c01 = lerp(c001, c101, tx);
    let c11 = lerp(c011, c111, tx);
    let c0 = lerp(c00, c10, ty);
    let c1 = lerp(c01, c11, ty);
    lerp(c0, c1, tz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;
    use sfc_core::{Dims3, FnVolume};

    #[test]
    fn at_voxel_center_returns_voxel_value() {
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| (i * 16 + j * 4 + k) as f32);
        for (i, j, k) in Dims3::cube(4).iter() {
            let p = vec3(i as f32 + 0.5, j as f32 + 0.5, k as f32 + 0.5);
            assert_eq!(sample_trilinear(&v, p), (i * 16 + j * 4 + k) as f32);
        }
    }

    #[test]
    fn midway_between_centers_is_average() {
        let v = FnVolume::new(Dims3::cube(4), |i, _, _| i as f32);
        let s = sample_trilinear(&v, vec3(2.0, 0.5, 0.5));
        assert!((s - 1.5).abs() < 1e-6, "between centers 1 and 2: {s}");
    }

    #[test]
    fn reproduces_linear_fields_exactly_in_the_interior() {
        let v = FnVolume::new(Dims3::cube(8), |i, j, k| {
            2.0 * i as f32 - j as f32 + 0.5 * k as f32
        });
        let p = vec3(3.3, 4.7, 2.2);
        let want = 2.0 * (p.x - 0.5) - (p.y - 0.5) + 0.5 * (p.z - 0.5);
        assert!((sample_trilinear(&v, p) - want).abs() < 1e-4);
    }

    #[test]
    fn outside_positions_clamp() {
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| (i + j + k) as f32);
        assert_eq!(sample_trilinear(&v, vec3(-5.0, -5.0, -5.0)), 0.0);
        assert_eq!(sample_trilinear(&v, vec3(50.0, 50.0, 50.0)), 9.0);
    }

    #[test]
    fn nan_taps_substitute_zero_and_are_counted() {
        // One NaN corner among the 8 taps: the sample stays finite and the
        // process-wide counter advances by at least that tap.
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| {
            if (i, j, k) == (1, 1, 1) {
                f32::NAN
            } else {
                1.0
            }
        });
        let before = crate::counters::nan_samples();
        let s = sample_trilinear(&v, vec3(2.0, 2.0, 2.0));
        let after = crate::counters::nan_samples();
        assert!(s.is_finite(), "NaN tap must not poison the sample: {s}");
        assert!(after > before, "NaN substitution must be counted");
    }

    #[test]
    fn fully_nan_neighborhood_samples_as_zero() {
        let v = FnVolume::new(Dims3::cube(4), |_, _, _| f32::NAN);
        let s = sample_trilinear(&v, vec3(2.0, 2.0, 2.0));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn constant_field_everywhere() {
        let v = FnVolume::new(Dims3::cube(4), |_, _, _| 0.8);
        for p in [vec3(0.1, 3.9, 2.0), vec3(2.5, 2.5, 2.5), vec3(3.99, 0.01, 1.0)] {
            assert!((sample_trilinear(&v, p) - 0.8).abs() < 1e-6);
        }
    }
}
