//! Trilinear reconstruction of the scalar field at continuous positions.
//!
//! Each sample touches the 8 voxels surrounding the position — this is the
//! renderer's entire data access pattern, and the reason ray slope
//! determines which layout wins.
//!
//! Two fast paths (both bitwise-neutral to the result):
//!
//! * corner gathering goes through [`Volume3::cell_corners`], which grids
//!   implement as a 7-step incremental cursor walk (one full index
//!   computation per cell instead of eight);
//! * [`CellSampler`] additionally caches the most recent cell's corners,
//!   so consecutive samples landing in the same cell — common at the
//!   paper's 0.5-voxel ray step — skip the data access entirely.
//!
//! The cell cache's hit rate is a function of the ray step: the brownout
//! quality ladder ([`crate::degraded`]) doubles the step per rung, so a
//! downgraded tile takes half the samples *and* almost every remaining
//! sample lands in a fresh cell (cache hits approach zero past a 1-voxel
//! step). Both effects are already priced into the per-unit latency the
//! deadline controller's EWMA observes — no sampler changes are needed
//! for coarse-step marching to be profitable.

use sfc_core::Volume3;

use crate::vec3::Vec3;

/// Reusable trilinear sampler with a one-cell corner cache.
///
/// The raycaster creates one per ray: at a 0.5-voxel step roughly half of
/// consecutive samples fall in the cell just sampled, and those re-use the
/// cached corners with zero volume reads. Results are bit-identical to
/// [`sample_trilinear`] — the cache only skips re-reading unchanged data.
///
/// NaN substitutions are accumulated locally; call
/// [`take_nan_count`](Self::take_nan_count) to drain the tally into a
/// shared counter once per work item. NaNs are counted per sample *tap*:
/// every sample adds the number of NaN corners in its cell (clamped
/// duplicate taps included), whether the corners came from the cache or a
/// fresh fetch — exactly the tally the per-access path produced.
pub struct CellSampler<'v, V: Volume3> {
    vol: &'v V,
    dims: sfc_core::Dims3,
    /// When false, every sample re-fetches its cell (see
    /// [`uncached`](Self::uncached)).
    cache: bool,
    /// Low corner of the cached cell, or `usize::MAX` sentinel when empty.
    cell: (usize, usize, usize),
    /// Cached corner values, NaN already substituted:
    /// `[c000, c100, c010, c110, c001, c101, c011, c111]`.
    corners: [f32; 8],
    /// Number of NaN corners in `corners` (before substitution).
    cell_nans: u64,
    nan_seen: u64,
}

impl<'v, V: Volume3> CellSampler<'v, V> {
    /// Create a sampler over `vol` with an empty cell cache.
    pub fn new(vol: &'v V) -> Self {
        Self {
            vol,
            dims: vol.dims(),
            cache: true,
            cell: (usize::MAX, usize::MAX, usize::MAX),
            corners: [0.0; 8],
            cell_nans: 0,
            nan_seen: 0,
        }
    }

    /// Create a sampler with the cell cache disabled: every sample
    /// re-fetches its 8 corners through [`Volume3::cell_corners`].
    ///
    /// Results are bit-identical to [`new`](Self::new); only the volume
    /// access stream differs. The memory-counter simulation uses this so
    /// its traced address stream replays the original
    /// 8-`get`s-per-sample pattern (a `TracedGrid` keeps the default
    /// per-`get` `cell_corners`), keeping simulated counter reports
    /// comparable with the paper's per-sample methodology.
    pub fn uncached(vol: &'v V) -> Self {
        Self {
            cache: false,
            ..Self::new(vol)
        }
    }

    /// Trilinearly interpolate at a continuous position (voxel `(i,j,k)`'s
    /// center sits at `(i+0.5, j+0.5, k+0.5)`); positions outside the
    /// volume clamp to the boundary voxels.
    pub fn sample(&mut self, p: Vec3) -> f32 {
        let d = self.dims;
        // Shift so voxel centers are at integers, clamp into the center
        // range (boundary rule: positions outside snap to the edge
        // voxels), then split into base + frac.
        let x = (p.x - 0.5).clamp(0.0, (d.nx - 1) as f32);
        let y = (p.y - 0.5).clamp(0.0, (d.ny - 1) as f32);
        let z = (p.z - 0.5).clamp(0.0, (d.nz - 1) as f32);
        let (x0f, y0f, z0f) = (x.floor(), y.floor(), z.floor());
        let (tx, ty, tz) = (x - x0f, y - y0f, z - z0f);
        let cell = (x0f as usize, y0f as usize, z0f as usize);

        if cell != self.cell {
            let raw = self.vol.cell_corners(cell.0, cell.1, cell.2);
            self.cell_nans = 0;
            for (slot, v) in self.corners.iter_mut().zip(raw) {
                if v.is_nan() {
                    self.cell_nans += 1;
                    *slot = 0.0;
                } else {
                    *slot = v;
                }
            }
            if self.cache {
                self.cell = cell;
            }
        }
        // Tally per sample, not per fetch, so cached re-samples of a NaN
        // cell count exactly like the per-access path's taps did.
        self.nan_seen += self.cell_nans;

        blend8(&self.corners, tx, ty, tz)
    }

    /// Drain the accumulated NaN-substitution count (resets it to zero).
    pub fn take_nan_count(&mut self) -> u64 {
        std::mem::take(&mut self.nan_seen)
    }
}

/// Eight-corner trilinear blend, `corners` in
/// `[c000, c100, c010, c110, c001, c101, c011, c111]` order.
///
/// On x86_64 the four x-lerps (and then the two y-lerps) run as packed
/// SSE2 lanes; SSE2 is part of the x86_64 baseline, so there is no
/// runtime dispatch. Every lane evaluates the identical
/// `a + (b - a) * t` expression — separate subtract, multiply, add, no
/// FMA contraction and no reassociation — so the result is bit-identical
/// to the scalar tree (pinned by `simd_blend_matches_scalar_bitwise`).
#[cfg(target_arch = "x86_64")]
#[inline]
fn blend8(corners: &[f32; 8], tx: f32, ty: f32, tz: f32) -> f32 {
    use std::arch::x86_64::*;
    // SAFETY: SSE2 is unconditionally available on x86_64, and the loads
    // read 4 in-bounds f32s each from the 8-element array.
    unsafe {
        let lo = _mm_loadu_ps(corners.as_ptr()); // c000 c100 c010 c110
        let hi = _mm_loadu_ps(corners.as_ptr().add(4)); // c001 c101 c011 c111
        let a = _mm_shuffle_ps::<0x88>(lo, hi); // c000 c010 c001 c011
        let b = _mm_shuffle_ps::<0xDD>(lo, hi); // c100 c110 c101 c111
        let t = _mm_set1_ps(tx);
        // Lanes: c00 c10 c01 c11.
        let r1 = _mm_add_ps(a, _mm_mul_ps(_mm_sub_ps(b, a), t));
        let a2 = _mm_shuffle_ps::<0x08>(r1, r1); // c00 c01 _ _
        let b2 = _mm_shuffle_ps::<0x0D>(r1, r1); // c10 c11 _ _
        let t2 = _mm_set1_ps(ty);
        // Lanes: c0 c1 _ _ (the upper two lanes are ignored).
        let r2 = _mm_add_ps(a2, _mm_mul_ps(_mm_sub_ps(b2, a2), t2));
        let c0 = _mm_cvtss_f32(r2);
        let c1 = _mm_cvtss_f32(_mm_shuffle_ps::<1>(r2, r2));
        c0 + (c1 - c0) * tz
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn blend8(corners: &[f32; 8], tx: f32, ty: f32, tz: f32) -> f32 {
    blend8_scalar(corners, tx, ty, tz)
}

/// Portable scalar blend: the fallback on non-x86 targets and the bitwise
/// oracle the SIMD path is tested against.
#[cfg(any(test, not(target_arch = "x86_64")))]
fn blend8_scalar(corners: &[f32; 8], tx: f32, ty: f32, tz: f32) -> f32 {
    let [c000, c100, c010, c110, c001, c101, c011, c111] = *corners;
    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let c00 = lerp(c000, c100, tx);
    let c10 = lerp(c010, c110, tx);
    let c01 = lerp(c001, c101, tx);
    let c11 = lerp(c011, c111, tx);
    let c0 = lerp(c00, c10, ty);
    let c1 = lerp(c01, c11, ty);
    lerp(c0, c1, tz)
}

/// Trilinearly interpolate the field at a continuous position in voxel
/// space (voxel `(i,j,k)`'s center sits at `(i+0.5, j+0.5, k+0.5)`).
/// Positions outside the volume clamp to the boundary voxels.
///
/// NaN voxels (corrupt data) are substituted with `0.0` rather than
/// poisoning the whole ray; each substitution is counted in
/// [`crate::counters::nan_samples`]. One-shot convenience over
/// [`CellSampler`]; the renderer keeps a sampler per ray instead.
pub fn sample_trilinear<V: Volume3>(vol: &V, p: Vec3) -> f32 {
    let mut sampler = CellSampler::new(vol);
    let v = sampler.sample(p);
    crate::counters::record_nan_samples(sampler.take_nan_count());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;
    use sfc_core::{Dims3, FnVolume, Grid3, Tiled3, ZOrder3};

    #[test]
    fn at_voxel_center_returns_voxel_value() {
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| (i * 16 + j * 4 + k) as f32);
        for (i, j, k) in Dims3::cube(4).iter() {
            let p = vec3(i as f32 + 0.5, j as f32 + 0.5, k as f32 + 0.5);
            assert_eq!(sample_trilinear(&v, p), (i * 16 + j * 4 + k) as f32);
        }
    }

    #[test]
    fn midway_between_centers_is_average() {
        let v = FnVolume::new(Dims3::cube(4), |i, _, _| i as f32);
        let s = sample_trilinear(&v, vec3(2.0, 0.5, 0.5));
        assert!((s - 1.5).abs() < 1e-6, "between centers 1 and 2: {s}");
    }

    #[test]
    fn reproduces_linear_fields_exactly_in_the_interior() {
        let v = FnVolume::new(Dims3::cube(8), |i, j, k| {
            2.0 * i as f32 - j as f32 + 0.5 * k as f32
        });
        let p = vec3(3.3, 4.7, 2.2);
        let want = 2.0 * (p.x - 0.5) - (p.y - 0.5) + 0.5 * (p.z - 0.5);
        assert!((sample_trilinear(&v, p) - want).abs() < 1e-4);
    }

    #[test]
    fn outside_positions_clamp() {
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| (i + j + k) as f32);
        assert_eq!(sample_trilinear(&v, vec3(-5.0, -5.0, -5.0)), 0.0);
        assert_eq!(sample_trilinear(&v, vec3(50.0, 50.0, 50.0)), 9.0);
    }

    #[test]
    fn nan_taps_substitute_zero_and_are_counted() {
        // One NaN corner among the 8 taps: the sample stays finite and the
        // process-wide counter advances by at least that tap.
        let v = FnVolume::new(Dims3::cube(4), |i, j, k| {
            if (i, j, k) == (1, 1, 1) {
                f32::NAN
            } else {
                1.0
            }
        });
        let before = crate::counters::nan_samples();
        let s = sample_trilinear(&v, vec3(2.0, 2.0, 2.0));
        let after = crate::counters::nan_samples();
        assert!(s.is_finite(), "NaN tap must not poison the sample: {s}");
        assert!(after > before, "NaN substitution must be counted");
    }

    #[test]
    fn fully_nan_neighborhood_samples_as_zero() {
        let v = FnVolume::new(Dims3::cube(4), |_, _, _| f32::NAN);
        let s = sample_trilinear(&v, vec3(2.0, 2.0, 2.0));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn constant_field_everywhere() {
        let v = FnVolume::new(Dims3::cube(4), |_, _, _| 0.8);
        for p in [vec3(0.1, 3.9, 2.0), vec3(2.5, 2.5, 2.5), vec3(3.99, 0.01, 1.0)] {
            assert!((sample_trilinear(&v, p) - 0.8).abs() < 1e-6);
        }
    }

    #[test]
    fn cached_sampler_matches_one_shot_bitwise() {
        let dims = Dims3::new(9, 7, 6);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect();
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let mut s = CellSampler::new(&g);
        // A ray-like march with sub-voxel steps: many consecutive samples
        // share a cell, exercising the cache path.
        for t in 0..120 {
            let p = vec3(
                0.3 + t as f32 * 0.07,
                0.9 + t as f32 * 0.05,
                0.5 + t as f32 * 0.04,
            );
            let cached = s.sample(p);
            let fresh = sample_trilinear(&g, p);
            assert_eq!(cached.to_bits(), fresh.to_bits(), "step {t}");
        }
    }

    #[test]
    fn cursor_cell_corners_match_default_on_all_edges() {
        // Cells whose high corner clamps (last plane along each axis) must
        // duplicate the low plane exactly like the per-get default.
        let dims = Dims3::new(5, 4, 3);
        let values: Vec<f32> = (0..dims.len()).map(|v| v as f32 * 0.37).collect();
        let g = Grid3::<f32, Tiled3>::from_row_major(dims, &values);
        for (i, j, k) in dims.iter() {
            let fast = g.cell_corners(i, j, k);
            let slow = {
                let vref: &dyn Volume3 = &FnVolume::new(dims, |a, b, c| g.get(a, b, c));
                vref.cell_corners(i, j, k)
            };
            assert_eq!(fast, slow, "cell ({i},{j},{k})");
        }
    }

    #[test]
    fn nan_counting_is_per_sample_even_on_cache_hits() {
        // Two samples in the same (fully NaN) cell: the second is served
        // from the cache but must still count its 8 NaN taps, matching
        // the per-access path's per-tap tally.
        let v = FnVolume::new(Dims3::cube(2), |_, _, _| f32::NAN);
        let mut s = CellSampler::new(&v);
        s.sample(vec3(1.0, 1.0, 1.0));
        s.sample(vec3(1.2, 1.0, 1.0));
        assert_eq!(s.take_nan_count(), 16);
    }

    #[test]
    fn uncached_sampler_matches_cached_bitwise() {
        let dims = Dims3::new(7, 6, 5);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect();
        let g = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let mut cached = CellSampler::new(&g);
        let mut uncached = CellSampler::uncached(&g);
        for t in 0..100 {
            let p = vec3(
                0.4 + t as f32 * 0.06,
                0.7 + t as f32 * 0.05,
                0.6 + t as f32 * 0.04,
            );
            assert_eq!(cached.sample(p).to_bits(), uncached.sample(p).to_bits());
        }
    }

    #[test]
    fn simd_blend_matches_scalar_bitwise() {
        // The packed blend must reproduce the scalar lerp tree exactly,
        // including denormals, huge magnitudes, and negative-zero signs.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..5_000 {
            let mut corners = [0.0f32; 8];
            for c in corners.iter_mut() {
                let r = next();
                *c = match r % 7 {
                    0 => -0.0,
                    1 => f32::from_bits((r >> 32) as u32 & 0x007f_ffff), // denormal
                    2 => ((r >> 32) as u32) as f32 * 1.0e30,
                    _ => ((r >> 32) as u32) as f32 / 4.0e9 - 0.5,
                };
            }
            let tx = (next() % 1000) as f32 / 999.0;
            let ty = (next() % 1000) as f32 / 999.0;
            let tz = (next() % 1000) as f32 / 999.0;
            let fast = blend8(&corners, tx, ty, tz);
            let slow = blend8_scalar(&corners, tx, ty, tz);
            assert_eq!(fast.to_bits(), slow.to_bits(), "case {case}");
        }
    }

    #[test]
    fn take_nan_count_drains() {
        let v = FnVolume::new(Dims3::cube(2), |i, _, _| {
            if i == 0 {
                f32::NAN
            } else {
                1.0
            }
        });
        let mut s = CellSampler::new(&v);
        s.sample(vec3(1.0, 1.0, 1.0));
        let n = s.take_nan_count();
        assert!(n > 0);
        assert_eq!(s.take_nan_count(), 0);
    }
}
