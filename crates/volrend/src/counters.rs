//! Simulated memory-system counters for the raycaster.
//!
//! The native renderer assigns tiles dynamically; for the counter
//! simulation we use the *static round-robin* split of the same tile list
//! (the dynamic queue's assignment is timing-dependent and therefore not
//! reproducible, while the set of rays and samples — and hence the address
//! stream per tile — is identical). Threads mapped onto the same simulated
//! core have their tile streams interleaved round-robin, as on the MIC's
//! hardware threads.
//!
//! The simulation shades through [`crate::render::shade_ray_replay`], an
//! *uncached* sampler path: every sample issues its 8 corner `get`s
//! through the default per-`get` [`sfc_core::Volume3::cell_corners`], so
//! the traced address stream is exactly the per-sample stream the paper's
//! methodology assumes — the native renderer's cached-cell fast path
//! changes throughput, never the simulated counters.

use sfc_core::{image_tiles, Grid3, Layout3};
use sfc_harness::{items_for_thread, EventCounter, UnitCounters};
use sfc_memsim::{
    assign_threads_to_cores, interleave_round_robin, run_multicore, CoreSim, Platform,
    SimReport, TracedGrid,
};

use crate::camera::Camera;
use crate::render::RenderOpts;
use crate::transfer::TransferFunction;

/// Process-wide count of NaN voxel taps the trilinear sampler has
/// substituted with `0.0`. Monotonic; reset explicitly between
/// measurements. Shared [`UnitCounters`] sink batched once per tile/ray;
/// registered in the metrics plane as `volrend.nan_samples`.
static NAN_SAMPLES: EventCounter = EventCounter::new("volrend.nan_samples");

/// NaN voxel taps substituted by the sampler since the last
/// [`reset_nan_samples`].
pub fn nan_samples() -> u64 {
    NAN_SAMPLES.total()
}

/// Reset the NaN sample counter (call before a measured run).
pub fn reset_nan_samples() {
    NAN_SAMPLES.reset();
}

pub(crate) fn record_nan_samples(n: u64) {
    NAN_SAMPLES.record_unit(n);
}

/// Simulate the cache behaviour of rendering one frame with `nthreads`
/// software threads on `platform`.
pub fn simulate_render_counters<L: Layout3>(
    grid: &Grid3<f32, L>,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    nthreads: usize,
    platform: &Platform,
) -> SimReport {
    let tiles = image_tiles(cam.width(), cam.height(), opts.tile, opts.tile);
    let cores = assign_threads_to_cores(nthreads, platform.cores);

    run_multicore(
        &platform.hierarchy,
        cores.len(),
        true,
        |core_id, sim: &mut CoreSim| {
            // Pixel (ray) streams of each co-resident thread, interleaved
            // round-robin at ray granularity — hardware threads sharing a
            // core's caches mix far finer than whole tiles. (One thread
            // per core degenerates to the natural tile order.)
            let streams: Vec<Vec<(usize, usize)>> = cores[core_id]
                .iter()
                .map(|&tid| {
                    items_for_thread(tiles.len(), nthreads, tid)
                        .flat_map(|t| tiles[t].pixels().collect::<Vec<_>>())
                        .collect()
                })
                .collect();
            let work = interleave_round_robin(&streams);
            let traced = TracedGrid::at_zero(grid, sim);
            let bbox = crate::ray::Aabb::of_dims(grid.dims());
            for (x, y) in work {
                let ray = cam.ray_for_pixel(x, y);
                // Replay path: per-sample access stream, no cell cache.
                std::hint::black_box(crate::render::shade_ray_replay(
                    &traced, tf, opts, &ray, &bbox,
                ));
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{orbit_viewpoints, Projection};
    use crate::vec3::vec3;
    use sfc_core::{ArrayOrder3, Dims3, ZOrder3};
    use sfc_memsim::platform;

    fn checker(dims: Dims3) -> Vec<f32> {
        dims.iter()
            .map(|(i, j, k)| (((i / 2) + (j / 2) + (k / 2)) % 2) as f32)
            .collect()
    }

    fn opts() -> RenderOpts {
        RenderOpts {
            tile: 8,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let dims = Dims3::cube(16);
        let g = sfc_core::Grid3::<f32, ZOrder3>::from_row_major(dims, &checker(dims));
        let cams = orbit_viewpoints(
            8,
            vec3(8.0, 8.0, 8.0),
            40.0,
            Projection::Perspective {
                fov_y: 35f32.to_radians(),
            },
            16,
            16,
        );
        let plat = platform::scaled(&platform::ivy_bridge(), 15);
        let tf = TransferFunction::fire();
        let a = simulate_render_counters(&g, &cams[1], &tf, &opts(), 4, &plat);
        let b = simulate_render_counters(&g, &cams[1], &tf, &opts(), 4, &plat);
        assert_eq!(a.per_core, b.per_core);
        assert!(a.total().reads > 0);
    }

    #[test]
    fn oblique_view_hurts_array_order_more() {
        // Viewpoint 2 looks along -z: hostile for array order, fine for
        // Z-order — the paper's Fig. 4 effect in miniature.
        let dims = Dims3::cube(32);
        let values = checker(dims);
        let a = sfc_core::Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = sfc_core::Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let cams = orbit_viewpoints(
            8,
            vec3(16.0, 16.0, 16.0),
            80.0,
            Projection::Perspective {
                fov_y: 35f32.to_radians(),
            },
            32,
            32,
        );
        let plat = platform::scaled(&platform::ivy_bridge(), 13);
        let tf = TransferFunction::grayscale();
        let miss = |g: &dyn Fn() -> u64| g();
        let miss_a2 = simulate_render_counters(&a, &cams[2], &tf, &opts(), 2, &plat)
            .l3_total_cache_accesses();
        let miss_z2 = simulate_render_counters(&z, &cams[2], &tf, &opts(), 2, &plat)
            .l3_total_cache_accesses();
        let _ = miss;
        assert!(
            miss_a2 > miss_z2,
            "oblique view: a-order misses ({miss_a2}) must exceed z-order ({miss_z2})"
        );
    }

    #[test]
    fn sim_traces_the_per_sample_stream() {
        // The sim's total read count must equal the number of gets the
        // uncached per-sample path issues over the same rays — i.e. the
        // pre-cursor 8-gets-per-sample stream, not the cached-cell one.
        let dims = Dims3::cube(16);
        let g = sfc_core::Grid3::<f32, ZOrder3>::from_row_major(dims, &checker(dims));
        let cam = orbit_viewpoints(
            8,
            vec3(8.0, 8.0, 8.0),
            40.0,
            Projection::Perspective {
                fov_y: 35f32.to_radians(),
            },
            16,
            16,
        )
        .remove(1);
        let plat = platform::scaled(&platform::ivy_bridge(), 15);
        let tf = TransferFunction::fire();
        let report = simulate_render_counters(&g, &cam, &tf, &opts(), 4, &plat);

        let gets = std::cell::Cell::new(0u64);
        let counting = sfc_core::FnVolume::new(dims, |i, j, k| {
            gets.set(gets.get() + 1);
            sfc_core::Volume3::get(&g, i, j, k)
        });
        let bbox = crate::ray::Aabb::of_dims(dims);
        for y in 0..cam.height() {
            for x in 0..cam.width() {
                let ray = cam.ray_for_pixel(x, y);
                crate::render::shade_ray_replay(&counting, &tf, &opts(), &ray, &bbox);
            }
        }
        assert_eq!(report.total().reads, gets.get());
        assert_eq!(gets.get() % 8, 0);
    }

    #[test]
    fn read_counts_are_layout_independent() {
        let dims = Dims3::cube(16);
        let values = checker(dims);
        let a = sfc_core::Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = sfc_core::Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let cam = orbit_viewpoints(
            8,
            vec3(8.0, 8.0, 8.0),
            40.0,
            Projection::Perspective {
                fov_y: 35f32.to_radians(),
            },
            24,
            24,
        )
        .remove(3);
        let plat = platform::scaled(&platform::mic_knc(), 15);
        let tf = TransferFunction::fire();
        let ra = simulate_render_counters(&a, &cam, &tf, &opts(), 3, &plat);
        let rz = simulate_render_counters(&z, &cam, &tf, &opts(), 3, &plat);
        assert_eq!(ra.total().reads, rz.total().reads);
    }
}
