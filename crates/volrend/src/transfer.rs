//! Transfer functions: scalar value → RGBA.

/// A straight-alpha RGBA color, components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rgba {
    /// Red.
    pub r: f32,
    /// Green.
    pub g: f32,
    /// Blue.
    pub b: f32,
    /// Opacity.
    pub a: f32,
}

/// Shorthand constructor.
pub const fn rgba(r: f32, g: f32, b: f32, a: f32) -> Rgba {
    Rgba { r, g, b, a }
}

/// Piecewise-linear transfer function over scalar values in `[0, 1]`,
/// discretized into a lookup table for cheap per-sample evaluation.
#[derive(Debug, Clone)]
pub struct TransferFunction {
    table: Vec<Rgba>,
}

impl TransferFunction {
    /// Table resolution used by the constructors.
    pub const RESOLUTION: usize = 256;

    /// Build from control points `(value, color)`; values must be strictly
    /// increasing within `[0, 1]` and include at least one point.
    pub fn from_control_points(points: &[(f32, Rgba)]) -> Self {
        assert!(!points.is_empty(), "need at least one control point");
        assert!(
            points.windows(2).all(|w| w[0].0 < w[1].0),
            "control point values must be strictly increasing"
        );
        let n = Self::RESOLUTION;
        let mut table = Vec::with_capacity(n);
        for idx in 0..n {
            let v = idx as f32 / (n - 1) as f32;
            table.push(Self::eval_points(points, v));
        }
        Self { table }
    }

    fn eval_points(points: &[(f32, Rgba)], v: f32) -> Rgba {
        if v <= points[0].0 {
            return points[0].1;
        }
        if v >= points[points.len() - 1].0 {
            return points[points.len() - 1].1;
        }
        let hi = points.iter().position(|&(pv, _)| pv >= v).expect("v in range");
        let (v0, c0) = points[hi - 1];
        let (v1, c1) = points[hi];
        let t = (v - v0) / (v1 - v0);
        rgba(
            c0.r + (c1.r - c0.r) * t,
            c0.g + (c1.g - c0.g) * t,
            c0.b + (c1.b - c0.b) * t,
            c0.a + (c1.a - c0.a) * t,
        )
    }

    /// A black-body style map suited to the combustion-like field: cool
    /// transparent blues through orange to hot opaque white.
    pub fn fire() -> Self {
        Self::from_control_points(&[
            (0.0, rgba(0.0, 0.0, 0.0, 0.0)),
            (0.25, rgba(0.1, 0.05, 0.3, 0.004)),
            (0.5, rgba(0.8, 0.25, 0.05, 0.04)),
            (0.75, rgba(1.0, 0.65, 0.1, 0.3)),
            (1.0, rgba(1.0, 1.0, 0.9, 0.9)),
        ])
    }

    /// A grayscale ramp with linearly increasing opacity (useful for
    /// debugging and for MRI-style data).
    pub fn grayscale() -> Self {
        Self::from_control_points(&[
            (0.0, rgba(0.0, 0.0, 0.0, 0.0)),
            (1.0, rgba(1.0, 1.0, 1.0, 0.5)),
        ])
    }

    /// Sample at a scalar value (clamped to `[0, 1]`).
    #[inline]
    pub fn sample(&self, v: f32) -> Rgba {
        let idx = (v.clamp(0.0, 1.0) * (self.table.len() - 1) as f32).round() as usize;
        self.table[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_control_points() {
        let tf = TransferFunction::from_control_points(&[
            (0.0, rgba(0.0, 0.0, 0.0, 0.0)),
            (1.0, rgba(1.0, 0.5, 0.25, 1.0)),
        ]);
        assert_eq!(tf.sample(0.0), rgba(0.0, 0.0, 0.0, 0.0));
        assert_eq!(tf.sample(1.0), rgba(1.0, 0.5, 0.25, 1.0));
    }

    #[test]
    fn midpoint_interpolates() {
        let tf = TransferFunction::from_control_points(&[
            (0.0, rgba(0.0, 0.0, 0.0, 0.0)),
            (1.0, rgba(1.0, 1.0, 1.0, 1.0)),
        ]);
        let mid = tf.sample(0.5);
        assert!((mid.r - 0.5).abs() < 0.01);
        assert!((mid.a - 0.5).abs() < 0.01);
    }

    #[test]
    fn out_of_range_clamps() {
        let tf = TransferFunction::grayscale();
        assert_eq!(tf.sample(-5.0), tf.sample(0.0));
        assert_eq!(tf.sample(7.0), tf.sample(1.0));
    }

    #[test]
    fn fire_map_is_monotone_in_opacity() {
        let tf = TransferFunction::fire();
        let mut prev = -1.0f32;
        for i in 0..=10 {
            let a = tf.sample(i as f32 / 10.0).a;
            assert!(a >= prev - 1e-6, "opacity must not decrease");
            prev = a;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_panic() {
        TransferFunction::from_control_points(&[
            (0.5, rgba(0.0, 0.0, 0.0, 0.0)),
            (0.5, rgba(1.0, 1.0, 1.0, 1.0)),
        ]);
    }

    #[test]
    fn low_values_are_transparent_in_fire() {
        assert!(TransferFunction::fire().sample(0.05).a < 0.01);
        assert!(TransferFunction::fire().sample(0.95).a > 0.5);
    }
}
