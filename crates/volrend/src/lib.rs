//! # sfc-volrend — the semi-structured application kernel
//!
//! Raycasting volume rendering (paper §III-B): an image-order renderer
//! whose memory access pattern is *semi-structured* — along each ray the
//! pattern is consistent and predictable, but under perspective projection
//! every ray has its own slope, so the aggregate pattern depends on the
//! viewpoint. That viewpoint dependence is exactly what the paper's
//! Figs. 4–6 measure: array order is fast only when rays align with the
//! fastest-varying axis; Z-order is viewpoint-insensitive.
//!
//! * [`vec3`] / [`ray`] — minimal geometry (vectors, rays, slab-method
//!   ray–box intersection);
//! * [`camera`] — perspective/orthographic cameras and the 8-viewpoint
//!   orbit generator;
//! * [`transfer`] — piecewise-linear transfer functions;
//! * [`sampler`] — trilinear reconstruction over any `Volume3`;
//! * [`render`] — tile-parallel front-to-back compositing renderer;
//! * [`image`] — float RGBA framebuffer;
//! * [`counters`] — simulated cache counters for a rendered frame.

#![warn(missing_docs)]

pub mod camera;
pub mod counters;
pub mod degraded;
pub mod image;
pub mod ray;
pub mod render;
pub mod sampler;
pub mod shading;
pub mod transfer;
pub mod vec3;

pub use camera::{orbit_viewpoints, Camera, Projection};
pub use counters::{nan_samples, reset_nan_samples, simulate_render_counters};
pub use degraded::{render_degraded, render_with_policy};
pub use image::Image;
pub use ray::{Aabb, Ray};
pub use render::{render, render_tile, shade_ray, RenderOpts};
pub use sampler::{sample_trilinear, CellSampler};
pub use shading::{field_gradient, phong_intensity, render_lit, shade_ray_lit, Light};
pub use transfer::{rgba, Rgba, TransferFunction};
pub use vec3::{vec3, Vec3};
