//! Minimal 3-component `f32` vector math for the raycaster.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3D vector / point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

/// Shorthand constructor.
#[inline]
pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = vec3(0.0, 0.0, 0.0);

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Debug-asserts the vector is not (near) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 1e-12, "cannot normalize a zero vector");
        self / len
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        vec3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        vec3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f32) -> Vec3 {
        vec3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        vec3(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = vec3(1.0, 2.0, 3.0);
        let b = vec3(4.0, 5.0, 6.0);
        assert_eq!(a + b, vec3(5.0, 7.0, 9.0));
        assert_eq!(b - a, vec3(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, vec3(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, vec3(0.5, 1.0, 1.5));
        assert_eq!(-a, vec3(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = vec3(1.0, 0.0, 0.0);
        let y = vec3(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), vec3(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), vec3(0.0, 0.0, -1.0));
    }

    #[test]
    fn normalize() {
        let v = vec3(3.0, 0.0, 4.0);
        assert_eq!(v.length(), 5.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max() {
        let a = vec3(1.0, 5.0, 3.0);
        let b = vec3(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), vec3(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), vec3(2.0, 5.0, 3.0));
    }
}
