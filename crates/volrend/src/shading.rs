//! Gradient-based (Blinn-Phong) shading for the raycaster.
//!
//! An optional extension over the paper's emission/absorption renderer:
//! each sample's color is modulated by a local lighting term whose normal
//! is the negated central-difference gradient of the field. Shading
//! triples the per-sample read count (6 extra trilinear samples), which
//! *amplifies* the layout effects the paper measures — the shaded
//! renderer is used by the `render_volume` example via `--shaded`.

use sfc_core::Volume3;

use crate::ray::Aabb;
use crate::render::RenderOpts;
use crate::sampler::sample_trilinear;
use crate::transfer::{Rgba, TransferFunction};
use crate::vec3::{vec3, Vec3};

/// A single directional light plus ambient floor.
#[derive(Debug, Clone, Copy)]
pub struct Light {
    /// Direction *toward* the light (normalized at construction).
    pub dir: Vec3,
    /// Ambient intensity in `[0, 1]`.
    pub ambient: f32,
    /// Diffuse weight.
    pub diffuse: f32,
    /// Specular weight.
    pub specular: f32,
    /// Specular exponent.
    pub shininess: f32,
}

impl Default for Light {
    fn default() -> Self {
        Self {
            dir: vec3(0.5, 0.8, 0.3).normalized(),
            ambient: 0.25,
            diffuse: 0.65,
            specular: 0.25,
            shininess: 24.0,
        }
    }
}

/// Central-difference gradient of the field at a continuous position
/// (step `h` in voxel units).
pub fn field_gradient<V: Volume3>(vol: &V, p: Vec3, h: f32) -> Vec3 {
    let dx = sample_trilinear(vol, vec3(p.x + h, p.y, p.z))
        - sample_trilinear(vol, vec3(p.x - h, p.y, p.z));
    let dy = sample_trilinear(vol, vec3(p.x, p.y + h, p.z))
        - sample_trilinear(vol, vec3(p.x, p.y - h, p.z));
    let dz = sample_trilinear(vol, vec3(p.x, p.y, p.z + h))
        - sample_trilinear(vol, vec3(p.x, p.y, p.z - h));
    vec3(dx, dy, dz) / (2.0 * h)
}

/// Blinn-Phong intensity for a surface normal, view direction, and light.
/// `normal` and `view` need not be normalized; degenerate normals fall
/// back to ambient-only (homogeneous regions have no meaningful surface).
pub fn phong_intensity(normal: Vec3, view: Vec3, light: &Light) -> f32 {
    let nlen = normal.length();
    if nlen < 1e-6 {
        return light.ambient;
    }
    let n = normal / nlen;
    let v = view.normalized();
    let diff = n.dot(light.dir).max(0.0);
    let half = (light.dir + v).normalized();
    let spec = n.dot(half).max(0.0).powf(light.shininess);
    (light.ambient + light.diffuse * diff + light.specular * spec).min(1.5)
}

/// March one ray with gradient shading (front-to-back, early termination —
/// the shaded counterpart of [`crate::render::shade_ray`]). `bbox` is the
/// volume's bounding box, hoisted to the caller (built once per frame).
pub fn shade_ray_lit<V: Volume3>(
    vol: &V,
    tf: &TransferFunction,
    opts: &RenderOpts,
    light: &Light,
    ray: &crate::ray::Ray,
    bbox: &Aabb,
) -> Rgba {
    let Some((t0, t1)) = bbox.intersect(ray) else {
        return Rgba::default();
    };
    let mut color = Rgba::default();
    let mut t = t0 + opts.step * 0.5;
    while t < t1 {
        let p = ray.at(t);
        let v = sample_trilinear(vol, p);
        let s = tf.sample(v);
        if s.a > 0.0 {
            // Normal points against the gradient (out of dense regions).
            let g = field_gradient(vol, p, 1.0);
            let intensity = phong_intensity(-g, -ray.dir, light);
            let a = 1.0 - (1.0 - s.a).powf(opts.step);
            let w = (1.0 - color.a) * a;
            color.r += w * s.r * intensity;
            color.g += w * s.g * intensity;
            color.b += w * s.b * intensity;
            color.a += w;
            if color.a >= opts.early_termination {
                break;
            }
        }
        t += opts.step;
    }
    color
}

/// Render a full frame with gradient shading (tile-parallel, same driver
/// contract as [`crate::render::render`]).
pub fn render_lit<V: Volume3 + Sync>(
    vol: &V,
    cam: &crate::camera::Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    light: &Light,
) -> crate::image::Image {
    use sfc_core::image_tiles;
    use sfc_harness::run_items;

    let (w, h) = (cam.width(), cam.height());
    let tiles = image_tiles(w, h, opts.tile, opts.tile);
    let bbox = Aabb::of_dims(vol.dims());
    let mut img = crate::image::Image::new(w, h);
    struct PixelSlots(*mut Rgba);
    unsafe impl Sync for PixelSlots {}
    let slots = PixelSlots(img.pixels_mut().as_mut_ptr());
    let slots = &slots;
    run_items(opts.nthreads, tiles.len(), opts.schedule, |_tid, ti| {
        for (x, y) in tiles[ti].pixels() {
            let ray = cam.ray_for_pixel(x, y);
            let c = shade_ray_lit(vol, tf, opts, light, &ray, &bbox);
            // SAFETY: tiles partition the image; each pixel written once.
            unsafe { *slots.0.add(y * w + x) = c };
        }
    });
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{Camera, Projection};
    use sfc_core::{Dims3, FnVolume};

    fn sphere(n: usize) -> FnVolume<impl Fn(usize, usize, usize) -> f32> {
        let c = n as f32 / 2.0;
        let r = n as f32 / 4.0;
        FnVolume::new(Dims3::cube(n), move |i, j, k| {
            let d2 = (i as f32 + 0.5 - c).powi(2)
                + (j as f32 + 0.5 - c).powi(2)
                + (k as f32 + 0.5 - c).powi(2);
            if d2 < r * r {
                1.0
            } else {
                0.0
            }
        })
    }

    fn cam(n: usize, px: usize) -> Camera {
        Camera::look_at(
            vec3(n as f32 * 3.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            px,
            px,
        )
    }

    #[test]
    fn gradient_of_linear_field_is_constant() {
        let vol = FnVolume::new(Dims3::cube(16), |i, _, _| i as f32 / 16.0);
        let g = field_gradient(&vol, vec3(8.0, 8.0, 8.0), 1.0);
        assert!((g.x - 1.0 / 16.0).abs() < 1e-4);
        assert!(g.y.abs() < 1e-5 && g.z.abs() < 1e-5);
    }

    #[test]
    fn phong_zero_normal_falls_back_to_ambient() {
        let l = Light::default();
        assert_eq!(phong_intensity(Vec3::ZERO, vec3(1.0, 0.0, 0.0), &l), l.ambient);
    }

    #[test]
    fn phong_facing_light_brighter_than_facing_away() {
        let l = Light::default();
        let toward = phong_intensity(l.dir, l.dir, &l);
        let away = phong_intensity(-l.dir, l.dir, &l);
        assert!(toward > away);
        assert!(away >= l.ambient - 1e-6, "back side keeps ambient");
    }

    #[test]
    fn lit_render_produces_shading_variation_across_the_sphere() {
        let vol = sphere(24);
        let tf = TransferFunction::grayscale();
        let opts = RenderOpts {
            nthreads: 2,
            ..Default::default()
        };
        let img = render_lit(&vol, &cam(24, 48), &tf, &opts, &Light::default());
        // The sphere is visible…
        assert!(img.get(24, 24).a > 0.1);
        // …and the lit side differs from the shadow side (a flat renderer
        // would give identical values by symmetry). Light comes from +y,
        // so compare pixels just above and below the sphere center.
        let top = img.get(24, 20).r;
        let bottom = img.get(24, 28).r;
        assert!(top > 0.0 && bottom > 0.0, "probe pixels must hit the sphere");
        assert!(
            (top - bottom).abs() > 0.01,
            "expected shading asymmetry, got {top} vs {bottom}"
        );
    }

    #[test]
    fn lit_render_is_layout_invariant() {
        use sfc_core::{ArrayOrder3, Grid3, ZOrder3};
        let dims = Dims3::cube(12);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect();
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let tf = TransferFunction::fire();
        let opts = RenderOpts {
            nthreads: 3,
            ..Default::default()
        };
        let ia = render_lit(&a, &cam(12, 20), &tf, &opts, &Light::default());
        let iz = render_lit(&z, &cam(12, 20), &tf, &opts, &Light::default());
        assert_eq!(ia.pixels(), iz.pixels());
    }
}
