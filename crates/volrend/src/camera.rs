//! Cameras and the paper's orbiting viewpoint generator.
//!
//! The paper uses **perspective** projection — every ray has its own slope
//! `(δx, δy, δz)`, making the access pattern "semi-structured" (§III-B) —
//! and evaluates 8 viewpoints orbiting the dataset (§IV-B4). Viewpoints 0
//! and 4 look along the ±x axis, where rays align with array-order memory;
//! intermediate viewpoints are increasingly misaligned. Orthographic
//! projection is provided for completeness (all rays share one slope).

use crate::ray::Ray;
use crate::vec3::{vec3, Vec3};

/// Projection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Projection {
    /// Pin-hole perspective with the given vertical field of view (radians).
    Perspective {
        /// Full vertical field-of-view angle in radians.
        fov_y: f32,
    },
    /// Orthographic with the given world-space image height.
    Orthographic {
        /// World-space height covered by the image plane.
        height: f32,
    },
}

/// A positioned camera producing one primary ray per output pixel.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    eye: Vec3,
    forward: Vec3,
    right: Vec3,
    up: Vec3,
    projection: Projection,
    width: usize,
    height: usize,
}

impl Camera {
    /// Build a camera at `eye` looking at `target` with the given `up` hint.
    ///
    /// # Panics
    /// Panics if `eye == target` or `up` is parallel to the view direction.
    pub fn look_at(
        eye: Vec3,
        target: Vec3,
        up: Vec3,
        projection: Projection,
        width: usize,
        height: usize,
    ) -> Self {
        assert!(width > 0 && height > 0);
        let forward = (target - eye).normalized();
        let right = forward.cross(up);
        assert!(
            right.length() > 1e-6,
            "up vector must not be parallel to the view direction"
        );
        let right = right.normalized();
        let up = right.cross(forward);
        Self {
            eye,
            forward,
            right,
            up,
            projection,
            width,
            height,
        }
    }

    /// Camera position.
    pub fn eye(&self) -> Vec3 {
        self.eye
    }

    /// Output image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Output image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The primary ray through pixel `(px, py)` (pixel centers; `py` grows
    /// downward). Direction is unit length.
    pub fn ray_for_pixel(&self, px: usize, py: usize) -> Ray {
        debug_assert!(px < self.width && py < self.height);
        let aspect = self.width as f32 / self.height as f32;
        // NDC in [-1, 1], y up.
        let u = 2.0 * (px as f32 + 0.5) / self.width as f32 - 1.0;
        let v = 1.0 - 2.0 * (py as f32 + 0.5) / self.height as f32;
        match self.projection {
            Projection::Perspective { fov_y } => {
                let t = (fov_y * 0.5).tan();
                let dir =
                    (self.forward + self.right * (u * t * aspect) + self.up * (v * t))
                        .normalized();
                Ray {
                    origin: self.eye,
                    dir,
                }
            }
            Projection::Orthographic { height } => {
                let half_h = height * 0.5;
                let origin = self.eye
                    + self.right * (u * half_h * aspect)
                    + self.up * (v * half_h);
                Ray {
                    origin,
                    dir: self.forward,
                }
            }
        }
    }
}

/// The paper's 8-viewpoint orbit around `center` at distance `radius`,
/// in the XZ plane (y up). Viewpoint 0 sits on the +x axis looking in the
/// −x direction (rays aligned with the array-order fastest axis);
/// viewpoint 4 is the opposite side.
pub fn orbit_viewpoints(
    n: usize,
    center: Vec3,
    radius: f32,
    projection: Projection,
    width: usize,
    height: usize,
) -> Vec<Camera> {
    assert!(n > 0);
    (0..n)
        .map(|v| {
            let theta = std::f32::consts::TAU * v as f32 / n as f32;
            let eye = center + vec3(radius * theta.cos(), 0.0, radius * theta.sin());
            Camera::look_at(eye, center, vec3(0.0, 1.0, 0.0), projection, width, height)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn persp() -> Projection {
        Projection::Perspective {
            fov_y: 45f32.to_radians(),
        }
    }

    #[test]
    fn center_pixel_looks_forward() {
        let cam = Camera::look_at(
            vec3(10.0, 0.0, 0.0),
            Vec3::ZERO,
            vec3(0.0, 1.0, 0.0),
            persp(),
            64,
            64,
        );
        let r = cam.ray_for_pixel(31, 31); // near center
        assert!(r.dir.x < -0.99, "should look toward -x, got {:?}", r.dir);
        assert_eq!(r.origin, vec3(10.0, 0.0, 0.0));
    }

    #[test]
    fn perspective_rays_diverge() {
        let cam = Camera::look_at(
            vec3(10.0, 0.0, 0.0),
            Vec3::ZERO,
            vec3(0.0, 1.0, 0.0),
            persp(),
            64,
            64,
        );
        let a = cam.ray_for_pixel(0, 32);
        let b = cam.ray_for_pixel(63, 32);
        assert!(a.dir.dot(b.dir) < 0.999, "corner rays must differ");
        assert_eq!(a.origin, b.origin, "perspective shares the eye");
    }

    #[test]
    fn orthographic_rays_are_parallel() {
        let cam = Camera::look_at(
            vec3(10.0, 0.0, 0.0),
            Vec3::ZERO,
            vec3(0.0, 1.0, 0.0),
            Projection::Orthographic { height: 4.0 },
            32,
            32,
        );
        let a = cam.ray_for_pixel(0, 0);
        let b = cam.ray_for_pixel(31, 31);
        assert_eq!(a.dir, b.dir, "orthographic rays share one slope");
        assert_ne!(a.origin, b.origin, "but start at different points");
    }

    #[test]
    fn rays_are_unit_length() {
        let cam = Camera::look_at(
            vec3(5.0, 2.0, -3.0),
            Vec3::ZERO,
            vec3(0.0, 1.0, 0.0),
            persp(),
            17,
            13,
        );
        for (px, py) in [(0, 0), (16, 12), (8, 6)] {
            assert!((cam.ray_for_pixel(px, py).dir.length() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn orbit_viewpoint_0_and_4_are_on_x_axis() {
        let cams = orbit_viewpoints(8, Vec3::ZERO, 100.0, persp(), 8, 8);
        assert_eq!(cams.len(), 8);
        let e0 = cams[0].eye();
        let e4 = cams[4].eye();
        assert!((e0.x - 100.0).abs() < 1e-3 && e0.z.abs() < 1e-3);
        assert!((e4.x + 100.0).abs() < 1e-3 && e4.z.abs() < 1e-3);
    }

    #[test]
    fn orbit_viewpoint_2_is_on_z_axis() {
        let cams = orbit_viewpoints(8, Vec3::ZERO, 100.0, persp(), 8, 8);
        let e2 = cams[2].eye();
        assert!(e2.x.abs() < 1e-3 && (e2.z - 100.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn degenerate_up_panics() {
        Camera::look_at(
            vec3(1.0, 0.0, 0.0),
            Vec3::ZERO,
            vec3(1.0, 0.0, 0.0),
            persp(),
            8,
            8,
        );
    }
}
