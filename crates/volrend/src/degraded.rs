//! Graceful-degradation renderer: partial images + typed tile defects.
//!
//! [`render_degraded`] is the renderer-side twin of
//! `sfc_filters::try_bilateral3d_degraded`: the tile decomposition runs on
//! the execution engine ([`sfc_harness::engine`]) through [`TileKernel`],
//! an adapter implementing [`UnitKernel`] over 32×32 image tiles (shade
//! into a local pixel buffer, commit to the framebuffer, read back for
//! validation). [`render_with_policy`] selects the policy stack:
//!
//! * [`ExecPolicy::Plain`] — the unbuffered fast [`render`] driver plus a
//!   synthesized clean outcome;
//! * [`ExecPolicy::Supervised`] — panic isolation, watchdog deadlines with
//!   cooperative cancellation, bounded retries, buffered per-tile commit
//!   (an abandoned attempt never leaves a half-written tile);
//! * [`ExecPolicy::Degraded`] — supervision plus the engine's validation
//!   scan (non-finite pixel components, optional plausibility range) and
//!   single-threaded faults-off repair pass;
//! * [`ExecPolicy::Brownout`] — the degraded pipeline under a wall-clock
//!   deadline, with a quality ladder: under pressure a tile is rendered
//!   with a doubled ray step and a lower early-termination threshold per
//!   rung ([`RenderOpts::brownout`]), every downgrade recorded in the
//!   outcome's [`QualityMap`](sfc_harness::QualityMap).
//!
//! Raycasting is deterministic, so a run whose map ends
//! [`is_whole`](sfc_harness::DefectMap::is_whole) is pixel-for-pixel
//! identical to a fault-free render.

use sfc_core::{image_tiles, SfcError, SfcResult, TileRect, Volume3};
use sfc_harness::{
    BrownoutKernel, DefectMap, DegradedOutcome, ExecPolicy, Executor, FaultPlan, RunReport,
    SupervisorConfig, UnitKernel, WorkPlan,
};

use crate::camera::Camera;
use crate::image::Image;
use crate::ray::Aabb;
use crate::render::{render, shade_ray_counted, RenderOpts};
use crate::transfer::{Rgba, TransferFunction};

/// Wrapper making disjoint raw pixel writes shareable across threads.
struct PixelSlots(*mut Rgba);
unsafe impl Sync for PixelSlots {}

/// The raycaster as an engine [`UnitKernel`]: one work unit is one image
/// tile, shaded into a local pixel buffer (in [`TileRect::pixels`] order)
/// and committed to the framebuffer. Holds a raw framebuffer pointer;
/// construct it only for the duration of one engine run over an
/// exclusively borrowed image.
struct TileKernel<'a, V> {
    vol: &'a V,
    cam: &'a Camera,
    tf: &'a TransferFunction,
    opts: &'a RenderOpts,
    bbox: Aabb,
    tiles: &'a [TileRect],
    width: usize,
    slots: PixelSlots,
    /// Brownout quality ladder: `ladder[L-1]` holds the coarsened render
    /// options for level `L` (empty outside the brownout policy).
    ladder: Vec<RenderOpts>,
}

impl<V: Volume3 + Sync> TileKernel<'_, V> {
    /// Shade one tile with explicit render options (full quality or a
    /// ladder rung), polling `keep_going` once per pixel. NaN-sample
    /// counts seen so far are flushed even when aborted.
    fn compute_with(
        &self,
        opts: &RenderOpts,
        unit: usize,
        buf: &mut Vec<Rgba>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        let tile = self.tiles[unit];
        buf.clear();
        buf.reserve(tile.area());
        let mut nan_seen = 0u64;
        let mut completed = true;
        for (x, y) in tile.pixels() {
            if !keep_going() {
                completed = false;
                break;
            }
            let ray = self.cam.ray_for_pixel(x, y);
            let (c, n) = shade_ray_counted(self.vol, self.tf, opts, &ray, &self.bbox);
            nan_seen += n;
            buf.push(c);
        }
        crate::counters::record_nan_samples(nan_seen);
        completed
    }
}

impl<V: Volume3 + Sync> UnitKernel for TileKernel<'_, V> {
    type Value = Rgba;

    fn unit_kind(&self) -> &'static str {
        "tile"
    }

    fn compute(
        &self,
        unit: usize,
        buf: &mut Vec<Rgba>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        self.compute_with(self.opts, unit, buf, keep_going)
    }

    fn commit(&self, unit: usize, buf: &[Rgba]) {
        let tile = self.tiles[unit];
        for ((x, y), &c) in tile.pixels().zip(buf.iter()) {
            // SAFETY: tiles partition the image, so each (x, y) is written
            // by exactly one unit; concurrent attempts at the *same* tile
            // write identical bytes (deterministic raycaster); index < w*h
            // by TileRect construction.
            unsafe { *self.slots.0.add(y * self.width + x) = c };
        }
    }

    fn read_back(&self, unit: usize, buf: &mut Vec<Rgba>) {
        let tile = self.tiles[unit];
        for (x, y) in tile.pixels() {
            // SAFETY: single-threaded phase, after every commit finished.
            buf.push(unsafe { *self.slots.0.add(y * self.width + x) });
        }
    }

    fn components(value: Rgba, sink: &mut dyn FnMut(f32)) {
        sink(value.r);
        sink(value.g);
        sink(value.b);
        sink(value.a);
    }

    fn poison(buf: &mut [Rgba]) {
        for (t, p) in buf.iter_mut().enumerate() {
            let v = if t % 2 == 0 { f32::NAN } else { 1e30 };
            *p = Rgba {
                r: v,
                g: v,
                b: v,
                a: v,
            };
        }
    }
}

impl<V: Volume3 + Sync> BrownoutKernel for TileKernel<'_, V> {
    fn max_level(&self) -> u8 {
        self.ladder.len() as u8
    }

    fn compute_at(
        &self,
        unit: usize,
        level: u8,
        buf: &mut Vec<Rgba>,
        keep_going: &mut dyn FnMut() -> bool,
    ) -> bool {
        let opts = match level {
            0 => self.opts,
            l => &self.ladder[usize::from(l) - 1],
        };
        self.compute_with(opts, unit, buf, keep_going)
    }
}

/// Render a full image under an engine [`ExecPolicy`], returning the
/// (possibly partial) framebuffer plus a typed outcome.
///
/// `Plain` runs the unbuffered fast [`render`] driver (panics propagate,
/// `faults` ignored) and synthesizes a clean outcome; `Supervised` and
/// `Degraded` run the buffered [`TileKernel`] under the engine, taking
/// their thread count from the policy's supervisor configuration. Errors
/// are returned only for invalid configuration — execution failures land
/// in the outcome.
pub fn render_with_policy<V: Volume3 + Sync>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    policy: &ExecPolicy,
    faults: &FaultPlan,
) -> SfcResult<(Image, DegradedOutcome)> {
    if opts.step <= 0.0 || !opts.step.is_finite() {
        return Err(SfcError::InvalidParameter {
            name: "step",
            reason: format!("ray step must be positive and finite, got {}", opts.step),
        });
    }
    let (w, h) = (cam.width(), cam.height());
    let tiles = image_tiles(w, h, opts.tile, opts.tile);
    let ntiles = tiles.len();
    if let ExecPolicy::Plain = policy {
        let start = std::time::Instant::now();
        let img = render(vol, cam, tf, opts);
        return Ok((
            img,
            DegradedOutcome::full_quality(
                RunReport {
                    completed: ntiles,
                    wall_time: start.elapsed(),
                    ..RunReport::default()
                },
                DefectMap::new("tile", ntiles),
            ),
        ));
    }
    let supervisor = match policy {
        ExecPolicy::Supervised(cfg) => cfg,
        ExecPolicy::Degraded(p) => &p.supervisor,
        ExecPolicy::Brownout(p) => &p.supervisor,
        ExecPolicy::Plain => unreachable!(),
    };
    let bbox = Aabb::of_dims(vol.dims());
    // The quality ladder exists only under the brownout policy. The
    // coarsened step is clamped to the volume diagonal so even the
    // deepest rung marches at least one sample through the box.
    let ladder: Vec<RenderOpts> = if matches!(policy, ExecPolicy::Brownout(_)) {
        let max_step = bbox.diagonal();
        (1..=RenderOpts::BROWNOUT_DEPTH)
            .map(|level| {
                let mut rung = opts.brownout(level);
                rung.step = rung.step.min(max_step);
                rung
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut img = Image::new(w, h);
    let outcome = {
        let kernel = TileKernel {
            vol,
            cam,
            tf,
            opts,
            bbox,
            tiles: &tiles,
            width: w,
            slots: PixelSlots(img.pixels_mut().as_mut_ptr()),
            ladder,
        };
        Executor::new(supervisor.nthreads).execute_brownout(
            &WorkPlan::from_schedule(ntiles, supervisor.schedule),
            policy,
            &kernel,
            faults,
        )
    };
    Ok((img, outcome))
}

/// Render a full image under the supervised pool, returning the partial
/// framebuffer plus a typed [`DefectMap`] over tiles instead of failing
/// the frame.
///
/// `faults` scripts injected failures (pass [`FaultPlan::none`] for
/// production); `pixel_range` is the optional inclusive plausibility
/// interval for finite pixel components (front-to-back compositing of an
/// in-range transfer function keeps every component in `[0, 1]`). This is
/// the PR-3 entry point, now a wrapper over [`render_with_policy`] with
/// the full [`ExecPolicy::Degraded`] stack.
pub fn render_degraded<V: Volume3 + Sync>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    cfg: &SupervisorConfig,
    faults: &FaultPlan,
    pixel_range: Option<(f32, f32)>,
) -> SfcResult<(Image, DegradedOutcome)> {
    render_with_policy(vol, cam, tf, opts, &ExecPolicy::degraded(cfg.clone(), pixel_range), faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Projection;
    use crate::render::render;
    use crate::vec3::vec3;
    use sfc_core::{Dims3, FnVolume};
    use sfc_harness::FaultKind;
    use std::time::Duration;

    fn sphere_volume(n: usize) -> FnVolume<impl Fn(usize, usize, usize) -> f32> {
        let c = n as f32 / 2.0;
        let r = n as f32 / 4.0;
        FnVolume::new(Dims3::cube(n), move |i, j, k| {
            let d2 = (i as f32 + 0.5 - c).powi(2)
                + (j as f32 + 0.5 - c).powi(2)
                + (k as f32 + 0.5 - c).powi(2);
            if d2 < r * r {
                1.0
            } else {
                0.0
            }
        })
    }

    fn camera(n: usize, px: usize) -> Camera {
        Camera::look_at(
            vec3(n as f32 * 3.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            px,
            px,
        )
    }

    fn cfg(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            timeout: Some(Duration::from_millis(1000)),
            watchdog_poll: Duration::from_millis(2),
            ..Default::default()
        }
    }

    fn opts(nthreads: usize) -> RenderOpts {
        RenderOpts {
            nthreads,
            tile: 16,
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_degraded_render_matches_plain_render() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48);
        let tf = TransferFunction::fire();
        let o = opts(4);
        let reference = render(&vol, &cam, &tf, &o);
        let (img, outcome) = render_degraded(
            &vol,
            &cam,
            &tf,
            &o,
            &cfg(4),
            &FaultPlan::none(),
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert!(outcome.defects.is_clean());
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn injected_tile_faults_are_repaired_to_identical_pixels() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48); // 48/16 = 3x3 = 9 tiles
        let tf = TransferFunction::grayscale();
        let o = opts(3);
        let reference = render(&vol, &cam, &tf, &o);
        let faults = FaultPlan::none()
            .with(0, FaultKind::Panic)
            .with(3, FaultKind::CorruptOutput)
            .with(5, FaultKind::Stall(Duration::from_secs(10)))
            .with(7, FaultKind::FailFirst(9));
        let (img, outcome) = render_degraded(
            &vol,
            &cam,
            &tf,
            &o,
            &cfg(3),
            &faults,
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert_eq!(outcome.defects.units(), vec![0, 3, 5, 7]);
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn brownout_zero_budget_renders_at_the_deepest_rung() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48); // 3x3 tiles
        let tf = TransferFunction::fire();
        let o = opts(2);
        // A zero budget sheds every tile; the repair pass renders at the
        // deepest ladder rung, so the image must be pixel-identical to a
        // plain render with those coarsened options.
        let coarse = o.brownout(RenderOpts::BROWNOUT_DEPTH);
        let reference = render(&vol, &cam, &tf, &coarse);
        let policy = ExecPolicy::brownout(
            cfg(2),
            sfc_harness::DeadlineBudget::with_budget(Duration::ZERO),
            Some((0.0, 1.0)),
        );
        let (img, outcome) =
            render_with_policy(&vol, &cam, &tf, &o, &policy, &FaultPlan::none()).unwrap();
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(outcome.quality.len(), 9);
        assert_eq!(outcome.quality.max_level(), RenderOpts::BROWNOUT_DEPTH);
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn brownout_without_pressure_is_pixel_identical_to_plain() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48);
        let tf = TransferFunction::grayscale();
        let o = opts(2);
        let reference = render(&vol, &cam, &tf, &o);
        let policy =
            ExecPolicy::brownout(cfg(2), sfc_harness::DeadlineBudget::none(), Some((0.0, 1.0)));
        let (img, outcome) =
            render_with_policy(&vol, &cam, &tf, &o, &policy, &FaultPlan::none()).unwrap();
        assert!(outcome.defects.is_clean());
        assert!(outcome.quality.is_full_quality(), "{}", outcome.quality);
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn invalid_step_is_a_config_error() {
        let vol = sphere_volume(8);
        let bad = RenderOpts {
            step: 0.0,
            ..opts(1)
        };
        let err = render_degraded(
            &vol,
            &camera(8, 16),
            &TransferFunction::fire(),
            &bad,
            &cfg(1),
            &FaultPlan::none(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SfcError::InvalidParameter { name: "step", .. }));
    }

    #[test]
    fn plain_policy_is_the_fast_renderer_with_a_clean_outcome() {
        let vol = sphere_volume(16);
        let cam = camera(16, 32);
        let tf = TransferFunction::fire();
        let o = opts(2);
        let reference = render(&vol, &cam, &tf, &o);
        let (img, outcome) =
            render_with_policy(&vol, &cam, &tf, &o, &ExecPolicy::Plain, &FaultPlan::none())
                .unwrap();
        assert!(outcome.defects.is_clean());
        assert_eq!(outcome.report.completed, 4); // 32/16 = 2x2 tiles
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn supervised_policy_isolates_tile_panics_without_repair() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48); // 3x3 tiles
        let tf = TransferFunction::grayscale();
        let o = opts(2);
        let faults = FaultPlan::none().with(4, FaultKind::Panic);
        let supervisor = SupervisorConfig {
            max_retries: 0,
            ..cfg(2)
        };
        let (_, outcome) = render_with_policy(
            &vol,
            &cam,
            &tf,
            &o,
            &ExecPolicy::Supervised(supervisor),
            &faults,
        )
        .unwrap();
        assert_eq!(outcome.defects.units(), vec![4]);
        assert!(!outcome.output_is_whole());
    }
}
