//! Graceful-degradation renderer: partial images + typed tile defects.
//!
//! [`render_degraded`] is the renderer-side twin of
//! `sfc_filters::try_bilateral3d_degraded`: the tile decomposition runs
//! under the supervised pool (panic isolation, watchdog deadlines with
//! cooperative cancellation, bounded retries); each tile is shaded into a
//! local buffer and committed to the framebuffer only after its cancel
//! token is checked, so an abandoned attempt never leaves a half-written
//! tile. Supervised failures become a typed
//! [`DefectMap`](sfc_harness::DefectMap) over tile ids, a post-run
//! validation scan (non-finite components, optional plausibility range)
//! feeds the same map, and a single-threaded repair pass re-renders every
//! defective tile with fault injection disabled. Raycasting is
//! deterministic, so a run whose map ends
//! [`is_whole`](sfc_harness::DefectMap::is_whole) is pixel-for-pixel
//! identical to a fault-free render.

use sfc_core::{image_tiles, SfcError, SfcResult, TileRect, Volume3};
use sfc_harness::{
    run_items_supervised_cancellable, scan_unit, DefectMap, DegradedOutcome, FaultPlan,
    SupervisorConfig,
};

use crate::camera::Camera;
use crate::image::Image;
use crate::ray::Aabb;
use crate::render::{shade_ray_counted, RenderOpts};
use crate::transfer::{Rgba, TransferFunction};

/// Wrapper making disjoint raw pixel writes shareable across threads.
struct PixelSlots(*mut Rgba);
unsafe impl Sync for PixelSlots {}

/// Poison a shaded tile the way [`sfc_harness::FaultKind::CorruptOutput`]
/// prescribes: alternate non-finite and absurd-but-finite pixels so both
/// arms of the validation scan are exercised.
fn poison(buf: &mut [Rgba]) {
    for (t, p) in buf.iter_mut().enumerate() {
        let v = if t % 2 == 0 { f32::NAN } else { 1e30 };
        *p = Rgba {
            r: v,
            g: v,
            b: v,
            a: v,
        };
    }
}

/// Shade every pixel of `tile` into `buf` (in [`TileRect::pixels`] order),
/// polling `keep_going` once per pixel. Returns `false` when aborted;
/// NaN-sample counts seen so far are flushed either way.
#[allow(clippy::too_many_arguments)]
fn shade_tile_into_buf<V: Volume3>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    bbox: &Aabb,
    tile: TileRect,
    buf: &mut Vec<Rgba>,
    mut keep_going: impl FnMut() -> bool,
) -> bool {
    buf.clear();
    let mut nan_seen = 0u64;
    let mut completed = true;
    for (x, y) in tile.pixels() {
        if !keep_going() {
            completed = false;
            break;
        }
        let ray = cam.ray_for_pixel(x, y);
        let (c, n) = shade_ray_counted(vol, tf, opts, &ray, bbox);
        nan_seen += n;
        buf.push(c);
    }
    crate::counters::record_nan_samples(nan_seen);
    completed
}

/// Render a full image under the supervised pool, returning the partial
/// framebuffer plus a typed [`DefectMap`] over tiles instead of failing
/// the frame.
///
/// `faults` scripts injected failures (pass [`FaultPlan::none`] for
/// production); `pixel_range` is the optional inclusive plausibility
/// interval for finite pixel components (front-to-back compositing of an
/// in-range transfer function keeps every component in `[0, 1]`). Errors
/// are returned only for invalid configuration — execution failures land
/// in the outcome.
pub fn render_degraded<V: Volume3 + Sync>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    cfg: &SupervisorConfig,
    faults: &FaultPlan,
    pixel_range: Option<(f32, f32)>,
) -> SfcResult<(Image, DegradedOutcome)> {
    if opts.step <= 0.0 || !opts.step.is_finite() {
        return Err(SfcError::InvalidParameter {
            name: "step",
            reason: format!("ray step must be positive and finite, got {}", opts.step),
        });
    }
    let (w, h) = (cam.width(), cam.height());
    let tiles = image_tiles(w, h, opts.tile, opts.tile);
    let ntiles = tiles.len();
    let bbox = Aabb::of_dims(vol.dims());
    let mut img = Image::new(w, h);

    // Phase 1: supervised tile rendering with buffered commit. The raw
    // framebuffer pointer lives only for this phase.
    let report = {
        let slots = PixelSlots(img.pixels_mut().as_mut_ptr());
        let slots = &slots;
        run_items_supervised_cancellable(cfg, ntiles, |_tid, t, token| {
            faults.fire_cancellable(t, token)?;
            let tile = tiles[t];
            let mut buf = Vec::with_capacity(tile.area());
            let done = shade_tile_into_buf(vol, cam, tf, opts, &bbox, tile, &mut buf, || {
                !token.is_cancelled()
            });
            if !done {
                return Err(SfcError::Cancelled { item: t });
            }
            token.bail(t)?;
            if faults.corrupts(t) {
                poison(&mut buf);
            }
            for ((x, y), &c) in tile.pixels().zip(buf.iter()) {
                // SAFETY: tiles partition the image, so each (x, y) is
                // written by exactly one item; concurrent attempts at the
                // *same* tile write identical bytes (deterministic
                // raycaster); index < w*h by TileRect construction.
                unsafe { *slots.0.add(y * w + x) = c };
            }
            Ok(())
        })
    };

    // Phase 2: typed defects from execution failures + validation scan.
    let mut defects = DefectMap::from_run_report("tile", ntiles, &report);
    let failed: Vec<usize> = defects.units();
    for (t, tile) in tiles.iter().enumerate() {
        if failed.binary_search(&t).is_ok() {
            continue; // already defective; its content is a placeholder
        }
        scan_unit(
            &mut defects,
            t,
            tile.pixels().flat_map(|(x, y)| {
                let p = img.get(x, y);
                [p.r, p.g, p.b, p.a]
            }),
            pixel_range,
        );
    }

    // Phase 3: single-threaded repair with faults disabled, then rescan.
    for t in defects.units() {
        let tile = tiles[t];
        let mut buf = Vec::with_capacity(tile.area());
        shade_tile_into_buf(vol, cam, tf, opts, &bbox, tile, &mut buf, || true);
        for ((x, y), &c) in tile.pixels().zip(buf.iter()) {
            img.set(x, y, c);
        }
        let mut rescan = DefectMap::new("tile", ntiles);
        let dirty = scan_unit(
            &mut rescan,
            t,
            buf.iter().flat_map(|p| [p.r, p.g, p.b, p.a]),
            pixel_range,
        );
        if dirty {
            defects.merge(rescan); // genuinely bad data (e.g. NaN volume)
        } else {
            defects.mark_repaired(t);
        }
    }

    Ok((img, DegradedOutcome { report, defects }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Projection;
    use crate::render::render;
    use crate::vec3::vec3;
    use sfc_core::{Dims3, FnVolume};
    use sfc_harness::FaultKind;
    use std::time::Duration;

    fn sphere_volume(n: usize) -> FnVolume<impl Fn(usize, usize, usize) -> f32> {
        let c = n as f32 / 2.0;
        let r = n as f32 / 4.0;
        FnVolume::new(Dims3::cube(n), move |i, j, k| {
            let d2 = (i as f32 + 0.5 - c).powi(2)
                + (j as f32 + 0.5 - c).powi(2)
                + (k as f32 + 0.5 - c).powi(2);
            if d2 < r * r {
                1.0
            } else {
                0.0
            }
        })
    }

    fn camera(n: usize, px: usize) -> Camera {
        Camera::look_at(
            vec3(n as f32 * 3.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            px,
            px,
        )
    }

    fn cfg(nthreads: usize) -> SupervisorConfig {
        SupervisorConfig {
            nthreads,
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            timeout: Some(Duration::from_millis(1000)),
            watchdog_poll: Duration::from_millis(2),
            ..Default::default()
        }
    }

    fn opts(nthreads: usize) -> RenderOpts {
        RenderOpts {
            nthreads,
            tile: 16,
            ..Default::default()
        }
    }

    #[test]
    fn fault_free_degraded_render_matches_plain_render() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48);
        let tf = TransferFunction::fire();
        let o = opts(4);
        let reference = render(&vol, &cam, &tf, &o);
        let (img, outcome) = render_degraded(
            &vol,
            &cam,
            &tf,
            &o,
            &cfg(4),
            &FaultPlan::none(),
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert!(outcome.defects.is_clean());
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn injected_tile_faults_are_repaired_to_identical_pixels() {
        let vol = sphere_volume(16);
        let cam = camera(16, 48); // 48/16 = 3x3 = 9 tiles
        let tf = TransferFunction::grayscale();
        let o = opts(3);
        let reference = render(&vol, &cam, &tf, &o);
        let faults = FaultPlan::none()
            .with(0, FaultKind::Panic)
            .with(3, FaultKind::CorruptOutput)
            .with(5, FaultKind::Stall(Duration::from_secs(10)))
            .with(7, FaultKind::FailFirst(9));
        let (img, outcome) = render_degraded(
            &vol,
            &cam,
            &tf,
            &o,
            &cfg(3),
            &faults,
            Some((0.0, 1.0)),
        )
        .unwrap();
        assert_eq!(outcome.defects.units(), vec![0, 3, 5, 7]);
        assert!(outcome.output_is_whole(), "{}", outcome.defects);
        assert_eq!(img.pixels(), reference.pixels());
    }

    #[test]
    fn invalid_step_is_a_config_error() {
        let vol = sphere_volume(8);
        let bad = RenderOpts {
            step: 0.0,
            ..opts(1)
        };
        let err = render_degraded(
            &vol,
            &camera(8, 16),
            &TransferFunction::fire(),
            &bad,
            &cfg(1),
            &FaultPlan::none(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SfcError::InvalidParameter { name: "step", .. }));
    }
}
