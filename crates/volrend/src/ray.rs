//! Rays and ray–box intersection (slab method).

use crate::vec3::Vec3;

/// A half-line `origin + t * dir`, `t >= 0`. `dir` need not be unit length
/// (parametric distances are in units of `|dir|`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Starting point.
    pub origin: Vec3,
    /// Direction.
    pub dir: Vec3,
}

impl Ray {
    /// Point at parameter `t`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// An axis-aligned box `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// The volume box of a grid with the given dimensions: `[0, n]` per axis.
    pub fn of_dims(dims: sfc_core::Dims3) -> Self {
        Aabb {
            min: Vec3::ZERO,
            max: crate::vec3::vec3(dims.nx as f32, dims.ny as f32, dims.nz as f32),
        }
    }

    /// Geometric center of the box.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Length of the box's main diagonal — the longest possible in-box
    /// ray span. The brownout ladder clamps its coarsened ray step to
    /// this, so even the deepest rung marches at least one sample through
    /// the volume instead of stepping clean over it.
    pub fn diagonal(&self) -> f32 {
        let d = self.max - self.min;
        (d.x * d.x + d.y * d.y + d.z * d.z).sqrt()
    }

    /// Slab-method intersection: returns the entry/exit parameters
    /// `(t_near, t_far)` clipped to `t >= 0`, or `None` if the ray misses.
    pub fn intersect(&self, ray: &Ray) -> Option<(f32, f32)> {
        let mut t0 = 0.0f32;
        let mut t1 = f32::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (ray.origin.x, ray.dir.x, self.min.x, self.max.x),
                1 => (ray.origin.y, ray.dir.y, self.min.y, self.max.y),
                _ => (ray.origin.z, ray.dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
                continue;
            }
            let inv = 1.0 / d;
            let (mut ta, mut tb) = ((lo - o) * inv, (hi - o) * inv);
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return None;
            }
        }
        Some((t0, t1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::vec3;

    fn unit_box() -> Aabb {
        Aabb {
            min: Vec3::ZERO,
            max: vec3(1.0, 1.0, 1.0),
        }
    }

    #[test]
    fn straight_hit() {
        let r = Ray {
            origin: vec3(-1.0, 0.5, 0.5),
            dir: vec3(1.0, 0.0, 0.0),
        };
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
        assert_eq!(r.at(t0), vec3(0.0, 0.5, 0.5));
    }

    #[test]
    fn miss() {
        let r = Ray {
            origin: vec3(-1.0, 2.0, 0.5),
            dir: vec3(1.0, 0.0, 0.0),
        };
        assert!(unit_box().intersect(&r).is_none());
    }

    #[test]
    fn origin_inside_clips_to_zero() {
        let r = Ray {
            origin: vec3(0.5, 0.5, 0.5),
            dir: vec3(0.0, 0.0, 1.0),
        };
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn box_behind_ray_misses() {
        let r = Ray {
            origin: vec3(2.0, 0.5, 0.5),
            dir: vec3(1.0, 0.0, 0.0),
        };
        assert!(unit_box().intersect(&r).is_none());
    }

    #[test]
    fn diagonal_hit() {
        let r = Ray {
            origin: vec3(-1.0, -1.0, -1.0),
            dir: vec3(1.0, 1.0, 1.0),
        };
        let (t0, t1) = unit_box().intersect(&r).unwrap();
        assert!((t0 - 1.0).abs() < 1e-6);
        assert!((t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_ray_inside_slab() {
        let r = Ray {
            origin: vec3(-1.0, 0.5, 0.5),
            dir: vec3(1.0, 0.0, 0.0),
        };
        // y and z slabs are degenerate (dir components zero) but origin is
        // inside them, so the intersection succeeds.
        assert!(unit_box().intersect(&r).is_some());
    }

    #[test]
    fn aabb_of_dims_and_center() {
        let b = Aabb::of_dims(sfc_core::Dims3::new(4, 8, 2));
        assert_eq!(b.max, vec3(4.0, 8.0, 2.0));
        assert_eq!(b.center(), vec3(2.0, 4.0, 1.0));
    }

    #[test]
    fn diagonal_is_the_corner_to_corner_length() {
        let b = Aabb::of_dims(sfc_core::Dims3::new(3, 4, 12));
        assert!((b.diagonal() - 13.0).abs() < 1e-6);
    }
}
