//! Float RGBA framebuffer.

use crate::transfer::Rgba;

/// A `width × height` RGBA float image, row-major from the top-left.
#[derive(Debug, Clone)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Rgba>,
}

impl Image {
    /// Transparent-black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Self {
            width,
            height,
            pixels: vec![Rgba::default(); width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read pixel `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgba {
        self.pixels[y * self.width + x]
    }

    /// Write pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgba) {
        self.pixels[y * self.width + x] = c;
    }

    /// Raw pixel slice (row-major).
    pub fn pixels(&self) -> &[Rgba] {
        &self.pixels
    }

    /// Mutable raw pixel slice.
    pub fn pixels_mut(&mut self) -> &mut [Rgba] {
        &mut self.pixels
    }

    /// Convert to interleaved 8-bit RGB over `background` (composite
    /// `c + (1-a) * background`, then clamp).
    pub fn to_rgb8(&self, background: [f32; 3]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            let rest = 1.0 - p.a;
            for (c, bg) in [(p.r, background[0]), (p.g, background[1]), (p.b, background[2])]
            {
                let v = c + rest * bg;
                out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Mean opacity over all pixels — a cheap scalar fingerprint used by
    /// tests to compare renders.
    pub fn mean_alpha(&self) -> f32 {
        self.pixels.iter().map(|p| p.a).sum::<f32>() / self.pixels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::rgba;

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, rgba(0.5, 0.25, 1.0, 0.75));
        assert_eq!(img.get(2, 1), rgba(0.5, 0.25, 1.0, 0.75));
        assert_eq!(img.get(0, 0), Rgba::default());
    }

    #[test]
    fn rgb8_composites_over_background() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, rgba(0.5, 0.0, 0.0, 0.5)); // premult-style red at 50%
        let rgb = img.to_rgb8([0.0, 0.0, 1.0]); // blue background
        assert_eq!(rgb, vec![128, 0, 128]);
    }

    #[test]
    fn empty_image_is_transparent() {
        let img = Image::new(8, 8);
        assert_eq!(img.mean_alpha(), 0.0);
        assert!(img.to_rgb8([0.0; 3]).iter().all(|&b| b == 0));
    }

    #[test]
    fn rgb8_clamps() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, rgba(2.0, -1.0, 0.0, 1.0));
        assert_eq!(img.to_rgb8([0.0; 3]), vec![255, 0, 0]);
    }
}
