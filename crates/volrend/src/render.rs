//! The raycasting renderer (paper §III-B).
//!
//! Image-order: the output image is divided into tiles (paper: 32×32,
//! chosen from their earlier tuning study); worker threads pull tiles from
//! a dynamic queue; each pixel's ray is marched front-to-back through the
//! volume with trilinear sampling, a transfer-function lookup per sample,
//! and early ray termination.

use sfc_core::{image_tiles, TileRect, Volume3};
use sfc_harness::{Executor, Schedule, WorkPlan};

use crate::camera::Camera;
use crate::image::Image;
use crate::ray::Aabb;
use crate::sampler::CellSampler;
use crate::transfer::{Rgba, TransferFunction};

/// Renderer options.
#[derive(Debug, Clone, Copy)]
pub struct RenderOpts {
    /// Ray step in voxel units (the paper integrates at sub-voxel steps).
    pub step: f32,
    /// Stop marching once accumulated opacity exceeds this.
    pub early_termination: f32,
    /// Tile edge in pixels (paper: 32).
    pub tile: usize,
    /// Worker threads.
    pub nthreads: usize,
    /// Tile scheduling (paper uses the dynamic worker pool).
    pub schedule: Schedule,
}

impl Default for RenderOpts {
    fn default() -> Self {
        Self {
            step: 0.5,
            early_termination: 0.98,
            tile: 32,
            nthreads: 1,
            schedule: Schedule::Dynamic,
        }
    }
}

impl RenderOpts {
    /// Deepest brownout ladder rung the renderer exposes (see
    /// [`RenderOpts::brownout`]); at level 3 a tile marches 8× fewer
    /// samples per ray.
    pub const BROWNOUT_DEPTH: u8 = 3;

    /// The render options at brownout ladder `level`: each rung doubles
    /// the ray step (halving the samples marched per ray) and lowers the
    /// early-ray-termination opacity threshold by 0.1 per level (floored
    /// at 0.5) so nearly-opaque rays quit sooner. Level 0 returns the
    /// options unchanged — full quality *is* rung 0.
    pub fn brownout(&self, level: u8) -> RenderOpts {
        if level == 0 {
            return *self;
        }
        let shift = u32::from(level.min(8));
        RenderOpts {
            step: self.step * (1u32 << shift) as f32,
            early_termination: (self.early_termination - 0.1 * f32::from(level)).max(0.5),
            ..*self
        }
    }
}

/// March one ray and return the composited color. `bbox` is the volume's
/// bounding box (`Aabb::of_dims(vol.dims())`), hoisted to the caller so
/// per-tile/per-frame loops build it once instead of once per ray.
pub fn shade_ray<V: Volume3>(
    vol: &V,
    tf: &TransferFunction,
    opts: &RenderOpts,
    ray: &crate::ray::Ray,
    bbox: &Aabb,
) -> Rgba {
    let (color, nan_seen) = shade_ray_counted(vol, tf, opts, ray, bbox);
    crate::counters::record_nan_samples(nan_seen);
    color
}

/// [`shade_ray`] without the counter flush: returns the composited color
/// and the ray's NaN-substitution count, letting tile loops batch the
/// shared-atomic update once per tile.
pub(crate) fn shade_ray_counted<V: Volume3>(
    vol: &V,
    tf: &TransferFunction,
    opts: &RenderOpts,
    ray: &crate::ray::Ray,
    bbox: &Aabb,
) -> (Rgba, u64) {
    let Some((t0, t1)) = bbox.intersect(ray) else {
        return (Rgba::default(), 0);
    };
    // One cached-cell sampler per ray: at sub-voxel steps consecutive
    // samples usually stay in the same trilinear cell and skip all reads.
    let mut sampler = CellSampler::new(vol);
    let color = march_ray(&mut sampler, tf, opts, ray, t0, t1);
    (color, sampler.take_nan_count())
}

/// [`shade_ray`] through an *uncached* [`CellSampler`]: every sample
/// re-fetches its cell's 8 corners, so on a volume using the default
/// per-`get` [`Volume3::cell_corners`] (the counter simulation's
/// `TracedGrid`) the access stream is the original 8 `get`s per sample —
/// same taps, same order, clamped duplicates included. The composited
/// color is bit-identical to [`shade_ray`]; only the read stream differs.
/// Used by `counters::simulate_render_counters` so simulated address
/// streams stay comparable across PRs and with the paper's per-sample
/// methodology.
pub(crate) fn shade_ray_replay<V: Volume3>(
    vol: &V,
    tf: &TransferFunction,
    opts: &RenderOpts,
    ray: &crate::ray::Ray,
    bbox: &Aabb,
) -> Rgba {
    let Some((t0, t1)) = bbox.intersect(ray) else {
        return Rgba::default();
    };
    let mut sampler = CellSampler::uncached(vol);
    let color = march_ray(&mut sampler, tf, opts, ray, t0, t1);
    crate::counters::record_nan_samples(sampler.take_nan_count());
    color
}

/// Front-to-back integration loop shared by the native and
/// simulation-replay shading paths: marches `ray` over `[t0, t1)`,
/// reading the field through `sampler`.
fn march_ray<V: Volume3>(
    sampler: &mut CellSampler<'_, V>,
    tf: &TransferFunction,
    opts: &RenderOpts,
    ray: &crate::ray::Ray,
    t0: f32,
    t1: f32,
) -> Rgba {
    let mut color = Rgba::default();
    let mut t = t0 + opts.step * 0.5;
    while t < t1 {
        let p = ray.at(t);
        let v = sampler.sample(p);
        let s = tf.sample(v);
        if s.a > 0.0 {
            // Opacity correction for the step length (reference step = 1 voxel).
            let a = 1.0 - (1.0 - s.a).powf(opts.step);
            let w = (1.0 - color.a) * a;
            color.r += w * s.r;
            color.g += w * s.g;
            color.b += w * s.b;
            color.a += w;
            if color.a >= opts.early_termination {
                break;
            }
        }
        t += opts.step;
    }
    color
}

/// Render every pixel of `tile`, delivering results through `put(x, y, c)`.
/// This is the unit of work both the native parallel driver and the
/// counter simulation share. The bounding box is computed once per tile
/// and NaN counts are flushed once per tile.
pub fn render_tile<V: Volume3>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
    tile: TileRect,
    mut put: impl FnMut(usize, usize, Rgba),
) {
    let bbox = Aabb::of_dims(vol.dims());
    let mut nan_seen = 0u64;
    for (x, y) in tile.pixels() {
        let ray = cam.ray_for_pixel(x, y);
        let (c, n) = shade_ray_counted(vol, tf, opts, &ray, &bbox);
        nan_seen += n;
        put(x, y, c);
    }
    crate::counters::record_nan_samples(nan_seen);
}

/// Wrapper making disjoint raw pixel writes shareable across threads.
struct PixelSlots(*mut Rgba);
unsafe impl Sync for PixelSlots {}

/// Render a full image with the tile-parallel worker pool.
pub fn render<V: Volume3 + Sync>(
    vol: &V,
    cam: &Camera,
    tf: &TransferFunction,
    opts: &RenderOpts,
) -> Image {
    let (w, h) = (cam.width(), cam.height());
    let tiles = image_tiles(w, h, opts.tile, opts.tile);
    let mut img = Image::new(w, h);
    let slots = PixelSlots(img.pixels_mut().as_mut_ptr());
    let slots = &slots;
    let plan = WorkPlan::from_schedule(tiles.len(), opts.schedule);
    Executor::new(opts.nthreads).run(&plan, |_tid, t| {
        render_tile(vol, cam, tf, opts, tiles[t], |x, y, c| {
            // SAFETY: tiles partition the image, so each (x, y) is written
            // exactly once; index < w*h by TileRect construction.
            unsafe { *slots.0.add(y * w + x) = c };
        });
    });
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::{orbit_viewpoints, Projection};
    use crate::vec3::vec3;
    use sfc_core::{Dims3, FnVolume, Grid3, ArrayOrder3, ZOrder3};

    fn sphere_volume(n: usize) -> FnVolume<impl Fn(usize, usize, usize) -> f32> {
        let c = n as f32 / 2.0;
        let r = n as f32 / 4.0;
        FnVolume::new(Dims3::cube(n), move |i, j, k| {
            let d2 = (i as f32 + 0.5 - c).powi(2)
                + (j as f32 + 0.5 - c).powi(2)
                + (k as f32 + 0.5 - c).powi(2);
            if d2 < r * r {
                1.0
            } else {
                0.0
            }
        })
    }

    fn camera(n: usize, px: usize) -> Camera {
        Camera::look_at(
            vec3(n as f32 * 3.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(n as f32 / 2.0, n as f32 / 2.0, n as f32 / 2.0),
            vec3(0.0, 1.0, 0.0),
            Projection::Perspective {
                fov_y: 40f32.to_radians(),
            },
            px,
            px,
        )
    }

    #[test]
    fn replay_path_issues_eight_gets_per_sample_and_matches_shade_ray() {
        // The counter sim's replay path must reproduce the per-sample
        // stream (8 gets per sample through the default cell_corners)
        // while compositing the exact same color as the cached path.
        let vol = sphere_volume(16);
        let gets = std::cell::Cell::new(0u64);
        let counting = FnVolume::new(vol.dims(), |i, j, k| {
            gets.set(gets.get() + 1);
            vol.get(i, j, k)
        });
        let cam = camera(16, 24);
        let tf = TransferFunction::fire();
        let opts = RenderOpts::default();
        let bbox = Aabb::of_dims(vol.dims());
        let mut replay_gets = 0u64;
        let mut cached_gets = 0u64;
        for (x, y) in [(12usize, 12usize), (8, 14), (15, 6)] {
            let ray = cam.ray_for_pixel(x, y);
            gets.set(0);
            let a = shade_ray_replay(&counting, &tf, &opts, &ray, &bbox);
            replay_gets += gets.get();
            gets.set(0);
            let b = shade_ray(&counting, &tf, &opts, &ray, &bbox);
            cached_gets += gets.get();
            assert_eq!(a, b, "replay and cached colors must match at ({x},{y})");
        }
        assert!(replay_gets > 0);
        assert_eq!(replay_gets % 8, 0, "replay must read 8 corners per sample");
        assert!(
            cached_gets < replay_gets,
            "cached path must elide reads ({cached_gets} vs {replay_gets})"
        );
    }

    #[test]
    fn sphere_appears_in_image_center_not_corners() {
        let vol = sphere_volume(32);
        let img = render(
            &vol,
            &camera(32, 64),
            &TransferFunction::grayscale(),
            &RenderOpts::default(),
        );
        assert!(img.get(32, 32).a > 0.1, "center must see the sphere");
        assert_eq!(img.get(0, 0).a, 0.0, "corners see empty space");
        assert_eq!(img.get(63, 63).a, 0.0);
    }

    #[test]
    fn thread_count_does_not_change_the_image() {
        let vol = sphere_volume(16);
        let tf = TransferFunction::fire();
        let o1 = RenderOpts {
            nthreads: 1,
            ..Default::default()
        };
        let o8 = RenderOpts {
            nthreads: 8,
            ..Default::default()
        };
        let a = render(&vol, &camera(16, 48), &tf, &o1);
        let b = render(&vol, &camera(16, 48), &tf, &o8);
        for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn schedule_does_not_change_the_image() {
        let vol = sphere_volume(16);
        let tf = TransferFunction::grayscale();
        let stat = RenderOpts {
            nthreads: 4,
            schedule: Schedule::StaticRoundRobin,
            ..Default::default()
        };
        let dyna = RenderOpts {
            nthreads: 4,
            schedule: Schedule::Dynamic,
            ..Default::default()
        };
        let a = render(&vol, &camera(16, 33), &tf, &stat);
        let b = render(&vol, &camera(16, 33), &tf, &dyna);
        for (pa, pb) in a.pixels().iter().zip(b.pixels()) {
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn layout_does_not_change_the_image() {
        let dims = Dims3::cube(16);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| ((v * 2654435761) % 997) as f32 / 997.0)
            .collect();
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z = Grid3::<f32, ZOrder3>::from_row_major(dims, &values);
        let tf = TransferFunction::fire();
        let opts = RenderOpts {
            nthreads: 2,
            ..Default::default()
        };
        let cam = camera(16, 40);
        let ia = render(&a, &cam, &tf, &opts);
        let iz = render(&z, &cam, &tf, &opts);
        for (pa, pb) in ia.pixels().iter().zip(iz.pixels()) {
            assert_eq!(pa, pb, "same data, same rays => identical image");
        }
    }

    #[test]
    fn empty_volume_renders_transparent() {
        let vol = FnVolume::new(Dims3::cube(8), |_, _, _| 0.0);
        let img = render(
            &vol,
            &camera(8, 16),
            &TransferFunction::fire(),
            &RenderOpts::default(),
        );
        assert_eq!(img.mean_alpha(), 0.0);
    }

    #[test]
    fn early_termination_caps_opacity() {
        let vol = FnVolume::new(Dims3::cube(16), |_, _, _| 1.0); // fully hot
        let img = render(
            &vol,
            &camera(16, 8),
            &TransferFunction::fire(),
            &RenderOpts::default(),
        );
        let c = img.get(4, 4);
        assert!(c.a >= 0.9 && c.a <= 1.0, "opaque but bounded: {}", c.a);
    }

    #[test]
    fn orbit_views_all_see_the_sphere() {
        let vol = sphere_volume(24);
        let center = vec3(12.0, 12.0, 12.0);
        let cams = orbit_viewpoints(
            8,
            center,
            60.0,
            Projection::Perspective {
                fov_y: 35f32.to_radians(),
            },
            32,
            32,
        );
        for (v, cam) in cams.iter().enumerate() {
            let img = render(&vol, cam, &TransferFunction::grayscale(), &RenderOpts::default());
            assert!(
                img.get(16, 16).a > 0.05,
                "viewpoint {v} must see the sphere"
            );
        }
    }
}
