//! Property tests for the raycaster: compositing laws, geometric
//! invariants, and layout/schedule independence.

use proptest::prelude::*;
use sfc_core::{ArrayOrder3, Dims3, FnVolume, Grid3, ZOrder3};
use sfc_volrend::{
    orbit_viewpoints, render, sample_trilinear, shade_ray, vec3, Aabb, Camera, Projection,
    Ray, RenderOpts, TransferFunction, Vec3,
};

fn unit_dir() -> impl Strategy<Value = Vec3> {
    (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0)
        .prop_filter("nonzero", |(x, y, z)| x * x + y * y + z * z > 1e-3)
        .prop_map(|(x, y, z)| vec3(x, y, z).normalized())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ray_box_entry_before_exit(ox in -50.0f32..50.0, oy in -50.0f32..50.0, oz in -50.0f32..50.0, d in unit_dir()) {
        let b = Aabb { min: Vec3::ZERO, max: vec3(16.0, 16.0, 16.0) };
        let r = Ray { origin: vec3(ox, oy, oz), dir: d };
        if let Some((t0, t1)) = b.intersect(&r) {
            prop_assert!(t0 <= t1);
            prop_assert!(t0 >= 0.0);
            // Entry and exit points are on (or inside) the box surface.
            for t in [t0, t1] {
                let p = r.at(t);
                prop_assert!(p.x >= -1e-3 && p.x <= 16.001);
                prop_assert!(p.y >= -1e-3 && p.y <= 16.001);
                prop_assert!(p.z >= -1e-3 && p.z <= 16.001);
            }
        }
    }

    #[test]
    fn trilinear_interpolates_within_local_extremes(px in 0.5f32..7.5, py in 0.5f32..7.5, pz in 0.5f32..7.5, seed in any::<u64>()) {
        let vol = FnVolume::new(Dims3::cube(8), move |i, j, k| {
            let mut h = seed ^ ((i * 64 + j * 8 + k) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            h ^= h >> 33;
            (h % 997) as f32 / 997.0
        });
        let s = sample_trilinear(&vol, vec3(px, py, pz));
        prop_assert!((0.0..=1.0).contains(&s), "interpolant escaped value range: {s}");
    }

    #[test]
    fn shaded_alpha_in_unit_interval(d in unit_dir()) {
        let vol = FnVolume::new(Dims3::cube(8), |i, j, k| ((i + j + k) % 5) as f32 / 4.0);
        let tf = TransferFunction::fire();
        let opts = RenderOpts::default();
        let ray = Ray { origin: vec3(4.0, 4.0, 4.0) - d * 30.0, dir: d };
        let c = shade_ray(&vol, &tf, &opts, &ray);
        prop_assert!((0.0..=1.0).contains(&c.a));
        for ch in [c.r, c.g, c.b] {
            prop_assert!((0.0..=1.0 + 1e-5).contains(&ch));
        }
    }

    #[test]
    fn empty_volume_shades_to_nothing(d in unit_dir()) {
        let vol = FnVolume::new(Dims3::cube(8), |_, _, _| 0.0);
        let tf = TransferFunction::fire();
        let ray = Ray { origin: vec3(4.0, 4.0, 4.0) - d * 30.0, dir: d };
        let c = shade_ray(&vol, &tf, &RenderOpts::default(), &ray);
        prop_assert_eq!(c.a, 0.0);
    }

    #[test]
    fn render_is_layout_and_threads_invariant(seed in any::<u64>(), view in 0usize..8, threads in 1usize..5) {
        let dims = Dims3::cube(8);
        let values: Vec<f32> = (0..dims.len()).map(|v| {
            let mut h = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            (h % 991) as f32 / 991.0
        }).collect();
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let cams = orbit_viewpoints(8, vec3(4.0, 4.0, 4.0), 20.0,
            Projection::Perspective { fov_y: 0.7 }, 16, 16);
        let tf = TransferFunction::fire();
        let o1 = RenderOpts { nthreads: 1, ..Default::default() };
        let on = RenderOpts { nthreads: threads, ..Default::default() };
        let ia = render(&a, &cams[view], &tf, &o1);
        let iz = render(&z, &cams[view], &tf, &on);
        prop_assert_eq!(ia.pixels(), iz.pixels());
    }

    #[test]
    fn orthographic_rays_share_slope(px1 in 0usize..32, py1 in 0usize..32, px2 in 0usize..32, py2 in 0usize..32) {
        let cam = Camera::look_at(
            vec3(40.0, 16.0, 16.0), vec3(16.0, 16.0, 16.0), vec3(0.0, 1.0, 0.0),
            Projection::Orthographic { height: 32.0 }, 32, 32,
        );
        let r1 = cam.ray_for_pixel(px1, py1);
        let r2 = cam.ray_for_pixel(px2, py2);
        prop_assert_eq!(r1.dir, r2.dir);
    }
}
