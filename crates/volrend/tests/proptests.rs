//! Property-style tests for the raycaster: compositing laws, geometric
//! invariants, and layout/schedule independence. Seeded deterministic
//! sweeps (no external property-testing dependency).

use sfc_core::{ArrayOrder3, Dims3, FnVolume, Grid3, SplitMix64, ZOrder3};
use sfc_volrend::{
    orbit_viewpoints, render, sample_trilinear, shade_ray, vec3, Aabb, Camera, Projection,
    Ray, RenderOpts, TransferFunction, Vec3,
};

fn unit_dir(rng: &mut SplitMix64) -> Vec3 {
    loop {
        let (x, y, z) = (
            rng.f32_in(-1.0, 1.0),
            rng.f32_in(-1.0, 1.0),
            rng.f32_in(-1.0, 1.0),
        );
        if x * x + y * y + z * z > 1e-3 {
            return vec3(x, y, z).normalized();
        }
    }
}

#[test]
fn ray_box_entry_before_exit() {
    let mut rng = SplitMix64::new(0x5001);
    for _ in 0..256 {
        let b = Aabb {
            min: Vec3::ZERO,
            max: vec3(16.0, 16.0, 16.0),
        };
        let origin = vec3(
            rng.f32_in(-50.0, 50.0),
            rng.f32_in(-50.0, 50.0),
            rng.f32_in(-50.0, 50.0),
        );
        let r = Ray {
            origin,
            dir: unit_dir(&mut rng),
        };
        if let Some((t0, t1)) = b.intersect(&r) {
            assert!(t0 <= t1);
            assert!(t0 >= 0.0);
            // Entry and exit points are on (or inside) the box surface.
            for t in [t0, t1] {
                let p = r.at(t);
                assert!(p.x >= -1e-3 && p.x <= 16.001);
                assert!(p.y >= -1e-3 && p.y <= 16.001);
                assert!(p.z >= -1e-3 && p.z <= 16.001);
            }
        }
    }
}

#[test]
fn trilinear_interpolates_within_local_extremes() {
    let mut rng = SplitMix64::new(0x5002);
    for _ in 0..64 {
        let seed = rng.next_u64();
        let vol = FnVolume::new(Dims3::cube(8), move |i, j, k| {
            let mut h = seed ^ ((i * 64 + j * 8 + k) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
            h ^= h >> 33;
            (h % 997) as f32 / 997.0
        });
        let p = vec3(
            rng.f32_in(0.5, 7.5),
            rng.f32_in(0.5, 7.5),
            rng.f32_in(0.5, 7.5),
        );
        let s = sample_trilinear(&vol, p);
        assert!((0.0..=1.0).contains(&s), "interpolant escaped value range: {s}");
    }
}

#[test]
fn shaded_alpha_in_unit_interval() {
    let mut rng = SplitMix64::new(0x5003);
    for _ in 0..64 {
        let d = unit_dir(&mut rng);
        let vol = FnVolume::new(Dims3::cube(8), |i, j, k| ((i + j + k) % 5) as f32 / 4.0);
        let tf = TransferFunction::fire();
        let opts = RenderOpts::default();
        let ray = Ray {
            origin: vec3(4.0, 4.0, 4.0) - d * 30.0,
            dir: d,
        };
        let c = shade_ray(&vol, &tf, &opts, &ray, &Aabb::of_dims(Dims3::cube(8)));
        assert!((0.0..=1.0).contains(&c.a));
        for ch in [c.r, c.g, c.b] {
            assert!((0.0..=1.0 + 1e-5).contains(&ch));
        }
    }
}

#[test]
fn empty_volume_shades_to_nothing() {
    let mut rng = SplitMix64::new(0x5004);
    for _ in 0..64 {
        let d = unit_dir(&mut rng);
        let vol = FnVolume::new(Dims3::cube(8), |_, _, _| 0.0);
        let tf = TransferFunction::fire();
        let ray = Ray {
            origin: vec3(4.0, 4.0, 4.0) - d * 30.0,
            dir: d,
        };
        let c = shade_ray(&vol, &tf, &RenderOpts::default(), &ray, &Aabb::of_dims(Dims3::cube(8)));
        assert_eq!(c.a, 0.0);
    }
}

#[test]
fn render_is_layout_and_threads_invariant() {
    let mut rng = SplitMix64::new(0x5005);
    for _ in 0..8 {
        let dims = Dims3::cube(8);
        let seed = rng.next_u64();
        let view = rng.usize_in(0, 8);
        let threads = rng.usize_in(1, 5);
        let values: Vec<f32> = (0..dims.len())
            .map(|v| {
                let mut h = seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 29;
                (h % 991) as f32 / 991.0
            })
            .collect();
        let a = Grid3::<f32, ArrayOrder3>::from_row_major(dims, &values);
        let z: Grid3<f32, ZOrder3> = a.convert();
        let cams = orbit_viewpoints(
            8,
            vec3(4.0, 4.0, 4.0),
            20.0,
            Projection::Perspective { fov_y: 0.7 },
            16,
            16,
        );
        let tf = TransferFunction::fire();
        let o1 = RenderOpts {
            nthreads: 1,
            ..Default::default()
        };
        let on = RenderOpts {
            nthreads: threads,
            ..Default::default()
        };
        let ia = render(&a, &cams[view], &tf, &o1);
        let iz = render(&z, &cams[view], &tf, &on);
        assert_eq!(ia.pixels(), iz.pixels());
    }
}

#[test]
fn orthographic_rays_share_slope() {
    let mut rng = SplitMix64::new(0x5006);
    let cam = Camera::look_at(
        vec3(40.0, 16.0, 16.0),
        vec3(16.0, 16.0, 16.0),
        vec3(0.0, 1.0, 0.0),
        Projection::Orthographic { height: 32.0 },
        32,
        32,
    );
    for _ in 0..128 {
        let r1 = cam.ray_for_pixel(rng.usize_in(0, 32), rng.usize_in(0, 32));
        let r2 = cam.ray_for_pixel(rng.usize_in(0, 32), rng.usize_in(0, 32));
        assert_eq!(r1.dir, r2.dir);
    }
}
