//! Multi-tenant TCP volume service over the SFC execution engine.
//!
//! The service turns the repo's kernel drivers into a long-running,
//! fault-tolerant server: clients submit filter/render requests tagged
//! with a tenant id over a line-oriented TCP protocol ([`protocol`]);
//! admission is tenant-fair deficit round-robin with bounded queues and
//! in-flight quotas ([`scheduler`]); execution runs every request
//! through the engine's brownout stack with panic isolation, watchdog
//! timeouts, deadline budgets, and run-scoped cancellation
//! ([`service`]); identical queued requests coalesce behind a shared
//! layout-aware volume cache ([`cache`]); and the front end detects
//! client disconnects and drains gracefully on shutdown ([`net`]).
//!
//! See DESIGN.md §9 for the request-lifecycle state machine and the
//! README for a sample client session.

pub mod cache;
pub mod client;
pub mod dedup;
pub mod net;
pub mod protocol;
pub mod resilient;
pub mod scheduler;
pub mod service;

pub use cache::{CacheStats, CachedVolume, VolumeCache, VolumeKey};
pub use client::{CancelHandle, Client};
pub use dedup::{DedupCache, DedupStats};
pub use net::{handle_conn, Server, ServerConfig};
pub use protocol::{
    error_kind, error_kind_is_transient, f32_bytes, bytes_f32, LayoutChoice, OkHeader, OpKind,
    Request, RespHeader, MAX_BODY,
};
pub use resilient::{BreakerState, ReplicaSet, ResilientClient, RetryPolicy, SendOutcome};
pub use scheduler::{
    FairScheduler, Job, Overloaded, Response, SchedConfig, SchedStats, Ticket, Waiter,
};
pub use service::{
    filter_run, image_bytes, render_setup, Admission, DrainReport, Service, ServiceConfig,
};
