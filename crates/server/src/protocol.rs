//! Wire protocol of the volume service.
//!
//! A deliberately small, line-oriented protocol: every request is one
//! `\n`-terminated ASCII line (`<op> key=value ...`), every response is
//! one header line optionally followed by a length-prefixed binary body
//! (the header's `bytes=` field names the exact body length, so a reader
//! never needs a closing delimiter). The shapes:
//!
//! ```text
//! -> filter tenant=alice size=16 layout=z seed=7 radius=2
//! <- ok bytes=16384 completed=256 failed=0 retried=0 downgraded=0 \
//!       max_level=0 whole=1 cache=hit coalesced=0
//! <- <16384 raw little-endian f32 bytes>
//! ```
//!
//! Malformed requests are rejected with the [`SfcError`] taxonomy
//! (`err invalid-parameter: ...`), overload with a typed `overloaded`
//! line, and a drain-time shed with a typed `shed` line — a client can
//! always distinguish "you asked wrong", "come back later", and "the
//! server gave up on you" without parsing prose.

use std::time::Duration;

use sfc_core::{SfcError, SfcResult};
use sfc_harness::FaultRates;

/// Upper bound on a request line; longer lines are rejected before
/// parsing (a malformed or hostile client must not balloon memory).
pub const MAX_LINE: usize = 4096;
/// Upper bound on the cubic volume edge a request may name.
pub const MAX_SIZE: usize = 128;
/// Upper bound on the square image edge a render request may name.
pub const MAX_IMAGE: usize = 1024;
/// Upper bound on a response body a client will accept. The largest
/// legal reply is a `MAX_IMAGE`² RGBA f32 render (16 MiB); anything past
/// this is a corrupt or hostile header, refused before allocating.
pub const MAX_BODY: usize = MAX_IMAGE * MAX_IMAGE * 4 * 4;

/// The four memory layouts a request can ask the service to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutChoice {
    /// Row-major array order.
    Array,
    /// Morton (Z-order) curve.
    Z,
    /// Tiled (blocked) order.
    Tiled,
    /// Hilbert curve.
    Hilbert,
}

impl LayoutChoice {
    /// Every layout, in the order the paper tabulates them.
    pub const ALL: [LayoutChoice; 4] = [
        LayoutChoice::Array,
        LayoutChoice::Z,
        LayoutChoice::Tiled,
        LayoutChoice::Hilbert,
    ];

    /// The wire name (`array`, `z`, `tiled`, `hilbert`).
    pub fn name(self) -> &'static str {
        match self {
            LayoutChoice::Array => "array",
            LayoutChoice::Z => "z",
            LayoutChoice::Tiled => "tiled",
            LayoutChoice::Hilbert => "hilbert",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> SfcResult<Self> {
        match s {
            "array" => Ok(LayoutChoice::Array),
            "z" => Ok(LayoutChoice::Z),
            "tiled" => Ok(LayoutChoice::Tiled),
            "hilbert" => Ok(LayoutChoice::Hilbert),
            other => Err(SfcError::InvalidParameter {
                name: "layout",
                reason: format!("expected array|z|tiled|hilbert, got {other:?}"),
            }),
        }
    }
}

/// What a request asks the service to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// 3D bilateral filter over the whole volume (unit = voxel pencil).
    Filter {
        /// Stencil radius in voxels.
        radius: usize,
    },
    /// Raycast the volume into a square RGBA image (unit = pixel tile).
    Render {
        /// Output image edge in pixels.
        image: usize,
        /// Tile edge in pixels.
        tile: usize,
    },
}

impl OpKind {
    /// The wire name of the op (`filter` / `render`).
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Filter { .. } => "filter",
            OpKind::Render { .. } => "render",
        }
    }
}

/// One parsed, validated client request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Tenant the request is accounted to (fair-queueing key).
    pub tenant: String,
    /// The computation.
    pub op: OpKind,
    /// Cubic volume edge; the input volume is `size³` voxels.
    pub size: usize,
    /// Memory layout the input volume is held in.
    pub layout: LayoutChoice,
    /// Seed of the deterministic synthetic input volume.
    pub seed: u64,
    /// Optional wall-clock budget mapped to a
    /// [`DeadlineBudget`](sfc_harness::DeadlineBudget). The clock starts
    /// at admission: a request still queued past its budget is refused
    /// with a typed `expired` header instead of computed. Always `>= 1`
    /// when present (`deadline_ms=0` is rejected at parse time — a
    /// retrying client must treat a zero remaining budget as exhausted,
    /// never send it).
    pub deadline_ms: Option<u64>,
    /// Optional idempotency key: a client that retries tags every
    /// attempt of one logical request with the same `req_id`, and the
    /// server's dedup cache guarantees the side effects (`save=1`) are
    /// applied exactly once per `(tenant, req_id)` within the TTL.
    pub req_id: Option<String>,
    /// Which delivery attempt of the logical request this is (1-based;
    /// informational — the server counts `attempt>1` arrivals).
    pub attempt: u32,
    /// Optional fault injection (seed + per-unit rates) applied by the
    /// server while executing this request.
    pub faults: Option<(u64, FaultRates)>,
    /// Persist the result to the server's data directory via
    /// `write_atomic` semantics.
    pub save: bool,
}

fn bad(name: &'static str, reason: impl Into<String>) -> SfcError {
    SfcError::InvalidParameter {
        name,
        reason: reason.into(),
    }
}

fn parse_num<T: std::str::FromStr>(name: &'static str, v: &str) -> SfcResult<T> {
    v.parse()
        .map_err(|_| bad(name, format!("expected a number, got {v:?}")))
}

impl Request {
    /// Parse one request line (already stripped of its `\n`). Only
    /// `filter` and `render` lines reach here — control verbs (`ping`,
    /// `stats`, `shutdown`) are matched by the connection handler first.
    pub fn parse(line: &str) -> SfcResult<Request> {
        if line.len() > MAX_LINE {
            return Err(bad("request", format!("line exceeds {MAX_LINE} bytes")));
        }
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or_else(|| bad("request", "empty line"))?;

        let mut tenant = None;
        let mut size = 16usize;
        let mut layout = LayoutChoice::Z;
        let mut seed = 1u64;
        let mut radius = 1usize;
        let mut image = 32usize;
        let mut tile = 0usize; // 0 = derive from image below
        let mut deadline_ms = None;
        let mut fault_seed = None;
        let mut rates = FaultRates::default();
        let mut save = false;
        let mut req_id = None;
        let mut attempt = 1u32;

        for tok in tokens {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| bad("request", format!("expected key=value, got {tok:?}")))?;
            match key {
                "tenant" => tenant = Some(value.to_string()),
                "size" => size = parse_num("size", value)?,
                "layout" => layout = LayoutChoice::parse(value)?,
                "seed" => seed = parse_num("seed", value)?,
                "radius" => radius = parse_num("radius", value)?,
                "image" => image = parse_num("image", value)?,
                "tile" => tile = parse_num("tile", value)?,
                "deadline_ms" => deadline_ms = Some(parse_num("deadline_ms", value)?),
                "fault_seed" => fault_seed = Some(parse_num("fault_seed", value)?),
                "panic_rate" => rates.panic = parse_num("panic_rate", value)?,
                "flaky_rate" => rates.flaky = parse_num("flaky_rate", value)?,
                "timeout_rate" => rates.stall = parse_num("timeout_rate", value)?,
                "corrupt_rate" => rates.corrupt = parse_num("corrupt_rate", value)?,
                "stall_ms" => rates.stall_ms = parse_num("stall_ms", value)?,
                "save" => save = value == "1" || value == "true",
                "req_id" => req_id = Some(value.to_string()),
                "attempt" => attempt = parse_num("attempt", value)?,
                other => {
                    return Err(bad("request", format!("unknown key {other:?}")));
                }
            }
        }

        let tenant = tenant.ok_or_else(|| bad("tenant", "every request must name a tenant"))?;
        if tenant.is_empty() || tenant.len() > 64 || !tenant.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
            return Err(bad("tenant", "tenant must be 1..=64 chars of [A-Za-z0-9_-]"));
        }
        if let Some(id) = &req_id {
            if id.is_empty() || id.len() > 64 || !id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                return Err(bad("req_id", "req_id must be 1..=64 chars of [A-Za-z0-9_-]"));
            }
        }
        if attempt == 0 {
            return Err(bad("attempt", "attempts are 1-based; attempt=0 is meaningless"));
        }
        if deadline_ms == Some(0) {
            return Err(bad(
                "deadline_ms",
                "deadline_ms must be >= 1; a zero remaining budget is deadline exhaustion, not a request",
            ));
        }
        if size == 0 || size > MAX_SIZE {
            return Err(bad("size", format!("volume edge must be in 1..={MAX_SIZE}, got {size}")));
        }
        let op = match verb {
            "filter" => {
                if radius == 0 || radius >= size {
                    return Err(bad("radius", format!("stencil radius must be in 1..{size}, got {radius}")));
                }
                OpKind::Filter { radius }
            }
            "render" => {
                if image == 0 || image > MAX_IMAGE {
                    return Err(bad("image", format!("image edge must be in 1..={MAX_IMAGE}, got {image}")));
                }
                let tile = if tile == 0 { image.min(32) } else { tile };
                if tile > image {
                    return Err(bad("tile", format!("tile edge {tile} exceeds image edge {image}")));
                }
                OpKind::Render { image, tile }
            }
            other => {
                return Err(bad("request", format!("unknown op {other:?} (expected filter|render)")));
            }
        };
        let faults = fault_seed.map(|s| (s, rates));
        Ok(Request {
            tenant,
            op,
            size,
            layout,
            seed,
            deadline_ms,
            req_id,
            attempt,
            faults,
            save,
        })
    }

    /// Serialize back to one request line (inverse of [`Request::parse`]).
    pub fn format(&self) -> String {
        let mut line = String::new();
        match self.op {
            OpKind::Filter { radius } => {
                line.push_str(&format!("filter tenant={} radius={radius}", self.tenant));
            }
            OpKind::Render { image, tile } => {
                line.push_str(&format!("render tenant={} image={image} tile={tile}", self.tenant));
            }
        }
        line.push_str(&format!(
            " size={} layout={} seed={}",
            self.size,
            self.layout.name(),
            self.seed
        ));
        if let Some(ms) = self.deadline_ms {
            line.push_str(&format!(" deadline_ms={ms}"));
        }
        if let Some(id) = &self.req_id {
            line.push_str(&format!(" req_id={id}"));
        }
        if self.attempt != 1 {
            line.push_str(&format!(" attempt={}", self.attempt));
        }
        if let Some((fseed, r)) = self.faults {
            line.push_str(&format!(
                " fault_seed={fseed} panic_rate={} flaky_rate={} timeout_rate={} corrupt_rate={} stall_ms={}",
                r.panic, r.flaky, r.stall, r.corrupt, r.stall_ms
            ));
        }
        if self.save {
            line.push_str(" save=1");
        }
        line
    }

    /// The request's wall-clock budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// Key under which identical queued work coalesces: everything that
    /// determines the result bytes, and nothing that doesn't (tenant).
    /// `save` requests never coalesce — their side effect (one file per
    /// request) must happen once per request.
    pub fn work_key(&self) -> Option<String> {
        if self.save {
            return None;
        }
        let mut key = match self.op {
            OpKind::Filter { radius } => format!("filter r{radius}"),
            OpKind::Render { image, tile } => format!("render i{image} t{tile}"),
        };
        key.push_str(&format!(
            " n{} {} s{} d{:?} f{:?}",
            self.size,
            self.layout.name(),
            self.seed,
            self.deadline_ms,
            self.faults
        ));
        Some(key)
    }

    /// Nominal work-unit count of the request (pencils / tiles), used as
    /// the deficit-round-robin cost so a tenant's credit is charged in
    /// proportion to the compute it asks for.
    pub fn cost(&self) -> u64 {
        match self.op {
            // X-axis pencils over a cubic volume: one per (y, z) pair.
            OpKind::Filter { .. } => (self.size * self.size) as u64,
            OpKind::Render { image, tile } => {
                let t = image.div_ceil(tile);
                (t * t) as u64
            }
        }
    }
}

/// Map an [`SfcError`] to its wire kind (kebab-case variant name).
pub fn error_kind(err: &SfcError) -> &'static str {
    match err {
        SfcError::InvalidDims { .. } => "invalid-dims",
        SfcError::ShapeMismatch { .. } => "shape-mismatch",
        SfcError::SizeOverflow { .. } => "size-overflow",
        SfcError::InvalidParameter { .. } => "invalid-parameter",
        SfcError::Io { .. } => "io",
        SfcError::Corrupt { .. } => "corrupt",
        SfcError::WorkerPanic { .. } => "worker-panic",
        SfcError::Timeout { .. } => "timeout",
        SfcError::Cancelled { .. } => "cancelled",
        SfcError::NonFinite { .. } => "non-finite",
        _ => "error",
    }
}

/// Whether a wire `err` kind describes a *transient* failure a retrying
/// client may reasonably try again (on the same or another replica).
/// Deterministic rejections (`invalid-parameter`, `invalid-dims`, …)
/// would fail identically on every replica and must not be retried.
pub fn error_kind_is_transient(kind: &str) -> bool {
    matches!(
        kind,
        "worker-panic" | "timeout" | "cancelled" | "io" | "corrupt"
    )
}

/// Parsed response header line.
#[derive(Debug, Clone, PartialEq)]
pub enum RespHeader {
    /// Success; `bytes` of binary body follow the header line.
    Ok(OkHeader),
    /// The request failed with a typed error; no body.
    Err {
        /// Kebab-case [`SfcError`] kind (see [`error_kind`]).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The request was refused by admission control; no body.
    Overloaded {
        /// Tenant whose quota/queue refused the request.
        tenant: String,
        /// `queue-full` or `draining`.
        reason: String,
        /// Requests currently queued for the tenant.
        queued: usize,
        /// The tenant's bound (queue capacity or in-flight quota).
        limit: usize,
    },
    /// The request was shed mid-drain (accepted, then abandoned); no body.
    Shed {
        /// Why the request was shed.
        reason: String,
    },
    /// The request's deadline was already exhausted when a lane picked
    /// it up — no compute was spent on it; no body. A retrying client
    /// must treat this as deadline exhaustion, not a transient.
    Expired {
        /// The budget the request carried (`deadline_ms=`).
        deadline_ms: u64,
        /// How long the request had waited when the lane refused it.
        waited_ms: u64,
    },
}

/// The success header's fields — the request's execution report in
/// numbers, including the brownout/shed decisions
/// ([`downgraded`](OkHeader::downgraded), [`max_level`](OkHeader::max_level),
/// [`shed_units`](OkHeader::shed_units)) mirrored from the engine's
/// `QualityMap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OkHeader {
    /// Binary body length in bytes.
    pub bytes: usize,
    /// Units that completed.
    pub completed: usize,
    /// Units that exhausted their retry budget.
    pub failed: usize,
    /// Retry attempts scheduled.
    pub retried: usize,
    /// Units committed below full quality (QualityMap entries).
    pub downgraded: usize,
    /// Deepest brownout ladder level in the committed output.
    pub max_level: u8,
    /// Units shed past the hard deadline (recomputed coarsely by repair).
    pub shed_units: usize,
    /// Whether the output is whole (every defect repaired).
    pub whole: bool,
    /// Whether the input volume came from the shared cache.
    pub cache_hit: bool,
    /// How many *other* requests were answered by this same execution
    /// (cross-request coalescing).
    pub coalesced: usize,
    /// Whether this reply was served from the idempotency dedup cache
    /// (a retried `req_id` whose execution already completed).
    pub dedup: bool,
}

impl RespHeader {
    /// Serialize to one header line (no trailing newline).
    pub fn format(&self) -> String {
        match self {
            RespHeader::Ok(h) => format!(
                "ok bytes={} completed={} failed={} retried={} downgraded={} max_level={} shed_units={} whole={} cache={} coalesced={} dedup={}",
                h.bytes,
                h.completed,
                h.failed,
                h.retried,
                h.downgraded,
                h.max_level,
                h.shed_units,
                u8::from(h.whole),
                if h.cache_hit { "hit" } else { "miss" },
                h.coalesced,
                u8::from(h.dedup),
            ),
            RespHeader::Err { kind, message } => {
                format!("err {kind}: {}", message.replace('\n', " "))
            }
            RespHeader::Overloaded {
                tenant,
                reason,
                queued,
                limit,
            } => format!("overloaded tenant={tenant} reason={reason} queued={queued} limit={limit}"),
            RespHeader::Shed { reason } => format!("shed: {}", reason.replace('\n', " ")),
            RespHeader::Expired {
                deadline_ms,
                waited_ms,
            } => format!("expired deadline_ms={deadline_ms} waited_ms={waited_ms}"),
        }
    }

    /// Parse a header line (client side).
    pub fn parse(line: &str) -> SfcResult<RespHeader> {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("ok ") {
            let mut h = OkHeader::default();
            for tok in rest.split_ascii_whitespace() {
                let (key, value) = tok
                    .split_once('=')
                    .ok_or_else(|| bad("response", format!("bad ok field {tok:?}")))?;
                match key {
                    "bytes" => h.bytes = parse_num("bytes", value)?,
                    "completed" => h.completed = parse_num("completed", value)?,
                    "failed" => h.failed = parse_num("failed", value)?,
                    "retried" => h.retried = parse_num("retried", value)?,
                    "downgraded" => h.downgraded = parse_num("downgraded", value)?,
                    "max_level" => h.max_level = parse_num("max_level", value)?,
                    "shed_units" => h.shed_units = parse_num("shed_units", value)?,
                    "whole" => h.whole = value == "1",
                    "cache" => h.cache_hit = value == "hit",
                    "coalesced" => h.coalesced = parse_num("coalesced", value)?,
                    "dedup" => h.dedup = value == "1",
                    _ => {} // forward compatible: ignore unknown fields
                }
            }
            Ok(RespHeader::Ok(h))
        } else if let Some(rest) = line.strip_prefix("err ") {
            let (kind, message) = rest.split_once(": ").unwrap_or((rest, ""));
            Ok(RespHeader::Err {
                kind: kind.to_string(),
                message: message.to_string(),
            })
        } else if let Some(rest) = line.strip_prefix("overloaded ") {
            let mut tenant = String::new();
            let mut reason = String::new();
            let mut queued = 0;
            let mut limit = 0;
            for tok in rest.split_ascii_whitespace() {
                match tok.split_once('=') {
                    Some(("tenant", v)) => tenant = v.to_string(),
                    Some(("reason", v)) => reason = v.to_string(),
                    Some(("queued", v)) => queued = parse_num("queued", v)?,
                    Some(("limit", v)) => limit = parse_num("limit", v)?,
                    _ => {}
                }
            }
            Ok(RespHeader::Overloaded {
                tenant,
                reason,
                queued,
                limit,
            })
        } else if let Some(rest) = line.strip_prefix("shed: ") {
            Ok(RespHeader::Shed {
                reason: rest.to_string(),
            })
        } else if let Some(rest) = line.strip_prefix("expired ") {
            let mut deadline_ms = 0;
            let mut waited_ms = 0;
            for tok in rest.split_ascii_whitespace() {
                match tok.split_once('=') {
                    Some(("deadline_ms", v)) => deadline_ms = parse_num("deadline_ms", v)?,
                    Some(("waited_ms", v)) => waited_ms = parse_num("waited_ms", v)?,
                    _ => {}
                }
            }
            Ok(RespHeader::Expired {
                deadline_ms,
                waited_ms,
            })
        } else {
            Err(bad("response", format!("unrecognized header {line:?}")))
        }
    }
}

/// Encode a slice of `f32` as little-endian bytes (the body encoding of
/// every successful response).
pub fn f32_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a little-endian `f32` body (client side).
pub fn bytes_f32(bytes: &[u8]) -> SfcResult<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(SfcError::Corrupt {
            what: "response body".to_string(),
            reason: format!("length {} is not a multiple of 4", bytes.len()),
        });
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_format_and_parse() {
        let req = Request {
            tenant: "alice".into(),
            op: OpKind::Filter { radius: 2 },
            size: 16,
            layout: LayoutChoice::Hilbert,
            seed: 99,
            deadline_ms: Some(250),
            req_id: Some("r-17".into()),
            attempt: 3,
            faults: Some((7, FaultRates { panic: 0.1, ..FaultRates::default() })),
            save: true,
        };
        assert_eq!(Request::parse(&req.format()).unwrap(), req);

        let render = Request {
            tenant: "bob-2".into(),
            op: OpKind::Render { image: 64, tile: 16 },
            size: 12,
            layout: LayoutChoice::Array,
            seed: 3,
            deadline_ms: None,
            req_id: None,
            attempt: 1,
            faults: None,
            save: false,
        };
        assert_eq!(Request::parse(&render.format()).unwrap(), render);
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for line in [
            "",
            "transmogrify tenant=a",
            "filter",                                  // no tenant
            "filter tenant=",                          // empty tenant
            "filter tenant=a size=0",                  // zero size
            "filter tenant=a size=9999",               // size over cap
            "filter tenant=a radius=0",                // zero radius
            "filter tenant=a size=4 radius=9",         // radius >= size
            "filter tenant=a bogus=1",                 // unknown key
            "filter tenant=a size",                    // not key=value
            "filter tenant=a size=twelve",             // not a number
            "render tenant=a image=0",
            "render tenant=a image=16 tile=99",
            "filter tenant=no/slashes",
            "filter tenant=a deadline_ms=0",            // zero budget is exhaustion
            "filter tenant=a req_id=",                  // empty idempotency key
            "filter tenant=a req_id=no/slashes",        // bad req_id charset
            "filter tenant=a attempt=0",                // attempts are 1-based
            "filter tenant=a attempt=x",                // not a number
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                matches!(err, SfcError::InvalidParameter { .. }),
                "{line:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn work_key_ignores_tenant_and_refuses_save() {
        let a = Request::parse("filter tenant=a size=8 seed=5 radius=1").unwrap();
        let b = Request::parse("filter tenant=b size=8 seed=5 radius=1").unwrap();
        let c = Request::parse("filter tenant=b size=8 seed=6 radius=1").unwrap();
        assert_eq!(a.work_key(), b.work_key());
        assert_ne!(a.work_key(), c.work_key());
        let saved = Request::parse("filter tenant=a size=8 seed=5 radius=1 save=1").unwrap();
        assert_eq!(saved.work_key(), None);
    }

    #[test]
    fn headers_roundtrip() {
        let ok = RespHeader::Ok(OkHeader {
            bytes: 1024,
            completed: 64,
            failed: 1,
            retried: 2,
            downgraded: 3,
            max_level: 2,
            shed_units: 1,
            whole: true,
            cache_hit: true,
            coalesced: 4,
            dedup: true,
        });
        assert_eq!(RespHeader::parse(&ok.format()).unwrap(), ok);

        let err = RespHeader::Err {
            kind: "invalid-parameter".into(),
            message: "bad radius".into(),
        };
        assert_eq!(RespHeader::parse(&err.format()).unwrap(), err);

        let over = RespHeader::Overloaded {
            tenant: "mallory".into(),
            reason: "queue-full".into(),
            queued: 8,
            limit: 8,
        };
        assert_eq!(RespHeader::parse(&over.format()).unwrap(), over);

        let shed = RespHeader::Shed {
            reason: "drain budget exhausted".into(),
        };
        assert_eq!(RespHeader::parse(&shed.format()).unwrap(), shed);

        let expired = RespHeader::Expired {
            deadline_ms: 250,
            waited_ms: 312,
        };
        assert_eq!(RespHeader::parse(&expired.format()).unwrap(), expired);
    }

    #[test]
    fn work_key_ignores_req_id_and_attempt() {
        let a = Request::parse("filter tenant=a size=8 seed=5 radius=1 req_id=x1").unwrap();
        let b = Request::parse("filter tenant=a size=8 seed=5 radius=1 req_id=x2 attempt=3").unwrap();
        assert_eq!(
            a.work_key(),
            b.work_key(),
            "idempotency bookkeeping must not defeat coalescing"
        );
    }

    #[test]
    fn transient_error_kinds_are_classified() {
        for kind in ["worker-panic", "timeout", "cancelled", "io", "corrupt"] {
            assert!(error_kind_is_transient(kind), "{kind}");
        }
        for kind in ["invalid-parameter", "invalid-dims", "shape-mismatch", "non-finite", "error"] {
            assert!(!error_kind_is_transient(kind), "{kind}");
        }
    }

    #[test]
    fn f32_body_roundtrips() {
        let values = vec![0.0f32, -1.5, f32::MAX, 1e-20];
        let bytes = f32_bytes(&values);
        let back = bytes_f32(&bytes).unwrap();
        assert_eq!(
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(bytes_f32(&bytes[..5]).is_err());
    }
}
