//! A small blocking client for the volume service — used by `load_gen`,
//! the integration tests, and anyone scripting the server.
//!
//! Every failure mode is a typed [`SfcError`] whose
//! [`error_kind`](crate::protocol::error_kind) lands in the kebab-case
//! taxonomy the resilient layer retries on: transport failures map to
//! `io`, a reply that violates the protocol (an oversized `bytes=`
//! header, a body cut short by a dying server) maps to `corrupt` with
//! the observed/expected counts in the message. Nothing here panics on
//! hostile bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use sfc_core::{SfcError, SfcResult};

use crate::protocol::{RespHeader, Request, MAX_BODY};

/// One connection to the service.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A detached handle that can tear down a [`Client`]'s connection from
/// another thread — the hedging layer uses this to cancel the losing
/// attempt (the server's disconnect detection then reaps the request).
pub struct CancelHandle {
    stream: TcpStream,
}

impl CancelHandle {
    /// Shut the connection down (both directions). Any blocked read on
    /// the client errors out immediately; idempotent.
    pub fn cancel(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

fn io_err(what: &str, e: std::io::Error) -> SfcError {
    SfcError::io(what.to_string(), e)
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7070`).
    pub fn connect(addr: &str) -> SfcResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone", e))?);
        Ok(Client { stream, reader })
    }

    /// A handle that can cancel this connection from another thread.
    pub fn cancel_handle(&self) -> SfcResult<CancelHandle> {
        Ok(CancelHandle {
            stream: self.stream.try_clone().map_err(|e| io_err("clone", e))?,
        })
    }

    /// Set both socket timeouts.
    pub fn set_timeout(&self, timeout: Duration) -> SfcResult<()> {
        self.stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| self.stream.set_write_timeout(Some(timeout)))
            .map_err(|e| io_err("set timeout", e))
    }

    /// Send a raw line and read one raw line back (control verbs:
    /// `ping`, `stats`, `shutdown`).
    pub fn send_line(&mut self, line: &str) -> SfcResult<String> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| io_err("write", e))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| io_err("read", e))?;
        Ok(reply.trim_end().to_string())
    }

    /// Scrape the server's Prometheus exposition: send the `metrics`
    /// verb and read the framed body (`metrics bytes=N` header line,
    /// then N bytes of text).
    pub fn scrape_metrics(&mut self) -> SfcResult<String> {
        self.stream
            .write_all(b"metrics\n")
            .map_err(|e| io_err("write", e))?;
        let mut header = String::new();
        self.reader
            .read_line(&mut header)
            .map_err(|e| io_err("read metrics header", e))?;
        let bytes = header
            .trim_end()
            .strip_prefix("metrics bytes=")
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| SfcError::corrupt("metrics header", header.trim_end().to_string()))?;
        let mut body = vec![0u8; bytes];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| io_err("read metrics body", e))?;
        String::from_utf8(body)
            .map_err(|e| SfcError::corrupt("metrics body", e.to_string()))
    }

    /// Submit a typed request and read the full reply (header + body).
    pub fn request(&mut self, req: &Request) -> SfcResult<(RespHeader, Vec<u8>)> {
        self.request_line(&req.format())
    }

    /// Submit a request line verbatim and read the full reply.
    pub fn request_line(&mut self, line: &str) -> SfcResult<(RespHeader, Vec<u8>)> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| io_err("write", e))?;
        let mut header_line = String::new();
        let n = self
            .reader
            .read_line(&mut header_line)
            .map_err(|e| io_err("read header", e))?;
        if n == 0 {
            return Err(SfcError::io(
                "read header",
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed"),
            ));
        }
        let header = RespHeader::parse(&header_line)?;
        let body = match &header {
            RespHeader::Ok(h) if h.bytes > 0 => {
                // A hostile or corrupted header must not drive the
                // allocation: bound it before trusting `bytes=`.
                if h.bytes > MAX_BODY {
                    return Err(SfcError::corrupt(
                        "body length",
                        format!("header claims {} bytes, protocol max is {MAX_BODY}", h.bytes),
                    ));
                }
                let mut body = vec![0u8; h.bytes];
                read_body(&mut self.reader, &mut body)?;
                body
            }
            _ => Vec::new(),
        };
        Ok((header, body))
    }
}

/// Read exactly `buf.len()` body bytes, mapping a mid-body EOF (the
/// server died with the body half-sent) to a typed `corrupt` error that
/// records how far the read got.
fn read_body(reader: &mut BufReader<TcpStream>, buf: &mut [u8]) -> SfcResult<()> {
    let want = buf.len();
    let mut got = 0;
    while got < want {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(SfcError::corrupt(
                    "body",
                    format!("short read: connection closed after {got} of {want} bytes"),
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read body", e)),
        }
    }
    Ok(())
}
