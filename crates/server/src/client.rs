//! A small blocking client for the volume service — used by `load_gen`,
//! the integration tests, and anyone scripting the server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use sfc_core::{SfcError, SfcResult};

use crate::protocol::{RespHeader, Request};

/// One connection to the service.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn io_err(what: &str, e: std::io::Error) -> SfcError {
    SfcError::io(what.to_string(), e)
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7070`).
    pub fn connect(addr: &str) -> SfcResult<Client> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream.set_nodelay(true).map_err(|e| io_err("nodelay", e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone", e))?);
        Ok(Client { stream, reader })
    }

    /// Set both socket timeouts.
    pub fn set_timeout(&self, timeout: Duration) -> SfcResult<()> {
        self.stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| self.stream.set_write_timeout(Some(timeout)))
            .map_err(|e| io_err("set timeout", e))
    }

    /// Send a raw line and read one raw line back (control verbs:
    /// `ping`, `stats`, `shutdown`).
    pub fn send_line(&mut self, line: &str) -> SfcResult<String> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| io_err("write", e))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| io_err("read", e))?;
        Ok(reply.trim_end().to_string())
    }

    /// Scrape the server's Prometheus exposition: send the `metrics`
    /// verb and read the framed body (`metrics bytes=N` header line,
    /// then N bytes of text).
    pub fn scrape_metrics(&mut self) -> SfcResult<String> {
        self.stream
            .write_all(b"metrics\n")
            .map_err(|e| io_err("write", e))?;
        let mut header = String::new();
        self.reader
            .read_line(&mut header)
            .map_err(|e| io_err("read metrics header", e))?;
        let bytes = header
            .trim_end()
            .strip_prefix("metrics bytes=")
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| SfcError::corrupt("metrics header", header.trim_end().to_string()))?;
        let mut body = vec![0u8; bytes];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| io_err("read metrics body", e))?;
        String::from_utf8(body)
            .map_err(|e| SfcError::corrupt("metrics body", e.to_string()))
    }

    /// Submit a typed request and read the full reply (header + body).
    pub fn request(&mut self, req: &Request) -> SfcResult<(RespHeader, Vec<u8>)> {
        self.request_line(&req.format())
    }

    /// Submit a request line verbatim and read the full reply.
    pub fn request_line(&mut self, line: &str) -> SfcResult<(RespHeader, Vec<u8>)> {
        self.stream
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| io_err("write", e))?;
        let mut header_line = String::new();
        let n = self
            .reader
            .read_line(&mut header_line)
            .map_err(|e| io_err("read header", e))?;
        if n == 0 {
            return Err(SfcError::io(
                "read header",
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed"),
            ));
        }
        let header = RespHeader::parse(&header_line)?;
        let body = match &header {
            RespHeader::Ok(h) if h.bytes > 0 => {
                let mut body = vec![0u8; h.bytes];
                self.reader
                    .read_exact(&mut body)
                    .map_err(|e| io_err("read body", e))?;
                body
            }
            _ => Vec::new(),
        };
        Ok((header, body))
    }
}
